"""Benchmark suite package.

A real package (not a PEP 420 namespace) so pytest imports
``benchmarks/conftest.py`` as :mod:`benchmarks.conftest` — the same module
object the bench tests import helpers from.  Without this, hook state
(the queued ``BENCH_batch.json`` points) would live in a second, unseen
module instance.
"""
