"""Ablation: the §III closed-form model versus the fluid simulator.

On the pure schemes the two must agree exactly for CR's plan shape (star +
redistribute) and for IR's chains (Eq. 3), because the fluid fair-share
semantics reduce to the paper's connection-count division there.  For HMBR
they diverge: the model assumes CR and IR never contend; the simulator
charges the shared links, which is why the searched split exists.
"""

import numpy as np
import pytest

from benchmarks.conftest import attach
from repro.experiments.common import build_scenario
from repro.repair.centralized import plan_centralized
from repro.repair.hybrid import plan_hybrid
from repro.repair.independent import plan_independent
from repro.repair.model import repair_model
from repro.simnet.fluid import FluidSimulator


def test_model_vs_sim_pure_schemes(benchmark):
    def run():
        rows = []
        for seed in (2023, 2024, 2025):
            sc = build_scenario(32, 8, 8, wld="WLD-8x", seed=seed)
            model = repair_model(sc.ctx)
            sim = FluidSimulator(sc.ctx.cluster)
            t_cr = sim.run(plan_centralized(sc.ctx).tasks).makespan
            t_ir = sim.run(plan_independent(sc.ctx).tasks).makespan
            rows.append((model.t_cr, t_cr, model.t_ir, t_ir))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for m_cr, s_cr, m_ir, s_ir in rows:
        assert s_cr == pytest.approx(m_cr, rel=0.02)
        # Eq. 3 charges the min link with f x B even when the bottleneck is a
        # dedicated new-node downlink; the simulator never exceeds it.
        assert s_ir <= m_ir + 1e-9
        assert s_ir >= 0.5 * m_ir
    attach(benchmark, cr_model_sim_reldiff=max(abs(r[1] - r[0]) / r[0] for r in rows))


def test_model_vs_sim_hmbr_gap(benchmark):
    """Quantify how optimistic the independent-parallel model is for HMBR."""

    def run():
        gaps = []
        for seed in (2023, 2024, 2025):
            sc = build_scenario(64, 8, 8, wld="WLD-8x", seed=seed)
            model = repair_model(sc.ctx)
            t = FluidSimulator(sc.ctx.cluster).run(
                plan_hybrid(sc.ctx, split="theorem1").tasks
            ).makespan
            gaps.append(t / model.t_hmbr)
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    # contention means simulated >= model, but within a small constant factor
    assert all(0.95 <= g <= 2.0 for g in gaps)
    attach(benchmark, mean_sim_over_model=float(np.mean(gaps)))
