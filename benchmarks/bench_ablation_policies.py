"""Ablations of secondary design choices called out in DESIGN.md.

* center selection (fastest-downlink vs naive first),
* IR chain ordering (index vs uplink-descending),
* survivor selection (first vs best-uplink),
* rack-aware CR intermediate policy (paper vs adaptive).
"""

import numpy as np
import pytest

from benchmarks.conftest import attach
from repro.experiments.common import build_scenario
from repro.repair.centralized import plan_centralized
from repro.repair.independent import plan_independent
from repro.repair.rackaware import plan_rack_aware_centralized
from repro.simnet.fluid import FluidSimulator


SEEDS = (2023, 2024, 2025, 2026)


def mean_time(plans_by_seed):
    return float(np.mean(plans_by_seed))


def test_center_policy_ablation(benchmark):
    """Fastest-downlink center vs naive first new node for CR."""

    def run():
        fast, naive = [], []
        for seed in SEEDS:
            sc = build_scenario(32, 8, 8, wld="WLD-8x", seed=seed)
            sim = FluidSimulator(sc.ctx.cluster)
            fast.append(sim.run(plan_centralized(sc.ctx, center_policy="fastest-downlink").tasks).makespan)
            naive.append(sim.run(plan_centralized(sc.ctx, center_policy="first").tasks).makespan)
        return mean_time(fast), mean_time(naive)

    fast, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    assert fast <= naive + 1e-9
    attach(benchmark, fastest_downlink_s=fast, naive_first_s=naive,
           gain_pct=100 * (1 - fast / naive))


def test_chain_order_ablation(benchmark):
    """Bandwidth-sorted chains vs index order for IR."""

    def run():
        sorted_t, index_t = [], []
        for seed in SEEDS:
            sc = build_scenario(32, 8, 4, wld="WLD-8x", seed=seed)
            sim = FluidSimulator(sc.ctx.cluster)
            index_t.append(sim.run(plan_independent(sc.ctx, chain_order="index").tasks).makespan)
            sorted_t.append(sim.run(plan_independent(sc.ctx, chain_order="uplink-desc").tasks).makespan)
        return mean_time(sorted_t), mean_time(index_t)

    sorted_t, index_t = benchmark.pedantic(run, rounds=1, iterations=1)
    # ordering only moves which links are adjacent; it cannot beat the
    # slowest-uplink bound but must never be much worse than index order
    assert sorted_t <= index_t * 1.05
    attach(benchmark, uplink_desc_s=sorted_t, index_s=index_t)


def test_survivor_policy_ablation(benchmark):
    """best-uplink survivor choice vs first-k when spares exist (f < m)."""

    def run():
        best, first = [], []
        for seed in SEEDS:
            sc_first = build_scenario(16, 8, 2, wld="WLD-8x", seed=seed, survivor_policy="first")
            sc_best = build_scenario(16, 8, 2, wld="WLD-8x", seed=seed, survivor_policy="best-uplink")
            sim = FluidSimulator(sc_first.ctx.cluster)
            first.append(sim.run(plan_independent(sc_first.ctx).tasks).makespan)
            best.append(sim.run(plan_independent(sc_best.ctx).tasks).makespan)
        return mean_time(best), mean_time(first)

    best, first = benchmark.pedantic(run, rounds=1, iterations=1)
    # IR is paced by the slowest chosen survivor: picking fast uplinks helps
    assert best <= first + 1e-9
    attach(benchmark, best_uplink_s=best, first_k_s=first,
           gain_pct=100 * (1 - best / first))


def test_rack_intermediate_policy_ablation(benchmark):
    """Adaptive intermediates ship <= the paper policy's bytes at f >= rack size."""

    def run():
        out = []
        for seed in SEEDS[:2]:
            sc = build_scenario(16, 8, 8, wld="WLD-2x", seed=seed, rack_size=4, cross_factor=5.0)
            paper = plan_rack_aware_centralized(sc.ctx, intermediate_policy="paper")
            adaptive = plan_rack_aware_centralized(sc.ctx, intermediate_policy="adaptive")
            out.append((paper.total_transfer_mb(), adaptive.total_transfer_mb()))
        return out

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    for paper_mb, adaptive_mb in pairs:
        assert adaptive_mb <= paper_mb + 1e-9
    attach(benchmark, paper_mb=pairs[0][0], adaptive_mb=pairs[0][1])
