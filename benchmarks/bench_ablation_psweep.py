"""Ablation: sweep the split ratio p and verify Theorem 1's structure.

T(p) from the closed-form model is piecewise linear with its minimum exactly
at p0 = T_IR / (T_CR + T_IR); the simulated T(p) is also minimized near the
searched split and the searched split never loses to the closed form.
"""

import numpy as np
import pytest

from benchmarks.conftest import attach
from repro.experiments.common import build_scenario
from repro.repair.hybrid import plan_hybrid
from repro.repair.model import repair_model
from repro.simnet.fluid import FluidSimulator


def sweep(ctx, ps):
    sim = FluidSimulator(ctx.cluster)
    return [sim.run(plan_hybrid(ctx, p=float(p)).tasks).makespan for p in ps]


def test_psweep_model_minimum_at_p0(benchmark):
    sc = build_scenario(32, 8, 8, wld="WLD-8x", seed=2023)
    model = repair_model(sc.ctx)
    ps = np.linspace(0, 1, 21)

    def run():
        return [model.t(float(p)) for p in ps]

    ts = benchmark(run)
    assert min(ts) >= model.t(model.p0) - 1e-9
    attach(benchmark, p0=model.p0, t_at_p0=model.t(model.p0))


def test_psweep_simulated_search_is_optimal(benchmark):
    sc = build_scenario(16, 8, 4, wld="WLD-4x", seed=2024)
    ps = np.linspace(0, 1, 11)
    ts = benchmark.pedantic(sweep, args=(sc.ctx, ps), rounds=1, iterations=1)
    searched = plan_hybrid(sc.ctx, split="search")
    sim_best = FluidSimulator(sc.ctx.cluster).run(searched.tasks).makespan
    assert sim_best <= min(ts) + 1e-6
    attach(benchmark, searched_p=searched.meta["p0"], sim_best_s=sim_best)


def test_psweep_theorem1_vs_search(benchmark):
    """The searched split never loses to the Theorem 1 closed form."""
    results = []

    def run():
        sim_results = []
        for seed in (2023, 2024, 2025):
            sc = build_scenario(32, 8, 4, wld="WLD-2x", seed=seed)
            sim = FluidSimulator(sc.ctx.cluster)
            t_t1 = sim.run(plan_hybrid(sc.ctx, split="theorem1").tasks).makespan
            t_se = sim.run(plan_hybrid(sc.ctx, split="search").tasks).makespan
            sim_results.append((t_t1, t_se))
        return sim_results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for t_t1, t_se in results:
        assert t_se <= t_t1 + 1e-9
    gain = float(np.mean([1 - t_se / t_t1 for t_t1, t_se in results]))
    attach(benchmark, mean_gain_over_theorem1_pct=100 * gain)
