"""Adaptive re-planning bench: static vs adaptive makespans under churn.

Each case plans HMBR against the pre-change snapshot, then rides a
seed-derived drift-heavy trace (survivor uplinks collapse mid-repair) two
ways: the static plan simulated as-is, and the adaptive engine re-planning
the remaining volume at the drifted event boundary.  Points carry both
makespans and their ratio into ``BENCH_adaptive.json`` (suite
``adaptive-replan``); the schema gate holds the aggregate
``env.adaptive_speedup_x`` strictly above 1 — the artifact exists to pin
that re-planning beats riding out a stale plan.

Plain test functions (no pytest-benchmark fixture) so the smoke job can run
them without the plugin installed; ``BENCH_SMOKE=1`` shrinks the shape.
"""

import os

import numpy as np

from benchmarks.conftest import record_adaptive_point, set_adaptive_env
from repro.adaptive import AdaptiveConfig, AdaptiveEngine, AdaptiveEntry
from repro.experiments.common import build_scenario
from repro.repair.hybrid import plan_hybrid
from repro.simnet import NetworkTrace
from repro.simnet.fluid import FluidSimulator

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

CASES = [(16, 8, 4)] if SMOKE else [(16, 8, 4), (32, 8, 8)]
SEEDS = (2023,) if SMOKE else (2023, 2024, 2025)


def _one(k, m, f, seed):
    """(t_static, t_adaptive, replans, wasted_mb) for one churned scenario."""
    sc = build_scenario(k, m, f, wld="WLD-2x", seed=seed, block_size_mb=64.0)
    ctx = sc.ctx
    survivors = ctx.survivor_nodes()
    trace = NetworkTrace.degrade(
        survivors[: max(1, len(survivors) // 2)], at_time=1.0, factor=8.0
    )
    events = trace.events_for(ctx.cluster)
    stale = plan_hybrid(ctx)
    t_static = FluidSimulator(ctx.cluster).run(stale.tasks, events=events).makespan
    engine = AdaptiveEngine(ctx.cluster, events=events, config=AdaptiveConfig())
    report = engine.run(
        [AdaptiveEntry(key=f"s{seed}", ctx=ctx, scheme="hmbr", plan=stale)]
    )
    return t_static, report.makespan_s, report.replans, report.wasted_mb


def test_adaptive_vs_static_under_churn():
    """Seeded churn cases: record the trajectory and the aggregate win."""
    speedups = []
    for k, m, f in CASES:
        rows = [_one(k, m, f, seed) for seed in SEEDS]
        t_static = float(np.mean([r[0] for r in rows]))
        t_adaptive = float(np.mean([r[1] for r in rows]))
        speedup = t_static / t_adaptive
        speedups.append(speedup)
        record_adaptive_point(
            f"adaptive.replan.k{k}m{m}f{f}",
            {"k": k, "m": m, "f": f, "seeds": len(SEEDS), "scheme": "hmbr",
             "smoke": SMOKE},
            {
                "t_static_s": t_static,
                "t_adaptive_s": t_adaptive,
                "speedup_x": speedup,
                "replans_mean": float(np.mean([r[2] for r in rows])),
                "wasted_mb_mean": float(np.mean([r[3] for r in rows])),
            },
        )
        assert t_adaptive < t_static, (k, m, f)
    set_adaptive_env(adaptive_speedup_x=float(np.exp(np.mean(np.log(speedups)))))


def test_adaptive_quiet_overhead_is_zero():
    """On a quiet network the adaptive run matches the static makespan."""
    k, m, f = CASES[0]
    sc = build_scenario(k, m, f, wld="WLD-2x", seed=7, block_size_mb=64.0)
    plan = plan_hybrid(sc.ctx)
    t_static = FluidSimulator(sc.ctx.cluster).run(plan.tasks).makespan
    report = AdaptiveEngine(sc.ctx.cluster).run(
        [AdaptiveEntry(key="s0", ctx=sc.ctx, scheme="hmbr", plan=plan)]
    )
    assert abs(report.makespan_s - t_static) <= 1e-9
    assert report.replans == 0 and report.wasted_mb == 0.0
    record_adaptive_point(
        "adaptive.quiet_overhead",
        {"k": k, "m": m, "f": f, "scheme": "hmbr", "smoke": SMOKE},
        {
            "t_static_s": t_static,
            "t_adaptive_s": report.makespan_s,
            "makespan_delta_s": abs(report.makespan_s - t_static),
        },
    )
