"""Allocator and evaluator performance benchmarks (vectorized vs reference)."""

import numpy as np
import pytest

from benchmarks.conftest import attach
from repro.simnet.fluid import FluidSimulator, _Resource
from repro.simnet.static import StaticShareEvaluator


def build_instance(n_flows=400, n_res=300, seed=0):
    rng = np.random.default_rng(seed)
    res_keys = [f"r{i}" for i in range(n_res)]
    caps = {r: float(rng.uniform(10, 200)) for r in res_keys}
    flows = {
        f"f{i}": [res_keys[j] for j in rng.choice(n_res, size=3, replace=False)]
        for i in range(n_flows)
    }
    return res_keys, caps, flows


def test_reference_allocator(benchmark):
    res_keys, caps, flows = build_instance()
    resources = {r: _Resource(caps[r]) for r in res_keys}
    rates = benchmark(FluidSimulator._allocate, dict(flows), resources)
    assert len(rates) == len(flows)


def test_vectorized_allocator(benchmark):
    res_keys, caps, flows = build_instance()
    tids = sorted(flows)
    alloc = FluidSimulator._VectorAllocator(tids, flows, res_keys)
    caps_arr = np.array([caps[r] for r in res_keys])
    mask = np.ones(len(tids), dtype=bool)
    rates = benchmark(alloc.allocate, mask, caps_arr)
    assert rates.shape == (len(tids),)
    attach(benchmark, flows=len(tids), resources=len(res_keys))


def test_fluid_vs_static_evaluator_speed(benchmark):
    """The static evaluator's speed advantage for search loops."""
    from repro.experiments.common import build_scenario, plan_for

    sc = build_scenario(64, 8, 8, wld="WLD-8x", seed=2023)
    plan = plan_for(sc.ctx, "ir")
    static_ev = StaticShareEvaluator(sc.ctx.cluster)
    res = benchmark(static_ev.run, plan.tasks)
    assert res.makespan > 0


def test_fluid_evaluator_same_plan(benchmark):
    from repro.experiments.common import build_scenario, plan_for

    sc = build_scenario(64, 8, 8, wld="WLD-8x", seed=2023)
    plan = plan_for(sc.ctx, "ir")
    sim = FluidSimulator(sc.ctx.cluster)
    res = benchmark(sim.run, plan.tasks)
    assert res.makespan > 0
