"""Reed-Solomon codec throughput benchmarks, incl. the batched repair path.

The ``batched`` tests time per-stripe ``code.decode`` against
:class:`repro.repair.batch.BatchRepairEngine` on a 16-stripe node-failure
batch and record a perf-trajectory point into ``BENCH_batch.json``.
``BENCH_SMOKE=1`` shrinks sizes (and drops the speedup floor) so CI can run
them as a smoke test on shared runners.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import attach, record_batch_point
from repro.ec.rs import get_code
from repro.repair.batch import BatchRepairEngine, StripeBatchItem

SMOKE = os.environ.get("BENCH_SMOKE") == "1"


def stripe_inputs(k, block_bytes, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(k, block_bytes), dtype=np.uint8)


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.parametrize("w", [8, 16])
def test_batched_repair_speedup_f4(w):
    """16 same-pattern stripes, f=4: one plane matmul must beat 16 decodes.

    The GF(2^8) configuration is the acceptance gate (>= 3x in full mode);
    GF(2^16) is recorded for the trajectory without a hard floor.
    """
    k, m, f, n_stripes = 8, 4, 4, 16
    block = (1 << 12) if SMOKE else (1 << 16)
    repeats = 2 if SMOKE else 5
    code = get_code(k, m, w)
    rng = np.random.default_rng(20230717)
    failed = [1, 4, 6, 11][:f]
    survivors = [i for i in range(code.n) if i not in failed][:k]
    stripes = []
    for _ in range(n_stripes):
        data = rng.integers(0, code.field.size, size=(k, block)).astype(code.field.dtype)
        stripes.append(code.encode_stripe(data))

    def per_stripe():
        return [
            code.decode({i: s[i] for i in survivors}, list(failed)) for s in stripes
        ]

    engine = BatchRepairEngine(code)
    items = [
        StripeBatchItem(
            stripe_id=sid,
            survivors=tuple(survivors),
            failed=tuple(failed),
            sources=[s[i] for i in survivors],
        )
        for sid, s in enumerate(stripes)
    ]

    expected = per_stripe()  # also warms the per-stripe repair-matrix memo
    res = engine.repair_items(items)  # warms the plan cache
    for fb in failed:  # bit-exactness spot check before timing
        assert np.array_equal(res.outputs[0][fb], expected[0][fb])

    t_single = _best_of(per_stripe, repeats)
    t_batch = _best_of(lambda: engine.repair_items(items), repeats)
    speedup = t_single / t_batch
    nbytes = n_stripes * k * block * code.field.dtype().itemsize
    record_batch_point(
        f"ec_codec.batched_repair.gf{w}",
        params={
            "k": k, "m": m, "f": f, "stripes": n_stripes,
            "block_symbols": block, "field_w": w, "smoke": SMOKE,
        },
        metrics={
            "per_stripe_s": t_single,
            "batched_s": t_batch,
            "speedup_x": speedup,
            "batched_MBps": nbytes / t_batch / 2**20,
            "plan_hit_rate": engine.stats()["hit_rate"],
        },
    )
    if w == 8 and not SMOKE:
        assert speedup >= 3.0, f"batched GF(2^8) repair only {speedup:.2f}x"
    else:
        assert speedup > 0.0


@pytest.mark.parametrize("k,m", [(6, 3), (64, 8)])
def test_encode_throughput(benchmark, k, m):
    code = get_code(k, m)
    data = stripe_inputs(k, 1 << 18)
    parity = benchmark(code.encode, data)
    assert parity.shape == (m, 1 << 18)
    attach(benchmark, data_MB=k * (1 << 18) / 2**20)


@pytest.mark.parametrize("k,m,f", [(6, 3, 3), (64, 8, 8)])
def test_decode_throughput(benchmark, k, m, f):
    code = get_code(k, m)
    data = stripe_inputs(k, 1 << 17, seed=1)
    stripe = code.encode_stripe(data)
    dead = list(range(f))
    avail = {i: stripe[i] for i in range(f, k + m)}

    out = benchmark(code.decode, avail, dead)
    for d in dead:
        assert np.array_equal(out[d], stripe[d])


def test_repair_matrix_setup_cost(benchmark):
    """Repair-matrix computation for a wide stripe, cache-cold each round."""
    code = get_code(64, 16)

    def run():
        code._repair_cache.clear()
        return code.repair_matrix(list(range(16, 80)), list(range(8)))

    r = benchmark(run)
    assert r.shape == (8, 64)


def test_repair_matrix_cache_hit(benchmark):
    code = get_code(64, 16)
    code.repair_matrix(list(range(16, 80)), list(range(8)))  # warm
    r = benchmark(code.repair_matrix, list(range(16, 80)), list(range(8)))
    assert r.shape == (8, 64)
