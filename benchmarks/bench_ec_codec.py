"""Reed-Solomon codec throughput benchmarks, incl. the batched repair path.

The ``batched`` tests time per-stripe ``code.decode`` against
:class:`repro.repair.batch.BatchRepairEngine` on a 16-stripe node-failure
batch and record a perf-trajectory point into ``BENCH_batch.json`` — the
selected GF kernel backend lands in the artifact's ``env`` block, and the
``batched_backend`` test additionally pits the native C tier against the
NumPy tier on the same workload (>= 5x is the full-fidelity acceptance
floor, enforced here and re-checked by ``tools/check_bench_schema.py``).
``BENCH_SMOKE=1`` shrinks sizes (and drops the speedup floors) so CI can
run them as a smoke test on shared runners.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import attach, record_batch_point, set_batch_env
from repro.ec.rs import get_code
from repro.gf.backend import available_backends, get_backend
from repro.repair.batch import BatchRepairEngine, StripeBatchItem

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

#: the full-fidelity floor for the native tier vs NumPy on GF(2^8); the
#: schema check re-asserts this from the committed artifact.
NATIVE_SPEEDUP_FLOOR = 5.0


def stripe_inputs(k, block_bytes, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(k, block_bytes), dtype=np.uint8)


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.parametrize("w", [8, 16])
def test_batched_repair_speedup_f4(w):
    """16 same-pattern stripes, f=4: one plane matmul must beat 16 decodes.

    The GF(2^8) configuration is the acceptance gate (>= 3x in full mode);
    GF(2^16) is recorded for the trajectory without a hard floor.
    """
    k, m, f, n_stripes = 8, 4, 4, 16
    block = (1 << 12) if SMOKE else (1 << 16)
    repeats = 2 if SMOKE else 5
    code = get_code(k, m, w)
    rng = np.random.default_rng(20230717)
    failed = [1, 4, 6, 11][:f]
    survivors = [i for i in range(code.n) if i not in failed][:k]
    stripes = []
    for _ in range(n_stripes):
        data = rng.integers(0, code.field.size, size=(k, block)).astype(code.field.dtype)
        stripes.append(code.encode_stripe(data))

    def per_stripe():
        return [
            code.decode({i: s[i] for i in survivors}, list(failed)) for s in stripes
        ]

    engine = BatchRepairEngine(code)
    items = [
        StripeBatchItem(
            stripe_id=sid,
            survivors=tuple(survivors),
            failed=tuple(failed),
            sources=[s[i] for i in survivors],
        )
        for sid, s in enumerate(stripes)
    ]

    expected = per_stripe()  # also warms the per-stripe repair-matrix memo
    res = engine.repair_items(items)  # warms the plan cache
    for fb in failed:  # bit-exactness spot check before timing
        assert np.array_equal(res.outputs[0][fb], expected[0][fb])

    t_single = _best_of(per_stripe, repeats)
    t_batch = _best_of(lambda: engine.repair_items(items), repeats)
    speedup = t_single / t_batch
    nbytes = n_stripes * k * block * code.field.dtype().itemsize
    set_batch_env(backend=engine.stats()["backend"])
    record_batch_point(
        f"ec_codec.batched_repair.gf{w}",
        params={
            "k": k, "m": m, "f": f, "stripes": n_stripes,
            "block_symbols": block, "field_w": w, "smoke": SMOKE,
            "backend": engine.stats()["backend"],
        },
        metrics={
            "per_stripe_s": t_single,
            "batched_s": t_batch,
            "speedup_x": speedup,
            "batched_MBps": nbytes / t_batch / 2**20,
            "plan_hit_rate": engine.stats()["hit_rate"],
        },
    )
    if w == 8 and not SMOKE:
        assert speedup >= 3.0, f"batched GF(2^8) repair only {speedup:.2f}x"
    else:
        assert speedup > 0.0


@pytest.mark.parametrize("w", [8, 16])
def test_batched_backend_tiers_f4(w):
    """The pluggable-kernel gate: native >= 5x NumPy on the same batch.

    Runs the exact 16-stripe f=4 decode of ``test_batched_repair_speedup_f4``
    once per registered-and-available backend, records each tier's
    ``decode_mbps`` trajectory point, and — full-fidelity, GF(2^8) — holds
    the native tier to :data:`NATIVE_SPEEDUP_FLOOR` over the NumPy tier.
    All tiers are asserted bit-identical before timing.
    """
    k, m, f, n_stripes = 8, 4, 4, 16
    block = (1 << 12) if SMOKE else (1 << 16)
    repeats = 2 if SMOKE else 5
    code = get_code(k, m, w)
    rng = np.random.default_rng(20230717)
    failed = [1, 4, 6, 11][:f]
    survivors = [i for i in range(code.n) if i not in failed][:k]
    stripes = []
    for _ in range(n_stripes):
        data = rng.integers(0, code.field.size, size=(k, block)).astype(code.field.dtype)
        stripes.append(code.encode_stripe(data))
    items = [
        StripeBatchItem(
            stripe_id=sid,
            survivors=tuple(survivors),
            failed=tuple(failed),
            sources=[s[i] for i in survivors],
        )
        for sid, s in enumerate(stripes)
    ]
    nbytes = n_stripes * k * block * code.field.dtype().itemsize

    decode_s: dict[str, float] = {}
    reference = None
    for name in available_backends(w):
        engine = BatchRepairEngine(code, backend=name)
        res = engine.repair_items(items)  # warm plan cache + backend LUTs
        if reference is None:
            reference = res.outputs
        else:  # every tier must produce the same bytes before we time it
            for sid in (0, n_stripes - 1):
                for fb in failed:
                    assert np.array_equal(res.outputs[sid][fb], reference[sid][fb])
        decode_s[name] = _best_of(lambda: engine.repair_items(items), repeats)

    assert "numpy" in decode_s
    for name, t in decode_s.items():
        record_batch_point(
            f"ec_codec.backend_{name}.gf{w}",
            params={
                "k": k, "m": m, "f": f, "stripes": n_stripes,
                "block_symbols": block, "field_w": w, "smoke": SMOKE,
                "backend": name,
            },
            metrics={
                "decode_s": t,
                "decode_mbps": nbytes / t / 2**20,
                "vs_numpy_x": decode_s["numpy"] / t,
            },
        )
    if "native" not in decode_s:
        pytest.skip("native backend unavailable on this host (no compiler)")
    native_x = decode_s["numpy"] / decode_s["native"]
    if w == 8 and not SMOKE:
        assert native_x >= NATIVE_SPEEDUP_FLOOR, (
            f"native GF(2^8) tier only {native_x:.2f}x vs numpy"
        )
    else:
        assert native_x > 0.0


@pytest.mark.parametrize("k,m", [(6, 3), (64, 8)])
def test_encode_throughput(benchmark, k, m):
    code = get_code(k, m)
    data = stripe_inputs(k, 1 << 18)
    parity = benchmark(code.encode, data)
    assert parity.shape == (m, 1 << 18)
    attach(benchmark, data_MB=k * (1 << 18) / 2**20)


@pytest.mark.parametrize("k,m,f", [(6, 3, 3), (64, 8, 8)])
def test_decode_throughput(benchmark, k, m, f):
    code = get_code(k, m)
    data = stripe_inputs(k, 1 << 17, seed=1)
    stripe = code.encode_stripe(data)
    dead = list(range(f))
    avail = {i: stripe[i] for i in range(f, k + m)}

    out = benchmark(code.decode, avail, dead)
    for d in dead:
        assert np.array_equal(out[d], stripe[d])


def test_repair_matrix_setup_cost(benchmark):
    """Repair-matrix computation for a wide stripe, cache-cold each round."""
    code = get_code(64, 16)

    def run():
        code._repair_cache.clear()
        return code.repair_matrix(list(range(16, 80)), list(range(8)))

    r = benchmark(run)
    assert r.shape == (8, 64)


def test_repair_matrix_cache_hit(benchmark):
    code = get_code(64, 16)
    code.repair_matrix(list(range(16, 80)), list(range(8)))  # warm
    r = benchmark(code.repair_matrix, list(range(16, 80)), list(range(8)))
    assert r.shape == (8, 64)
