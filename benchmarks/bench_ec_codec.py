"""Reed-Solomon codec throughput benchmarks."""

import numpy as np
import pytest

from benchmarks.conftest import attach
from repro.ec.rs import get_code


def stripe_inputs(k, block_bytes, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(k, block_bytes), dtype=np.uint8)


@pytest.mark.parametrize("k,m", [(6, 3), (64, 8)])
def test_encode_throughput(benchmark, k, m):
    code = get_code(k, m)
    data = stripe_inputs(k, 1 << 18)
    parity = benchmark(code.encode, data)
    assert parity.shape == (m, 1 << 18)
    attach(benchmark, data_MB=k * (1 << 18) / 2**20)


@pytest.mark.parametrize("k,m,f", [(6, 3, 3), (64, 8, 8)])
def test_decode_throughput(benchmark, k, m, f):
    code = get_code(k, m)
    data = stripe_inputs(k, 1 << 17, seed=1)
    stripe = code.encode_stripe(data)
    dead = list(range(f))
    avail = {i: stripe[i] for i in range(f, k + m)}

    out = benchmark(code.decode, avail, dead)
    for d in dead:
        assert np.array_equal(out[d], stripe[d])


def test_repair_matrix_setup_cost(benchmark):
    """Repair-matrix computation for a wide stripe, cache-cold each round."""
    code = get_code(64, 16)

    def run():
        code._repair_cache.clear()
        return code.repair_matrix(list(range(16, 80)), list(range(8)))

    r = benchmark(run)
    assert r.shape == (8, 64)


def test_repair_matrix_cache_hit(benchmark):
    code = get_code(64, 16)
    code.repair_matrix(list(range(16, 80)), list(range(8)))  # warm
    r = benchmark(code.repair_matrix, list(range(16, 80)), list(range(8)))
    assert r.shape == (8, 64)
