"""Experiment 1 / Figure 8 bench: CR vs IR vs HMBR across (k, m, f) and WLDs.

Asserts the paper's headline claims: HMBR never loses, IR beats CR under a
2x gap, and the reductions at (64, 8, 8) under WLD-8x are substantial.
"""

import pytest

from benchmarks.conftest import attach
from repro.experiments.exp1 import run as run_exp1


GRID = [(6, 3, 2), (12, 4, 4), (32, 8, 8), (64, 8, 8)]


def test_exp1_grid(benchmark):
    rows = benchmark.pedantic(
        run_exp1,
        kwargs={"grid": GRID, "wlds": ["WLD-2x", "WLD-4x", "WLD-8x"], "seeds": (2023, 2024)},
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row["hmbr"] <= min(row["cr"], row["ir"]) + 1e-9, row
    # IR wins under the 2x gap for every configuration (paper's observation)
    for row in rows:
        if row["wld"] == "WLD-2x":
            assert row["ir"] < row["cr"], row
    headline = next(
        r for r in rows if r["wld"] == "WLD-8x" and r["(k,m,f)"] == "(64,8,8)"
    )
    assert headline["hmbr_vs_cr_%"] > 30
    assert headline["hmbr_vs_ir_%"] > 30
    attach(
        benchmark,
        hmbr_vs_cr_pct=headline["hmbr_vs_cr_%"],
        hmbr_vs_ir_pct=headline["hmbr_vs_ir_%"],
        paper_vs_cr_pct=57.5,
        paper_vs_ir_pct=64.8,
    )


def test_exp1_single_scenario_planning_cost(benchmark):
    """Planning + simulating one wide-stripe HMBR repair (the hot path)."""
    from repro.experiments.common import build_scenario, transfer_time

    sc = build_scenario(64, 8, 8, wld="WLD-8x", seed=2023)
    t = benchmark(transfer_time, sc.ctx, "hmbr")
    assert t > 0
    attach(benchmark, hmbr_transfer_s=t)
