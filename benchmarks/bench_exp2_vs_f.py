"""Experiment 2 / Figure 9 bench: repair time versus f under WLD-2x."""

import pytest

from benchmarks.conftest import attach
from repro.experiments.exp2 import run as run_exp2


def test_exp2_sweep(benchmark):
    rows = benchmark.pedantic(
        run_exp2,
        kwargs={"cases": {(32, 8): [2, 4, 8], (64, 16): [4, 8, 16]}, "seeds": (2023,)},
        rounds=1,
        iterations=1,
    )
    # repair time grows with f for every scheme and configuration
    for km in ("(32,8)", "(64,16)"):
        sub = [r for r in rows if r["(k,m)"] == km]
        for scheme in ("cr", "ir", "hmbr"):
            times = [r[scheme] for r in sub]
            # CR is center-bound and roughly flat; IR/HMBR must grow
            if scheme != "cr":
                assert times == sorted(times), (km, scheme, times)
    # HMBR never loses; IR beats CR under the small gap (paper's claim)
    for r in rows:
        assert r["hmbr"] <= min(r["cr"], r["ir"]) + 1e-9
        assert r["ir"] < r["cr"]
    worst = max(rows, key=lambda r: r["hmbr"])
    attach(benchmark, max_hmbr_s=worst["hmbr"], at=worst["(k,m)"] + f"/f={worst['f']}")
