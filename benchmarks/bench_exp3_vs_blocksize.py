"""Experiment 3 / Figure 10 bench: repair time versus block size, WLD-4x."""

import pytest

from benchmarks.conftest import attach
from repro.experiments.exp3 import run as run_exp3


def test_exp3_block_size_sweep(benchmark):
    rows = benchmark.pedantic(
        run_exp3,
        kwargs={
            "cases": [(64, 8, 8), (64, 16, 16)],
            "sizes_mb": [8.0, 16.0, 32.0, 64.0],
            "seeds": (2023,),
        },
        rounds=1,
        iterations=1,
    )
    for case in ("(64,8,8)", "(64,16,16)"):
        sub = sorted((r for r in rows if r["(k,m,f)"] == case), key=lambda r: r["block_mb"])
        for scheme in ("cr", "ir", "hmbr"):
            times = [r[scheme] for r in sub]
            # linear growth in block size (paper: "increases with block size")
            assert times == sorted(times)
            assert times[-1] == pytest.approx(times[0] * 8, rel=0.1)
        # the gaps stay stable: HMBR's relative win is size-independent
        ratios = [r["hmbr"] / r["ir"] for r in sub]
        assert max(ratios) - min(ratios) < 0.12
        for r in sub:
            assert r["hmbr"] <= min(r["cr"], r["ir"]) + 1e-9
    attach(benchmark, hmbr_64mb_s=rows[-1]["hmbr"])
