"""Experiment 4 / Figure 11 bench: HMBR vs rack-aware HMBR.

Reduced to (32, 8) stripes (the paper uses (64, 8)/(64, 16); tree building
on k=64 is the expensive part) with racks of 8 and 1/5 cross-rack caps.
Asserts the direction (rack-aware wins) and the cross-traffic mechanism
(rack-aware ships ~f x racks cross blocks, overtaking plain CR's k at
f = rack size).
"""

import pytest

from benchmarks.conftest import attach
from repro.experiments.exp4 import run as run_exp4


def test_exp4_rack_aware(benchmark):
    rows = benchmark.pedantic(
        run_exp4,
        kwargs={"cases": {(32, 8): [2, 4, 8]}, "rack_size": 8, "seeds": (2023,)},
        rounds=1,
        iterations=1,
    )
    for r in rows:
        assert r["rack_hmbr"] <= r["hmbr"] + 1e-9, r
    by_f = {r["f"]: r for r in rows}
    # mechanism check: rack-aware cross traffic grows with f (f intermediates
    # per rack) while plain HMBR's stays ~proportional to k
    assert by_f[8]["cross_mb_rack"] > by_f[2]["cross_mb_rack"] * 2
    attach(
        benchmark,
        reduction_f2_pct=by_f[2]["reduction_%"],
        reduction_f8_pct=by_f[8]["reduction_%"],
        paper_mean_pct=33.9,
        paper_max_pct=55.3,
    )


def test_exp4_tree_construction_cost(benchmark):
    """Tree-IR planning cost for a wide stripe (the scaling-relevant path)."""
    from repro.experiments.common import build_scenario
    from repro.repair.rackaware import plan_tree_independent

    sc = build_scenario(64, 8, 4, wld="WLD-2x", seed=2023, rack_size=8, cross_factor=5.0)
    plan = benchmark(plan_tree_independent, sc.ctx)
    assert len(plan.tasks) == 4 * 64  # f trees x k edges
