"""Experiment 5 / Figure 12 bench: multi-node repair ± the LFS+LRS scheduler.

The ``batched`` variants exercise the same multi-stripe node-failure shape
through the batched data plane: a coordinator twin (per-stripe vs batched
dispatch, bit-exact by assertion) and pattern-grouped ``plan_multi_node``
planning.  Both record perf-trajectory points into ``BENCH_batch.json``;
``BENCH_SMOKE=1`` shrinks them for CI.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import attach, record_batch_point
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import get_code
from repro.experiments.exp5 import run as run_exp5
from repro.system.coordinator import Coordinator

SMOKE = os.environ.get("BENCH_SMOKE") == "1"


def test_exp5_multinode_scheduling(benchmark):
    rows = benchmark.pedantic(
        run_exp5,
        kwargs={
            "cases": [(32, 8, 4), (64, 8, 8)],
            "seeds": (2023,),
            "n_stripes": 16,
        },
        rounds=1,
        iterations=1,
    )
    wide = next(r for r in rows if r["(k,m,f)"] == "(64,8,8)")
    # the scheduler must spread center load and pay off on wide stripes
    assert wide["max_center_load_enh"] <= wide["max_center_load_base"]
    assert wide["reduction_%"] > 5.0
    attach(
        benchmark,
        wide_reduction_pct=wide["reduction_%"],
        paper_mean_pct=10.9,
        paper_max_pct=15.9,
    )


# --------------------------------------------------------------------- #
# batched variants
# --------------------------------------------------------------------- #
def _build_coordinator(block_bytes, n_stripes, seed=0, k=8, m=4):
    nodes = [Node(i, rack=i % 4, uplink=1.0, downlink=1.0) for i in range(20)]
    coord = Coordinator(Cluster(nodes), get_code(k, m, 8), block_bytes=block_bytes, rng=seed)
    for j in range(6):
        coord.add_spare(Node(100 + j, rack=j % 4, uplink=1.0, downlink=1.0))
    rng = np.random.default_rng(seed + 1)
    payload = rng.integers(0, 256, size=n_stripes * k * block_bytes, dtype=np.uint8)
    coord.write("f", payload.tobytes())
    return coord


def test_exp5_batched_node_repair_data_plane():
    """Whole-node repair through the coordinator: batched dispatch must stay
    bit-exact with the per-stripe plane while grouping stripes per pattern."""
    block = (1 << 12) if SMOKE else (1 << 16)
    n_stripes = 8 if SMOKE else 24
    repeats = 1 if SMOKE else 3

    def run_once(batched):
        coord = _build_coordinator(block, n_stripes)
        coord.crash_node(3)
        t0 = time.perf_counter()
        report = coord.repair(scheme="hmbr", verify=False, batched=batched)
        return time.perf_counter() - t0, coord, report

    runs_single = [run_once(False) for _ in range(repeats)]
    runs_batch = [run_once(True) for _ in range(repeats)]
    t_single = min(r[0] for r in runs_single)
    t_batch, coord_b, rb = min(runs_batch, key=lambda r: r[0])
    coord_a = runs_single[0][1]
    assert coord_a.read("f") == coord_b.read("f")
    assert rb.batched and rb.pattern_groups >= 1
    assert rb.plan_cache_stats["misses"] >= 1
    record_batch_point(
        "exp5.batched_node_repair",
        params={
            "k": 8, "m": 4, "stripes": n_stripes,
            "block_bytes": block, "scheme": "hmbr", "smoke": SMOKE,
        },
        metrics={
            "per_stripe_s": t_single,
            "batched_s": t_batch,
            "speedup_x": t_single / t_batch,
            "pattern_groups": rb.pattern_groups,
            "plan_misses": rb.plan_cache_stats["misses"],
        },
    )


def test_exp5_batched_plan_grouping():
    """Pattern-grouped multi-node planning on the exp5 scenario: grouping
    must cover the same stripes and warm exactly one plan per group."""
    from repro.cluster.bandwidth import make_wld
    from repro.cluster.placement import place_stripes_random
    from repro.repair.batch import PlanCache
    from repro.repair.multinode import plan_multi_node

    k, m, n_dead = (8, 4, 2) if SMOKE else (32, 8, 4)
    n_data, n_stripes = (16, 8) if SMOKE else (48, 24)
    ds = make_wld(n_data + n_dead, "WLD-4x", seed=2023)
    cluster = Cluster(
        [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(n_data + n_dead)]
    )
    code = get_code(k, m)
    layout = place_stripes_random(
        cluster, n_stripes, k, m, rng=2023, candidates=list(range(n_data))
    )
    rng = np.random.default_rng(2023 + 13)
    dead = sorted(int(x) for x in rng.choice(n_data, size=n_dead, replace=False))
    cluster.fail_nodes(dead)
    replacement_of = {d: n_data + i for i, d in enumerate(dead)}

    t0 = time.perf_counter()
    merged_plain, jobs_plain = plan_multi_node(cluster, code, layout, dead, replacement_of)
    t_plain = time.perf_counter() - t0
    cache = PlanCache()
    t0 = time.perf_counter()
    merged_grp, jobs_grp = plan_multi_node(
        cluster, code, layout, dead, replacement_of,
        group_patterns=True, plan_cache=cache,
    )
    t_grouped = time.perf_counter() - t0

    groups = merged_grp.meta["pattern_groups"]
    assert sorted(j.stripe_id for j in jobs_plain) == sorted(j.stripe_id for j in jobs_grp)
    assert groups and sum(len(g["stripes"]) for g in groups) == len(jobs_grp)
    assert merged_grp.meta["plan_cache"]["misses"] == len(groups) == len(cache)
    record_batch_point(
        "exp5.batched_plan_grouping",
        params={
            "k": k, "m": m, "n_dead": n_dead, "stripes": n_stripes, "smoke": SMOKE,
        },
        metrics={
            "plan_plain_s": t_plain,
            "plan_grouped_s": t_grouped,
            "pattern_groups": len(groups),
            "stripes_per_group": len(jobs_grp) / len(groups),
        },
    )
