"""Experiment 5 / Figure 12 bench: multi-node repair ± the LFS+LRS scheduler."""

import pytest

from benchmarks.conftest import attach
from repro.experiments.exp5 import run as run_exp5


def test_exp5_multinode_scheduling(benchmark):
    rows = benchmark.pedantic(
        run_exp5,
        kwargs={
            "cases": [(32, 8, 4), (64, 8, 8)],
            "seeds": (2023,),
            "n_stripes": 16,
        },
        rounds=1,
        iterations=1,
    )
    wide = next(r for r in rows if r["(k,m,f)"] == "(64,8,8)")
    # the scheduler must spread center load and pay off on wide stripes
    assert wide["max_center_load_enh"] <= wide["max_center_load_base"]
    assert wide["reduction_%"] > 5.0
    attach(
        benchmark,
        wide_reduction_pct=wide["reduction_%"],
        paper_mean_pct=10.9,
        paper_max_pct=15.9,
    )
