"""Experiment 6 / Table II bench: transfer vs other time breakdown."""

import pytest

from benchmarks.conftest import attach
from repro.experiments.exp6 import run as run_exp6


def test_exp6_breakdown(benchmark):
    rows = benchmark.pedantic(
        run_exp6,
        kwargs={"cases": [(32, 4), (64, 8)], "test_block_bytes": 1 << 16},
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 6
    fracs = [r["T_t_frac_%"] for r in rows]
    # paper: transfer dominates, ~87.5% on average
    assert sum(fracs) / len(fracs) > 75.0
    for r in rows:
        assert r["T_t_frac_%"] > 60.0, r
    hmbr64 = next(r for r in rows if r["scheme"] == "HMBR" and r["(k,m)"] == "(64,8)")
    cr64 = next(r for r in rows if r["scheme"] == "CR" and r["(k,m)"] == "(64,8)")
    ir64 = next(r for r in rows if r["scheme"] == "IR" and r["(k,m)"] == "(64,8)")
    assert hmbr64["T_t_s"] < min(cr64["T_t_s"], ir64["T_t_s"])
    attach(
        benchmark,
        mean_transfer_fraction_pct=sum(fracs) / len(fracs),
        paper_mean_pct=87.5,
        hmbr_64_8_T_t=hmbr64["T_t_s"],
        paper_hmbr_64_8_T_t=8.64,
    )
