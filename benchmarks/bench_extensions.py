"""Benches for the extensions beyond the paper's evaluation.

* §VII dynamic bandwidth workloads (stale vs dynamics-aware split),
* single-block baselines (star / chain-RP / PPR) across stripe widths,
* the MTTDL durability pay-off of faster multi-block repair,
* automatic scheme selection,
* load-balance profile of the three schemes.
"""

import numpy as np
import pytest

from benchmarks.conftest import attach
from repro.analysis.reliability import scheme_mttdl_comparison
from repro.analysis.traffic import compare_load_balance
from repro.experiments.common import build_scenario, plan_for, transfer_time
from repro.experiments.exp_dynamic import run as run_dynamic
from repro.repair.selector import choose_scheme
from repro.repair.singleblock import SINGLE_BLOCK_SCHEMES
from repro.simnet.fluid import FluidSimulator


def test_dynamic_workloads(benchmark):
    rows = benchmark.pedantic(
        run_dynamic, kwargs={"cases": [(16, 8, 4)], "seeds": (2023, 2024)},
        rounds=1, iterations=1,
    )
    row = rows[0]
    assert row["hmbr_aware"] <= row["hmbr_stale"] + 1e-9
    attach(benchmark, aware_gain_pct=row["aware_gain_%"])


@pytest.mark.parametrize("k", [8, 64])
def test_single_block_schemes(benchmark, k):
    sc = build_scenario(k, 4, 1, wld="WLD-4x", seed=2023)
    sim = FluidSimulator(sc.cluster)

    def run():
        return {
            name: sim.run(planner(sc.ctx).tasks).makespan
            for name, planner in SINGLE_BLOCK_SCHEMES.items()
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    assert times["chain"] <= times["star"]
    attach(benchmark, **{f"{n}_s": t for n, t in times.items()})


def test_durability_payoff(benchmark):
    """Faster HMBR repairs buy measurable MTTDL over CR/IR."""

    def run():
        times = {"cr": {}, "ir": {}, "hmbr": {}}
        for f in range(1, 5):
            sc = build_scenario(16, 4, f, wld="WLD-8x", seed=2023)
            for scheme in times:
                times[scheme][f] = transfer_time(sc.ctx, scheme)
        return scheme_mttdl_comparison(16, 4, times, node_mttf_hours=5_000.0)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert out["hmbr"].mttdl_hours >= max(out["cr"].mttdl_hours, out["ir"].mttdl_hours)
    attach(
        benchmark,
        hmbr_mttdl_years=out["hmbr"].mttdl_years,
        cr_mttdl_years=out["cr"].mttdl_years,
        ir_mttdl_years=out["ir"].mttdl_years,
    )


def test_scheme_selector(benchmark):
    sc = build_scenario(32, 8, 4, wld="WLD-8x", seed=2023)
    choice = benchmark.pedantic(choose_scheme, args=(sc.ctx,), rounds=1, iterations=1)
    assert choice.predicted_s == min(choice.candidates.values())
    attach(benchmark, chosen=choice.scheme, predicted_s=choice.predicted_s)


def test_load_balance_profiles(benchmark):
    sc = build_scenario(32, 8, 8, wld="WLD-2x", seed=2023)

    def run():
        plans = [plan_for(sc.ctx, s) for s in ("cr", "ir", "hmbr")]
        return compare_load_balance(plans)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by = {r["scheme"]: r for r in rows}
    assert by["IR"]["recv_gini"] < by["CR"]["recv_gini"]
    attach(
        benchmark,
        cr_recv_gini=by["CR"]["recv_gini"],
        ir_recv_gini=by["IR"]["recv_gini"],
        hmbr_recv_gini=by["HMBR"]["recv_gini"],
    )
