"""Fluid network-simulator scaling benchmarks."""

import numpy as np
import pytest

from benchmarks.conftest import attach
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.simnet.flows import Flow, PipelineFlow
from repro.simnet.fluid import FluidSimulator


def random_cluster(n, seed=0):
    rng = np.random.default_rng(seed)
    return Cluster(
        [Node(i, float(rng.uniform(25, 200)), float(rng.uniform(25, 200))) for i in range(n)]
    )


@pytest.mark.parametrize("n_flows", [50, 500])
def test_flow_fanout_scaling(benchmark, n_flows):
    cluster = random_cluster(100)
    rng = np.random.default_rng(1)
    tasks = []
    for i in range(n_flows):
        a, b = rng.choice(100, size=2, replace=False)
        tasks.append(Flow(f"f{i}", int(a), int(b), float(rng.uniform(1, 64))))
    sim = FluidSimulator(cluster)
    res = benchmark(sim.run, tasks)
    assert res.makespan > 0
    attach(benchmark, rate_updates=res.n_rate_updates)


def test_wide_stripe_hmbr_simulation(benchmark):
    """Simulating one (64, 16, 16) HMBR plan — the heaviest single-stripe case."""
    from repro.experiments.common import build_scenario, plan_for

    sc = build_scenario(64, 16, 16, wld="WLD-8x", seed=2023)
    plan = plan_for(sc.ctx, "hmbr")
    sim = FluidSimulator(sc.cluster)
    res = benchmark(sim.run, plan.tasks)
    assert res.makespan > 0


def test_pipeline_heavy_simulation(benchmark):
    """Many long chains (IR-style) through a shared cluster."""
    cluster = random_cluster(80, seed=2)
    rng = np.random.default_rng(3)
    tasks = []
    for i in range(16):
        path = rng.choice(80, size=30, replace=False)
        tasks.append(PipelineFlow(f"p{i}", tuple(int(x) for x in path), 64.0))
    sim = FluidSimulator(cluster)
    res = benchmark(sim.run, tasks)
    assert res.makespan > 0
