"""GF(2^8) kernel microbenchmarks (the ISA-L replacement's hot loops)."""

import numpy as np
import pytest

from benchmarks.conftest import attach
from repro.gf.field import GF, gf8
from repro.gf.matrix import gf_inv, gf_matmul

BUF_MB = 4
BUF = np.random.default_rng(0).integers(0, 256, size=BUF_MB << 20, dtype=np.uint8)
BUF2 = np.random.default_rng(1).integers(0, 256, size=BUF_MB << 20, dtype=np.uint8)


def test_scale_throughput(benchmark):
    out = benchmark(gf8.scale, 137, BUF)
    assert out.shape == BUF.shape
    mbps = BUF_MB / benchmark.stats["mean"]
    attach(benchmark, throughput_MBps=mbps)


def test_addmul_throughput(benchmark):
    dst = BUF2.copy()

    def run():
        gf8.addmul(dst, 71, BUF)

    benchmark(run)
    attach(benchmark, throughput_MBps=BUF_MB / benchmark.stats["mean"])


def test_combine_k_blocks(benchmark):
    """One decoded output from k=16 inputs of 256 KiB (a repair combine)."""
    rng = np.random.default_rng(2)
    blocks = [rng.integers(0, 256, size=1 << 18, dtype=np.uint8) for _ in range(16)]
    coeffs = list(range(1, 17))
    out = benchmark(gf8.combine, coeffs, blocks)
    assert out.size == 1 << 18
    attach(benchmark, inputs=16, input_bytes_total=16 << 18)


def test_matrix_inverse_wide_stripe(benchmark):
    """Inverting the 64x64 survivor submatrix (repair-plan setup cost)."""
    rng = np.random.default_rng(3)
    from repro.ec.matrices import systematic_cauchy_generator

    g = systematic_cauchy_generator(64, 16)
    rows = rng.choice(80, size=64, replace=False)
    a = g[sorted(rows)]
    inv = benchmark(gf_inv, a, gf8)
    eye = gf_matmul(a, inv, gf8)
    assert (np.diag(eye) == 1).all()


def test_gf16_scale_throughput(benchmark):
    f16 = GF(16)
    buf = np.random.default_rng(4).integers(0, 65536, size=1 << 20, dtype=np.uint16)
    out = benchmark(f16.scale, 12345, buf)
    assert out.shape == buf.shape
