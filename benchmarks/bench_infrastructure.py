"""Infrastructure benchmarks: probing, churn simulation, export, selectors."""

import numpy as np
import pytest

from benchmarks.conftest import attach
from repro.cluster.bandwidth import make_wld
from repro.cluster.node import Node
from repro.cluster.probing import measure_bandwidths
from repro.cluster.timeseries import bandwidth_trace_events
from repro.cluster.topology import Cluster
from repro.simnet.flows import Flow
from repro.simnet.fluid import FluidSimulator
from repro.simnet.viz import ascii_gantt, to_json


def test_probe_full_cluster(benchmark):
    """Measuring the bandwidth table of an 89-node cluster (2 probes/node)."""
    ds = make_wld(88, "WLD-4x", seed=0)
    nodes = [Node(0, 10_000.0, 10_000.0)]
    nodes += [Node(i + 1, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(88)]
    cluster = Cluster(nodes)
    table = benchmark(measure_bandwidths, cluster, 0)
    assert len(table) == 88
    attach(benchmark, nodes_probed=len(table))


def test_simulation_under_ou_churn(benchmark):
    """A 20-flow workload under 60 s of per-second OU bandwidth events."""
    cl = Cluster([Node(i, 100.0, 100.0) for i in range(20)])
    events = bandwidth_trace_events(cl, duration_s=60.0, step_s=1.0, rel_sigma=0.25, rng=1)
    rng = np.random.default_rng(2)
    flows = []
    for i in range(20):
        a, b = rng.choice(20, size=2, replace=False)
        flows.append(Flow(f"f{i}", int(a), int(b), float(rng.uniform(16, 128))))
    sim = FluidSimulator(cl)
    res = benchmark(sim.run, flows, events)
    assert res.makespan > 0
    attach(benchmark, events=len(events), rate_updates=res.n_rate_updates)


def test_gantt_and_json_rendering(benchmark):
    from repro.experiments.common import build_scenario, plan_for

    sc = build_scenario(32, 8, 4, wld="WLD-4x", seed=2023)
    plan = plan_for(sc.ctx, "hmbr")
    res = FluidSimulator(sc.ctx.cluster).run(plan.tasks, record_trace=True)

    def render():
        return ascii_gantt(res, plan.tasks), to_json(res, plan.tasks)

    chart, blob = benchmark(render)
    assert "#" in chart and '"makespan_s"' in blob


def test_rebalance_throughput(benchmark):
    from repro.cluster.bandwidth import make_wld
    from repro.ec.rs import RSCode
    from repro.system.coordinator import Coordinator

    def cycle():
        ds = make_wld(20, "WLD-2x", seed=3)
        cluster = Cluster(
            [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(16)]
        )
        coord = Coordinator(cluster, RSCode(4, 2), block_bytes=4096, rng=3)
        for j in range(4):
            coord.add_spare(Node(16 + j, float(ds.uplinks[16 + j]), float(ds.downlinks[16 + j])))
        payload = np.random.default_rng(3).integers(0, 256, 200_000, dtype=np.uint8).tobytes()
        coord.write("f", payload)
        coord.crash_node(coord.layout.stripes[0].placement[0])
        coord.repair()
        return coord.rebalance()

    stats = benchmark.pedantic(cycle, rounds=3, iterations=1)
    attach(benchmark, moves=stats["moves"])
