"""Parallel repair data-plane bench: pooled decode versus the serial engine.

The headline test repairs a 16-stripe same-pattern batch (f=4, GF(2^16))
three ways — the per-stripe serial decode the non-batched data plane runs,
the inline :class:`~repro.repair.batch.BatchRepairEngine`, and the pooled
:class:`~repro.parallel.ParallelRepairEngine` at ``workers=4`` — asserts
the pooled output bit-exact against the serial one, and requires the pool
to finish >= 2x faster than the per-stripe baseline (full mode).  A second
test records the deterministic chunk-pipelining model's savings.  Points
land in ``BENCH_parallel.json`` (suite ``parallel-repair-data-plane``),
validated by ``tools/check_bench_schema.py`` in CI.

Plain test functions (no pytest-benchmark fixture) so the smoke job can run
them without the plugin installed; ``BENCH_SMOKE=1`` shrinks the shape and
drops the speedup floor.
"""

import os
import time

import numpy as np

from benchmarks.conftest import record_parallel_point, set_parallel_env
from repro.ec.rs import get_code
from repro.parallel import ParallelRepairEngine, pipeline_schedule
from repro.repair.batch import BatchRepairEngine, StripeBatchItem

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

W = 16
K, M = (8, 4) if SMOKE else (64, 8)
F = 4
N_STRIPES = 16
BLOCK = (1 << 12) if SMOKE else (1 << 14)
WORKERS = 2 if SMOKE else 4
REPEATS = 1 if SMOKE else 2


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _make_batch(code, seed=20230717):
    """N_STRIPES same-pattern stripes plus their survivors/failed lists."""
    rng = np.random.default_rng(seed)
    failed = [1, 4, 6, 11][:F]
    survivors = [i for i in range(code.n) if i not in failed][: code.k]
    stripes = []
    for _ in range(N_STRIPES):
        data = rng.integers(0, code.field.size, size=(code.k, BLOCK)).astype(
            code.field.dtype
        )
        stripes.append(code.encode_stripe(data))
    items = [
        StripeBatchItem(
            stripe_id=sid,
            survivors=tuple(survivors),
            failed=tuple(failed),
            sources=[s[i] for i in survivors],
        )
        for sid, s in enumerate(stripes)
    ]
    return stripes, survivors, failed, items


def test_pooled_decode_speedup_vs_serial():
    """The acceptance gate: pooled workers=4 beats per-stripe serial >= 2x.

    The per-stripe baseline is what ``Coordinator.repair(batched=False)``
    runs for each stripe — ``code.decode`` rebuilding the GF(2^16) scale
    LUTs per call.  The pool amortizes those LUTs across one plane matmul
    per pattern group, which is where the wall-clock win comes from even on
    a single core; the inline batched engine is recorded alongside so the
    trajectory shows both effects.
    """
    code = get_code(K, M, W)
    stripes, survivors, failed, items = _make_batch(code)

    def per_stripe():
        return [
            code.decode({i: s[i] for i in survivors}, list(failed)) for s in stripes
        ]

    serial_engine = BatchRepairEngine(code)
    with ParallelRepairEngine(code, workers=WORKERS) as engine:
        # Warm every path (field tables, plan caches, forked workers) and
        # pin bit-exactness before timing anything.
        expected = per_stripe()
        serial_engine.repair_items(items)
        res = engine.repair_items(items)
        for sid in range(N_STRIPES):
            for fb in failed:
                assert np.array_equal(res.outputs[sid][fb], expected[sid][fb])

        t_single = _best_of(per_stripe, REPEATS)
        t_inline = _best_of(lambda: serial_engine.repair_items(items), REPEATS)
        t_pooled = _best_of(lambda: engine.repair_items(items), REPEATS)
        stats = engine.stats()
        set_parallel_env(backend=stats["backend"])

    speedup = t_single / t_pooled
    record_parallel_point(
        f"parallel.pooled_decode.gf{W}",
        params={
            "k": K, "m": M, "f": F, "stripes": N_STRIPES,
            "block_symbols": BLOCK, "field_w": W, "workers": WORKERS,
            "smoke": SMOKE,
        },
        metrics={
            "per_stripe_s": t_single,
            "batched_inline_s": t_inline,
            "pooled_s": t_pooled,
            "speedup_x": speedup,
            "pool_dispatches": stats["pool_dispatches"],
            "worker_utilization": stats["pool_utilization"],
        },
    )
    if SMOKE:
        assert speedup > 0.0
    else:
        assert speedup >= 2.0, f"pooled repair only {speedup:.2f}x vs per-stripe"


def test_pipeline_model_savings():
    """Chunk pipelining: staggered flow landings overlap decode with
    transfer, so the pipelined makespan beats the wave barrier."""
    n = N_STRIPES
    ready = [0.25 * i for i in range(n)]
    cost = [1.0] * n
    rep = pipeline_schedule(list(range(n)), ready, cost, workers=WORKERS)
    assert rep.makespan_s < rep.barrier_makespan_s
    assert rep.saved_s > 0.0
    record_parallel_point(
        "parallel.pipeline_model",
        params={"items": n, "workers": WORKERS, "smoke": SMOKE},
        metrics={
            "pipelined_makespan_s": rep.makespan_s,
            "barrier_makespan_s": rep.barrier_makespan_s,
            "saved_s": rep.saved_s,
            "speedup_x": rep.barrier_makespan_s / rep.makespan_s,
        },
    )
