"""Durability-simulator bench: HMBR's nines advantage and the fast path.

Two claims ride in ``BENCH_reliability.json`` (suite
``reliability-simulator``, validated by ``tools/check_bench_schema.py``):

* **nines ordering** — under the correlated rack-outage model on common
  random numbers, HMBR's faster multi-block repair buys strictly more
  durability nines than CR (and never fewer than IR).  The
  ``reliability.nines`` point carries per-scheme nines / lost stripes /
  P(loss by horizon); the schema check enforces
  ``nines_hmbr > nines_cr``.
* **fast-path speedup** — the metadata-only calibrated simulation at 10k
  stripes versus the byte-materializing exact simulation of the *same
  spec* (per-event twins that encode real payloads and run full byte
  repairs).  The wall-clock ratio lands both as the
  ``reliability.fastpath`` point's ``speedup_x`` and as
  ``fastpath_speedup_x`` in the artifact's env metadata; the full-size
  run must clear 50x (not asserted under ``BENCH_SMOKE=1`` — shared
  runners jitter and shrink sizes).

All simulated quantities (nines, MTTDL, loss curves) are deterministic;
only the speedup is wall clock.  Plain test functions, no pytest-benchmark
fixture, so the smoke job runs without the plugin.
"""

import dataclasses
import os
import time

from benchmarks.conftest import record_reliability_point, set_reliability_env
from repro.reliability import ReliabilitySimulator, ReliabilitySpec

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

#: the paper-flavored wide-ish configuration the nines curves are pinned on.
NINES_SPEC = ReliabilitySpec(
    k=8,
    m=2,
    n_nodes=40,
    rack_size=8,
    n_spares=8,
    n_stripes=1000 if SMOKE else 2000,
    node_mttf_hours=2000.0,
    burst_rate_per_year=20.0,
    burst_loss_fraction=0.25,
    horizon_years=5.0,
    n_trials=2 if SMOKE else 4,
)

#: the fast-path speedup configuration (10k stripes full-size).
FASTPATH_SPEC = ReliabilitySpec(
    k=6,
    m=2,
    scheme="hmbr",
    n_nodes=24,
    rack_size=6,
    n_spares=6,
    n_stripes=1000 if SMOKE else 10_000,
    node_mttf_hours=3000.0,
    burst_rate_per_year=8.0,
    horizon_years=0.5 if SMOKE else 3.0,
    n_trials=1,
    twin_stripe_cap=48,
)


def _params(spec: ReliabilitySpec) -> dict:
    return {
        "k": spec.k,
        "m": spec.m,
        "n_nodes": spec.n_nodes,
        "n_stripes": spec.n_stripes,
        "n_trials": spec.n_trials,
        "horizon_years": spec.horizon_years,
        "seed": spec.seed,
        "smoke": SMOKE,
    }


def test_nines_ordering_across_schemes():
    """HMBR ≥ IR ≥ CR nines on the identical failure history."""
    metrics = {}
    lost = {}
    for scheme in ("cr", "ir", "hmbr"):
        spec = dataclasses.replace(NINES_SPEC, scheme=scheme)
        t0 = time.perf_counter()
        rep = ReliabilitySimulator(spec).run()
        wall = time.perf_counter() - t0
        lost[scheme] = sum(t.stripes_lost for t in rep.trials)
        metrics[f"nines_{scheme}"] = rep.durability_nines
        metrics[f"lost_{scheme}"] = lost[scheme]
        metrics[f"p_loss_horizon_{scheme}"] = rep.p_loss[-1]
        metrics[f"wall_s_{scheme}"] = wall
        if rep.mttdl_years is not None:
            metrics[f"mttdl_years_{scheme}"] = rep.mttdl_years
    assert metrics["nines_hmbr"] >= metrics["nines_ir"] >= metrics["nines_cr"]
    assert metrics["nines_hmbr"] > metrics["nines_cr"], (
        "HMBR must buy strictly more nines than CR at these rates"
    )
    assert lost["hmbr"] < lost["cr"]
    record_reliability_point("reliability.nines", _params(NINES_SPEC), metrics)
    set_reliability_env(
        nines_hmbr=metrics["nines_hmbr"],
        nines_cr=metrics["nines_cr"],
    )


def test_fastpath_speedup_over_byte_materializing():
    """Calibrated metadata simulation vs byte-materializing exact twin sim."""
    t0 = time.perf_counter()
    fast = ReliabilitySimulator(FASTPATH_SPEC).run()
    t_fast = time.perf_counter() - t0

    bytes_spec = dataclasses.replace(
        FASTPATH_SPEC, timing="exact", materialize=True
    )
    t0 = time.perf_counter()
    ReliabilitySimulator(bytes_spec).run()
    t_bytes = time.perf_counter() - t0

    speedup = t_bytes / t_fast
    n_repairs = sum(t.n_repairs for t in fast.trials)
    record_reliability_point(
        "reliability.fastpath",
        _params(FASTPATH_SPEC),
        {
            "speedup_x": speedup,
            "fast_wall_s": t_fast,
            "bytes_wall_s": t_bytes,
            "repairs": n_repairs,
        },
    )
    set_reliability_env(fastpath_speedup_x=speedup)
    assert n_repairs > 0
    if not SMOKE:
        assert speedup >= 50.0, (
            f"metadata fast path only {speedup:.1f}x faster than "
            "byte-materializing simulation (floor: 50x)"
        )
