"""Concurrent repair-scheduler bench: throughput versus admitted concurrency.

Jobs repair disjoint stripe groups placed on disjoint node sets
(contention-free), so admitting ``c`` jobs per wave should cut the
aggregate simulated makespan roughly ``c``-fold — waves serialize on the
scheduler's global clock, flows within a wave run in parallel.  The bench
sweeps the ``max_inflight_total`` admission cap over 1/2/4 and records
jobs/sec (on simulated time) and aggregate makespan per concurrency level
into ``BENCH_sched.json`` (suite ``concurrent-repair-scheduler``), the
artifact CI validates with ``tools/check_bench_schema.py`` and uploads.

Plain test functions (no pytest-benchmark fixture) so the smoke job can run
them without the plugin installed; ``BENCH_SMOKE=1`` shrinks the shape.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import record_sched_point
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.ec.stripe import Stripe, block_name
from repro.sched.admission import AdmissionPolicy
from repro.sched.scheduler import RepairScheduler
from repro.system.coordinator import Coordinator

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

K, M = 4, 2
WIDTH = K + M
N_JOBS = 4
STRIPES_PER_JOB = 1 if SMOKE else 4
BLOCK_BYTES = 1 << 10 if SMOKE else 1 << 14


def _build_contention_free(seed=0):
    """N_JOBS disjoint node groups, each holding its own stripes; one dead
    node per group so every job has work and no two jobs share a link."""
    n_data = N_JOBS * WIDTH
    nodes = [Node(i, 100.0, 100.0) for i in range(n_data)]
    coord = Coordinator(Cluster(nodes), RSCode(K, M), block_bytes=BLOCK_BYTES,
                        block_size_mb=16.0, rng=seed)
    for j in range(N_JOBS):
        coord.add_spare(Node(n_data + j, 100.0, 100.0))
    rng = np.random.default_rng(seed)
    groups = []
    for g in range(N_JOBS):
        base = g * WIDTH
        sids = []
        for _ in range(STRIPES_PER_JOB):
            blocks = rng.integers(0, 256, size=(K, BLOCK_BYTES), dtype=np.uint8)
            coded = coord.code.encode_stripe(blocks)
            sid = coord._next_stripe_id
            coord._next_stripe_id += 1
            placement = list(range(base, base + WIDTH))
            coord.layout.add(Stripe(sid, K, M, placement))
            for b, node in enumerate(placement):
                coord.agents[node].store_block(block_name(sid, b), coded[b])
            sids.append(sid)
        groups.append(sids)
    for g in range(N_JOBS):
        coord.crash_node(g * WIDTH)
    return coord, groups


def _run_at_concurrency(cap):
    coord, groups = _build_contention_free()
    sch = RepairScheduler(coord, AdmissionPolicy(
        max_inflight_per_node=None, max_inflight_total=cap))
    coord._sched = sch
    for sids in groups:
        sch.submit(stripes=sids)
    t0 = time.perf_counter()
    report = sch.run_pending(verify=not SMOKE)
    wall_s = time.perf_counter() - t0
    assert len(report.done) == N_JOBS and not report.failed
    assert report.waves == -(-N_JOBS // cap)  # ceil division
    return report, wall_s


@pytest.mark.parametrize("cap", [1, 2, 4])
def test_sched_throughput_scales_with_concurrency(cap):
    """Contention-free jobs: aggregate makespan shrinks ~cap-fold."""
    baseline, _ = _run_at_concurrency(1)
    report, wall_s = _run_at_concurrency(cap)
    speedup = baseline.makespan_s / report.makespan_s
    # disjoint footprints: concurrency must buy near-linear speedup
    assert speedup > 0.9 * cap
    record_sched_point(
        f"sched.concurrency_{cap}",
        params={
            "jobs": N_JOBS, "stripes_per_job": STRIPES_PER_JOB,
            "k": K, "m": M, "concurrency": cap,
            "block_bytes": BLOCK_BYTES, "smoke": SMOKE,
        },
        metrics={
            "aggregate_makespan_s": report.makespan_s,
            "jobs_per_sim_sec": len(report.done) / report.makespan_s,
            "waves": report.waves,
            "speedup_x": speedup,
            "wall_s": wall_s,
        },
    )


def _build_shared_group(seed=0):
    """All jobs' stripes on ONE node group: every job shares every link."""
    nodes = [Node(i, 100.0, 100.0) for i in range(WIDTH)]
    coord = Coordinator(Cluster(nodes), RSCode(K, M), block_bytes=BLOCK_BYTES,
                        block_size_mb=16.0, rng=seed)
    coord.add_spare(Node(WIDTH, 100.0, 100.0))
    rng = np.random.default_rng(seed)
    groups = []
    for _ in range(N_JOBS):
        sids = []
        for _ in range(STRIPES_PER_JOB):
            blocks = rng.integers(0, 256, size=(K, BLOCK_BYTES), dtype=np.uint8)
            coded = coord.code.encode_stripe(blocks)
            sid = coord._next_stripe_id
            coord._next_stripe_id += 1
            placement = list(range(WIDTH))
            coord.layout.add(Stripe(sid, K, M, placement))
            for b, node in enumerate(placement):
                coord.agents[node].store_block(block_name(sid, b), coded[b])
            sids.append(sid)
        groups.append(sids)
    coord.crash_node(0)
    return coord, groups


def test_sched_weighted_contention_point():
    """One contended point for the trajectory: a foreground job beats the
    background jobs it shares every link with."""
    coord, groups = _build_shared_group()
    sch = RepairScheduler(coord, AdmissionPolicy(max_inflight_per_node=None))
    coord._sched = sch
    jobs = [
        sch.submit(stripes=sids, priority="foreground" if i == 0 else "background")
        for i, sids in enumerate(groups)
    ]
    t0 = time.perf_counter()
    report = sch.run_pending(verify=not SMOKE)
    wall_s = time.perf_counter() - t0
    assert not report.failed
    slowest_bg = max(j.finish_s for j in jobs[1:])
    # 4.0 vs 0.25 weights on shared links: foreground must clearly win
    assert jobs[0].finish_s < slowest_bg
    record_sched_point(
        "sched.weighted_mix",
        params={
            "jobs": N_JOBS, "stripes_per_job": STRIPES_PER_JOB,
            "k": K, "m": M, "smoke": SMOKE,
        },
        metrics={
            "aggregate_makespan_s": report.makespan_s,
            "foreground_finish_s": jobs[0].finish_s,
            "slowest_background_finish_s": slowest_bg,
            "wall_s": wall_s,
        },
    )
