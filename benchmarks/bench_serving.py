"""Online serving-plane bench: degraded-read latency vs repair makespan.

One seeded workload (zipf reads + writes, open-loop Poisson arrivals) is
served several ways on identically-seeded fresh systems:

* **healthy** — no failures;
* **degraded** — two dead nodes, reads decode lost blocks on the fly;
* **pipeline sweep** — the same two losses at a deliberately slow decode
  (so the surcharge dominates), served at ``chunks`` in {1, 2, 4, 8}:
  the degraded-p99 / healthy-p99 ratio falls toward 1 as chunked decode
  overlaps the survivor fetches (ISSUE 7);
* **storm / weighted** — same failures plus a whole-cluster batched
  repair at background weight (0.25) against foreground flows at 4.0;
* **storm / equal** — the same storm with everything contending at 1.0.

All latencies and makespans are *simulated* seconds (deterministic; wall
clock is recorded separately), so the artifact pins the paper-level
tradeoff exactly: weighted sharing protects foreground p99
(``speedup_x = p99_equal / p99_weighted``) at the price of a longer
repair makespan (``repair_slowdown_x``).  Points land in
``BENCH_serving.json`` (suite ``online-serving-plane``), validated by
``tools/check_bench_schema.py`` and uploaded by the CI bench-smoke job.

Plain test functions (no pytest-benchmark fixture) so the smoke job can
run them without the plugin installed; ``BENCH_SMOKE=1`` shrinks the
trace.
"""

import os
import time

from benchmarks.conftest import record_serving_point
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.system.coordinator import Coordinator
from repro.system.request import RepairRequest
from repro.workload import ServingPlane, WorkloadSpec

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

K, M = 4, 2
BLOCK_BYTES = 1 << 12
N_OBJECTS = 6 if SMOKE else 10
DURATION_S = 5.0 if SMOKE else 10.0
RATE_OPS_S = 6.0 if SMOKE else 8.0

SPEC = WorkloadSpec(
    n_objects=N_OBJECTS,
    object_bytes=2 * K * BLOCK_BYTES,
    duration_s=DURATION_S,
    rate_ops_s=RATE_OPS_S,
    read_fraction=0.9,
    write_bytes=256,
    seed=20230717,
)
_PARAMS = {
    "k": K, "m": M, "block_bytes": BLOCK_BYTES, "objects": N_OBJECTS,
    "duration_s": DURATION_S, "rate_ops_s": RATE_OPS_S, "smoke": SMOKE,
}


def _serve(*, foreground_weight=4.0, kill=0, repair=(), chunks=1,
           decode_mbps=1024.0, fast_path=True):
    """One fresh seeded system serving SPEC; returns (result, wall_s)."""
    coord = Coordinator(
        Cluster([Node(i, 100.0, 100.0) for i in range(14)]),
        RSCode(K, M),
        block_bytes=BLOCK_BYTES,
        block_size_mb=48.0,
        rng=4242,
        heartbeat_timeout=5.0,
    )
    for j in range(6):
        coord.add_spare(Node(14 + j, 100.0, 100.0))
    plane = ServingPlane(
        coord, SPEC, foreground_weight=foreground_weight, chunks=chunks,
        decode_mbps=decode_mbps, fast_path=fast_path,
    )
    plane.provision()
    if kill:
        stripe0 = next(s for s in coord.layout if s.stripe_id == 0)
        for v in stripe0.placement[:kill]:
            coord.crash_node(v)
    t0 = time.perf_counter()
    res = plane.run(repair=repair)
    return res, time.perf_counter() - t0


def _point(bench, res, wall_s, **extra):
    metrics = {
        "read_p50_s": res.latency.get("p50", 0.0),
        "read_p99_s": res.latency.get("p99", 0.0),
        "degraded_p99_s": res.latency_degraded.get("p99", 0.0),
        "degraded_reads": res.degraded_reads,
        "failed_reads": res.failed_reads,
        "foreground_mb": res.foreground_bytes / 1e6,
        "makespan_s": res.makespan_s,
        "wall_s": wall_s,
    }
    metrics.update(extra)
    record_serving_point(bench, params=_PARAMS, metrics=metrics)


def test_serving_healthy_and_degraded_regimes():
    """Baselines: healthy reads, then on-the-fly decode under two losses."""
    healthy, wall_h = _serve()
    assert healthy.degraded_reads == 0 and healthy.failed_reads == 0
    _point("serving.healthy", healthy, wall_h)

    degraded, wall_d = _serve(kill=2)
    assert degraded.degraded_reads > 0 and degraded.failed_reads == 0
    # the decode surcharge shows up against the same run's healthy reads
    assert (
        degraded.latency_degraded["p99"] >= degraded.latency_healthy["p99"]
    )
    _point("serving.degraded", degraded, wall_d)


#: the pipeline sweep's chunk grid and its deliberately slow GF decode
#: (MB/s) — slow enough that the decode surcharge dominates degraded p99,
#: so overlapping it against the survivor fetches is clearly visible.
SWEEP_CHUNKS = (1, 2, 4, 8)
SWEEP_DECODE_MBPS = 16.0


def test_serving_pipeline_chunk_sweep():
    """Chunked decode closes the degraded/healthy p99 gap monotonically."""
    ratios: dict[int, float] = {}
    p99_by_chunks: dict[int, float] = {}
    saved: dict[int, float] = {}
    wall = 0.0
    for c in SWEEP_CHUNKS:
        res, wall_c = _serve(kill=2, chunks=c, decode_mbps=SWEEP_DECODE_MBPS)
        wall += wall_c
        assert res.degraded_reads > 0 and res.failed_reads == 0
        ratios[c] = res.latency_degraded["p99"] / res.latency_healthy["p99"]
        p99_by_chunks[c] = res.latency_degraded["p99"]
        saved[c] = res.pipeline_saved_s
        _point(
            f"serving.pipeline_c{c}", res, wall_c,
            chunks=c, pipeline_saved_s=res.pipeline_saved_s,
            degraded_over_healthy_p99=ratios[c],
        )
    # more chunks -> more fetch/decode overlap -> the ratio falls toward 1
    for a, b in zip(SWEEP_CHUNKS, SWEEP_CHUNKS[1:]):
        assert ratios[b] < ratios[a], f"ratio must fall: c{a}->{b}"
    assert min(ratios.values()) >= 1.0 - 1e-9, "degraded never beats healthy"
    assert saved[1] == 0.0 and all(saved[c] > 0.0 for c in SWEEP_CHUNKS[1:])

    metrics = {f"p99_ratio_c{c}": ratios[c] for c in SWEEP_CHUNKS}
    metrics.update(
        {
            # the headline: degraded p99 saved by the widest pipeline
            "speedup_x": p99_by_chunks[SWEEP_CHUNKS[0]]
            / p99_by_chunks[SWEEP_CHUNKS[-1]],
            "decode_mbps": SWEEP_DECODE_MBPS,
            "pipeline_saved_s_cmax": saved[SWEEP_CHUNKS[-1]],
            "wall_s": wall,
        }
    )
    record_serving_point("serving.chunk_sweep", params=_PARAMS, metrics=metrics)


def test_serving_storm_policy_tradeoff():
    """The artifact's headline: weighted sharing protects foreground p99."""
    storm = (RepairRequest(scheme="hmbr", batched=True, priority="background"),)
    weighted, wall_w = _serve(foreground_weight=4.0, kill=2, repair=storm)
    equal, wall_e = _serve(
        foreground_weight=1.0,
        kill=2,
        repair=(RepairRequest(scheme="hmbr", batched=True, weight=1.0),),
    )
    for res in (weighted, equal):
        assert res.repair is not None and not res.repair.failed
        assert res.degraded_reads > 0

    p99_w, p99_e = weighted.latency["p99"], equal.latency["p99"]
    rm_w = weighted.repair.jobs[0].makespan_s
    rm_e = equal.repair.jobs[0].makespan_s
    assert p99_w < p99_e, "weighted sharing must protect foreground p99"

    _point("serving.storm_weighted", weighted, wall_w, repair_makespan_s=rm_w)
    _point("serving.storm_equal", equal, wall_e, repair_makespan_s=rm_e)
    record_serving_point(
        "serving.policy_tradeoff",
        params=_PARAMS,
        metrics={
            # the protection: how much foreground p99 the weighted policy saves
            "speedup_x": p99_e / p99_w,
            # its price: how much longer the storm's repair takes for it
            "repair_slowdown_x": rm_w / rm_e,
            "p99_weighted_s": p99_w,
            "p99_equal_s": p99_e,
            "repair_makespan_weighted_s": rm_w,
            "repair_makespan_equal_s": rm_e,
            "wall_s": wall_w + wall_e,
        },
    )
