"""End-to-end storage-system benchmarks (coordinator + agents)."""

import numpy as np
import pytest

from benchmarks.conftest import attach
from repro.cluster.bandwidth import make_wld
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.system.coordinator import Coordinator


def build_system(k=16, m=4, n_data=40, n_spare=4, block_bytes=1 << 14, seed=0):
    ds = make_wld(n_data + n_spare, "WLD-4x", seed=seed)
    cluster = Cluster(
        [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(n_data)]
    )
    coord = Coordinator(cluster, RSCode(k, m), block_bytes=block_bytes, rng=seed)
    for j in range(n_spare):
        i = n_data + j
        coord.add_spare(Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])))
    return coord


def test_write_path_throughput(benchmark):
    """Client write: encode + place + distribute (real bytes)."""
    coord = build_system()
    data = np.random.default_rng(0).integers(0, 256, size=1_000_000, dtype=np.uint8).tobytes()
    counter = [0]

    def write_once():
        counter[0] += 1
        coord.write(f"file-{counter[0]}", data)

    benchmark(write_once)
    mb = len(data) / 2**20
    attach(benchmark, payload_MB=mb, MBps=mb / benchmark.stats["mean"])


def test_degraded_read_path(benchmark):
    coord = build_system(seed=1)
    data = np.random.default_rng(1).integers(0, 256, size=500_000, dtype=np.uint8).tobytes()
    coord.write("f", data)
    coord.crash_node(0)
    coord.crash_node(1)
    out = benchmark(coord.read, "f")
    assert out == data


def test_full_repair_cycle(benchmark):
    """Crash two nodes, plan + execute + verify the whole repair."""

    def cycle():
        coord = build_system(seed=2, block_bytes=1 << 13)
        data = np.random.default_rng(2).integers(0, 256, size=400_000, dtype=np.uint8).tobytes()
        coord.write("f", data)
        coord.crash_node(0)
        coord.crash_node(1)
        report = coord.repair(scheme="hmbr")
        assert coord.read("f") == data
        return report

    report = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert report.blocks_recovered >= 1
    attach(
        benchmark,
        blocks_recovered=report.blocks_recovered,
        simulated_transfer_s=report.simulated_transfer_s,
    )


def test_scrub_throughput(benchmark):
    coord = build_system(seed=3)
    data = np.random.default_rng(3).integers(0, 256, size=2_000_000, dtype=np.uint8).tobytes()
    coord.write("f", data)
    health = benchmark(coord.scrub)
    assert all(health.values())
    attach(benchmark, stripes_scrubbed=len(health))
