"""Table I bench: multi-block failure ratio R vs (k, m) and N.

Regenerates the full paper grid with the exact estimator (fast), benchmarks
the Monte-Carlo and placement estimators, and asserts agreement with the
paper's published numbers.
"""

import pytest

from benchmarks.conftest import attach
from repro.analysis.failure_sim import (
    failure_ratio_exact,
    failure_ratio_montecarlo,
    simulate_failure_ratio_placement,
)
from repro.experiments.table1 import PAPER_TABLE1, run as run_table1


def test_table1_full_grid_exact(benchmark):
    rows = benchmark(run_table1, method="exact")
    # every cell within 1.5 percentage points of the paper
    for row in rows:
        km = row["(k,m)"]
        k, m = map(int, km.strip("()").split(","))
        for n, paper in PAPER_TABLE1[(k, m)].items():
            assert row[f"R(N={n})%"] == pytest.approx(paper, abs=1.5)
    attach(
        benchmark,
        R_64_8_N5000_pct=next(r for r in rows if r["(k,m)"] == "(64,8)")["R(N=5000)%"],
        paper_value_pct=31.23,
    )


def test_table1_montecarlo_estimator(benchmark):
    r = benchmark(failure_ratio_montecarlo, 64, 8, 2500, n_stripes=200_000, rng=0)
    assert r == pytest.approx(failure_ratio_exact(64, 8, 2500), rel=0.03)
    attach(benchmark, R_montecarlo=100 * r)


def test_table1_placement_simulation(benchmark):
    """The paper's literal experiment via the cluster/placement machinery."""
    r = benchmark.pedantic(
        simulate_failure_ratio_placement,
        args=(64, 8, 1000),
        kwargs={"n_stripes": 4000, "rng": 1},
        rounds=3,
        iterations=1,
    )
    assert r == pytest.approx(failure_ratio_exact(64, 8, 1000), rel=0.12)
    attach(benchmark, R_placement=100 * r, paper_value_pct=30.13)
