"""Repo-root pytest config: chaos-harness knobs.

These options live here (not in ``tests/chaos/conftest.py``) because pytest
only honors ``pytest_addoption`` in initial conftests — and the repo root is
initial for every invocation, including the tier-1 `pytest -x -q` run.
"""


def pytest_addoption(parser):
    group = parser.getgroup("chaos", "randomized fault-injection harness")
    group.addoption(
        "--chaos-iterations",
        type=int,
        default=20,
        help="number of randomized fault schedules per chaos test (default 20)",
    )
    group.addoption(
        "--chaos-seed",
        type=int,
        default=20230717,
        help="master seed for chaos schedule generation; each iteration's "
        "schedule seed is derived from it and baked into the test id, so a "
        "failure replays with --chaos-seed=<master> (or by filtering -k on "
        "the printed schedule seed)",
    )
