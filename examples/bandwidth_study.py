#!/usr/bin/env python
"""Bandwidth-heterogeneity study: where does each repair scheme win?

Sweeps the max/min bandwidth gap from 1x (homogeneous) to 16x and plots
(ASCII) the CR / IR / HMBR repair times for a (64, 8, 8) wide-stripe repair,
then repeats the headline point for the uniform and zipf bandwidth families
the paper names as future work (§VII).

Run:  python examples/bandwidth_study.py
"""

import numpy as np

from repro.experiments.common import build_scenario, transfer_time


def bar(value: float, scale: float, width: int = 40) -> str:
    n = int(round(width * value / scale))
    return "#" * max(n, 1)


def sweep_gaps() -> None:
    gaps = [1.0, 2.0, 4.0, 8.0, 16.0]
    print("repair transfer time vs bandwidth gap — (64, 8, 8), normal distribution")
    rows = []
    for gap in gaps:
        times = {}
        for scheme in ("cr", "ir", "hmbr"):
            samples = []
            for seed in (2023, 2024, 2025):
                sc = build_scenario(64, 8, 8, wld=gap, seed=seed)
                samples.append(transfer_time(sc.ctx, scheme))
            times[scheme] = float(np.mean(samples))
        rows.append((gap, times))
    scale = max(t for _, times in rows for t in times.values())
    for gap, times in rows:
        print(f"\ngap {gap:4.0f}x")
        for scheme in ("cr", "ir", "hmbr"):
            t = times[scheme]
            print(f"  {scheme:4s} {t:7.2f} s  {bar(t, scale)}")
        winner = min(times, key=times.get)
        assert winner == "hmbr"
    print("\nHMBR wins at every gap; IR degrades linearly with the gap while")
    print("CR only depends on the center's downlink (the paper's Experiment 1).")


def sweep_distributions() -> None:
    print("\nfuture-work distributions (§VII) — (64, 8, 8), 8x gap")
    for dist in ("normal", "uniform", "zipf"):
        times = {}
        for scheme in ("cr", "ir", "hmbr"):
            samples = []
            for seed in (2023, 2024):
                sc = build_scenario(64, 8, 8, wld="WLD-8x", seed=seed, distribution=dist)
                samples.append(transfer_time(sc.ctx, scheme))
            times[scheme] = float(np.mean(samples))
        print(
            f"  {dist:8s} CR {times['cr']:6.2f} s   IR {times['ir']:6.2f} s   "
            f"HMBR {times['hmbr']:6.2f} s   "
            f"(saves {100 * (1 - times['hmbr'] / min(times['cr'], times['ir'])):.0f}% vs best pure)"
        )


if __name__ == "__main__":
    sweep_gaps()
    sweep_distributions()
