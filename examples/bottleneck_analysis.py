#!/usr/bin/env python
"""Finding and fixing the bottleneck: repair observability + auto-selection.

Runs each repair scheme on a heterogeneous (32, 8, 4) failure with rate-trace
recording on, prints which node's link paces each repair and for how long
(§II's bottleneck analysis, measured instead of argued), shows per-node
load-balance metrics, and finishes with the automatic scheme selector.

Run:  python examples/bottleneck_analysis.py
"""

from repro.analysis.traffic import compare_load_balance, traffic_profile
from repro.experiments.common import build_scenario, plan_for
from repro.repair.selector import choose_scheme
from repro.simnet.fluid import FluidSimulator
from repro.simnet.trace import bottleneck_report


def main() -> None:
    sc = build_scenario(32, 8, 4, wld="WLD-8x", seed=2023)
    ctx = sc.ctx
    sim = FluidSimulator(ctx.cluster)
    plans = {name: plan_for(ctx, name) for name in ("cr", "ir", "hmbr")}

    print("(32, 8) stripe, 4 failed blocks, WLD-8x bandwidths\n")
    for name, plan in plans.items():
        res = sim.run(plan.tasks, record_trace=True)
        report = bottleneck_report(res, plan.tasks, ctx.cluster, top=3)
        print(f"{name.upper():4s}  makespan {res.makespan:6.2f} s")
        for entry in report:
            node = entry["node"]
            role = (
                "center/new node"
                if node in ctx.new_nodes
                else f"survivor (uplink {ctx.cluster[node].uplink:.0f} MB/s)"
            )
            print(
                f"      node {node:2d} saturated {entry['saturated_s']:6.2f} s "
                f"({100 * entry['fraction_of_makespan']:5.1f}% of repair) — {role}"
            )
        prof = traffic_profile(plan)
        print(
            f"      traffic {prof.total_mb:6.0f} MB, receive Gini {prof.gini('received'):.2f}\n"
        )

    print("load-balance comparison:")
    for row in compare_load_balance(list(plans.values())):
        print(
            f"  {row['scheme']:5s} total {row['total_mb']:6.0f} MB  "
            f"max-recv {row['max_recv_mb']:6.0f} MB  recv-Gini {row['recv_gini']:.2f}"
        )

    choice = choose_scheme(ctx)
    print("\nautomatic selection:")
    for name, t in sorted(choice.candidates.items(), key=lambda kv: kv[1]):
        marker = "  <== chosen" if name == choice.scheme else ""
        print(f"  {name:10s} {t:7.2f} s{marker}")


if __name__ == "__main__":
    main()
