#!/usr/bin/env python
"""The erasure-code zoo: RS (Cauchy / Vandermonde) and LRC side by side.

Encodes the same data under each code, kills blocks, repairs, and tabulates
the structural trade-offs the paper's introduction is about: redundancy
versus repair cost, and how wide stripes shift that balance.

Run:  python examples/erasure_code_zoo.py
"""

import time

import numpy as np

from repro.ec.lrc import LRCCode
from repro.ec.rs import RSCode


def bench_rs(code: RSCode, label: str, block_bytes: int = 1 << 18) -> dict:
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(code.k, block_bytes), dtype=np.uint8)
    t0 = time.perf_counter()
    stripe = code.encode_stripe(data)
    t_enc = time.perf_counter() - t0

    dead = list(range(code.m))  # worst case: m data blocks gone
    avail = {i: stripe[i] for i in range(code.n) if i not in dead}
    t0 = time.perf_counter()
    repaired = code.decode(avail, dead)
    t_dec = time.perf_counter() - t0
    assert all(np.array_equal(repaired[d], stripe[d]) for d in dead)
    return {
        "code": label,
        "width": code.n,
        "redundancy": code.n / code.k,
        "tolerates": code.m,
        "single_repair_reads": code.k,
        "encode_MBps": code.k * block_bytes / 2**20 / t_enc,
        "decode_MBps": code.k * block_bytes / 2**20 / t_dec,
    }


def bench_lrc(code: LRCCode, block_bytes: int = 1 << 18) -> dict:
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, size=(code.k, block_bytes), dtype=np.uint8)
    t0 = time.perf_counter()
    stripe = code.encode_stripe(data)
    t_enc = time.perf_counter() - t0

    # single-block local repair
    avail = {i: stripe[i] for i in range(code.n) if i != 0}
    t0 = time.perf_counter()
    local = code.repair(0, avail)
    t_local = time.perf_counter() - t0
    assert np.array_equal(local, stripe[0])
    return {
        "code": f"LRC({code.k},{code.l},{code.g})",
        "width": code.n,
        "redundancy": code.storage_overhead,
        "tolerates": code.g + 1,
        "single_repair_reads": code.group_size,
        "encode_MBps": code.k * block_bytes / 2**20 / t_enc,
        "decode_MBps": code.group_size * block_bytes / 2**20 / t_local,
    }


def main() -> None:
    rows = [
        bench_rs(RSCode(6, 3), "RS(6,3) cauchy"),
        bench_rs(RSCode(6, 3, construction="vandermonde"), "RS(6,3) vandermonde"),
        bench_rs(RSCode(64, 8), "RS(64,8) wide"),
        bench_rs(RSCode(150, 4), "RS(150,4) VAST-wide"),
        bench_lrc(LRCCode(12, 3, 2)),
        bench_lrc(LRCCode(64, 8, 4)),
    ]
    cols = ["code", "width", "redundancy", "tolerates", "single_repair_reads",
            "encode_MBps", "decode_MBps"]
    widths = {c: max(len(c), *(len(f"{r[c]:.3g}" if isinstance(r[c], float) else str(r[c])) for r in rows)) for c in cols}
    print("  ".join(c.ljust(widths[c]) for c in cols))
    for r in rows:
        print("  ".join(
            (f"{r[c]:.3g}" if isinstance(r[c], float) else str(r[c])).ljust(widths[c])
            for c in cols
        ))
    print("\nwide stripes push redundancy toward 1.0x but repair reads k blocks;")
    print("LRC caps repair reads at the group size but pays redundancy for it —")
    print("the gap HMBR exists to close (fast multi-block repair at RS redundancy).")


if __name__ == "__main__":
    main()
