#!/usr/bin/env python
"""Multi-node failure recovery with HMBR's LFS+LRS center scheduling.

Eight storage nodes die at once in an 88-node cluster holding (64, 8)
wide stripes.  Every affected stripe needs a multi-block repair; all of them
run in parallel and contend for the same links.  We compare the naive center
policy (every stripe grabs the fastest new node, which melts down) against
the paper's §IV-C least-frequently/least-recently-selected scheduler.

Run:  python examples/multi_node_recovery.py
"""

import numpy as np

from repro import Cluster, FluidSimulator, Node, make_wld, plan_multi_node
from repro.cluster.placement import place_stripes_random
from repro.ec.rs import get_code


def main() -> None:
    k, m = 64, 8
    n_data, n_dead, n_stripes = 88, 8, 24

    ds = make_wld(n_data + n_dead, "WLD-4x", seed=7)
    cluster = Cluster(
        [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(n_data + n_dead)]
    )
    code = get_code(k, m)
    layout = place_stripes_random(
        cluster, n_stripes, k, m, rng=7, candidates=list(range(n_data))
    )

    rng = np.random.default_rng(13)
    dead = sorted(int(x) for x in rng.choice(n_data, size=n_dead, replace=False))
    cluster.fail_nodes(dead)
    replacement_of = {d: n_data + i for i, d in enumerate(dead)}
    print(f"nodes {dead} failed; replacements {sorted(replacement_of.values())}")

    affected = layout.stripes_with_failures(dead)
    lost_blocks = sum(len(v) for v in affected.values())
    print(f"{len(affected)} of {n_stripes} stripes affected, {lost_blocks} blocks lost\n")

    sim = FluidSimulator(cluster)
    results = {}
    for enhanced in (False, True):
        merged, jobs = plan_multi_node(
            cluster, code, layout, dead, replacement_of,
            scheme="hmbr", enhanced=enhanced,
        )
        res = sim.run(merged.tasks)
        centers = [j.center for j in jobs]
        load = {c: centers.count(c) for c in sorted(set(centers))}
        label = "LFS+LRS scheduler" if enhanced else "naive (fastest new node)"
        results[enhanced] = res.makespan
        print(f"{label}:")
        print(f"  repair makespan : {res.makespan:8.2f} s")
        print(f"  center loads    : {load}")
        print(f"  common split p  : {merged.meta['common_p']:.3f}\n")

    gain = 100 * (1 - results[True] / results[False])
    print(f"scheduling enhancement saved {gain:.1f}% "
          f"(paper reports 10.9% on average, up to 15.9%)")


if __name__ == "__main__":
    main()
