#!/usr/bin/env python
"""Quickstart: the paper's Figure 2 worked example, end to end.

A (3, 2) Reed-Solomon stripe loses two blocks when two nodes die.  We plan
the repair three ways — centralized (CR), independent pipelined (IR), and
HMBR's hybrid — simulate the transfer times on the figure's bandwidths,
actually repair real bytes with the plan executor to prove the hybrid
produces bit-exact blocks, and finally run the same failure through the
full storage system with the one-call repair facade
(``Coordinator.repair(RepairRequest(...))``).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Cluster,
    Coordinator,
    FluidSimulator,
    Node,
    PlanExecutor,
    RepairContext,
    RepairRequest,
    RSCode,
    Stripe,
    Workspace,
    plan_centralized,
    plan_hybrid,
    plan_independent,
    repair_model,
)


def main() -> None:
    # --- the Figure 2 cluster: five stripe nodes + two new nodes ---------
    nodes = [
        Node(0, uplink=800, downlink=1000),  # N1, will die (stores D1)
        Node(1, uplink=800, downlink=1000),  # N2, will die (stores P2)
        Node(2, uplink=800, downlink=1000),  # N3, stores D2
        Node(3, uplink=640, downlink=1000),  # N4, stores D3 (slowest uplink)
        Node(4, uplink=900, downlink=1000),  # N5, stores P1
        Node(5, uplink=1000, downlink=1000),  # N1' (new)
        Node(6, uplink=1000, downlink=1000),  # N2' (new)
    ]
    cluster = Cluster(nodes)
    code = RSCode(3, 2)
    stripe = Stripe(0, 3, 2, [0, 2, 3, 4, 1])  # D1,D2,D3,P1,P2 placements

    # --- two nodes fail -> blocks D1 (index 0) and P2 (index 4) are lost -
    cluster.fail_nodes([0, 1])
    ctx = RepairContext(
        cluster=cluster,
        code=code,
        stripe=stripe,
        failed_blocks=[0, 4],
        new_nodes=[5, 6],
        block_size_mb=64.0,
    )

    # --- the Section III model ------------------------------------------
    model = repair_model(ctx)
    print("Analytical model (Eqs. 2-5):")
    print(f"  T_CR = {model.t_cr:.3f} s   (paper's download stage alone: 0.192 s)")
    print(f"  T_IR = {model.t_ir:.3f} s   (paper: 0.20 s)")
    print(f"  p0   = {model.p0:.3f}       T(p0) = {model.t_hmbr:.3f} s")

    # --- simulate the three repair plans --------------------------------
    sim = FluidSimulator(cluster)
    plans = {
        "CR  ": plan_centralized(ctx),
        "IR  ": plan_independent(ctx),
        "HMBR": plan_hybrid(ctx),
    }
    print("\nSimulated repair transfer times (fluid network model):")
    for name, plan in plans.items():
        t = sim.run(plan.tasks).makespan
        extra = f"  (split p0 = {plan.meta['p0']:.3f})" if "p0" in plan.meta else ""
        print(f"  {name}: {t * 1e3:7.1f} ms{extra}")

    # --- repair real bytes and verify -----------------------------------
    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, size=(3, 64 * 1024), dtype=np.uint8)
    full_stripe = code.encode_stripe(data)

    for name, plan in plans.items():
        ws = Workspace()
        ws.load_stripe(stripe, full_stripe)
        ws.drop_node(0)
        ws.drop_node(1)
        report = PlanExecutor(ws).execute(
            plan, verify_against={0: full_stripe[0], 4: full_stripe[4]}
        )
        print(
            f"{name.strip()}: repaired both blocks bit-exactly "
            f"({report.op_count} agent ops, "
            f"{report.gf_bytes_processed / 1024:.0f} KiB through GF kernels)"
        )

    # --- the same failure through the storage system ---------------------
    # One request in, one result out: the coordinator plans, simulates,
    # and repairs real bytes in a single call.
    coord = Coordinator(
        Cluster([Node(i, uplink=800, downlink=1000) for i in range(5)]),
        RSCode(3, 2),
        block_bytes=1 << 12,
        block_size_mb=64.0,
        rng=7,
    )
    coord.add_spare(Node(5, uplink=1000, downlink=1000))
    coord.add_spare(Node(6, uplink=1000, downlink=1000))
    payload = rng.integers(0, 256, size=50_000, dtype=np.uint8).tobytes()
    coord.write("fig2.bin", payload)
    coord.crash_node(0)
    coord.crash_node(1)

    res = coord.repair(RepairRequest(scheme="hmbr"))
    assert res.ok and coord.read("fig2.bin") == payload
    print(
        f"\nstorage system: RepairRequest -> repaired "
        f"{res.blocks_recovered} blocks in {len(res.stripes_repaired)} stripes, "
        f"simulated makespan {res.makespan_s:.3f} s, "
        f"{res.bytes_moved / 1024:.0f} KiB moved on the bus"
    )


if __name__ == "__main__":
    main()
