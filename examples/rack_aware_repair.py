#!/usr/bin/env python
"""Rack-aware HMBR in a hierarchical (rack-based) datacenter network.

Builds a (32, 8) wide stripe across racks of 8 nodes with cross-rack traffic
capped at 1/5 of each node's link rate (the paper's ``tc`` shaping), fails
f nodes, and compares plain HMBR against rack-aware HMBR (local collectors
for CR + least-used-link repair trees for IR) on both repair time and
cross-rack bytes.

Run:  python examples/rack_aware_repair.py
"""

import numpy as np

from repro import FluidSimulator, PlanExecutor, Workspace
from repro.experiments.common import build_scenario, plan_for


def main() -> None:
    k, m = 32, 8
    rack_size, cross_factor = 8, 5.0

    print(f"({k},{m}) stripe, racks of {rack_size}, cross-rack capped at 1/{cross_factor:g}")
    print(f"{'f':>3} {'HMBR [s]':>10} {'rack-HMBR [s]':>14} {'saved':>7} "
          f"{'cross MB (plain)':>17} {'cross MB (rack)':>16}")

    for f in (2, 4, 8):
        sc = build_scenario(
            k, m, f,
            wld="WLD-2x",
            seed=2023,
            rack_size=rack_size,
            cross_factor=cross_factor,
        )
        sim = FluidSimulator(sc.cluster)
        plain = plan_for(sc.ctx, "hmbr")
        rack = plan_for(sc.ctx, "rack-hmbr")
        r_plain = sim.run(plain.tasks)
        r_rack = sim.run(rack.tasks)
        saved = 100 * (1 - r_rack.makespan / r_plain.makespan)
        print(
            f"{f:3d} {r_plain.makespan:10.2f} {r_rack.makespan:14.2f} {saved:6.1f}% "
            f"{r_plain.cross_rack_mb:17.0f} {r_rack.cross_rack_mb:16.0f}"
        )

        # verify the rack-aware plan repairs real data (small buffers)
        rng = np.random.default_rng(f)
        data = rng.integers(0, 256, size=(k, 4096), dtype=np.uint8)
        full = sc.ctx.code.encode_stripe(data)
        ws = Workspace()
        ws.load_stripe(sc.ctx.stripe, full)
        for node in sc.dead_nodes:
            ws.drop_node(node)
        PlanExecutor(ws).execute(
            rack, verify_against={b: full[b] for b in sc.ctx.failed_blocks}
        )

    print("\nall rack-aware repairs verified bit-exactly")
    print("note the mechanism: rack-aware CR ships f intermediate blocks per rack")
    print("instead of one block per survivor, so its cross traffic grows with f")
    print("and overtakes plain CR's when f reaches the rack size (paper §V, Exp 4).")


if __name__ == "__main__":
    main()
