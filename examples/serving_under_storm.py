#!/usr/bin/env python
"""Serving live traffic through failures: pipelined reads + the fast path.

A 14-node cluster holds (4, 2) stripes and serves a seeded zipf/Poisson
client workload while two nodes are dead.  Three acts:

1. **degraded vs healthy** — reads landing on lost blocks decode on the
   fly and pay a latency surcharge over the same run's healthy reads;
2. **chunked decode pipelining** — the same workload served at
   ``chunks`` in {1, 2, 4, 8}: per-chunk decodes overlap the remaining
   survivor fetches, so degraded p99 falls monotonically toward healthy
   p99 while every payload digest stays identical;
3. **a repair storm with the fast path** — queue a whole-cluster repair
   next to the traffic: reads arriving after the scheduler's estimated
   per-stripe landings skip the degraded path entirely and read the
   rebuilt blocks from their spares.

Run:  python examples/serving_under_storm.py
"""

from repro import Cluster, Coordinator, Node, RepairRequest, ServeRequest
from repro.ec.rs import RSCode
from repro.workload import ServingPlane, WorkloadSpec

K, M, BLOCK_BYTES = 4, 2, 4096

SPEC = WorkloadSpec(
    n_objects=8,
    object_bytes=2 * K * BLOCK_BYTES,
    duration_s=6.0,
    rate_ops_s=8.0,
    read_fraction=0.9,
    write_bytes=256,
    seed=20230717,
)


def build():
    """One fresh, identically-seeded system per regime."""
    coord = Coordinator(
        Cluster([Node(i, 100.0, 100.0) for i in range(14)]),
        RSCode(K, M),
        block_bytes=BLOCK_BYTES,
        block_size_mb=48.0,
        rng=4242,
        heartbeat_timeout=5.0,
    )
    for j in range(6):
        coord.add_spare(Node(14 + j, 100.0, 100.0))
    return coord


def serve(*, kill=0, repair=(), chunks=1, fast_path=True, decode_mbps=16.0):
    coord = build()
    # provision first so the placement exists before we kill anything
    ServingPlane(coord, SPEC).provision()
    if kill:
        stripe0 = next(s for s in coord.layout if s.stripe_id == 0)
        for v in stripe0.placement[:kill]:
            coord.crash_node(v)
    return coord.serve(
        ServeRequest(
            spec=SPEC, repair=tuple(repair), chunks=chunks,
            fast_path=fast_path, decode_mbps=decode_mbps,
        )
    )


def main() -> None:
    print("== act 1: the degraded-read surcharge (slow decoder, 16 MB/s) ==")
    degraded = serve(kill=2)
    print(
        f"healthy p99 {degraded.latency_healthy['p99']:6.2f} s   "
        f"degraded p99 {degraded.latency_degraded['p99']:6.2f} s   "
        f"({degraded.degraded_reads} degraded reads)"
    )

    print("\n== act 2: chunked decode overlaps the survivor fetches ==")
    digests = None
    for chunks in (1, 2, 4, 8):
        res = serve(kill=2, chunks=chunks)
        ratio = res.latency_degraded["p99"] / res.latency_healthy["p99"]
        print(
            f"chunks={chunks}:  degraded p99 {res.latency_degraded['p99']:6.2f} s"
            f"   degraded/healthy ratio {ratio:5.3f}"
            f"   pipeline saved {res.pipeline_saved_s:7.2f} s"
        )
        got = [o.digest for o in res.outcomes]
        assert digests is None or got == digests, "chunking changed bytes!"
        digests = got

    print("\n== act 3: a repair storm, with and without the fast path ==")
    storm = (RepairRequest(scheme="hmbr", batched=True, priority="background"),)
    contended = serve(kill=2, repair=storm, chunks=4, fast_path=False)
    rescued = serve(kill=2, repair=storm, chunks=4, fast_path=True)
    assert [o.digest for o in rescued.outcomes] == digests, "fast path changed bytes!"
    print(
        f"fast path off:  p99 {contended.latency['p99']:6.2f} s   "
        f"{contended.degraded_reads} degraded, {contended.fast_path_reads} rescued"
    )
    print(
        f"fast path on :  p99 {rescued.latency['p99']:6.2f} s   "
        f"{rescued.degraded_reads} degraded, {rescued.fast_path_reads} rescued "
        f"(read rebuilt blocks straight from the spares)"
    )
    print("\nevery payload digest identical across all regimes — the knobs "
          "move time, never bytes")


if __name__ == "__main__":
    main()
