#!/usr/bin/env python
"""Trace one HMBR multi-block repair under faults, end to end.

A walkthrough of :mod:`repro.obs`: build a small (4, 2) cluster, write a
file, crash two block owners, attach an observability session, run a
fault-aware HMBR repair against a chaos schedule, and export

* a Chrome-trace JSON timeline — open it at https://ui.perfetto.dev or in
  ``chrome://tracing`` (both read the file as-is),
* a spans JSONL and a metrics JSONL for ``jq``/pandas analysis,

then reconcile the trace against the system's own accounting: the sum of
transfer-span bytes must equal what the data bus metered, exactly.

Run:  python examples/trace_a_repair.py
"""

import json
import os
import tempfile

import numpy as np

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.faults.schedule import FaultSchedule
from repro.obs import Observability
from repro.system.coordinator import Coordinator
from repro.system.request import RepairRequest


def build_system() -> Coordinator:
    """A 12-node (4, 2) cluster with 4 spares and one striped file."""
    coord = Coordinator(
        Cluster([Node(i, 100.0, 100.0) for i in range(12)]),
        RSCode(4, 2),
        block_bytes=8192,
        block_size_mb=64.0,
        rng=1234,
        heartbeat_timeout=5.0,
    )
    for j in range(4):
        coord.add_spare(Node(12 + j, 100.0, 100.0))
    data = np.random.default_rng(7).integers(0, 256, size=262_144, dtype=np.uint8)
    coord.write("dataset", data.tobytes())
    return coord


def main() -> None:
    coord = build_system()
    obs = Observability().attach(coord)

    # two owners of stripe 0 die up front -> a true multi-block repair;
    # the schedule then harasses the repair while it runs
    stripe0 = next(s for s in coord.layout if s.stripe_id == 0)
    for victim in stripe0.placement[:2]:
        coord.crash_node(victim)
    schedule = FaultSchedule.from_tuples(
        [
            (0.5, "drop", stripe0.placement[2]),   # one transfer dropped
            (1.0, "flap", stripe0.placement[3], 2.0),  # helper flaps for 2 s
            (1.5, "delay", stripe0.placement[4], 0.8),  # slow link
        ]
    )
    res = coord.repair(RepairRequest(scheme="hmbr", faults=schedule))

    print("fault-aware repair finished")
    print(f"  stripes repaired : {res.stripes_repaired}")
    print(f"  blocks recovered : {res.blocks_recovered}")
    print(f"  rounds / retries : {res.plan_summary['rounds']} / {res.plan_summary['retries']}")
    print(f"  simulated T_t    : {res.makespan_s:.2f} s")

    # ---- the trace must conserve bytes against the bus, exactly
    tracer = obs.tracer
    tracer.validate()
    span_bytes = sum(s.args["bytes"] for s in tracer.find(cat="transfer"))
    bus_bytes = coord.bus.total_bytes()
    assert span_bytes == bus_bytes, (span_bytes, bus_bytes)
    print(f"\ntrace: {len(tracer.spans)} spans; transfer spans carry "
          f"{span_bytes} B == bus total {bus_bytes} B")

    # ---- export all three artifacts
    out = tempfile.mkdtemp(prefix="repro-trace-")
    trace_path = os.path.join(out, "repair.trace.json")
    spans_path = os.path.join(out, "spans.jsonl")
    metrics_path = os.path.join(out, "metrics.jsonl")
    tracer.write_chrome_trace(trace_path)
    tracer.write_jsonl(spans_path)
    obs.metrics.write_jsonl(metrics_path)

    n_events = len(json.load(open(trace_path))["traceEvents"])
    print(f"\nwrote {trace_path} ({n_events} trace events)")
    print(f"wrote {spans_path}")
    print(f"wrote {metrics_path}")
    print("open the .trace.json at https://ui.perfetto.dev (or chrome://tracing)")

    print("\nselected metrics:")
    snap = obs.metrics.snapshot()
    for name in ("bus.bytes", "bus.transfers", "faults.fired",
                 "heartbeat.misses", "repair.retries", "repair.blocks_recovered"):
        if name in snap["counters"]:
            print(f"  {name:24s} {snap['counters'][name]:g}")


if __name__ == "__main__":
    main()
