#!/usr/bin/env python
"""A wide-stripe erasure-coded storage cluster surviving a power outage.

This drives the full storage system (coordinator + agents, the OpenEC/HDFS
stand-in): write files under a (16, 4) wide-stripe code, lose 2 nodes to a
correlated outage, detect the failures via missed heartbeats, read files in
degraded mode, repair every affected stripe with HMBR, and verify the data.

Run:  python examples/wide_stripe_cluster.py
"""

import numpy as np

from repro import Cluster, Coordinator, Node, RepairRequest, RSCode, make_wld


def main() -> None:
    k, m = 16, 4
    n_data, n_spare = 40, 4

    # heterogeneous bandwidths, WLD-4x style (fastest node = 4x slowest)
    ds = make_wld(n_data + n_spare, "WLD-4x", seed=42)
    cluster = Cluster(
        [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(n_data)]
    )
    coord = Coordinator(cluster, RSCode(k, m), block_bytes=1 << 14, block_size_mb=64.0, rng=42)
    for j in range(n_spare):
        i = n_data + j
        coord.add_spare(Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])))

    # --- client writes ----------------------------------------------------
    rng = np.random.default_rng(0)
    files = {}
    for name, size in [("logs.bin", 900_000), ("model.ckpt", 2_000_000)]:
        files[name] = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        receipt = coord.write(name, files[name])
        print(
            f"wrote {name}: {size / 1e6:.1f} MB across {len(receipt.stripe_ids)} "
            f"({k},{m}) stripes, redundancy {(k + m) / k:.3f}x"
        )

    # --- power outage: two nodes never come back --------------------------
    coord.beat_alive(now=0.0)
    victims = [3, 17]
    for v in victims:
        coord.crash_node(v)
    coord.beat_alive(now=55.0)  # survivors keep beating
    dead = coord.detect_failures(now=60.0)
    print(f"\nheartbeat monitor declared nodes {dead} dead")

    # --- degraded reads still work ----------------------------------------
    for name, original in files.items():
        assert coord.read(name) == original
    print("degraded reads verified for every file (decode-on-read)")

    # --- HMBR repair -------------------------------------------------------
    res = coord.repair(RepairRequest(scheme="hmbr"))
    print(
        f"\nHMBR repaired {res.blocks_recovered} blocks across "
        f"{len(res.stripes_repaired)} stripes"
    )
    print(f"  simulated makespan      : {res.makespan_s:8.2f} s (64 MB blocks)")
    print(f"  measured GF compute     : {res.compute_s_total * 1e3:8.2f} ms (test-size buffers)")
    print(f"  data moved (modeled)    : {res.bytes_on_wire_mb_model:8.0f} MB")
    print(f"  data moved (actual)     : {res.bytes_moved / 1024:8.0f} KiB on the bus")
    print(f"  replacements            : {res.replacements}")

    for name, original in files.items():
        assert coord.read(name) == original
    print("\npost-repair reads verified — full redundancy restored")

    # --- compare against CR and IR on the same failure --------------------
    # (fresh systems with identical seeds, so the comparison is apples-to-apples)
    print("\nscheme comparison on this failure:")
    for scheme in ("cr", "ir", "hmbr"):
        ds2 = make_wld(n_data + n_spare, "WLD-4x", seed=42)
        cl2 = Cluster(
            [Node(i, float(ds2.uplinks[i]), float(ds2.downlinks[i])) for i in range(n_data)]
        )
        c2 = Coordinator(cl2, RSCode(k, m), block_bytes=1 << 14, block_size_mb=64.0, rng=42)
        for j in range(n_spare):
            i = n_data + j
            c2.add_spare(Node(i, float(ds2.uplinks[i]), float(ds2.downlinks[i])))
        for name, payload in files.items():
            c2.write(name, payload)
        for v in victims:
            c2.crash_node(v)
        rep = c2.repair(RepairRequest(scheme=scheme))
        print(f"  {scheme:5s}: {rep.makespan_s:7.2f} s")


if __name__ == "__main__":
    main()
