"""Legacy setup shim.

The evaluation environment has no network access and no ``wheel`` package, so
PEP 517 editable installs (which shell out to ``bdist_wheel``) fail.  This
shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` (or plain
``pip install -e .`` on machines with wheel) work everywhere.
"""

from setuptools import setup

setup()
