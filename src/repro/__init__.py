"""HMBR: hybrid multi-block repair for wide-stripe erasure-coded storage.

A complete, self-contained reproduction of *"Boosting Multi-Block Repair in
Cloud Storage Systems with Wide-Stripe Erasure Coding"* (Yu et al., IPDPS
2023), including every substrate the paper depends on:

* :mod:`repro.gf` — GF(2^w) arithmetic (the ISA-L stand-in),
* :mod:`repro.ec` — systematic Reed-Solomon codes, stripes, sub-blocks,
* :mod:`repro.cluster` — nodes, racks, bandwidth workloads, failures,
* :mod:`repro.simnet` — fluid flow-level network simulation,
* :mod:`repro.repair` — CR, IR, HMBR, rack-aware HMBR, multi-node scheduling,
* :mod:`repro.system` — the coordinator/agent storage system (OpenEC/HDFS
  stand-in),
* :mod:`repro.faults` — fault schedules, injection, and degraded repair,
* :mod:`repro.sched` — concurrent repair jobs with admission control and
  weighted bandwidth sharing,
* :mod:`repro.parallel` — process-pool decode for the repair data plane
  (shared-memory planes, per-worker GF LUTs, chunk-level pipelining),
* :mod:`repro.obs` — opt-in spans, metrics, and repair-timeline export,
* :mod:`repro.workload` — seeded client load generation and the online
  serving plane (degraded reads under live repair traffic),
* :mod:`repro.reliability` — the macro-scale durability simulator (MTTDL,
  P(loss) curves, nines) driven by the repair engines' own makespans,
* :mod:`repro.analysis` / :mod:`repro.experiments` — every table and figure
  of the paper's evaluation.

Quickstart::

    from repro import build_scenario, plan_for, FluidSimulator

    sc = build_scenario(k=64, m=8, f=8, wld="WLD-8x")
    plan = plan_for(sc.ctx, "hmbr")
    t = FluidSimulator(sc.cluster).run(plan.tasks).makespan

The documented import style is ``from repro import Coordinator,
RepairRequest, ...`` — every supported name is re-exported here or from
its subpackage's ``__init__`` and listed in ``__all__``;
``tools/check_api_surface.py`` pins the surface against
``tests/golden/api_surface.json``.
"""

__version__ = "1.1.0"

from repro.gf import GF, gf8
from repro.ec import RSCode, Stripe, split_block, join_block
from repro.cluster import Cluster, Node, make_wld, FailureInjector, PowerOutage
from repro.simnet import FluidSimulator, Flow, PipelineFlow
from repro.repair import (
    RepairContext,
    RepairPlan,
    plan_centralized,
    plan_independent,
    plan_hybrid,
    plan_rack_aware_hybrid,
    plan_multi_node,
    repair_model,
    PlanExecutor,
    Workspace,
)
from repro.system import (
    Coordinator,
    JobOutcome,
    RepairReport,
    RepairRequest,
    RepairResult,
)
from repro.sched import AdmissionPolicy, RepairJob, RepairScheduler, SchedulerReport
from repro.parallel import ParallelRepairEngine, PipelineReport, WorkerPool
from repro.faults import FaultInjector, FaultSchedule
from repro.repair import BatchRepairEngine, PlanCache
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.simnet import NetworkTrace, as_network
from repro.adaptive import AdaptiveConfig, AdaptiveEngine, AdaptiveReport, RangeJournal
from repro.workload import ServeRequest, ServeResult, ServingPlane, WorkloadSpec
from repro.reliability import (
    ReliabilityReport,
    ReliabilitySimulator,
    ReliabilitySpec,
)
from repro.experiments import build_scenario, plan_for, transfer_time

__all__ = [
    "__version__",
    "GF",
    "gf8",
    "RSCode",
    "Stripe",
    "split_block",
    "join_block",
    "Cluster",
    "Node",
    "make_wld",
    "FailureInjector",
    "PowerOutage",
    "FluidSimulator",
    "Flow",
    "PipelineFlow",
    "RepairContext",
    "RepairPlan",
    "plan_centralized",
    "plan_independent",
    "plan_hybrid",
    "plan_rack_aware_hybrid",
    "plan_multi_node",
    "repair_model",
    "PlanExecutor",
    "Workspace",
    "BatchRepairEngine",
    "PlanCache",
    "Coordinator",
    "RepairRequest",
    "RepairResult",
    "RepairReport",
    "JobOutcome",
    "AdmissionPolicy",
    "RepairJob",
    "RepairScheduler",
    "SchedulerReport",
    "ParallelRepairEngine",
    "PipelineReport",
    "WorkerPool",
    "FaultInjector",
    "FaultSchedule",
    "MetricsRegistry",
    "Observability",
    "Tracer",
    "NetworkTrace",
    "as_network",
    "AdaptiveConfig",
    "AdaptiveEngine",
    "AdaptiveReport",
    "RangeJournal",
    "ServeRequest",
    "ServeResult",
    "ServingPlane",
    "WorkloadSpec",
    "ReliabilityReport",
    "ReliabilitySimulator",
    "ReliabilitySpec",
    "build_scenario",
    "plan_for",
    "transfer_time",
]
