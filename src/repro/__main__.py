"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro list
    python -m repro table1
    python -m repro exp1 exp2 ...
    python -m repro all
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

EXPERIMENTS = {
    "table1": "Table I — multi-block failure ratio vs (k, m) and N",
    "exp1": "Fig. 8 — CR/IR/HMBR repair time vs (k, m, f) per workload",
    "exp2": "Fig. 9 — repair time vs number of failed blocks f",
    "exp3": "Fig. 10 — repair time vs block size",
    "exp4": "Fig. 11 — HMBR vs rack-aware HMBR",
    "exp5": "Fig. 12 — multi-node repair with/without scheduling",
    "exp6": "Table II — repair time breakdown (T_t vs T_o)",
    "exp_dynamic": "Extension (§VII) — dynamic bandwidth workloads",
    "exp_reliability": "Extension — MTTDL durability per repair scheme",
    "sensitivity": "Extension — HMBR robustness to bandwidth-table error",
    "exp_lrc": "Extension — wide-stripe RS + HMBR vs Azure-style LRC",
    "exp_foreground": "Extension — repair impact on foreground traffic",
    "exp_slo": "Extension — widest stripe under a repair-time SLO",
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the HMBR paper's tables and figures.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help="experiment names (see 'list'), 'all', or 'list'",
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        help="also write each experiment's rows as CSV (PATH gets a "
        "-<name> suffix when several experiments run)",
    )
    args = parser.parse_args(argv)

    targets = list(args.targets)
    if targets == ["list"]:
        for name, desc in EXPERIMENTS.items():
            print(f"{name:16s} {desc}")
        return 0
    if targets == ["all"]:
        targets = list(EXPERIMENTS)

    for name in targets:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
            return 2
        module = importlib.import_module(f"repro.experiments.{name}")
        t0 = time.perf_counter()
        print(f"=== {name}: {EXPERIMENTS[name]} ===")
        module.main()
        if args.csv:
            from pathlib import Path

            from repro.experiments.sweep import rows_to_csv

            base = Path(args.csv)
            path = (
                base
                if len(targets) == 1
                else base.with_name(f"{base.stem}-{name}{base.suffix or '.csv'}")
            )
            rows_to_csv(module.run(), path)
            print(f"rows written to {path}")
        print(f"--- {name} done in {time.perf_counter() - t0:.1f}s ---\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
