"""Adaptive repair under rapidly-changing networks.

The static planners commit to helpers, a center and HMBR's split ratio
once, at plan time.  This package re-plans *while the repair runs*: the
:class:`AdaptiveEngine` watches observed per-flow rates at bandwidth-event
boundaries, and when they drift past a threshold from the plan-time
prediction it cuts the round, journals the volume that completed end to
end (:class:`RangeJournal` — committed ranges are never re-sent), and
re-solves the remaining volume against the current capacities, choosing
among CR / IR / HMBR / MLF.  :class:`AdaptiveRuntime` executes the
committed pieces through the coordinator's agents with a resumable
:class:`~repro.repair.executor.ExecutionJournal` cursor.

Entry points: ``Coordinator.repair(RepairRequest(adaptive=True,
network=NetworkTrace...))``, or :class:`AdaptiveRuntime` directly.
On a quiet network the whole machinery is a bit-exact no-op versus the
static path.  See ``docs/ADAPTIVE.md``.
"""

from repro.adaptive.engine import (
    ADAPTIVE_SCHEMES,
    AdaptiveConfig,
    AdaptiveEngine,
    AdaptiveEntry,
    AdaptivePiece,
    AdaptiveReport,
    AdaptiveRound,
)
from repro.adaptive.journal import CommittedRange, OverlapError, RangeJournal
from repro.adaptive.runtime import AdaptiveRepairReport, AdaptiveRuntime

__all__ = [
    "ADAPTIVE_SCHEMES",
    "AdaptiveConfig",
    "AdaptiveEngine",
    "AdaptiveEntry",
    "AdaptivePiece",
    "AdaptiveReport",
    "AdaptiveRound",
    "AdaptiveRepairReport",
    "AdaptiveRuntime",
    "CommittedRange",
    "OverlapError",
    "RangeJournal",
]
