"""Adaptive re-planning over rapidly-changing networks (the timing plane).

The static planners (:mod:`repro.repair`) pick helpers, a CR center and
HMBR's split ratio against the bandwidth snapshot that exists at plan
time.  On a quiet network that is optimal; under churn the plan's
predicted per-flow rates and the observed ones diverge, and the repair
drags at the speed of whichever link degraded.  :class:`AdaptiveEngine`
closes the loop:

1. Round 0 simulates the *exact static plans* (built by the coordinator's
   own planning helpers) against the bandwidth-event trace, alongside a
   quiet reference run — the plan-time rate prediction.
2. At every event boundary it compares observed vs predicted per-flow
   rates.  The first boundary where some flow drifts past
   ``drift_threshold`` triggers a re-plan.
3. The round is cut at that boundary (a horizon-bounded fluid run); the
   volume each sub-plan completed *end to end* is committed into a
   :class:`~repro.adaptive.journal.RangeJournal` as a word-aligned
   fraction-range piece, and only the remaining range is re-planned —
   helpers, center, forwarding shape and HMBR's ``p0`` are all re-chosen
   against the *current* capacities (and the still-pending future
   events), picking the best of the candidate schemes (``cr`` / ``ir`` /
   ``hmbr`` / ``mlf``).
4. Repeat until a round runs to completion undisturbed.

The engine never moves bytes — it produces :class:`AdaptivePiece`\\ s
(fraction ranges plus the data-plane ops that rebuild them) that
:class:`~repro.adaptive.runtime.AdaptiveRuntime` executes exactly once
each.  On a quiet network no boundary ever trips, round 0 runs to
completion, and both the makespan and the committed ops are *identical*
to the static path — adaptivity is a strict no-op (the property tests
pin this bit-exactly).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable

from repro.adaptive.journal import RangeJournal
from repro.repair._build import add_centralized, add_independent, add_multilevel
from repro.repair.context import RepairContext
from repro.repair.plan import RepairPlan
from repro.repair.split import scaled_split_tasks, search_split
from repro.repair.topology import build_chain_paths
from repro.simnet.fluid import FluidSimulator
from repro.simnet.network import cluster_at

#: schemes the adaptive engine can both decompose and re-plan.
ADAPTIVE_SCHEMES = ("cr", "ir", "hmbr", "mlf")

_TINY = 1e-12
#: a remaining range narrower than this is "done at the boundary".
_DONE_FRAC = 1e-9


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning knobs for the re-planning loop.

    ``drift_threshold`` is the relative per-flow rate error that arms a
    re-plan (0.2 = a flow running 20% off its plan-time prediction).
    ``max_replans`` bounds the loop; once spent, the current plans run to
    completion.  ``min_remaining_frac`` skips the candidate-scheme search
    when almost nothing is left (the incumbent scheme just finishes).
    ``candidates`` is the scheme pool re-plan rounds choose from;
    ``mlf_degree`` fixes the MLF tree fan-out (``None`` = ~sqrt(k)).
    ``repick_survivors`` lets re-plan rounds choose the currently
    fastest-uploading k survivors instead of keeping round 0's helpers.
    """

    drift_threshold: float = 0.2
    max_replans: int = 8
    min_remaining_frac: float = 0.02
    candidates: tuple[str, ...] = ("hmbr", "mlf", "cr", "ir")
    mlf_degree: int | None = None
    repick_survivors: bool = True

    def __post_init__(self) -> None:
        if self.drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        if self.max_replans < 0:
            raise ValueError("max_replans must be >= 0")
        bad = [c for c in self.candidates if c not in ADAPTIVE_SCHEMES]
        if bad:
            raise ValueError(
                f"unsupported candidate scheme(s) {bad}; "
                f"choose from {ADAPTIVE_SCHEMES}"
            )


@dataclass(frozen=True)
class AdaptiveEntry:
    """One stripe's repair as the engine sees it.

    ``plan`` must be the plan the *static* path would run (built by the
    coordinator's own helpers, common HMBR split included) — round 0
    simulates it verbatim, which is what makes quiet-network adaptivity a
    bit-exact no-op.  ``weight`` scales the entry's flows in the shared
    fluid solve (scheduler-style priorities).
    """

    key: str
    ctx: RepairContext
    scheme: str
    plan: RepairPlan
    weight: float = 1.0


@dataclass(frozen=True)
class AdaptivePiece:
    """A committed fraction range plus the data-plane ops that rebuild it."""

    key: str
    lo: float
    hi: float
    scheme: str
    round_index: int
    piece_id: str
    #: GF/transfer ops (see :mod:`repro.repair.plan`) producing ``outputs``.
    ops: tuple
    #: failed block index -> (new node, buffer name holding this range).
    outputs: dict[int, tuple[int, str]]


@dataclass(frozen=True)
class AdaptiveRound:
    """What one planning round did (for reports and the bench harness)."""

    index: int
    t_start_s: float
    #: simulated seconds this round was in charge.
    duration_s: float
    #: absolute instant the round was cut for a re-plan (None = ran out).
    boundary_s: float | None
    #: worst relative rate drift seen at the triggering boundary.
    drift: float
    drift_task: str | None
    scheme_by_key: dict[str, str]
    #: modeled MB this round moved but could not commit (re-planned away).
    wasted_mb: float


@dataclass
class AdaptiveReport:
    """Outcome of one :meth:`AdaptiveEngine.run` (timing plane only)."""

    scheme: str
    makespan_s: float
    #: entry key -> simulated landing instant of its last piece.
    finish_s: dict[str, float]
    replans: int
    rounds: list[AdaptiveRound]
    #: modeled MB moved then re-planned away (the price of adapting).
    wasted_mb: float
    #: total modeled MB on the wire (committed volume + waste).
    bytes_on_wire_mb_model: float
    #: entry key -> committed pieces in commit order.
    pieces: dict[str, list[AdaptivePiece]]
    journal: RangeJournal
    drift_threshold: float
    #: True when the event trace was empty — round 0 ran the static plans
    #: to completion and nothing was re-planned.
    quiet: bool

    @property
    def n_rounds(self) -> int:
        """Planning rounds run (1 = static behavior)."""
        return len(self.rounds)


@dataclass
class _Sub:
    """One scheme-homogeneous slice of an entry's current round plan."""

    kind: str
    prefix: str
    lo: float
    hi: float
    #: which end of ``[lo, hi)`` the committed range grows from.  The last
    #: sub-plan of an entry anchors at the top so the entry's remaining
    #: range stays a single contiguous interval across commits.
    anchor: str
    tasks: list
    ops: list | None
    outputs: dict | None
    build: Callable[[float, float], tuple]


@dataclass
class _Live:
    """Mutable per-entry round state."""

    entry: AdaptiveEntry
    scheme: str
    subs: list[_Sub]
    tasks: list
    lo: float = 0.0
    hi: float = 1.0
    #: round 0 only: the verbatim static plan, used for whole-range
    #: commits so the quiet path reuses its ops (and concat) untouched.
    plan0: RepairPlan | None = None


class AdaptiveEngine:
    """Drift-triggered re-planner over one bandwidth-event trace.

    ``cluster`` is never mutated: re-plan rounds look at capacity
    snapshots built by :func:`repro.simnet.network.cluster_at`.  ``obs``
    (an :class:`repro.obs.Observability`, optional) receives per-round
    spans and ``adaptive.*`` metrics.
    """

    def __init__(self, cluster, *, events=(), config=None, obs=None) -> None:
        self.cluster = cluster
        self.events = sorted(events, key=lambda e: e.time)
        self.config = config or AdaptiveConfig()
        self.obs = obs

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self, entries: list[AdaptiveEntry]) -> AdaptiveReport:
        """Plan, watch, cut, re-plan; returns the full timing report."""
        cfg = self.config
        journal = RangeJournal()
        pieces: dict[str, list[AdaptivePiece]] = {e.key: [] for e in entries}
        finish_s: dict[str, float] = {}
        rounds: list[AdaptiveRound] = []
        quiet = not self.events
        live: list[_Live] = []
        for e in entries:
            if e.scheme not in ADAPTIVE_SCHEMES:
                raise ValueError(
                    f"scheme {e.scheme!r} is not adaptive-capable; "
                    f"choose from {ADAPTIVE_SCHEMES}"
                )
            live.append(self._decompose(e))
        scheme0 = entries[0].scheme if entries else "hmbr"

        t = 0.0
        replans = 0
        wasted_mb = 0.0
        wire_mb = 0.0
        while live:
            r = len(rounds)
            span = None
            if self.obs is not None:
                span = self.obs.tracer.begin(
                    f"adaptive.round:{r}", actor="adaptive", cat="adaptive",
                    round=r, t_start_s=t, keys=[lv.entry.key for lv in live],
                    schemes=sorted({lv.scheme for lv in live}),
                )
            try:
                base = self._cluster_at(t)
                shifted = [
                    dataclasses.replace(ev, time=ev.time - t)
                    for ev in self.events
                    if ev.time > t + _TINY
                ]
                tasks = [tk for lv in live for tk in self._weighted(lv)]
                obs_run = FluidSimulator(base).run(
                    tasks, events=shifted, record_trace=True
                )
                boundary, drift, drift_task = None, 0.0, None
                if shifted and replans < cfg.max_replans:
                    ref_run = FluidSimulator(base).run(tasks, record_trace=True)
                    boundary, drift, drift_task = self._first_drift(
                        obs_run, ref_run, shifted, cfg.drift_threshold
                    )
                if boundary is None:
                    # undisturbed (or out of re-plan budget): finish here
                    for lv in live:
                        self._finalize(lv, obs_run, t, r, journal, pieces, finish_s)
                    wire_mb += sum(self._wire(tk, 1.0) for tk in tasks)
                    rounds.append(AdaptiveRound(
                        index=r, t_start_s=t, duration_s=obs_run.makespan,
                        boundary_s=None, drift=drift, drift_task=drift_task,
                        scheme_by_key={lv.entry.key: lv.scheme for lv in live},
                        wasted_mb=0.0,
                    ))
                    live = []
                    continue
                # drift: cut the round at the offending event boundary
                part = FluidSimulator(base).run(
                    tasks, events=shifted, horizon_s=boundary
                )
                round_waste = 0.0
                still: list[_Live] = []
                for lv in live:
                    done, waste, moved = self._commit_partial(
                        lv, part, boundary, t, r, journal, pieces, finish_s
                    )
                    round_waste += waste
                    wire_mb += moved
                    if not done:
                        still.append(lv)
                wasted_mb += round_waste
                rounds.append(AdaptiveRound(
                    index=r, t_start_s=t, duration_s=boundary,
                    boundary_s=t + boundary, drift=drift, drift_task=drift_task,
                    scheme_by_key={lv.entry.key: lv.scheme for lv in live},
                    wasted_mb=round_waste,
                ))
                t += boundary
                live = still
                if live:
                    replans += 1
                    self._replan(live, t, r + 1)
            finally:
                if span is not None:
                    self.obs.tracer.unwind(span)

        makespan = max(finish_s.values(), default=0.0)
        if self.obs is not None:
            m = self.obs.metrics
            m.counter("adaptive.runs").inc()
            m.counter("adaptive.rounds").inc(len(rounds))
            m.counter("adaptive.replans").inc(replans)
            m.gauge("adaptive.makespan_s").set(makespan)
            m.gauge("adaptive.wasted_mb").set(wasted_mb)
        return AdaptiveReport(
            scheme=scheme0,
            makespan_s=makespan,
            finish_s=finish_s,
            replans=replans,
            rounds=rounds,
            wasted_mb=wasted_mb,
            bytes_on_wire_mb_model=wire_mb,
            pieces=pieces,
            journal=journal,
            drift_threshold=cfg.drift_threshold,
            quiet=quiet,
        )

    # ------------------------------------------------------------------ #
    # round 0: decompose the static plans
    # ------------------------------------------------------------------ #
    def _decompose(self, e: AdaptiveEntry) -> _Live:
        """Split the static plan into anchored, rebuildable sub-plans."""
        ctx, meta = e.ctx, e.plan.meta
        if e.scheme == "cr":
            prefix = ctx.prefix("cr")
            center = meta["center"]
            subs = [_Sub(
                "cr", prefix, 0.0, 1.0, "bottom", list(e.plan.tasks),
                None, None,
                lambda lo, hi, c=ctx, p=prefix, n=center: add_centralized(c, p, lo, hi, n),
            )]
        elif e.scheme == "ir":
            prefix = ctx.prefix("ir")
            paths = build_chain_paths(ctx, meta.get("chain_order", "index"))
            subs = [_Sub(
                "ir", prefix, 0.0, 1.0, "bottom", list(e.plan.tasks),
                None, None,
                lambda lo, hi, c=ctx, p=prefix, pa=paths: add_independent(c, p, lo, hi, pa),
            )]
        elif e.scheme == "mlf":
            prefix = ctx.prefix("mlf")
            degree, order = meta["degree"], meta["order"]
            subs = [_Sub(
                "mlf", prefix, 0.0, 1.0, "bottom", list(e.plan.tasks),
                None, None,
                lambda lo, hi, c=ctx, p=prefix, d=degree, o=order: add_multilevel(
                    c, p, lo, hi, degree=d, order=o
                ),
            )]
        elif e.scheme == "hmbr":
            p0, center = meta["p0"], meta["center"]
            paths = build_chain_paths(ctx, meta.get("chain_order", "index"))
            crp, irp = ctx.prefix("h.cr"), ctx.prefix("h.ir")
            cr_tasks = [tk for tk in e.plan.tasks if tk.task_id.startswith(crp + ":")]
            ir_tasks = [tk for tk in e.plan.tasks if tk.task_id.startswith(irp + ":")]
            subs = [
                _Sub(
                    "cr", crp, 0.0, p0, "bottom", cr_tasks, None, None,
                    lambda lo, hi, c=ctx, p=crp, n=center: add_centralized(c, p, lo, hi, n),
                ),
                _Sub(
                    "ir", irp, p0, 1.0, "top", ir_tasks, None, None,
                    lambda lo, hi, c=ctx, p=irp, pa=paths: add_independent(c, p, lo, hi, pa),
                ),
            ]
        else:  # pragma: no cover - guarded by run()
            raise ValueError(f"cannot decompose scheme {e.scheme!r}")
        return _Live(
            entry=e, scheme=e.scheme, subs=subs,
            tasks=list(e.plan.tasks), plan0=e.plan,
        )

    # ------------------------------------------------------------------ #
    # drift detection
    # ------------------------------------------------------------------ #
    @staticmethod
    def _rates_at(trace, t: float) -> dict[str, float]:
        """Per-flow rates of the trace segment containing instant ``t``."""
        for t0, t1, rates in trace:
            if t0 <= t < t1:
                return rates
        return {}

    def _first_drift(self, obs_run, ref_run, shifted, threshold):
        """First event boundary where an active flow's rate drifts too far.

        ``obs_run`` is the simulation under the event trace, ``ref_run``
        the quiet run of the same tasks — the plan-time prediction.  At
        each boundary, every flow still active in the observed run is
        compared against its predicted rate; a flow the prediction says
        should already be finished counts as fully drifted (1.0).
        Returns ``(boundary, worst_drift, worst_task)`` or
        ``(None, last_worst, last_task)`` when nothing trips.
        """
        boundaries = sorted({
            ev.time for ev in shifted
            if _TINY < ev.time < obs_run.makespan - _TINY
        })
        worst, worst_tid = 0.0, None
        for tb in boundaries:
            obs_rates = self._rates_at(obs_run.trace, tb)
            ref_rates = self._rates_at(ref_run.trace, tb)
            tb_worst, tb_tid = 0.0, None
            for tid, ro in obs_rates.items():
                rr = ref_rates.get(tid, 0.0)
                if rr <= _TINY:
                    d = 1.0 if ro > _TINY else 0.0
                else:
                    d = abs(ro - rr) / rr
                if d > tb_worst:
                    tb_worst, tb_tid = d, tid
            if tb_worst > worst:
                worst, worst_tid = tb_worst, tb_tid
            if tb_worst > threshold:
                return tb, tb_worst, tb_tid
        return None, worst, worst_tid

    # ------------------------------------------------------------------ #
    # committing
    # ------------------------------------------------------------------ #
    def _sub_piece(self, lv, sub, lo, hi, r, journal, pieces) -> None:
        """Journal ``[lo, hi)`` of one sub-plan and record its ops piece."""
        if hi - lo <= _TINY:
            return
        if sub.ops is not None and abs(lo - sub.lo) <= _TINY and abs(hi - sub.hi) <= _TINY:
            ops, outputs = sub.ops, sub.outputs
        else:
            _, ops, outputs = sub.build(lo, hi)
        key = lv.entry.key
        piece_id = f"{key}:r{r}:{sub.kind}@{lo:.6f}"
        journal.commit(
            key, lo, hi, round_index=r, scheme=sub.kind, piece_id=piece_id
        )
        pieces[key].append(AdaptivePiece(
            key=key, lo=lo, hi=hi, scheme=sub.kind, round_index=r,
            piece_id=piece_id, ops=tuple(ops), outputs=dict(outputs),
        ))

    def _finalize(self, lv, run_result, t, r, journal, pieces, finish_s) -> None:
        """The entry's current round ran to completion: commit everything."""
        key = lv.entry.key
        finish = max(
            (run_result.finish_times.get(tk.task_id, run_result.makespan)
             for tk in lv.tasks),
            default=0.0,
        )
        finish_s[key] = t + finish
        if lv.plan0 is not None and not pieces[key]:
            # never re-planned: one whole-range piece reusing the static
            # plan's ops verbatim (same buffers, same HMBR concat)
            piece_id = f"{key}:r{r}:static"
            journal.commit(
                key, 0.0, 1.0, round_index=r, scheme=lv.scheme, piece_id=piece_id
            )
            pieces[key].append(AdaptivePiece(
                key=key, lo=0.0, hi=1.0, scheme=lv.scheme, round_index=r,
                piece_id=piece_id, ops=tuple(lv.plan0.ops),
                outputs=dict(lv.plan0.outputs),
            ))
            return
        for sub in lv.subs:
            self._sub_piece(lv, sub, sub.lo, sub.hi, r, journal, pieces)

    def _commit_partial(self, lv, part, boundary, t, r, journal, pieces, finish_s):
        """Commit what the cut round finished end to end; shrink the entry.

        Returns ``(done, wasted_mb, moved_mb)``.  A sub-plan's committable
        fraction is the *minimum* completed fraction over its flows — a
        range only counts once every pipeline stage carried it (CR's
        redistribution included), so partially-fetched volume that never
        reached the new nodes is waste, not progress.
        """
        progress: dict[str, float] = {}
        for tk in lv.tasks:
            tid = tk.task_id
            if tid in part.finish_times:
                p = 1.0
            else:
                size = getattr(tk, "size_mb", 0.0)
                rem = part.remaining_mb.get(tid)
                if rem is None or size <= _TINY:
                    p = 1.0
                else:
                    p = 1.0 - rem / size
            progress[tid] = min(max(p, 0.0), 1.0)
        moved = sum(self._wire(tk, progress[tk.task_id]) for tk in lv.tasks)
        if all(p >= 1.0 - _DONE_FRAC for p in progress.values()):
            self._finalize(lv, part, t, r, journal, pieces, finish_s)
            return True, 0.0, moved

        waste = 0.0
        cut_lo, cut_hi = lv.lo, lv.hi
        for sub in lv.subs:
            c = min((progress[tk.task_id] for tk in sub.tasks), default=1.0)
            waste += sum(
                self._wire(tk, max(0.0, progress[tk.task_id] - c))
                for tk in sub.tasks
            )
            width = sub.hi - sub.lo
            if sub.anchor == "bottom":
                cut = sub.lo + c * width
                self._sub_piece(lv, sub, sub.lo, cut, r, journal, pieces)
                cut_lo = max(cut_lo, cut)
            else:
                cut = sub.hi - c * width
                self._sub_piece(lv, sub, cut, sub.hi, r, journal, pieces)
                cut_hi = min(cut_hi, cut)
        lv.lo, lv.hi = cut_lo, cut_hi
        lv.plan0 = None
        if lv.hi - lv.lo <= _DONE_FRAC:
            finish_s[lv.entry.key] = t + boundary
            return True, waste, moved
        return False, waste, moved

    # ------------------------------------------------------------------ #
    # re-planning
    # ------------------------------------------------------------------ #
    def _replan(self, live, t, r) -> None:
        """Re-plan every live entry's remaining range at instant ``t``.

        One scheme is chosen globally per round (mirroring the static
        path's one-scheme rounds): each candidate is built for all live
        entries on the current capacity snapshot and scored by a merged
        fluid run against the still-pending future events; the smallest
        predicted makespan wins, ties keeping candidate order.
        """
        cfg = self.config
        cluster_now = self._cluster_at(t)
        shifted = [
            dataclasses.replace(ev, time=ev.time - t)
            for ev in self.events
            if ev.time > t + _TINY
        ]
        if max(lv.hi - lv.lo for lv in live) < cfg.min_remaining_frac:
            cands = [live[0].scheme]
        else:
            cands = list(dict.fromkeys(cfg.candidates))
        best = None
        for cand in cands:
            builds = self._build_candidate(live, cand, cluster_now, shifted, r)
            tasks = [
                tk
                for lv, (_subs, raw) in zip(live, builds)
                for tk in self._weighted_tasks(raw, lv.entry.weight)
            ]
            score = FluidSimulator(cluster_now).run(tasks, events=shifted).makespan
            if best is None or score < best[0] - _TINY:
                best = (score, cand, builds)
        _, cand, builds = best
        for lv, (subs, raw) in zip(live, builds):
            lv.scheme = cand
            lv.subs = subs
            lv.tasks = raw
        if self.obs is not None:
            self.obs.tracer.instant(
                f"adaptive.replan:{r}", actor="adaptive", cat="adaptive",
                round=r, scheme=cand, t_s=t,
                remaining={lv.entry.key: lv.hi - lv.lo for lv in live},
            )

    def _build_candidate(self, live, cand, cluster_now, shifted, r):
        """Build ``cand`` over each live entry's remaining range.

        Returns ``[(subs, tasks), ...]`` aligned with ``live``.  HMBR uses
        one *common* relative split across the entries (searched against
        the predicted future events, like the static common split); the
        other schemes build independently per entry.
        """
        if cand == "hmbr":
            per = []
            for lv in live:
                ctx = self._ctx_now(lv, cluster_now)
                center = ctx.pick_center("fastest-downlink")
                paths = build_chain_paths(ctx, "uplink-desc")
                crp = ctx.prefix(f"a{r}.h.cr")
                irp = ctx.prefix(f"a{r}.h.ir")
                cr_full, _, _ = add_centralized(ctx, crp, lv.lo, lv.hi, center)
                ir_full, _, _ = add_independent(ctx, irp, lv.lo, lv.hi, paths)
                per.append((lv, ctx, center, paths, crp, irp, cr_full, ir_full))
            cr_all = [tk for entry in per for tk in entry[6]]
            ir_all = [tk for entry in per for tk in entry[7]]
            q, _ = search_split(
                lambda frac: scaled_split_tasks(cr_all, ir_all, frac),
                cluster_now, events=shifted,
            )
            out = []
            for lv, ctx, center, paths, crp, irp, _cr, _ir in per:
                mid = lv.lo + q * (lv.hi - lv.lo)
                cr_tasks, cr_ops, cr_out = add_centralized(ctx, crp, lv.lo, mid, center)
                ir_tasks, ir_ops, ir_out = add_independent(ctx, irp, mid, lv.hi, paths)
                subs = [
                    _Sub(
                        "cr", crp, lv.lo, mid, "bottom", cr_tasks, cr_ops, cr_out,
                        lambda lo, hi, c=ctx, p=crp, n=center: add_centralized(c, p, lo, hi, n),
                    ),
                    _Sub(
                        "ir", irp, mid, lv.hi, "top", ir_tasks, ir_ops, ir_out,
                        lambda lo, hi, c=ctx, p=irp, pa=paths: add_independent(c, p, lo, hi, pa),
                    ),
                ]
                out.append((subs, cr_tasks + ir_tasks))
            return out
        out = []
        for lv in live:
            ctx = self._ctx_now(lv, cluster_now)
            if cand == "cr":
                prefix = ctx.prefix(f"a{r}.cr")
                center = ctx.pick_center("fastest-downlink")
                tasks, ops, outs = add_centralized(ctx, prefix, lv.lo, lv.hi, center)
                build = lambda lo, hi, c=ctx, p=prefix, n=center: add_centralized(c, p, lo, hi, n)
            elif cand == "ir":
                prefix = ctx.prefix(f"a{r}.ir")
                paths = build_chain_paths(ctx, "uplink-desc")
                tasks, ops, outs = add_independent(ctx, prefix, lv.lo, lv.hi, paths)
                build = lambda lo, hi, c=ctx, p=prefix, pa=paths: add_independent(c, p, lo, hi, pa)
            else:  # mlf
                prefix = ctx.prefix(f"a{r}.mlf")
                degree = self.config.mlf_degree
                tasks, ops, outs = add_multilevel(
                    ctx, prefix, lv.lo, lv.hi, degree=degree, order="uplink-desc"
                )
                build = lambda lo, hi, c=ctx, p=prefix, d=degree: add_multilevel(
                    c, p, lo, hi, degree=d, order="uplink-desc"
                )
            subs = [_Sub(cand, prefix, lv.lo, lv.hi, "bottom", tasks, ops, outs, build)]
            out.append((subs, list(tasks)))
        return out

    def _ctx_now(self, lv, cluster_now) -> RepairContext:
        """The entry's context re-based onto the current capacity snapshot."""
        policy = (
            "best-uplink" if self.config.repick_survivors
            else lv.entry.ctx.survivor_policy
        )
        return dataclasses.replace(
            lv.entry.ctx, cluster=cluster_now, survivor_policy=policy
        )

    # ------------------------------------------------------------------ #
    # small helpers
    # ------------------------------------------------------------------ #
    def _cluster_at(self, t: float):
        """Capacity snapshot at instant ``t`` (the base cluster at 0)."""
        if t <= 0.0 and not any(ev.time <= _TINY for ev in self.events):
            return self.cluster
        return cluster_at(self.cluster, self.events, t)

    def _weighted(self, lv) -> list:
        return self._weighted_tasks(lv.tasks, lv.entry.weight)

    @staticmethod
    def _weighted_tasks(tasks, weight: float) -> list:
        if weight == 1.0:
            return list(tasks)
        return [
            dataclasses.replace(tk, weight=tk.weight * weight) for tk in tasks
        ]

    @staticmethod
    def _wire(task, frac: float) -> float:
        """Modeled wire MB of ``frac`` of a task (pipeline hops each count)."""
        hops = getattr(task, "hops", ())
        return getattr(task, "size_mb", 0.0) * len(hops) * frac
