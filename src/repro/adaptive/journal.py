"""Fraction-range commit journal for adaptive re-planned repairs.

The adaptive engine (:mod:`repro.adaptive.engine`) repairs each failed
block as a sequence of *pieces* — word-aligned fraction ranges of the
block, each moved by whichever scheme the round that committed it was
running.  :class:`RangeJournal` is the ledger of those commitments: a
range may be committed exactly once per stripe, so re-planning the
remaining volume can never schedule bytes that already moved.  The data
plane (:mod:`repro.adaptive.runtime`) replays only journaled pieces,
which is what makes the never-re-transfer property checkable instead of
hoped-for.
"""

from __future__ import annotations

from dataclasses import dataclass

#: float tolerance for range-boundary comparisons; adjacent pieces share
#: their cut point bit-exactly (the engine threads the same float), so
#: anything past this is a genuine overlap, not rounding.
_EPS = 1e-12


@dataclass(frozen=True)
class CommittedRange:
    """One journaled piece: ``[lo, hi)`` of every affected block of ``key``."""

    key: str
    lo: float
    hi: float
    round_index: int
    scheme: str
    piece_id: str

    @property
    def width(self) -> float:
        """Fraction of the block this piece covers."""
        return self.hi - self.lo


class OverlapError(RuntimeError):
    """A commit would re-cover bytes an earlier round already moved."""


class RangeJournal:
    """Per-key ledger of committed fraction ranges.

    Keys are stripe labels (``s0007``); every committed range must be
    disjoint from the key's earlier commitments.  The journal answers the
    two questions the engine and its tests care about: *how much* of each
    stripe is already moved (:meth:`covered`) and *whether the pieces tile
    the whole block* (:meth:`is_complete`).
    """

    def __init__(self) -> None:
        self._ranges: dict[str, list[CommittedRange]] = {}

    def commit(
        self,
        key: str,
        lo: float,
        hi: float,
        *,
        round_index: int,
        scheme: str,
        piece_id: str,
    ) -> CommittedRange:
        """Record ``[lo, hi)`` as moved; reject any overlap with history."""
        if not (0.0 - _EPS <= lo <= hi <= 1.0 + _EPS):
            raise ValueError(f"range [{lo}, {hi}) outside [0, 1]")
        if hi - lo <= _EPS:
            raise ValueError(f"range [{lo}, {hi}) is empty")
        for prev in self._ranges.get(key, ()):
            if lo < prev.hi - _EPS and prev.lo < hi - _EPS:
                raise OverlapError(
                    f"{key}: [{lo:.6f}, {hi:.6f}) overlaps already-committed "
                    f"[{prev.lo:.6f}, {prev.hi:.6f}) ({prev.piece_id})"
                )
        rng = CommittedRange(
            key=key, lo=lo, hi=hi,
            round_index=round_index, scheme=scheme, piece_id=piece_id,
        )
        self._ranges.setdefault(key, []).append(rng)
        return rng

    def keys(self) -> list[str]:
        """Every key with at least one committed range, sorted."""
        return sorted(self._ranges)

    def ranges(self, key: str) -> list[CommittedRange]:
        """The key's committed ranges, sorted by their low endpoint."""
        return sorted(self._ranges.get(key, []), key=lambda r: (r.lo, r.hi))

    def covered(self, key: str) -> float:
        """Total committed fraction for ``key`` (disjointness is enforced)."""
        return sum(r.width for r in self._ranges.get(key, ()))

    def is_complete(self, key: str, tol: float = 1e-9) -> bool:
        """Whether the key's pieces tile ``[0, 1)`` with no gap."""
        ranges = self.ranges(key)
        if not ranges:
            return False
        cursor = 0.0
        for r in ranges:
            if abs(r.lo - cursor) > tol:
                return False
            cursor = r.hi
        return abs(cursor - 1.0) <= tol
