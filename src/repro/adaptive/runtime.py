"""Coordinator-coupled data plane for adaptive repairs.

:class:`AdaptiveRuntime` is the bridge between the timing-only
:class:`~repro.adaptive.engine.AdaptiveEngine` and the coordinator's
agents: it runs the *exact* planning phase of a static healthy round
(same spare assignment, same center-scheduler picks, same common HMBR
split), hands the resulting plans to the engine for drift-triggered
re-planning, then executes each journaled piece's GF/transfer ops
exactly once through the agents — resumable via the fault runtime's
:class:`~repro.repair.executor.ExecutionJournal` cursor, so an
interrupted data plane never re-sends bytes it already moved.

Every failed block is finally assembled from its pieces with one
:class:`~repro.repair.plan.ConcatOp` (pieces are word-aligned fraction
ranges, so concatenation is exact), stored, and — when ``verify`` is on
— checked bit-for-bit against the stripe's parity.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.adaptive.engine import (
    ADAPTIVE_SCHEMES,
    AdaptiveConfig,
    AdaptiveEngine,
    AdaptiveEntry,
    AdaptiveReport,
)
from repro.ec.stripe import block_name
from repro.repair._build import repaired_name
from repro.repair.executor import ExecutionJournal
from repro.repair.plan import ConcatOp
from repro.simnet.network import as_network
from repro.system.agent import run_plan_ops


@dataclass
class AdaptiveRepairReport:
    """A full adaptive repair: engine timing report + data-plane facts."""

    scheme: str
    dead_nodes: list[int]
    stripes_repaired: list[int]
    blocks_recovered: int
    #: simulated landing instant of the last committed piece.
    simulated_transfer_s: float
    compute_s_total: float
    compute_s_critical: float
    bytes_on_wire_mb_model: float
    per_stripe_transfer_s: dict[int, float]
    replacements: dict[int, int]
    #: planning rounds run (1 = no drift, static behavior).
    rounds: int
    replans: int
    wasted_mb: float
    #: committed pieces per stripe (1 everywhere on a quiet network).
    pieces_per_stripe: dict[int, int] = dc_field(default_factory=dict)
    #: the engine's full timing report (rounds, journal, pieces).
    engine: AdaptiveReport | None = None


class AdaptiveRuntime:
    """Run one adaptive repair round against a coordinator.

    ``network`` is anything :func:`repro.simnet.network.as_network`
    accepts (a :class:`~repro.simnet.network.NetworkTrace`, a bare event
    iterable, or ``None`` for quiet).  ``config`` tunes the engine; see
    :class:`~repro.adaptive.engine.AdaptiveConfig`.
    """

    def __init__(self, coord, *, network=None, config: AdaptiveConfig | None = None):
        self.coord = coord
        self.network = as_network(network)
        self.config = config or AdaptiveConfig()
        #: stripe id -> resumable data-plane cursor (the never-re-send ledger).
        self.journals: dict[int, ExecutionJournal] = {}

    def repair(self, scheme: str = "hmbr", *, verify: bool = True) -> AdaptiveRepairReport:
        """One adaptive repair round; returns the combined report."""
        coord = self.coord
        if scheme not in ADAPTIVE_SCHEMES:
            raise ValueError(
                f"adaptive repair supports {ADAPTIVE_SCHEMES}, not {scheme!r}"
            )
        dead = coord.cluster.dead_ids()
        affected = coord.layout.stripes_with_failures(dead)
        if not affected:
            return AdaptiveRepairReport(
                scheme=scheme, dead_nodes=dead, stripes_repaired=[],
                blocks_recovered=0, simulated_transfer_s=0.0,
                compute_s_total=0.0, compute_s_critical=0.0,
                bytes_on_wire_mb_model=0.0, per_stripe_transfer_s={},
                replacements={}, rounds=0, replans=0, wasted_mb=0.0,
            )
        events = self.network.events_for(coord.cluster)

        obs = coord.obs
        root = None
        if obs is not None:
            root = obs.tracer.begin(
                "repair.adaptive", actor="coordinator", cat="repair",
                scheme=scheme, dead_nodes=list(dead), stripes=sorted(affected),
                quiet=not events, drift_threshold=self.config.drift_threshold,
            )
        try:
            # ---- planning: byte-identical to the static healthy round
            dead_with_blocks = coord._dead_with_blocks(affected)
            free_spares = coord._free_spares()
            if len(dead_with_blocks) > len(free_spares):
                raise RuntimeError(
                    f"{len(dead_with_blocks)} dead nodes but only "
                    f"{len(free_spares)} free spares"
                )
            replacement_of = coord._assign_spares(dead_with_blocks, free_spares)
            stripes = {s.stripe_id: s for s in coord.layout}
            work = coord._build_work(affected, replacement_of)
            common_p = coord._common_hmbr_split(work) if scheme == "hmbr" else None
            plans = coord._plan_work(work, scheme, common_p)

            entries = [
                AdaptiveEntry(key=f"s{sid:04d}", ctx=ctx, scheme=scheme, plan=plan)
                for sid, plan, ctx in plans
            ]
            sid_of = {f"s{sid:04d}": sid for sid, _, _ in plans}
            ctx_of = {f"s{sid:04d}": ctx for sid, _, ctx in plans}

            # ---- timing plane: drift-watched rounds over the event trace
            engine = AdaptiveEngine(
                coord.cluster, events=events, config=self.config, obs=obs
            )
            engine_report = engine.run(entries)

            # ---- data plane: each journaled piece's ops run exactly once
            compute_before = {i: a.compute_seconds for i, a in coord.agents.items()}
            for key in sorted(engine_report.pieces):
                self._execute_key(
                    key, sid_of[key], ctx_of[key], engine_report, stripes, verify
                )
            for agent in coord.agents.values():
                agent.clear_scratch()
        finally:
            if root is not None:
                obs.tracer.unwind(root)

        compute_by_node = {
            i: a.compute_seconds - compute_before[i]
            for i, a in coord.agents.items()
        }
        report = AdaptiveRepairReport(
            scheme=scheme,
            dead_nodes=dead,
            stripes_repaired=sorted(affected),
            blocks_recovered=sum(len(f) for f in affected.values()),
            simulated_transfer_s=engine_report.makespan_s,
            compute_s_total=sum(compute_by_node.values()),
            compute_s_critical=max(compute_by_node.values(), default=0.0),
            bytes_on_wire_mb_model=engine_report.bytes_on_wire_mb_model,
            per_stripe_transfer_s={
                sid_of[k]: t for k, t in engine_report.finish_s.items()
            },
            replacements=replacement_of,
            rounds=engine_report.n_rounds,
            replans=engine_report.replans,
            wasted_mb=engine_report.wasted_mb,
            pieces_per_stripe={
                sid_of[k]: len(ps) for k, ps in engine_report.pieces.items()
            },
            engine=engine_report,
        )
        if obs is not None:
            m = obs.metrics
            m.counter("repair.runs").inc()
            m.counter("repair.blocks_recovered").inc(report.blocks_recovered)
            m.gauge("repair.simulated_transfer_s").set(report.simulated_transfer_s)
            m.gauge("adaptive.pieces").set(
                sum(report.pieces_per_stripe.values())
            )
        return report

    # ------------------------------------------------------------------ #
    def assemble_ops(self, key: str, ctx, engine_report: AdaptiveReport):
        """The key's full data-plane op list: piece ops + final concats.

        A single whole-range piece (the quiet-network case) is passed
        through untouched, so the executed ops — and therefore the stored
        bytes and buffer names — are identical to the static path's.
        """
        pieces = engine_report.pieces[key]
        if not engine_report.journal.is_complete(key):
            raise RuntimeError(f"{key}: committed pieces do not tile [0, 1)")
        ops = [op for piece in pieces for op in piece.ops]
        if len(pieces) == 1:
            return ops, dict(pieces[0].outputs)
        ordered = sorted(pieces, key=lambda p: p.lo)
        outputs: dict[int, tuple[int, str]] = {}
        for fb in ctx.failed_blocks:
            nodes = {p.outputs[fb][0] for p in ordered}
            if len(nodes) != 1:
                raise AssertionError(
                    f"{key}: pieces disagree on block {fb}'s new node: {nodes}"
                )
            node = nodes.pop()
            out = repaired_name(ctx.prefix("a"), fb)
            ops.append(ConcatOp(node, out, tuple(p.outputs[fb][1] for p in ordered)))
            outputs[fb] = (node, out)
        return ops, outputs

    def _execute_key(self, key, sid, ctx, engine_report, stripes, verify) -> None:
        """Run one stripe's assembled ops through the agents and commit."""
        coord = self.coord
        obs = coord.obs
        ops, outputs = self.assemble_ops(key, ctx, engine_report)
        journal = self.journals.setdefault(sid, ExecutionJournal())
        span = None
        if obs is not None:
            span = obs.tracer.begin(
                f"adaptive.stripe:{sid}", actor="coordinator", cat="repair",
                stripe=sid, ops=len(ops),
                pieces=len(engine_report.pieces[key]),
                resumed_at=journal.completed,
            )
        try:
            run_plan_ops(ops, coord.agents, coord.bus, journal=journal)
            for fb, (node, buf) in outputs.items():
                agent = coord.agents[node]
                agent.store_block(
                    block_name(sid, fb), agent.scratch[buf], overwrite=True
                )
                stripes[sid].placement[fb] = node
            if verify:
                coord._verify_stripe(sid)
        finally:
            if span is not None:
                obs.tracer.unwind(span)
