"""Analysis studies from the paper: Table I and the Table II breakdown."""

from repro.analysis.failure_sim import (
    failure_ratio_exact,
    failure_ratio_montecarlo,
    simulate_failure_ratio_placement,
    table1_grid,
)
from repro.analysis.breakdown import (
    CostModel,
    RepairBreakdown,
    breakdown_for_plan,
    breakdown_from_trace,
)
from repro.analysis.reliability import (
    StripeReliability,
    mttdl_markov,
    mttdl_closed_form_m1,
    scheme_mttdl_comparison,
)
from repro.analysis.traffic import TrafficProfile, traffic_profile, compare_load_balance
from repro.analysis.whatif import WidthPlan, max_width_under_slo, repair_time_at_width, slo_table

__all__ = [
    "failure_ratio_exact",
    "failure_ratio_montecarlo",
    "simulate_failure_ratio_placement",
    "table1_grid",
    "CostModel",
    "RepairBreakdown",
    "breakdown_for_plan",
    "breakdown_from_trace",
    "StripeReliability",
    "mttdl_markov",
    "mttdl_closed_form_m1",
    "scheme_mttdl_comparison",
    "TrafficProfile",
    "traffic_profile",
    "compare_load_balance",
    "WidthPlan",
    "max_width_under_slo",
    "repair_time_at_width",
    "slo_table",
]
