"""Table II: decomposing overall repair time into transfer and "other" time.

``T_t`` comes from the fluid simulator.  ``T_o`` (CPU + disk I/O) is derived
from the *actual* GF work the executor performed, scaled from the test-size
buffers to the modeled block size and charged to a cost model calibrated to
the paper's testbed (ISA-L-class GF throughput, HDD-class disk):

    T_o = max_node(gf_bytes) / gf_throughput          (nodes compute in parallel)
        + B/disk_read + B/disk_write                  (survivor read, new-node write)
        + fixed protocol overhead

The Python LUT kernels are ~20x slower than ISA-L's SIMD kernels, so charging
*measured Python seconds* would invert the paper's conclusion; charging
measured *bytes* at calibrated throughput preserves it.  The measured Python
seconds are still reported for transparency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.repair.context import RepairContext
from repro.repair.executor import ExecutionReport
from repro.repair.plan import RepairPlan
from repro.simnet.fluid import FluidSimulator


@dataclass
class CostModel:
    """Calibrated non-network costs (defaults target the paper's EC2 nodes)."""

    gf_throughput_gbps: float = 10.0  # ISA-L-class GF(2^8) coding throughput
    disk_read_mbps: float = 250.0
    disk_write_mbps: float = 200.0
    fixed_overhead_s: float = 0.3  # coordination / RPC / process startup


@dataclass
class RepairBreakdown:
    """One Table II row."""

    scheme: str
    k: int
    m: int
    f: int
    transfer_s: float  # T_t
    other_s: float  # T_o
    python_compute_s: float  # raw measured Python GF time (unscaled info)

    @property
    def total_s(self) -> float:
        return self.transfer_s + self.other_s

    @property
    def transfer_fraction(self) -> float:
        """T_t / (T_t + T_o): the paper reports ~85-90%."""
        return self.transfer_s / self.total_s if self.total_s else 0.0


def breakdown_for_plan(
    ctx: RepairContext,
    plan: RepairPlan,
    report: ExecutionReport,
    test_block_bytes: int,
    cost: CostModel | None = None,
) -> RepairBreakdown:
    """Build a breakdown row from a simulated + executed plan.

    ``report`` must come from executing ``plan`` on blocks of
    ``test_block_bytes`` bytes; GF byte counts are scaled up to the modeled
    ``ctx.block_size_mb``.
    """
    cost = cost or CostModel()
    sim = FluidSimulator(ctx.cluster).run(plan.tasks)
    scale = (ctx.block_size_mb * 2**20) / test_block_bytes
    max_node_bytes = max(report.gf_bytes_by_node.values(), default=0) * scale
    compute_s = max_node_bytes / (cost.gf_throughput_gbps * 2**30)
    disk_s = ctx.block_size_mb / cost.disk_read_mbps + ctx.block_size_mb / cost.disk_write_mbps
    return RepairBreakdown(
        scheme=plan.scheme,
        k=ctx.code.k,
        m=ctx.code.m,
        f=ctx.f,
        transfer_s=sim.makespan,
        other_s=compute_s + disk_s + cost.fixed_overhead_s,
        python_compute_s=report.total_compute_seconds,
    )
