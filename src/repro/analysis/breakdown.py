"""Table II: decomposing overall repair time into transfer and "other" time.

``T_t`` comes from the fluid simulator.  ``T_o`` (CPU + disk I/O) is derived
from the *actual* GF work the executor performed, scaled from the test-size
buffers to the modeled block size and charged to a cost model calibrated to
the paper's testbed (ISA-L-class GF throughput, HDD-class disk):

    T_o = max_node(gf_bytes) / gf_throughput          (nodes compute in parallel)
        + B/disk_read + B/disk_write                  (survivor read, new-node write)
        + fixed protocol overhead

The Python LUT kernels are ~20x slower than ISA-L's SIMD kernels, so charging
*measured Python seconds* would invert the paper's conclusion; charging
measured *bytes* at calibrated throughput preserves it.  The measured Python
seconds are still reported for transparency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.repair.context import RepairContext
from repro.repair.executor import ExecutionReport
from repro.repair.plan import RepairPlan
from repro.simnet.fluid import FluidSimulator


@dataclass
class CostModel:
    """Calibrated non-network costs (defaults target the paper's EC2 nodes)."""

    gf_throughput_gbps: float = 10.0  # ISA-L-class GF(2^8) coding throughput
    disk_read_mbps: float = 250.0
    disk_write_mbps: float = 200.0
    fixed_overhead_s: float = 0.3  # coordination / RPC / process startup


@dataclass
class RepairBreakdown:
    """One Table II row."""

    scheme: str
    k: int
    m: int
    f: int
    transfer_s: float  # T_t
    other_s: float  # T_o
    python_compute_s: float  # raw measured Python GF time (unscaled info)

    @property
    def total_s(self) -> float:
        return self.transfer_s + self.other_s

    @property
    def transfer_fraction(self) -> float:
        """T_t / (T_t + T_o): the paper reports ~85-90%."""
        return self.transfer_s / self.total_s if self.total_s else 0.0


def breakdown_for_plan(
    ctx: RepairContext,
    plan: RepairPlan,
    report: ExecutionReport,
    test_block_bytes: int,
    cost: CostModel | None = None,
) -> RepairBreakdown:
    """Build a breakdown row from a simulated + executed plan.

    ``report`` must come from executing ``plan`` on blocks of
    ``test_block_bytes`` bytes; GF byte counts are scaled up to the modeled
    ``ctx.block_size_mb``.
    """
    cost = cost or CostModel()
    sim = FluidSimulator(ctx.cluster).run(plan.tasks)
    scale = (ctx.block_size_mb * 2**20) / test_block_bytes
    max_node_bytes = max(report.gf_bytes_by_node.values(), default=0) * scale
    compute_s = max_node_bytes / (cost.gf_throughput_gbps * 2**30)
    disk_s = ctx.block_size_mb / cost.disk_read_mbps + ctx.block_size_mb / cost.disk_write_mbps
    return RepairBreakdown(
        scheme=plan.scheme,
        k=ctx.code.k,
        m=ctx.code.m,
        f=ctx.f,
        transfer_s=sim.makespan,
        other_s=compute_s + disk_s + cost.fixed_overhead_s,
        python_compute_s=report.total_compute_seconds,
    )


def breakdown_from_trace(
    tracer,
    ctx: RepairContext,
    *,
    test_block_bytes: int,
    cost: CostModel | None = None,
    sim_label: str = "simulate",
) -> RepairBreakdown:
    """Build a Table II row from recorded spans instead of a live executor.

    The observability path to the same numbers as :func:`breakdown_for_plan`:

    * ``T_t`` is the makespan of the sim-domain root span named
      ``sim_label`` (recorded by :meth:`FluidSimulator.run` when given a
      tracer);
    * GF bytes per node are summed from the ops-domain ``compute`` spans
      inside the most recent ``execute`` span (recorded by
      :class:`~repro.repair.executor.PlanExecutor`), then scaled and charged
      to the same :class:`CostModel`;
    * the scheme is read off the ``execute`` span itself.

    ``tracer`` is a :class:`repro.obs.Tracer` that saw both the plan
    execution and the fluid simulation of the same plan.  Given those, the
    returned row is exactly the one :func:`breakdown_for_plan` computes —
    the trace-vs-live equivalence tests assert it field for field.
    """
    cost = cost or CostModel()
    executes = [s for s in tracer.spans if s.cat == "execute" and s.closed]
    if not executes:
        raise ValueError("trace contains no completed 'execute' span")
    root = executes[-1]
    sims = [
        s for s in tracer.spans
        if s.cat == "sim" and s.name == sim_label and s.closed
    ]
    if not sims:
        raise ValueError(f"trace contains no sim-domain root span named {sim_label!r}")
    makespan = sims[-1].args.get("makespan", sims[-1].t1)

    gf_by_node: dict[int, int] = {}
    python_s = 0.0
    for s in tracer.spans:
        if s.cat != "compute" or not s.closed:
            continue
        if s.t0 < root.t0 or s.t1 > root.t1:
            continue  # belongs to an earlier execution on this tracer
        node = s.args["node"]
        gf_by_node[node] = gf_by_node.get(node, 0) + s.args["bytes"]
        python_s += s.args["seconds"]

    scale = (ctx.block_size_mb * 2**20) / test_block_bytes
    max_node_bytes = max(gf_by_node.values(), default=0) * scale
    compute_s = max_node_bytes / (cost.gf_throughput_gbps * 2**30)
    disk_s = ctx.block_size_mb / cost.disk_read_mbps + ctx.block_size_mb / cost.disk_write_mbps
    return RepairBreakdown(
        scheme=root.args.get("scheme", root.name.partition(":")[2]),
        k=ctx.code.k,
        m=ctx.code.m,
        f=ctx.f,
        transfer_s=makespan,
        other_s=compute_s + disk_s + cost.fixed_overhead_s,
        python_compute_s=python_s,
    )
