"""Table I: how often do multi-block failures occur after a power outage?

The paper's §II-B study: N nodes each storing 1 TiB of 64 MiB blocks, stripes
placed uniformly at random, 1% of nodes lost after a power outage.  R is the
fraction of *affected* stripes (>= 1 lost block) that lost *multiple* blocks.

Three estimators, strongest to cheapest:

* :func:`simulate_failure_ratio_placement` — the paper's literal experiment:
  place stripes with the cluster/placement machinery, kill nodes, count.
* :func:`failure_ratio_montecarlo` — placement-free: for a uniformly-placed
  stripe, the number of failed blocks is hypergeometric; sample directly.
* :func:`failure_ratio_exact` — closed form,
  R = P(X >= 2) / P(X >= 1) with X ~ Hypergeometric(N, F, k+m).

All three agree (tests check it); the exact form reproduces Table I.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cluster.failure import FailureInjector, PowerOutage
from repro.cluster.placement import place_stripes_random
from repro.cluster.topology import Cluster

#: The paper's Table I configurations.
TABLE1_CODES = [(6, 3), (9, 3), (12, 4), (64, 8), (64, 16), (64, 24)]
TABLE1_NODES = [500, 1000, 2500, 5000]


def _hypergeom_pmf0_pmf1(n_nodes: int, n_failed: int, width: int) -> tuple[float, float]:
    """P(X = 0) and P(X = 1) for X ~ Hypergeometric(n_nodes, n_failed, width).

    Computed with log-gamma for numerical stability at N = 5000.
    """
    if width > n_nodes:
        raise ValueError("stripe width exceeds node count")

    def log_comb(a: int, b: int) -> float:
        if b < 0 or b > a:
            return -math.inf
        return math.lgamma(a + 1) - math.lgamma(b + 1) - math.lgamma(a - b + 1)

    denom = log_comb(n_nodes, width)
    p0 = math.exp(log_comb(n_nodes - n_failed, width) - denom) if width <= n_nodes - n_failed else 0.0
    l1 = log_comb(n_failed, 1) + log_comb(n_nodes - n_failed, width - 1) - denom
    p1 = math.exp(l1) if math.isfinite(l1) else 0.0
    return p0, p1


def failure_ratio_exact(k: int, m: int, n_nodes: int, loss_fraction: float = 0.01) -> float:
    """Exact R = P(X >= 2 | X >= 1) under uniform random placement."""
    n_failed = max(1, int(round(loss_fraction * n_nodes)))
    p0, p1 = _hypergeom_pmf0_pmf1(n_nodes, n_failed, k + m)
    p_ge1 = 1.0 - p0
    if p_ge1 <= 0:
        return 0.0
    return (p_ge1 - p1) / p_ge1


def failure_ratio_montecarlo(
    k: int,
    m: int,
    n_nodes: int,
    loss_fraction: float = 0.01,
    n_stripes: int = 200_000,
    rng: np.random.Generator | int = 0,
) -> float:
    """Monte-Carlo R by sampling hypergeometric failed-block counts."""
    rng = np.random.default_rng(rng) if isinstance(rng, int) else rng
    n_failed = max(1, int(round(loss_fraction * n_nodes)))
    x = rng.hypergeometric(n_failed, n_nodes - n_failed, k + m, size=n_stripes)
    affected = x >= 1
    if not affected.any():
        return 0.0
    return float((x >= 2).sum() / affected.sum())


def simulate_failure_ratio_placement(
    k: int,
    m: int,
    n_nodes: int,
    loss_fraction: float = 0.01,
    n_stripes: int = 5_000,
    rng: np.random.Generator | int = 0,
) -> float:
    """The paper's literal simulation: place stripes, pull the plug, count.

    R is a per-stripe ratio, so it is insensitive to the absolute stripe
    count; n_stripes only controls estimator variance (the paper's 1 TiB/node
    implies millions of stripes, which buys nothing but smaller error bars).
    """
    rng = np.random.default_rng(rng) if isinstance(rng, int) else rng
    cluster = Cluster.homogeneous(n_nodes, bandwidth=100.0)
    layout = place_stripes_random(cluster, n_stripes, k, m, rng=rng)
    injector = FailureInjector(cluster, rng=rng)
    injector.power_outage(PowerOutage(loss_fraction))
    dead = set(cluster.dead_ids())
    affected = 0
    multi = 0
    for stripe in layout:
        lost = stripe.failed_blocks(dead)
        if lost:
            affected += 1
            if len(lost) >= 2:
                multi += 1
    return multi / affected if affected else 0.0


def table1_grid(
    codes: list[tuple[int, int]] | None = None,
    node_counts: list[int] | None = None,
    loss_fraction: float = 0.01,
    method: str = "exact",
    rng: np.random.Generator | int = 0,
    **kwargs,
) -> dict[tuple[int, int], dict[int, float]]:
    """Compute the full Table I grid: (k, m) -> {N: R}."""
    codes = codes if codes is not None else TABLE1_CODES
    node_counts = node_counts if node_counts is not None else TABLE1_NODES
    fns = {
        "exact": failure_ratio_exact,
        "montecarlo": failure_ratio_montecarlo,
        "placement": simulate_failure_ratio_placement,
    }
    if method not in fns:
        raise ValueError(f"unknown method {method!r}")
    fn = fns[method]
    out: dict[tuple[int, int], dict[int, float]] = {}
    for k, m in codes:
        row = {}
        for n in node_counts:
            if method == "exact":
                row[n] = fn(k, m, n, loss_fraction)
            else:
                row[n] = fn(k, m, n, loss_fraction, rng=rng, **kwargs)
        out[(k, m)] = row
    return out
