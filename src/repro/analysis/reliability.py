"""Durability analysis: what faster multi-block repair buys you.

The paper motivates HMBR with failure statistics (Table I) but never closes
the loop to durability.  This module does, with the standard Markov-chain
MTTDL model for an (k, m) erasure-coded stripe:

* state i = number of currently-failed blocks in the stripe (0..m+1);
* failure transitions i -> i+1 at rate (n - i) * lambda  (n = k + m, lambda
  = per-node failure rate);
* repair transitions i -> i-1 at rate mu_i = 1 / repair_time(i) — and this
  is where the repair scheme enters: CR / IR / HMBR give different
  repair_time(f) curves, hence different MTTDLs;
* state m+1 is absorbing (data loss).

MTTDL is the expected absorption time from state 0, obtained by solving the
linear system of expected hitting times.  A closed form for m = 1 validates
the solver in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

HOURS_PER_YEAR = 24 * 365.25


@dataclass
class StripeReliability:
    """MTTDL result for one (k, m, repair-scheme) combination."""

    k: int
    m: int
    mttdl_hours: float
    repair_rates_per_hour: dict[int, float]

    @property
    def mttdl_years(self) -> float:
        return self.mttdl_hours / HOURS_PER_YEAR

    def nines(self, mission_hours: float = HOURS_PER_YEAR) -> float:
        """Durability "nines" over a mission time (exponential approx)."""
        p_loss = 1.0 - np.exp(-mission_hours / self.mttdl_hours)
        if p_loss <= 0:
            return np.inf
        return float(-np.log10(p_loss))


def mttdl_markov(
    k: int,
    m: int,
    node_mttf_hours: float,
    repair_time_hours,
    ) -> StripeReliability:
    """Expected time to data loss for a (k, m) stripe.

    ``repair_time_hours`` maps the number of failed blocks f (1..m) to the
    time a repair of that stripe takes; pass a callable or a dict.  The
    model assumes repairs of an f-failure state restore the full stripe
    (multi-block repair, as HMBR performs it) at rate 1/repair_time(f).
    """
    if callable(repair_time_hours):
        rep = {f: float(repair_time_hours(f)) for f in range(1, m + 1)}
    else:
        rep = {f: float(repair_time_hours[f]) for f in range(1, m + 1)}
    for f, t in rep.items():
        if t <= 0:
            raise ValueError(f"repair time for f={f} must be positive")
    n = k + m
    lam = 1.0 / node_mttf_hours

    # Hitting-time equations (T_i = expected time to absorption from i):
    #   (lam_i + mu_i) T_i = 1 + lam_i T_{i+1} + mu_i T_0,   T_{m+1} = 0,
    # with lam_i = (n - i) lam and mu_i = 1/repair(i) (mu_0 = 0).  Writing
    # T_i = a_i + b_i T_0 gives a stable backward recursion; the dangerous
    # quantity 1 - b_1 telescopes to the exact product
    #   prod_{i=1..m} lam_i / (lam_i + mu_i),
    # avoiding the catastrophic cancellation a naive linear solve suffers
    # when mu >> lam (repairs in seconds, failures in months).
    lam_i = {i: (n - i) * lam for i in range(m + 1)}
    mu_i = {i: 1.0 / rep[i] for i in range(1, m + 1)}
    a = 0.0  # a_{i+1}, starting from a_{m+1} = 0
    for i in range(m, 0, -1):
        a = (1.0 + lam_i[i] * a) / (lam_i[i] + mu_i[i])
    one_minus_b1 = 1.0
    for i in range(1, m + 1):
        one_minus_b1 *= lam_i[i] / (lam_i[i] + mu_i[i])
    t0 = (1.0 / lam_i[0] + a) / one_minus_b1
    return StripeReliability(
        k=k,
        m=m,
        mttdl_hours=float(t0),
        repair_rates_per_hour={f: 1.0 / rt for f, rt in rep.items()},
    )


def mttdl_closed_form_m1(k: int, node_mttf_hours: float, repair_hours: float) -> float:
    """Textbook closed form for m = 1 (validates the Markov solver).

    With n = k+1, lambda = 1/MTTF, mu = 1/repair:
    MTTDL = (mu + (2n - 1) lambda) / (n (n-1) lambda^2).
    """
    n = k + 1
    lam = 1.0 / node_mttf_hours
    mu = 1.0 / repair_hours
    return (mu + (2 * n - 1) * lam) / (n * (n - 1) * lam**2)


def scheme_mttdl_comparison(
    k: int,
    m: int,
    repair_times_by_scheme: dict[str, dict[int, float]],
    node_mttf_hours: float = 10_000.0,
    detection_delay_hours: float = 0.0,
) -> dict[str, StripeReliability]:
    """MTTDL per repair scheme given measured repair_time(f) seconds.

    ``repair_times_by_scheme[scheme][f]`` is the measured repair transfer
    time in **seconds** for f failed blocks (e.g. from the experiment
    harnesses); converted to hours internally.  ``detection_delay_hours``
    adds the failure-detection + scheduling latency (heartbeat timeouts are
    tens of seconds to minutes in HDFS) to every repair — without it the
    absolute MTTDLs are astronomically optimistic, though the scheme
    *ratios* are unaffected only mildly.
    """
    out = {}
    for scheme, by_f in repair_times_by_scheme.items():
        rep_hours = {f: detection_delay_hours + t / 3600.0 for f, t in by_f.items()}
        missing = set(range(1, m + 1)) - set(rep_hours)
        if missing:
            raise ValueError(f"{scheme}: missing repair times for f in {sorted(missing)}")
        out[scheme] = mttdl_markov(k, m, node_mttf_hours, rep_hours)
    return out
