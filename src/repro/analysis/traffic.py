"""Traffic and load-balance analysis of repair plans.

The paper argues qualitatively that IR "keeps balanced load on each node"
(§IV-C) while CR concentrates everything on the center.  This module makes
that quantitative: per-node send/receive volumes for any plan, plus two
imbalance metrics (max/mean ratio and the Gini coefficient), so schemes can
be compared on fairness as well as speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.repair.plan import RepairPlan
from repro.simnet.flows import DelayTask


@dataclass
class TrafficProfile:
    """Per-node traffic volumes (MB) implied by a plan's timing view."""

    scheme: str
    sent_mb: dict[int, float]
    received_mb: dict[int, float]
    total_mb: float

    def volumes(self, direction: str = "sent") -> np.ndarray:
        data = self.sent_mb if direction == "sent" else self.received_mb
        return np.array(sorted(data.values()), dtype=float)

    def max_over_mean(self, direction: str = "sent") -> float:
        """1.0 = perfectly balanced; k = one node does everything."""
        v = self.volumes(direction)
        if v.size == 0 or v.mean() == 0:
            return 0.0
        return float(v.max() / v.mean())

    def gini(self, direction: str = "sent") -> float:
        """Gini coefficient of the per-node volumes (0 = equal, ->1 = one hog)."""
        v = self.volumes(direction)
        if v.size == 0 or v.sum() == 0:
            return 0.0
        v = np.sort(v)
        n = v.size
        index = np.arange(1, n + 1)
        return float((2 * (index * v).sum() - (n + 1) * v.sum()) / (n * v.sum()))


def traffic_profile(plan: RepairPlan) -> TrafficProfile:
    """Aggregate per-node send/receive volumes from the plan's tasks."""
    sent: dict[int, float] = {}
    received: dict[int, float] = {}
    total = 0.0
    for t in plan.tasks:
        if isinstance(t, DelayTask):
            continue
        for src, dst in t.hops:
            sent[src] = sent.get(src, 0.0) + t.size_mb
            received[dst] = received.get(dst, 0.0) + t.size_mb
            total += t.size_mb
    return TrafficProfile(plan.scheme, sent, received, total)


def compare_load_balance(plans: list[RepairPlan]) -> list[dict]:
    """Fairness comparison rows for a set of plans on the same scenario."""
    rows = []
    for plan in plans:
        prof = traffic_profile(plan)
        rows.append(
            {
                "scheme": plan.scheme,
                "total_mb": prof.total_mb,
                "max_recv_mb": max(prof.received_mb.values(), default=0.0),
                "recv_max_over_mean": prof.max_over_mean("received"),
                "send_gini": prof.gini("sent"),
                "recv_gini": prof.gini("received"),
            }
        )
    return rows
