"""Capacity planning: how wide can stripes go under a repair-time SLO?

Operators adopting wide stripes face the inverse of the paper's question:
given a bandwidth environment, a failure tolerance m, a worst-case f and a
repair-time budget, what is the widest (cheapest) stripe each repair scheme
supports?  This module answers it by monotone search over k against the
simulated repair time, and tabulates the resulting redundancy — i.e. how
many extra bytes of storage slow repair machinery costs you.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import build_scenario, transfer_time


@dataclass
class WidthPlan:
    """Result of a width search for one scheme."""

    scheme: str
    max_k: int
    repair_s_at_max: float
    redundancy: float  # (k + m) / k at max_k

    @property
    def feasible(self) -> bool:
        return self.max_k > 0


def repair_time_at_width(
    k: int,
    m: int,
    f: int,
    scheme: str,
    wld: str = "WLD-4x",
    seeds: tuple[int, ...] = (2023, 2024, 2025),
    block_size_mb: float = 64.0,
) -> float:
    """Mean simulated repair transfer time for one configuration.

    Averaged over seeded bandwidth/failure draws: each width samples a fresh
    WLD environment, so a single draw is noisy in k even though the trend is
    increasing.
    """
    times = []
    for seed in seeds:
        sc = build_scenario(k, m, f, wld=wld, seed=seed, block_size_mb=block_size_mb)
        times.append(transfer_time(sc.ctx, scheme))
    return float(sum(times) / len(times))


def max_width_under_slo(
    slo_s: float,
    m: int,
    f: int,
    scheme: str,
    k_min: int = 2,
    k_max: int = 128,
    k_step: int = 2,
    **kwargs,
) -> WidthPlan:
    """Largest scanned k whose mean repair time meets the SLO.

    The trend of repair time in k is increasing but individual draws jitter
    (every width re-samples its bandwidth environment), so this scans the
    ``k_min..k_max`` grid rather than bisecting, and returns the largest
    grid point satisfying the SLO.  Returns ``max_k = 0`` when even
    ``k_min`` misses it.
    """
    if slo_s <= 0:
        raise ValueError("SLO must be positive")
    if f > m:
        raise ValueError("f cannot exceed m")
    if k_step < 1:
        raise ValueError("k_step must be >= 1")
    best_k, best_t = 0, float("inf")
    ks = list(range(k_min, k_max + 1, k_step))
    if ks[-1] != k_max:
        ks.append(k_max)
    for k in ks:
        t = repair_time_at_width(k, m, f, scheme, **kwargs)
        if t <= slo_s and k > best_k:
            best_k, best_t = k, t
    if best_k == 0:
        return WidthPlan(scheme, 0, float("inf"), float("inf"))
    return WidthPlan(scheme, best_k, best_t, (best_k + m) / best_k)


def slo_table(
    slo_s: float,
    m: int,
    f: int,
    schemes: tuple[str, ...] = ("cr", "ir", "hmbr"),
    **kwargs,
) -> list[dict]:
    """One row per scheme: widest stripe and redundancy under the SLO."""
    rows = []
    for scheme in schemes:
        plan = max_width_under_slo(slo_s, m, f, scheme, **kwargs)
        rows.append(
            {
                "scheme": scheme,
                "max_k": plan.max_k,
                "redundancy_x": plan.redundancy,
                "repair_s": plan.repair_s_at_max,
            }
        )
    return rows
