"""Cluster substrate: nodes, racks, bandwidth workloads, placement, failures.

Replaces the paper's EC2 testbed (1 coordinator + 88 ``m3.large`` data nodes
with ``tc``-shaped bandwidths) with a declarative cluster model consumed by
the network simulator (:mod:`repro.simnet`) and the repair planners
(:mod:`repro.repair`).
"""

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.cluster.bandwidth import (
    BandwidthDataset,
    make_wld,
    WLD_PRESETS,
    load_bandwidth_csv,
    save_bandwidth_csv,
)
from repro.cluster.placement import (
    place_stripes_random,
    place_stripes_rack_aware,
    random_stripe_nodes,
)
from repro.cluster.failure import FailureInjector, PowerOutage
from repro.cluster.probing import BandwidthEstimator, measure_bandwidths, noisy_cluster
from repro.cluster.datasets import canonical_wld, load_wld, materialize_datasets

__all__ = [
    "Node",
    "Cluster",
    "BandwidthDataset",
    "make_wld",
    "WLD_PRESETS",
    "load_bandwidth_csv",
    "save_bandwidth_csv",
    "place_stripes_random",
    "place_stripes_rack_aware",
    "random_stripe_nodes",
    "FailureInjector",
    "PowerOutage",
    "BandwidthEstimator",
    "measure_bandwidths",
    "noisy_cluster",
    "canonical_wld",
    "load_wld",
    "materialize_datasets",
]
