"""Bandwidth workload datasets (WLD-2x / WLD-4x / WLD-8x).

The paper evaluates under three synthetic bandwidth datasets drawn from a
normal distribution, differing in the *gap* between the fastest and slowest
node (2x, 4x, 8x).  We regenerate them deterministically from seeds and also
provide the uniform and zipf families named in the paper's future work.

Calibration: the fastest node is pinned at 200 MB/s, matching the effective
throughput of the paper's EC2 ``m3.large`` instances (their Table II numbers
back out to a ~200 MB/s fastest node and a ~25 MB/s slowest node at 8x); the
slowest node is ``200 / gap``.  Samples are affinely rescaled after truncation
so the configured gap is exact.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

#: Fastest-node bandwidth (MB/s) shared by all presets.
BASE_MAX_BANDWIDTH = 200.0

#: The paper's three datasets: name -> max/min gap.
WLD_PRESETS = {"WLD-2x": 2.0, "WLD-4x": 4.0, "WLD-8x": 8.0}


@dataclass
class BandwidthDataset:
    """Per-node uplink/downlink bandwidths plus provenance metadata."""

    name: str
    uplinks: np.ndarray
    downlinks: np.ndarray
    gap: float
    distribution: str
    seed: int

    def __post_init__(self) -> None:
        self.uplinks = np.asarray(self.uplinks, dtype=float)
        self.downlinks = np.asarray(self.downlinks, dtype=float)
        if self.uplinks.shape != self.downlinks.shape:
            raise ValueError("uplink/downlink vectors differ in shape")
        if np.any(self.uplinks <= 0) or np.any(self.downlinks <= 0):
            raise ValueError("bandwidths must be positive")

    def __len__(self) -> int:
        return len(self.uplinks)

    @property
    def measured_gap(self) -> float:
        hi = max(self.uplinks.max(), self.downlinks.max())
        lo = min(self.uplinks.min(), self.downlinks.min())
        return hi / lo


def _sample(dist: str, n: int, lo: float, hi: float, rng: np.random.Generator) -> np.ndarray:
    """Draw n samples in [lo, hi] from the requested family, exact endpoints."""
    if n == 1:
        return np.array([(lo + hi) / 2.0])
    if dist == "normal":
        mean, sd = (lo + hi) / 2.0, (hi - lo) / 6.0
        raw = rng.normal(mean, sd, size=n)
        raw = np.clip(raw, lo, hi)
    elif dist == "uniform":
        raw = rng.uniform(lo, hi, size=n)
    elif dist == "zipf":
        # bandwidth proportional to 1/rank^s, shuffled; heavy skew toward lo.
        ranks = np.arange(1, n + 1, dtype=float)
        raw = 1.0 / ranks**0.8
        rng.shuffle(raw)
    else:
        raise ValueError(f"unknown distribution {dist!r}")
    # Affine rescale so min -> lo and max -> hi exactly (gap is exact).
    rmin, rmax = raw.min(), raw.max()
    if rmax == rmin:
        return np.full(n, (lo + hi) / 2.0)
    return lo + (raw - rmin) * (hi - lo) / (rmax - rmin)


def make_wld(
    n: int,
    gap: float | str,
    distribution: str = "normal",
    seed: int = 2023,
    base_max: float = BASE_MAX_BANDWIDTH,
    symmetric: bool = False,
) -> BandwidthDataset:
    """Generate a WLD-style dataset for ``n`` nodes.

    Parameters
    ----------
    gap : numeric max/min ratio, or a preset name like ``"WLD-8x"``.
    distribution : ``"normal"`` (paper default), ``"uniform"`` or ``"zipf"``.
    symmetric : if True, downlink == uplink per node; otherwise drawn
        independently (EC2 links are full duplex).
    """
    if isinstance(gap, str):
        name = gap
        if gap not in WLD_PRESETS:
            raise KeyError(f"unknown preset {gap!r}; presets: {sorted(WLD_PRESETS)}")
        gap_value = WLD_PRESETS[gap]
    else:
        gap_value = float(gap)
        name = f"WLD-{gap_value:g}x"
    if gap_value < 1.0:
        raise ValueError("gap must be >= 1")
    lo, hi = base_max / gap_value, base_max
    rng = np.random.default_rng(seed)
    up = _sample(distribution, n, lo, hi, rng)
    down = up.copy() if symmetric else _sample(distribution, n, lo, hi, rng)
    return BandwidthDataset(name, up, down, gap_value, distribution, seed)


def save_bandwidth_csv(dataset: BandwidthDataset, path: str | Path) -> None:
    """Persist a dataset in the same shape as the paper's GitHub CSVs."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["node", "uplink_mbps", "downlink_mbps"])
        for i, (u, d) in enumerate(zip(dataset.uplinks, dataset.downlinks)):
            writer.writerow([i, f"{u:.4f}", f"{d:.4f}"])


def load_bandwidth_csv(path: str | Path, name: str | None = None) -> BandwidthDataset:
    """Load a dataset saved by :func:`save_bandwidth_csv`."""
    path = Path(path)
    ups, downs = [], []
    with path.open() as fh:
        for row in csv.DictReader(fh):
            ups.append(float(row["uplink_mbps"]))
            downs.append(float(row["downlink_mbps"]))
    up, down = np.array(ups), np.array(downs)
    gap = max(up.max(), down.max()) / min(up.min(), down.min())
    return BandwidthDataset(name or path.stem, up, down, gap, "csv", seed=-1)
