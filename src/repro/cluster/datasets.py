"""Canonical WLD bandwidth datasets (the CSVs the paper ships on GitHub).

The paper's evaluation uses three fixed datasets for its 88 EC2 data nodes
plus coordinator.  We pin the canonical reproductions here: 96 nodes (88
data + 8 spares) per dataset, generated from the preset gap with a fixed
seed, and materialize them as CSVs on demand so downstream users can diff /
version them exactly like the originals.
"""

from __future__ import annotations

from pathlib import Path

from repro.cluster.bandwidth import (
    BandwidthDataset,
    WLD_PRESETS,
    load_bandwidth_csv,
    make_wld,
    save_bandwidth_csv,
)

#: Canonical node count: the paper's 88 data nodes + 8 repair spares.
CANONICAL_NODES = 96

#: Canonical generation seed (fixed so every checkout agrees bit-for-bit).
CANONICAL_SEED = 20230515


def canonical_wld(name: str) -> BandwidthDataset:
    """The canonical dataset for a preset name ("WLD-2x" / "WLD-4x" / "WLD-8x")."""
    if name not in WLD_PRESETS:
        raise KeyError(f"unknown preset {name!r}; presets: {sorted(WLD_PRESETS)}")
    return make_wld(CANONICAL_NODES, name, seed=CANONICAL_SEED)


def materialize_datasets(directory: str | Path) -> dict[str, Path]:
    """Write all three canonical datasets as CSVs; returns name -> path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out = {}
    for name in sorted(WLD_PRESETS):
        path = directory / f"{name.lower().replace('-', '_')}.csv"
        save_bandwidth_csv(canonical_wld(name), path)
        out[name] = path
    return out


def load_wld(name: str, directory: str | Path | None = None) -> BandwidthDataset:
    """Load a canonical dataset, materializing the CSV if needed.

    With ``directory`` the CSV is read from (and created in) that directory;
    without it the dataset is generated in memory — both paths are
    bit-identical by construction.
    """
    if directory is None:
        return canonical_wld(name)
    directory = Path(directory)
    path = directory / f"{name.lower().replace('-', '_')}.csv"
    if not path.exists():
        materialize_datasets(directory)
    return load_bandwidth_csv(path, name=name)
