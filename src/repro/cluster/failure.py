"""Failure injection.

Two failure processes from the paper:

* targeted node/rack kills (driving the repair experiments), and
* the §II-B *power outage* model: a whole-cluster power cycle after which a
  fraction (0.5%-1%) of nodes never come back [Cidon et al., Copysets].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import Cluster


@dataclass
class PowerOutage:
    """Correlated failure event: ``loss_fraction`` of all nodes die at once."""

    loss_fraction: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.loss_fraction <= 1.0:
            raise ValueError("loss fraction must be in (0, 1]")

    def sample_dead_nodes(self, n_nodes: int, rng: np.random.Generator) -> np.ndarray:
        """Node indices lost in the outage (at least one if fraction > 0)."""
        n_dead = max(1, int(round(self.loss_fraction * n_nodes)))
        return rng.choice(n_nodes, size=n_dead, replace=False)


class FailureInjector:
    """Stateful failure injector bound to a cluster."""

    def __init__(self, cluster: Cluster, rng: np.random.Generator | int = 0):
        self.cluster = cluster
        self.rng = np.random.default_rng(rng) if isinstance(rng, int) else rng
        self.killed: list[int] = []

    def kill(self, node_ids) -> list[int]:
        """Kill specific nodes; returns the ids actually transitioned."""
        newly = []
        for i in node_ids:
            if self.cluster[i].alive:
                self.cluster[i].fail()
                newly.append(i)
        self.killed.extend(newly)
        return newly

    def kill_random(self, count: int, exclude=()) -> list[int]:
        """Kill ``count`` random alive nodes (outside ``exclude``)."""
        pool = [i for i in self.cluster.alive_ids() if i not in set(exclude)]
        if count > len(pool):
            raise ValueError(f"cannot kill {count} of {len(pool)} candidates")
        chosen = self.rng.choice(len(pool), size=count, replace=False)
        return self.kill([pool[i] for i in chosen])

    def kill_rack(self, rack: int) -> list[int]:
        """Fail every node in a rack (whole-rack outage)."""
        return self.kill(self.cluster.racks().get(rack, []))

    def power_outage(self, outage: PowerOutage) -> list[int]:
        """Apply the correlated power-outage loss model."""
        ids = self.cluster.node_ids()
        dead_idx = outage.sample_dead_nodes(len(ids), self.rng)
        return self.kill([ids[i] for i in dead_idx])

    def heal_all(self) -> None:
        self.cluster.recover_all()
        self.killed.clear()
