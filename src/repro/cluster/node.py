"""Node model: the unit of failure and of bandwidth contention.

Bandwidths are in MB/s to match the paper's examples (Figure 2 gives each
node's uplink/downlink in MB/s).  ``cross_uplink``/``cross_downlink`` cap the
node's cross-rack traffic separately (the paper shapes these with ``tc`` in
Experiment 4); ``None`` means no extra cross-rack cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    node_id: int
    uplink: float
    downlink: float
    rack: int = 0
    alive: bool = True
    #: Extra caps applied only to cross-rack flows (None = uncapped).
    cross_uplink: float | None = None
    cross_downlink: float | None = None
    #: Free-form labels ("data", "new", "coordinator").
    tags: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.uplink <= 0 or self.downlink <= 0:
            raise ValueError(f"node {self.node_id}: bandwidths must be positive")
        for cap in (self.cross_uplink, self.cross_downlink):
            if cap is not None and cap <= 0:
                raise ValueError(f"node {self.node_id}: cross-rack caps must be positive")

    def fail(self) -> None:
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    def effective_uplink(self, cross_rack: bool) -> float:
        """Uplink capacity for a flow, given whether it crosses racks."""
        if cross_rack and self.cross_uplink is not None:
            return min(self.uplink, self.cross_uplink)
        return self.uplink

    def effective_downlink(self, cross_rack: bool) -> float:
        if cross_rack and self.cross_downlink is not None:
            return min(self.downlink, self.cross_downlink)
        return self.downlink
