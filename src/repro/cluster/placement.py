"""Stripe placement policies.

Two placements are used in the paper: flat random placement across all nodes
(the Table I failure study assumes "stripes distributed randomly across all
nodes") and rack-aware placement that bounds how many blocks of one stripe a
single rack may hold (standard fault-tolerance practice, §IV-B).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.topology import Cluster
from repro.ec.stripe import Stripe, StripeLayout


def random_stripe_nodes(
    candidates: list[int], width: int, rng: np.random.Generator
) -> list[int]:
    """Pick ``width`` distinct nodes uniformly at random."""
    if width > len(candidates):
        raise ValueError(f"stripe width {width} exceeds {len(candidates)} candidate nodes")
    idx = rng.choice(len(candidates), size=width, replace=False)
    return [candidates[i] for i in idx]


def place_stripes_random(
    cluster: Cluster,
    n_stripes: int,
    k: int,
    m: int,
    rng: np.random.Generator | int = 0,
    candidates: list[int] | None = None,
) -> StripeLayout:
    """Place ``n_stripes`` (k, m) stripes uniformly across alive nodes.

    ``candidates`` restricts placement (e.g. to exclude spare nodes reserved
    as repair targets); defaults to every alive node.
    """
    rng = np.random.default_rng(rng) if isinstance(rng, int) else rng
    if candidates is None:
        candidates = cluster.alive_ids()
    else:
        candidates = [i for i in candidates if cluster[i].alive]
    layout = StripeLayout()
    for sid in range(n_stripes):
        layout.add(Stripe(sid, k, m, random_stripe_nodes(candidates, k + m, rng)))
    return layout


def place_stripes_rack_aware(
    cluster: Cluster,
    n_stripes: int,
    k: int,
    m: int,
    max_blocks_per_rack: int,
    rng: np.random.Generator | int = 0,
    candidates: list[int] | None = None,
) -> StripeLayout:
    """Place stripes with at most ``max_blocks_per_rack`` blocks per rack.

    With c = max_blocks_per_rack <= m, a whole-rack failure destroys at most
    c <= m blocks of any stripe, so rack failures stay repairable.
    """
    rng = np.random.default_rng(rng) if isinstance(rng, int) else rng
    pool = set(cluster.alive_ids() if candidates is None else candidates)
    racks = {
        r: [i for i in ids if cluster[i].alive and i in pool]
        for r, ids in cluster.racks().items()
    }
    racks = {r: ids for r, ids in racks.items() if ids}
    width = k + m
    capacity = sum(min(len(ids), max_blocks_per_rack) for ids in racks.values())
    if capacity < width:
        raise ValueError(
            f"cannot place width-{width} stripe with <= {max_blocks_per_rack} "
            f"blocks per rack across {len(racks)} racks (capacity {capacity})"
        )
    layout = StripeLayout()
    rack_ids = sorted(racks)
    for sid in range(n_stripes):
        # Shuffle racks, then round-robin up to the per-rack cap.
        order = list(rack_ids)
        rng.shuffle(order)
        placement: list[int] = []
        per_rack_pick: dict[int, list[int]] = {}
        for r in order:
            ids = list(racks[r])
            rng.shuffle(ids)
            per_rack_pick[r] = ids
        level = 0
        while len(placement) < width:
            progress = False
            for r in order:
                if len(placement) == width:
                    break
                picks = per_rack_pick[r]
                if level < min(len(picks), max_blocks_per_rack):
                    placement.append(picks[level])
                    progress = True
            if not progress:
                raise AssertionError("placement loop stalled despite capacity check")
            level += 1
        layout.add(Stripe(sid, k, m, placement))
    return layout
