"""Bandwidth-table acquisition and estimation error.

§IV of the paper assumes "we have obtained the uplink and downlink bandwidth
of all nodes".  This module supplies that step and its failure modes:

* :func:`measure_bandwidths` — active probing: one flow at a time against a
  well-provisioned reference node, timed in the fluid simulator, exactly how
  a coordinator would measure an idle cluster;
* :class:`BandwidthEstimator` — passive EWMA estimation from observed
  transfer rates (repair traffic itself is a bandwidth signal);
* :func:`noisy_cluster` — a cluster clone whose bandwidths carry
  multiplicative error, for studying how sensitive HMBR's split is to a
  stale or mismeasured table (see ``experiments/sensitivity.py``).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.simnet.flows import Flow
from repro.simnet.fluid import FluidSimulator


def measure_bandwidths(
    cluster: Cluster, reference_node: int, probe_mb: float = 64.0
) -> dict[int, tuple[float, float]]:
    """Probe every alive node's uplink and downlink against a reference.

    The reference must be provisioned above every probed link (otherwise the
    probe measures the reference, not the target).  Returns
    ``node -> (uplink, downlink)`` estimates; exact in an idle cluster.
    """
    ref = cluster[reference_node]
    sim = FluidSimulator(cluster)
    out: dict[int, tuple[float, float]] = {}
    for nid in cluster.alive_ids():
        if nid == reference_node:
            continue
        up_probe = sim.run([Flow("probe-up", nid, reference_node, probe_mb)])
        down_probe = sim.run([Flow("probe-down", reference_node, nid, probe_mb)])
        up = probe_mb / up_probe.makespan
        down = probe_mb / down_probe.makespan
        if up >= ref.downlink - 1e-9 or down >= ref.uplink - 1e-9:
            raise ValueError(
                f"reference node {reference_node} saturates before node {nid}; "
                "probe with a faster reference"
            )
        out[nid] = (up, down)
    return out


class BandwidthEstimator:
    """Passive EWMA bandwidth estimates from observed transfer rates.

    ``alpha`` is the smoothing factor (1.0 = trust only the latest sample).
    Estimates track the *observed throughput*, which lower-bounds link rates
    under contention — callers should feed samples from uncontended (single
    connection) periods, as the probe harness does.
    """

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.up: dict[int, float] = {}
        self.down: dict[int, float] = {}

    def observe(self, node: int, direction: str, rate_mbps: float) -> None:
        if rate_mbps <= 0:
            raise ValueError("observed rate must be positive")
        table = {"up": self.up, "down": self.down}.get(direction)
        if table is None:
            raise ValueError("direction must be 'up' or 'down'")
        if node in table:
            table[node] = (1 - self.alpha) * table[node] + self.alpha * rate_mbps
        else:
            table[node] = rate_mbps

    def estimate(self, node: int) -> tuple[float | None, float | None]:
        return self.up.get(node), self.down.get(node)

    def estimated_cluster(self, true_cluster: Cluster) -> Cluster:
        """A planning view: estimated rates where known, truth elsewhere."""
        nodes = []
        for nid in true_cluster.node_ids():
            n = true_cluster[nid]
            up, down = self.estimate(nid)
            clone = Node(
                nid,
                uplink=up if up is not None else n.uplink,
                downlink=down if down is not None else n.downlink,
                rack=n.rack,
                alive=n.alive,
                cross_uplink=n.cross_uplink,
                cross_downlink=n.cross_downlink,
            )
            nodes.append(clone)
        est = Cluster(nodes)
        est.rack_trunks = dict(true_cluster.rack_trunks)
        return est


def noisy_cluster(
    cluster: Cluster, rel_error: float, rng: np.random.Generator | int = 0
) -> Cluster:
    """Clone with multiplicative bandwidth noise ~ exp(N(0, rel_error)).

    ``rel_error = 0.2`` means the table is typically ~20% off — a realistic
    staleness level for once-a-minute probing on shared tenancy.
    """
    if rel_error < 0:
        raise ValueError("rel_error must be non-negative")
    rng = np.random.default_rng(rng) if isinstance(rng, int) else rng
    nodes = []
    for nid in cluster.node_ids():
        n = cluster[nid]
        fu, fd = np.exp(rng.normal(0.0, rel_error, size=2))
        nodes.append(
            Node(
                nid,
                uplink=n.uplink * float(fu),
                downlink=n.downlink * float(fd),
                rack=n.rack,
                alive=n.alive,
                cross_uplink=None if n.cross_uplink is None else n.cross_uplink * float(fu),
                cross_downlink=None if n.cross_downlink is None else n.cross_downlink * float(fd),
            )
        )
    out = Cluster(nodes)
    out.rack_trunks = dict(cluster.rack_trunks)
    return out
