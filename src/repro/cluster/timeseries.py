"""Time-varying bandwidth traces (mean-reverting OU process).

The paper's future work asks for "real-world network bandwidth workloads".
Shared-tenancy link rates are well modeled as mean-reverting noise around a
base rate; we generate Ornstein-Uhlenbeck sample paths per node and lower
them onto the simulator's :class:`~repro.simnet.dynamic.BandwidthEvent`
timeline, so any repair can be evaluated under realistic churn.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.topology import Cluster
from repro.simnet.dynamic import BandwidthEvent


def ou_path(
    base: float,
    duration_s: float,
    step_s: float,
    sigma: float,
    theta: float,
    rng: np.random.Generator,
    floor_fraction: float = 0.1,
) -> np.ndarray:
    """One OU sample path around ``base``: x' = theta (base - x) + sigma dW.

    ``sigma`` is in the units of ``base`` per sqrt(second); the path is
    floored at ``floor_fraction * base`` (links never drop to zero).
    """
    if duration_s <= 0 or step_s <= 0:
        raise ValueError("duration and step must be positive")
    n = int(np.ceil(duration_s / step_s)) + 1
    x = np.empty(n)
    x[0] = base
    sq = np.sqrt(step_s)
    noise = rng.normal(0.0, 1.0, size=n - 1)
    for i in range(1, n):
        drift = theta * (base - x[i - 1]) * step_s
        x[i] = x[i - 1] + drift + sigma * sq * noise[i - 1]
    return np.maximum(x, floor_fraction * base)


def bandwidth_trace_events(
    cluster: Cluster,
    duration_s: float,
    step_s: float = 1.0,
    rel_sigma: float = 0.15,
    theta: float = 0.5,
    rng: np.random.Generator | int = 0,
    nodes: list[int] | None = None,
) -> list[BandwidthEvent]:
    """OU bandwidth churn for (a subset of) the cluster as simulator events.

    ``rel_sigma`` scales the volatility relative to each node's base rate.
    Events are emitted at every step for every selected node; the simulator
    merges them efficiently (one rate re-solve per step).
    """
    rng = np.random.default_rng(rng) if isinstance(rng, int) else rng
    nodes = nodes if nodes is not None else cluster.alive_ids()
    events: list[BandwidthEvent] = []
    n_steps = int(np.ceil(duration_s / step_s))
    for nid in nodes:
        node = cluster[nid]
        up = ou_path(node.uplink, duration_s, step_s, rel_sigma * node.uplink, theta, rng)
        down = ou_path(
            node.downlink, duration_s, step_s, rel_sigma * node.downlink, theta, rng
        )
        for i in range(1, n_steps + 1):
            events.append(
                BandwidthEvent(
                    time=i * step_s,
                    node=nid,
                    uplink=float(up[i]),
                    downlink=float(down[i]),
                )
            )
    events.sort(key=lambda e: e.time)
    return events
