"""Time-varying bandwidth traces (mean-reverting OU process).

The paper's future work asks for "real-world network bandwidth workloads".
Shared-tenancy link rates are well modeled as mean-reverting noise around a
base rate; we generate Ornstein-Uhlenbeck sample paths per node and lower
them onto the simulator's :class:`~repro.simnet.dynamic.BandwidthEvent`
timeline, so any repair can be evaluated under realistic churn.

The recurrence is evaluated by :func:`ou_paths`, which advances *all*
requested paths one step at a time with vectorized NumPy element-wise
arithmetic.  Element-wise IEEE operations are bit-identical to the scalar
loop they replace, so a batched trace equals the old one-path-at-a-time
generation bit for bit on the same seed (pinned by
``tests/test_cluster_timeseries.py``) while the Python-level loop count
drops from ``n_paths * n_steps`` to ``n_steps``.

The public entry point for trace generation is
:meth:`repro.simnet.network.NetworkTrace.ou`; the module-level
:func:`bandwidth_trace_events` survives as a deprecation shim that routes
through the same implementation.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.topology import Cluster
from repro.simnet.dynamic import BandwidthEvent


def ou_paths(
    bases: np.ndarray,
    duration_s: float,
    step_s: float,
    sigmas: np.ndarray,
    theta: float,
    rng: np.random.Generator,
    floor_fraction: float = 0.1,
) -> np.ndarray:
    """A batch of OU sample paths, one row per entry of ``bases``.

    Noise is drawn in one ``(n_paths, n_steps)`` block — NumPy fills the
    array from the generator's stream in row-major order, so the draws per
    path are exactly the draws sequential one-path calls would have
    consumed.  The recurrence then advances all rows together; per element
    the arithmetic (order of operations, operand values) is identical to
    the scalar loop, hence bit-for-bit equal results.
    """
    if duration_s <= 0 or step_s <= 0:
        raise ValueError("duration and step must be positive")
    bases = np.atleast_1d(np.asarray(bases, dtype=float))
    sigmas = np.broadcast_to(np.asarray(sigmas, dtype=float), bases.shape)
    n = int(np.ceil(duration_s / step_s)) + 1
    x = np.empty((bases.shape[0], n))
    x[:, 0] = bases
    sq = np.sqrt(step_s)
    noise = rng.normal(0.0, 1.0, size=(bases.shape[0], n - 1))
    for i in range(1, n):
        drift = theta * (bases - x[:, i - 1]) * step_s
        x[:, i] = x[:, i - 1] + drift + sigmas * sq * noise[:, i - 1]
    return np.maximum(x, floor_fraction * bases[:, None])


def ou_path(
    base: float,
    duration_s: float,
    step_s: float,
    sigma: float,
    theta: float,
    rng: np.random.Generator,
    floor_fraction: float = 0.1,
) -> np.ndarray:
    """One OU sample path around ``base``: x' = theta (base - x) + sigma dW.

    ``sigma`` is in the units of ``base`` per sqrt(second); the path is
    floored at ``floor_fraction * base`` (links never drop to zero).
    Delegates to the vectorized :func:`ou_paths` (one row), which is
    bit-for-bit equal to the historical Python-loop implementation.
    """
    return ou_paths(
        np.array([float(base)]),
        duration_s,
        step_s,
        np.array([float(sigma)]),
        theta,
        rng,
        floor_fraction,
    )[0]


def _trace_events(
    cluster: Cluster,
    duration_s: float,
    step_s: float = 1.0,
    rel_sigma: float = 0.15,
    theta: float = 0.5,
    rng: np.random.Generator | int = 0,
    nodes: list[int] | None = None,
) -> list[BandwidthEvent]:
    """OU bandwidth churn for (a subset of) the cluster as simulator events.

    ``rel_sigma`` scales the volatility relative to each node's base rate.
    Events are emitted at every step for every selected node; the simulator
    merges them efficiently (one rate re-solve per step).  All paths are
    generated in one :func:`ou_paths` batch (uplink then downlink per node,
    in node order — the historical draw order).
    """
    rng = np.random.default_rng(rng) if isinstance(rng, int) else rng
    nodes = list(nodes) if nodes is not None else cluster.alive_ids()
    n_steps = int(np.ceil(duration_s / step_s))
    if not nodes:
        return []
    bases = np.array(
        [r for nid in nodes for r in (cluster[nid].uplink, cluster[nid].downlink)]
    )
    paths = ou_paths(bases, duration_s, step_s, rel_sigma * bases, theta, rng)
    events: list[BandwidthEvent] = []
    for i in range(1, n_steps + 1):
        for j, nid in enumerate(nodes):
            events.append(
                BandwidthEvent(
                    time=i * step_s,
                    node=nid,
                    uplink=float(paths[2 * j, i]),
                    downlink=float(paths[2 * j + 1, i]),
                )
            )
    return events


def bandwidth_trace_events(
    cluster: Cluster,
    duration_s: float,
    step_s: float = 1.0,
    rel_sigma: float = 0.15,
    theta: float = 0.5,
    rng: np.random.Generator | int = 0,
    nodes: list[int] | None = None,
) -> list[BandwidthEvent]:
    """Deprecated shim: use :meth:`repro.simnet.network.NetworkTrace.ou`.

    Routes bit-exact through the same implementation the facade uses.
    """
    from repro.system.request import warn_legacy

    warn_legacy(
        "bandwidth_trace_events(cluster, ...)",
        "NetworkTrace.ou(...).events_for(cluster)",
    )
    return _trace_events(
        cluster, duration_s, step_s=step_s, rel_sigma=rel_sigma,
        theta=theta, rng=rng, nodes=nodes,
    )
