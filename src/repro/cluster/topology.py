"""Cluster topology: a set of nodes organized in racks.

The cluster is deliberately simple — flat node list plus rack ids — because
the paper's bandwidth model is purely end-host based (per-node uplink and
downlink shares, §III-B1); rack structure only matters through the optional
cross-rack caps and the rack-aware planners.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.cluster.node import Node


class Cluster:
    """A collection of :class:`Node` indexed by id."""

    def __init__(self, nodes: Iterable[Node]):
        self.nodes: dict[int, Node] = {}
        #: optional shared per-rack trunk capacities: rack -> (up MB/s, down MB/s).
        #: Complements the per-node cross caps: a trunk models an
        #: oversubscribed top-of-rack uplink shared by the whole rack.
        self.rack_trunks: dict[int, tuple[float, float]] = {}
        for node in nodes:
            if node.node_id in self.nodes:
                raise ValueError(f"duplicate node id {node.node_id}")
            self.nodes[node.node_id] = node

    # -------------------------------------------------------------- #
    # constructors
    # -------------------------------------------------------------- #
    @classmethod
    def homogeneous(
        cls,
        n: int,
        bandwidth: float,
        rack_size: int | None = None,
        cross_bandwidth: float | None = None,
    ) -> "Cluster":
        """n identical nodes; if ``rack_size`` is set, fill racks in order."""
        nodes = []
        for i in range(n):
            rack = i // rack_size if rack_size else 0
            nodes.append(
                Node(
                    i,
                    uplink=bandwidth,
                    downlink=bandwidth,
                    rack=rack,
                    cross_uplink=cross_bandwidth,
                    cross_downlink=cross_bandwidth,
                )
            )
        return cls(nodes)

    @classmethod
    def from_bandwidths(
        cls,
        uplinks: Sequence[float],
        downlinks: Sequence[float] | None = None,
        rack_size: int | None = None,
        cross_bandwidth: float | None = None,
    ) -> "Cluster":
        """Build from explicit bandwidth vectors (downlinks default = uplinks)."""
        if downlinks is None:
            downlinks = uplinks
        if len(uplinks) != len(downlinks):
            raise ValueError("uplink/downlink vectors differ in length")
        nodes = []
        for i, (u, d) in enumerate(zip(uplinks, downlinks)):
            rack = i // rack_size if rack_size else 0
            nodes.append(
                Node(
                    i,
                    uplink=float(u),
                    downlink=float(d),
                    rack=rack,
                    cross_uplink=cross_bandwidth,
                    cross_downlink=cross_bandwidth,
                )
            )
        return cls(nodes)

    # -------------------------------------------------------------- #
    # lookups
    # -------------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def __getitem__(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def node_ids(self) -> list[int]:
        return sorted(self.nodes)

    def alive_ids(self) -> list[int]:
        return sorted(i for i, n in self.nodes.items() if n.alive)

    def dead_ids(self) -> list[int]:
        return sorted(i for i, n in self.nodes.items() if not n.alive)

    def rack_of(self, node_id: int) -> int:
        return self.nodes[node_id].rack

    def racks(self) -> dict[int, list[int]]:
        """rack id -> sorted node ids in that rack."""
        out: dict[int, list[int]] = {}
        for i in sorted(self.nodes):
            out.setdefault(self.nodes[i].rack, []).append(i)
        return out

    def same_rack(self, a: int, b: int) -> bool:
        return self.nodes[a].rack == self.nodes[b].rack

    def rack_size(self, rack: int) -> int:
        return sum(1 for n in self.nodes.values() if n.rack == rack)

    def set_rack_trunk(self, rack: int, uplink: float, downlink: float | None = None) -> None:
        """Cap the whole rack's aggregate cross-rack traffic (ToR trunk)."""
        if uplink <= 0 or (downlink is not None and downlink <= 0):
            raise ValueError("trunk capacities must be positive")
        self.rack_trunks[rack] = (uplink, downlink if downlink is not None else uplink)

    def set_all_rack_trunks(self, uplink: float, downlink: float | None = None) -> None:
        """Apply the same trunk capacity to every rack."""
        for rack in self.racks():
            self.set_rack_trunk(rack, uplink, downlink)

    # -------------------------------------------------------------- #
    # mutation helpers
    # -------------------------------------------------------------- #
    def add_node(self, node: Node) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node

    def fail_nodes(self, node_ids: Iterable[int]) -> None:
        for i in node_ids:
            self.nodes[i].fail()

    def recover_all(self) -> None:
        for n in self.nodes.values():
            n.recover()
