"""Reed-Solomon erasure coding over GF(2^w).

Provides systematic (k, m) RS codes (Property 1: MDS), repair coefficient
matrices expressing any f failed blocks as linear combinations of any k
survivors (Property 2: linearity), and word-aligned sub-block splitting
(Property 3: fine-grained repair) — the three properties HMBR builds on.
"""

from repro.ec.matrices import (
    cauchy_parity_matrix,
    systematic_cauchy_generator,
    systematic_vandermonde_generator,
    vandermonde_matrix,
)
from repro.ec.rs import RSCode
from repro.ec.lrc import LRCCode
from repro.ec.stripe import Stripe, StripeLayout, StripeMeta, block_name
from repro.ec.subblock import split_block, join_block, split_counts, word_slice

__all__ = [
    "RSCode",
    "LRCCode",
    "Stripe",
    "StripeLayout",
    "StripeMeta",
    "block_name",
    "vandermonde_matrix",
    "cauchy_parity_matrix",
    "systematic_cauchy_generator",
    "systematic_vandermonde_generator",
    "split_block",
    "join_block",
    "split_counts",
    "word_slice",
]
