"""Locally Repairable Codes (Azure-LRC style) — the §VI alternative to
wide-stripe RS.

An (k, l, g) LRC splits k data blocks into l equal local groups, adds one
XOR local parity per group and g Reed-Solomon global parities.  Single-block
repairs read only k/l blocks (the local group) instead of k; the price is
higher redundancy than a (k, g)-equivalent wide stripe.  The paper's
motivation is exactly this trade — wide stripes chase the redundancy floor
that LRC gives up — so the library carries both and the benchmarks compare
their repair behaviour.

Block layout (indices):
    0 .. k-1                    data blocks
    k .. k+l-1                  local parities (one per group)
    k+l .. k+l+g-1              global parities

Fault tolerance: any g+1 failures are recoverable (information-theoretic
bound for this family); additionally any failure pattern with at most one
failure per local group and intact local parity repairs locally.
"""

from __future__ import annotations

import numpy as np

from repro.ec.matrices import cauchy_parity_matrix
from repro.gf.field import GF, gf8
from repro.gf.matrix import gf_matmul, gf_rank


class LRCCode:
    """An (k, l, g) locally repairable code over GF(2^w)."""

    def __init__(self, k: int, l: int, g: int, field: GF = gf8):
        if k < 1 or l < 1 or g < 0:
            raise ValueError("need k >= 1, l >= 1, g >= 0")
        if k % l:
            raise ValueError(f"k={k} must divide evenly into l={l} local groups")
        if k + l + g > field.size:
            raise ValueError("stripe too wide for the field")
        self.k = k
        self.l = l
        self.g = g
        self.field = field
        self.group_size = k // l
        self.n = k + l + g
        self.generator = self._build_generator()
        self.generator.setflags(write=False)

    # -------------------------------------------------------------- #
    def _build_generator(self) -> np.ndarray:
        """(n x k) generator: identity, XOR group rows, Cauchy global rows."""
        f = self.field
        gen = np.zeros((self.n, self.k), dtype=f.dtype)
        gen[: self.k] = np.eye(self.k, dtype=f.dtype)
        for grp in range(self.l):
            row = self.k + grp
            lo, hi = grp * self.group_size, (grp + 1) * self.group_size
            gen[row, lo:hi] = 1  # XOR local parity
        if self.g:
            gen[self.k + self.l :] = cauchy_parity_matrix(self.k, self.g, f)
        return gen

    def group_of(self, block: int) -> int | None:
        """Local-group index of a data or local-parity block (None = global)."""
        if 0 <= block < self.k:
            return block // self.group_size
        if self.k <= block < self.k + self.l:
            return block - self.k
        if self.k + self.l <= block < self.n:
            return None
        raise ValueError(f"block index {block} out of range")

    def group_members(self, group: int) -> list[int]:
        """Data block indices of a local group."""
        if not 0 <= group < self.l:
            raise ValueError(f"group {group} out of range")
        lo = group * self.group_size
        return list(range(lo, lo + self.group_size))

    def local_parity_of(self, group: int) -> int:
        return self.k + group

    @property
    def storage_overhead(self) -> float:
        """Redundancy factor n/k (the wide-stripe paper's target metric)."""
        return self.n / self.k

    # -------------------------------------------------------------- #
    def encode_stripe(self, data_blocks) -> np.ndarray:
        data = np.asarray(data_blocks, dtype=self.field.dtype)
        if data.shape[0] != self.k:
            raise ValueError(f"expected {self.k} data blocks")
        parity = gf_matmul(self.generator[self.k :], data, self.field)
        return np.concatenate([data, parity], axis=0)

    # -------------------------------------------------------------- #
    def repair_locally(self, failed: int, available: dict[int, np.ndarray]):
        """Single-block local repair: XOR of the group's other members.

        Returns the repaired buffer, or ``None`` when local repair is
        impossible for this failure/availability pattern (caller falls back
        to :meth:`decode`).  Only data blocks and local parities repair
        locally; global parities always need a global decode.
        """
        group = self.group_of(failed)
        if group is None:
            return None
        needed = [b for b in self.group_members(group) + [self.local_parity_of(group)]
                  if b != failed]
        if any(b not in available for b in needed):
            return None
        out = np.zeros_like(np.asarray(available[needed[0]], dtype=self.field.dtype))
        for b in needed:
            np.bitwise_xor(out, np.asarray(available[b], dtype=self.field.dtype), out=out)
        return out

    def repair_cost_blocks(self, failed: int, available: dict[int, np.ndarray] | None = None) -> int:
        """Blocks read to repair ``failed`` (group size locally, k globally)."""
        group = self.group_of(failed)
        if group is None:
            return self.k
        if available is not None and self.repair_locally(failed, available) is None:
            return self.k
        return self.group_size

    def decode(self, available: dict[int, np.ndarray], failed_ids) -> dict[int, np.ndarray]:
        """Global decode of arbitrary erasures (up to the code's tolerance).

        Solves for the data blocks from any full-rank subset of available
        rows, then re-encodes the failed blocks.  Raises ``ValueError`` when
        the failure pattern is information-theoretically unrecoverable.
        """
        from repro.gf.matrix import gf_solve

        failed = [int(b) for b in failed_ids]
        avail_ids = sorted(set(available) - set(failed))
        rows = self.generator[avail_ids]
        if gf_rank(rows, self.field) < self.k:
            raise ValueError(
                f"failure pattern unrecoverable: available rows span rank "
                f"{gf_rank(rows, self.field)} < k={self.k}"
            )
        # pick k independent rows greedily
        chosen: list[int] = []
        mat = np.zeros((0, self.k), dtype=self.field.dtype)
        for bid in avail_ids:
            cand = np.concatenate([mat, self.generator[bid : bid + 1]], axis=0)
            if gf_rank(cand, self.field) > mat.shape[0]:
                mat = cand
                chosen.append(bid)
            if len(chosen) == self.k:
                break
        src = np.stack([np.asarray(available[b], dtype=self.field.dtype) for b in chosen])
        data = gf_solve(mat, src, self.field)
        full = self.encode_stripe(data)
        return {b: full[b] for b in failed}

    def repair(self, failed: int, available: dict[int, np.ndarray]) -> np.ndarray:
        """Single-block repair: local when possible, global otherwise."""
        local = self.repair_locally(failed, available)
        if local is not None:
            return local
        return self.decode(available, [failed])[failed]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LRCCode(k={self.k}, l={self.l}, g={self.g})"
