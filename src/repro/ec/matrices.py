"""Generator-matrix constructions for systematic (k, m) RS codes.

Two constructions are provided:

* **Cauchy-extended** (default): G = [I_k ; C] where C is an m x k Cauchy
  matrix.  Every square submatrix of a Cauchy matrix is nonsingular, which
  makes [I ; C] MDS for *all* (k, m) with k + m <= 2^w.  This mirrors the
  "Cauchy-good" matrices of jerasure/ISA-L.
* **Row-reduced Vandermonde**: take the (k+m) x k Vandermonde matrix V over
  distinct evaluation points and right-multiply by ``inv(V[:k])`` so the top
  k rows become the identity.  Any k rows of V are invertible (Vandermonde
  determinant), and right-multiplying by a fixed invertible matrix preserves
  that, so this construction is MDS too.  It matches the paper's description
  ("encoding coefficient generated from the Vandermonde matrix").
"""

from __future__ import annotations

import numpy as np

from repro.gf.field import GF, gf8
from repro.gf.matrix import gf_identity, gf_inv, gf_matmul


def vandermonde_matrix(rows: int, cols: int, field: GF = gf8) -> np.ndarray:
    """The rows x cols Vandermonde matrix ``V[i, j] = x_i^j`` with x_i = i.

    Evaluation points 0, 1, ..., rows-1 must be distinct, so rows <= 2^w.
    """
    if rows > field.size:
        raise ValueError(f"need rows <= 2^{field.w} distinct points, got {rows}")
    v = np.zeros((rows, cols), dtype=field.dtype)
    for i in range(rows):
        for j in range(cols):
            v[i, j] = field.pow(i, j) if not (i == 0 and j == 0) else 1
    # x^0 = 1 for every x, including x = 0 by convention.
    v[:, 0] = 1
    v[0, 1:] = 0
    return v


def cauchy_parity_matrix(k: int, m: int, field: GF = gf8) -> np.ndarray:
    """An m x k Cauchy matrix ``C[i, j] = 1 / (x_i + y_j)``.

    Points x_i = k + i and y_j = j are pairwise distinct, so every
    denominator is nonzero and every square submatrix is nonsingular.
    """
    if k + m > field.size:
        raise ValueError(f"k + m = {k + m} exceeds field size 2^{field.w}")
    x = np.arange(k, k + m, dtype=np.uint32)
    y = np.arange(0, k, dtype=np.uint32)
    denom = (x[:, None] ^ y[None, :]).astype(field.dtype)
    return field.inv(denom).astype(field.dtype)


def systematic_cauchy_generator(k: int, m: int, field: GF = gf8) -> np.ndarray:
    """Systematic MDS generator matrix [I_k ; Cauchy(m, k)]."""
    return np.concatenate(
        [gf_identity(k, field), cauchy_parity_matrix(k, m, field)], axis=0
    )


def systematic_vandermonde_generator(k: int, m: int, field: GF = gf8) -> np.ndarray:
    """Systematic MDS generator matrix from a row-reduced Vandermonde matrix."""
    if k + m > field.size:
        raise ValueError(f"k + m = {k + m} exceeds field size 2^{field.w}")
    v = vandermonde_matrix(k + m, k, field)
    top_inv = gf_inv(v[:k], field)
    g = gf_matmul(v, top_inv, field)
    # The top block is the identity by construction; enforce exactly to guard
    # against any table bug slipping through silently.
    if not np.array_equal(g[:k], gf_identity(k, field)):
        raise AssertionError("row reduction failed to produce systematic form")
    return g
