"""Systematic (k, m) Reed-Solomon codes.

Block indices follow the paper's stripe layout: indices ``0..k-1`` are data
blocks ``D_1..D_k`` and indices ``k..k+m-1`` are parity blocks ``P_1..P_m``.
Blocks are 1-D ``uint8``/``uint16`` NumPy buffers of equal length.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.gf.field import GF, gf8
from repro.gf.matrix import gf_inv, gf_matmul
from repro.ec.matrices import systematic_cauchy_generator, systematic_vandermonde_generator


class RSCode:
    """A systematic (k, m) Reed-Solomon code over GF(2^w).

    Parameters
    ----------
    k, m : data / parity block counts; ``k + m <= 2^w``.
    field : the Galois field (default GF(2^8)).
    construction : ``"cauchy"`` (default) or ``"vandermonde"``; both are MDS.
    """

    def __init__(self, k: int, m: int, field: GF = gf8, construction: str = "cauchy"):
        if k < 1 or m < 1:
            raise ValueError("k and m must be positive")
        if k + m > field.size:
            raise ValueError(f"k + m = {k + m} exceeds field size 2^{field.w}")
        self.k = k
        self.m = m
        self.n = k + m
        self.field = field
        self.construction = construction
        if construction == "cauchy":
            self.generator = systematic_cauchy_generator(k, m, field)
        elif construction == "vandermonde":
            self.generator = systematic_vandermonde_generator(k, m, field)
        else:
            raise ValueError(f"unknown construction {construction!r}")
        self.generator.setflags(write=False)
        self._repair_cache: dict[tuple[tuple[int, ...], tuple[int, ...]], np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def _as_block_matrix(self, blocks) -> np.ndarray:
        arr = np.asarray(blocks, dtype=self.field.dtype)
        if arr.ndim != 2:
            raise ValueError("blocks must be a 2-D array (rows = blocks)")
        return arr

    def encode(self, data_blocks) -> np.ndarray:
        """Encode k data blocks into m parity blocks.

        ``data_blocks`` is a (k, B) array; returns an (m, B) array.
        """
        data = self._as_block_matrix(data_blocks)
        if data.shape[0] != self.k:
            raise ValueError(f"expected {self.k} data blocks, got {data.shape[0]}")
        return gf_matmul(self.generator[self.k :], data, self.field)

    def encode_stripe(self, data_blocks) -> np.ndarray:
        """Return the full (k+m, B) stripe: data rows followed by parity rows."""
        data = self._as_block_matrix(data_blocks)
        return np.concatenate([data, self.encode(data)], axis=0)

    # ------------------------------------------------------------------ #
    def repair_matrix(self, survivor_ids, failed_ids) -> np.ndarray:
        """The f x k matrix R with ``failed = R @ survivors``.

        ``survivor_ids`` must contain exactly k distinct block indices and be
        disjoint from ``failed_ids``.  Because the code is MDS, the k x k
        submatrix A of generator rows for the survivors is invertible and
        ``R = G[failed] @ A^{-1}``.

        Results are cached per (survivors, failed) pair, mirroring how a real
        coordinator would reuse repair solutions across stripes with the same
        erasure pattern.
        """
        survivors = tuple(sorted(int(i) for i in survivor_ids))
        failed = tuple(int(i) for i in failed_ids)
        if len(set(survivors)) != self.k:
            raise ValueError(f"need exactly k={self.k} distinct survivors")
        if set(survivors) & set(failed):
            raise ValueError("survivor and failed sets overlap")
        for i in survivors + failed:
            if not 0 <= i < self.n:
                raise ValueError(f"block index {i} out of range 0..{self.n - 1}")
        key = (survivors, failed)
        cached = self._repair_cache.get(key)
        if cached is not None:
            return cached
        a = self.generator[list(survivors)]
        a_inv = gf_inv(a, self.field)
        r = gf_matmul(self.generator[list(failed)], a_inv, self.field)
        r.setflags(write=False)
        self._repair_cache[key] = r
        return r

    def decode(self, available: dict[int, np.ndarray], failed_ids) -> dict[int, np.ndarray]:
        """Reconstruct the blocks in ``failed_ids`` from any k available blocks.

        ``available`` maps block index -> buffer.  If more than k blocks are
        supplied, the k smallest indices are used (deterministic).
        """
        failed = [int(i) for i in failed_ids]
        avail_ids = sorted(available)
        if len(avail_ids) < self.k:
            raise ValueError(
                f"need at least k={self.k} available blocks, got {len(avail_ids)}"
            )
        chosen = avail_ids[: self.k]
        r = self.repair_matrix(chosen, failed)
        src = np.stack([np.asarray(available[i], dtype=self.field.dtype) for i in chosen])
        out = gf_matmul(r, src, self.field)
        return {fid: out[row] for row, fid in enumerate(failed)}

    def decode_stripe(self, available: dict[int, np.ndarray]) -> np.ndarray:
        """Reconstruct the full stripe (k+m, B) from any k available blocks."""
        missing = [i for i in range(self.n) if i not in available]
        repaired = self.decode(available, missing)
        length = len(next(iter(available.values())))
        stripe = np.zeros((self.n, length), dtype=self.field.dtype)
        for i in range(self.n):
            stripe[i] = available[i] if i in available else repaired[i]
        return stripe

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RSCode(k={self.k}, m={self.m}, w={self.field.w}, {self.construction})"


@lru_cache(maxsize=64)
def get_code(k: int, m: int, w: int = 8, construction: str = "cauchy") -> RSCode:
    """Cached code lookup; building wide generator matrices is not free."""
    return RSCode(k, m, GF(w), construction)
