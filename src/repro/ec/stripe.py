"""Stripe metadata: which block of which stripe lives on which node.

A :class:`Stripe` is pure metadata (the coordinator's view); block payloads
live in node block stores (:mod:`repro.system.blockstore`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


def block_name(stripe_id: int, block_index: int) -> str:
    """Canonical block identifier, e.g. ``"s0017/b03"``."""
    return f"s{stripe_id:04d}/b{block_index:02d}"


@dataclass
class Stripe:
    """Placement metadata for one erasure-coded stripe.

    ``placement[i]`` is the node id storing block ``i`` (data blocks first,
    then parity blocks, as in :class:`repro.ec.rs.RSCode`).
    """

    stripe_id: int
    k: int
    m: int
    placement: list[int]

    def __post_init__(self) -> None:
        if len(self.placement) != self.k + self.m:
            raise ValueError(
                f"placement has {len(self.placement)} entries, need {self.k + self.m}"
            )
        if len(set(self.placement)) != len(self.placement):
            raise ValueError("stripe blocks must be placed on distinct nodes")

    @property
    def n(self) -> int:
        return self.k + self.m

    @property
    def width(self) -> int:
        return self.n

    def node_of(self, block_index: int) -> int:
        return self.placement[block_index]

    def block_on(self, node_id: int) -> int | None:
        """Index of this stripe's block on ``node_id``, or None."""
        try:
            return self.placement.index(node_id)
        except ValueError:
            return None

    def failed_blocks(self, dead_nodes) -> list[int]:
        """Indices of blocks lost when ``dead_nodes`` fail."""
        dead = set(dead_nodes)
        return [i for i, nid in enumerate(self.placement) if nid in dead]

    def surviving_blocks(self, dead_nodes) -> list[int]:
        dead = set(dead_nodes)
        return [i for i, nid in enumerate(self.placement) if nid not in dead]


@dataclass(frozen=True, slots=True)
class StripeMeta:
    """Immutable, validation-free metadata twin of :class:`Stripe`.

    The reliability simulator (:mod:`repro.reliability`) tracks millions of
    stripes; constructing full :class:`Stripe` objects (mutable lists,
    distinctness checks) per stripe is the dominant cost at that scale.  A
    ``StripeMeta`` carries exactly the fields planning needs — id, code
    shape, placement — as a frozen tuple-backed record, and converts to a
    real :class:`Stripe` (validated) only at the point a small twin system
    must be materialized.  ``from_stripe``/``to_stripe`` are exact inverses,
    which the differential suite relies on.
    """

    stripe_id: int
    k: int
    m: int
    placement: tuple[int, ...]

    @classmethod
    def from_stripe(cls, stripe: Stripe) -> "StripeMeta":
        return cls(stripe.stripe_id, stripe.k, stripe.m, tuple(stripe.placement))

    def to_stripe(self) -> Stripe:
        """Materialize a validated, mutable :class:`Stripe`."""
        return Stripe(self.stripe_id, self.k, self.m, list(self.placement))

    @property
    def width(self) -> int:
        return self.k + self.m

    def failed_blocks(self, dead_nodes) -> list[int]:
        dead = set(dead_nodes)
        return [i for i, nid in enumerate(self.placement) if nid in dead]

    def surviving_blocks(self, dead_nodes) -> list[int]:
        dead = set(dead_nodes)
        return [i for i, nid in enumerate(self.placement) if nid not in dead]


@dataclass
class StripeLayout:
    """A collection of stripes plus reverse indexes (node -> blocks)."""

    stripes: list[Stripe] = field(default_factory=list)

    def add(self, stripe: Stripe) -> None:
        self.stripes.append(stripe)

    def __len__(self) -> int:
        return len(self.stripes)

    def __iter__(self):
        return iter(self.stripes)

    def stripes_with_failures(self, dead_nodes) -> dict[int, list[int]]:
        """Map stripe_id -> failed block indices, for stripes that lost data."""
        out: dict[int, list[int]] = {}
        for s in self.stripes:
            failed = s.failed_blocks(dead_nodes)
            if failed:
                out[s.stripe_id] = failed
        return out

    def blocks_per_node(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for s in self.stripes:
            for nid in s.placement:
                counts[nid] = counts.get(nid, 0) + 1
        return counts
