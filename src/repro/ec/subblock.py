"""Sub-block splitting (paper Property 3: fine-grained repair).

HMBR divides every block of ``B/l_w`` words into an *upper* sub-block (the
first ``round(p * B/l_w)`` words, repaired centrally) and a *lower* sub-block
(the remaining words, repaired by pipelined independent repair).  Splits are
word-aligned so that the same offsets across all blocks of a stripe decode
together.
"""

from __future__ import annotations

import numpy as np

#: Paper's default word length l_w in bytes.
DEFAULT_WORD_BYTES = 8


def split_counts(total_words: int, p: float) -> tuple[int, int]:
    """Word counts (upper, lower) for split ratio ``p`` in [0, 1]."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"split ratio p={p} outside [0, 1]")
    upper = int(round(p * total_words))
    return upper, total_words - upper


def split_block(block: np.ndarray, p: float, word_bytes: int = DEFAULT_WORD_BYTES):
    """Split a buffer into word-aligned (upper, lower) views (no copies).

    The buffer length must be a multiple of ``word_bytes``; both returned
    views share memory with ``block``.
    """
    block = np.asarray(block)
    nbytes = block.shape[-1] * block.dtype.itemsize
    if nbytes % word_bytes:
        raise ValueError(f"block of {nbytes} bytes is not word-aligned to {word_bytes}")
    total_words = nbytes // word_bytes
    upper_words, _ = split_counts(total_words, p)
    cut = upper_words * word_bytes // block.dtype.itemsize
    return block[..., :cut], block[..., cut:]


def word_slice(
    arr: np.ndarray,
    frac_start: float,
    frac_stop: float,
    word_bytes: int = DEFAULT_WORD_BYTES,
) -> np.ndarray:
    """Word-aligned sub-view of ``arr`` covering a fraction range (no copy).

    Boundaries are ``round(frac * total_words)`` so that adjacent ranges
    sharing a boundary fraction partition the buffer exactly.
    """
    elems_per_word = word_bytes // arr.itemsize
    if elems_per_word == 0 or (arr.size * arr.itemsize) % word_bytes:
        raise ValueError(f"buffer not aligned to {word_bytes}-byte words")
    total_words = arr.size // elems_per_word
    a = int(round(frac_start * total_words))
    b = int(round(frac_stop * total_words))
    a, b = max(0, min(a, total_words)), max(0, min(b, total_words))
    if b < a:
        raise ValueError("inverted fraction range")
    return arr[a * elems_per_word : b * elems_per_word]


def join_block(upper: np.ndarray, lower: np.ndarray) -> np.ndarray:
    """Concatenate repaired sub-blocks back into a full block (Step 4)."""
    if upper.dtype != lower.dtype:
        raise ValueError("sub-block dtypes differ")
    return np.concatenate([upper, lower], axis=-1)
