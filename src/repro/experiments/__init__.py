"""Experiment harnesses: one per table/figure of the paper's evaluation.

Every module exposes ``run(...) -> list[dict]`` returning the rows the paper
reports, and ``main()`` that prints them as a table.  Benchmarks, examples
and EXPERIMENTS.md regeneration all call these, so the numbers in the docs
are the numbers the code produces.
"""

from repro.experiments.common import (
    Scenario,
    build_scenario,
    plan_for,
    transfer_time,
    format_table,
    SCHEMES,
)

__all__ = [
    "Scenario",
    "build_scenario",
    "plan_for",
    "transfer_time",
    "format_table",
    "SCHEMES",
]
