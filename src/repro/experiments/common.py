"""Shared scenario construction and scheme dispatch for all experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.bandwidth import BandwidthDataset, make_wld
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import get_code
from repro.ec.stripe import Stripe
from repro.repair.centralized import plan_centralized
from repro.repair.context import RepairContext
from repro.repair.hybrid import plan_hybrid
from repro.repair.independent import plan_independent
from repro.repair.mlf import plan_mlf
from repro.repair.plan import RepairPlan
from repro.repair.rackaware import (
    plan_rack_aware_centralized,
    plan_rack_aware_hybrid,
    plan_tree_independent,
)
from repro.simnet.fluid import FluidSimulator

SCHEMES = {
    "cr": lambda ctx, **kw: plan_centralized(ctx, **kw),
    "ir": lambda ctx, **kw: plan_independent(ctx, **kw),
    "hmbr": lambda ctx, **kw: plan_hybrid(ctx, **kw),
    "mlf": lambda ctx, **kw: plan_mlf(ctx, **kw),
    "rack-cr": lambda ctx, **kw: plan_rack_aware_centralized(ctx, **kw),
    "tree-ir": lambda ctx, **kw: plan_tree_independent(ctx, **kw),
    "rack-hmbr": lambda ctx, **kw: plan_rack_aware_hybrid(ctx, **kw),
}


@dataclass
class Scenario:
    """A single-stripe repair scenario ready for planning."""

    ctx: RepairContext
    cluster: Cluster
    dataset: BandwidthDataset
    dead_nodes: list[int]


def build_scenario(
    k: int,
    m: int,
    f: int,
    wld: str | float = "WLD-8x",
    seed: int = 2023,
    block_size_mb: float = 64.0,
    rack_size: int | None = None,
    cross_factor: float | None = None,
    distribution: str = "normal",
    survivor_policy: str = "first",
) -> Scenario:
    """Build the canonical experiment scenario.

    Nodes ``0..k+m-1`` host the stripe; nodes ``k+m..k+m+f-1`` are the new
    nodes (same instance pool, bandwidths drawn from the same dataset, as on
    EC2).  ``f`` random stripe nodes are killed.  With ``rack_size`` set,
    racks are filled contiguously and, with ``cross_factor``, each node's
    cross-rack bandwidth is capped at ``1/cross_factor`` of its link rate
    (the paper's ``tc`` shaping; inner-rack traffic is unrestricted).
    """
    if f > m:
        raise ValueError(f"f={f} cannot exceed m={m}")
    n_total = k + m + f
    ds = make_wld(n_total, wld, distribution=distribution, seed=seed)
    nodes = []
    for i in range(n_total):
        rack = i // rack_size if rack_size else 0
        up, down = float(ds.uplinks[i]), float(ds.downlinks[i])
        nodes.append(
            Node(
                i,
                uplink=up,
                downlink=down,
                rack=rack,
                cross_uplink=up / cross_factor if cross_factor else None,
                cross_downlink=down / cross_factor if cross_factor else None,
            )
        )
    cluster = Cluster(nodes)
    code = get_code(k, m)
    stripe = Stripe(0, k, m, list(range(k + m)))
    rng = np.random.default_rng(seed + 7919)
    dead = sorted(int(x) for x in rng.choice(k + m, size=f, replace=False))
    cluster.fail_nodes(dead)
    failed_blocks = dead  # placement is identity: block i on node i
    new_nodes = list(range(k + m, k + m + f))
    ctx = RepairContext(
        cluster=cluster,
        code=code,
        stripe=stripe,
        failed_blocks=failed_blocks,
        new_nodes=new_nodes,
        block_size_mb=block_size_mb,
        survivor_policy=survivor_policy,
    )
    return Scenario(ctx=ctx, cluster=cluster, dataset=ds, dead_nodes=dead)


def plan_for(ctx: RepairContext, scheme: str, **kwargs) -> RepairPlan:
    """Plan a repair with the named scheme (see :data:`SCHEMES`)."""
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; choose from {sorted(SCHEMES)}")
    return SCHEMES[scheme](ctx, **kwargs)


def transfer_time(ctx: RepairContext, scheme: str, **kwargs) -> float:
    """Simulated repair transfer time of one scheme on one scenario."""
    plan = plan_for(ctx, scheme, **kwargs)
    return FluidSimulator(ctx.cluster).run(plan.tasks).makespan


def format_table(rows: list[dict], columns: list[str] | None = None, floatfmt: str = ".3f") -> str:
    """Render rows as a fixed-width text table (no external deps)."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())
    def cell(v):
        if isinstance(v, float):
            return f"{v:{floatfmt}}"
        return str(v)
    table = [[cell(r.get(c, "")) for c in columns] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in table)) for i, c in enumerate(columns)]
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(v.ljust(w) for v, w in zip(row, widths)) for row in table]
    return "\n".join(lines)


def averaged_transfer_time(
    k: int,
    m: int,
    f: int,
    scheme: str,
    wld: str,
    seeds: tuple[int, ...] = (2023, 2024, 2025),
    **scenario_kwargs,
) -> float:
    """Mean transfer time over several seeded scenarios (failure patterns)."""
    times = []
    for s in seeds:
        sc = build_scenario(k, m, f, wld=wld, seed=s, **scenario_kwargs)
        times.append(transfer_time(sc.ctx, scheme))
    return float(np.mean(times))
