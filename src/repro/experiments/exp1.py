"""Experiment 1 (Figure 8): repair time of CR / IR / HMBR vs (k, m, f) per WLD.

The paper's headline comparison: under the 8x bandwidth gap at
(k, m, f) = (64, 8, 8), HMBR cuts the repair time by up to ~57% vs CR and
~65% vs IR; under the 2x gap IR beats CR, and the gap widening flips them.
"""

from __future__ import annotations

from repro.experiments.common import averaged_transfer_time, format_table

#: The (k, m, f) points plotted in Figure 8.
DEFAULT_GRID = [(6, 3, 2), (9, 3, 3), (12, 4, 4), (32, 8, 8), (64, 8, 8), (64, 16, 16)]
DEFAULT_WLDS = ["WLD-2x", "WLD-4x", "WLD-8x"]
SCHEMES = ["cr", "ir", "hmbr"]


def run(
    grid: list[tuple[int, int, int]] | None = None,
    wlds: list[str] | None = None,
    seeds: tuple[int, ...] = (2023, 2024, 2025),
    block_size_mb: float = 64.0,
) -> list[dict]:
    grid = grid or DEFAULT_GRID
    wlds = wlds or DEFAULT_WLDS
    rows = []
    for wld in wlds:
        for k, m, f in grid:
            row: dict = {"wld": wld, "(k,m,f)": f"({k},{m},{f})"}
            for scheme in SCHEMES:
                row[scheme] = averaged_transfer_time(
                    k, m, f, scheme, wld, seeds=seeds, block_size_mb=block_size_mb
                )
            row["hmbr_vs_cr_%"] = 100.0 * (1 - row["hmbr"] / row["cr"])
            row["hmbr_vs_ir_%"] = 100.0 * (1 - row["hmbr"] / row["ir"])
            rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print("Experiment 1 (Fig. 8) — repair transfer time [s] vs (k,m,f) per workload")
    print(format_table(rows, floatfmt=".2f"))
    best_cr = max(r["hmbr_vs_cr_%"] for r in rows)
    best_ir = max(r["hmbr_vs_ir_%"] for r in rows)
    print(f"\nmax reduction vs CR: {best_cr:.1f}%   max reduction vs IR: {best_ir:.1f}%")
    print("paper: up to 57.5% vs CR and 64.8% vs IR at (64,8,8) under WLD-8x")


if __name__ == "__main__":
    main()
