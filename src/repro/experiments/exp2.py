"""Experiment 2 (Figure 9): repair time versus the number of failed blocks f.

Fixed (k, m) ∈ {(32, 8), (64, 16)} under WLD-2x, sweeping f.  The paper's
observations: time grows quickly with f; CR loses to IR at both small f
(IR barely bottlenecked) and large f (center congested); HMBR always wins.
"""

from __future__ import annotations

from repro.experiments.common import averaged_transfer_time, format_table

DEFAULT_CASES = {(32, 8): [2, 4, 8], (64, 16): [4, 8, 16]}
SCHEMES = ["cr", "ir", "hmbr"]


def run(
    cases: dict[tuple[int, int], list[int]] | None = None,
    wld: str = "WLD-2x",
    seeds: tuple[int, ...] = (2023, 2024, 2025),
    block_size_mb: float = 64.0,
) -> list[dict]:
    cases = cases or DEFAULT_CASES
    rows = []
    for (k, m), fs in cases.items():
        for f in fs:
            row: dict = {"(k,m)": f"({k},{m})", "f": f}
            for scheme in SCHEMES:
                row[scheme] = averaged_transfer_time(
                    k, m, f, scheme, wld, seeds=seeds, block_size_mb=block_size_mb
                )
            rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print("Experiment 2 (Fig. 9) — repair transfer time [s] vs f under WLD-2x")
    print(format_table(rows, floatfmt=".2f"))


if __name__ == "__main__":
    main()
