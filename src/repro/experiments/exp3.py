"""Experiment 3 (Figure 10): repair time versus block size.

(k, m, f) ∈ {(64, 8, 8), (64, 16, 16)} under WLD-4x with block sizes from
8 MB to 64 MB.  Expected shape: time scales ~linearly with block size and
the CR/IR/HMBR gaps stay stable (transfer time is proportional to B in
every term of the §III model).
"""

from __future__ import annotations

from repro.experiments.common import averaged_transfer_time, format_table

DEFAULT_CASES = [(64, 8, 8), (64, 16, 16)]
DEFAULT_SIZES = [8.0, 16.0, 32.0, 64.0]
SCHEMES = ["cr", "ir", "hmbr"]


def run(
    cases: list[tuple[int, int, int]] | None = None,
    sizes_mb: list[float] | None = None,
    wld: str = "WLD-4x",
    seeds: tuple[int, ...] = (2023, 2024, 2025),
) -> list[dict]:
    cases = cases or DEFAULT_CASES
    sizes_mb = sizes_mb or DEFAULT_SIZES
    rows = []
    for k, m, f in cases:
        for size in sizes_mb:
            row: dict = {"(k,m,f)": f"({k},{m},{f})", "block_mb": size}
            for scheme in SCHEMES:
                row[scheme] = averaged_transfer_time(
                    k, m, f, scheme, wld, seeds=seeds, block_size_mb=size
                )
            rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print("Experiment 3 (Fig. 10) — repair transfer time [s] vs block size, WLD-4x")
    print(format_table(rows, floatfmt=".2f"))


if __name__ == "__main__":
    main()
