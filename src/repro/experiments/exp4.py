"""Experiment 4 (Figure 11): HMBR versus rack-aware HMBR.

Nodes are grouped into racks of 8; inner-rack traffic is unrestricted while
cross-rack traffic is ``tc``-capped (we cap it at 1/5 of each node's link
rate).  Expected shape: rack-aware HMBR wins while f is below the rack size
(paper: 33.9% average, up to 55.3% at (64, 8), f = 2) and degrades slightly
at f = 8 = rack size, where the per-rack intermediate-block count stops
saving any cross-rack traffic but the local collectors still add inner-rack
hops.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import build_scenario, format_table, transfer_time

DEFAULT_CASES = {(64, 8): [2, 4, 8], (64, 16): [2, 4, 8]}


def run(
    cases: dict[tuple[int, int], list[int]] | None = None,
    wld: str = "WLD-2x",
    rack_size: int = 8,
    cross_factor: float = 5.0,
    seeds: tuple[int, ...] = (2023, 2024, 2025),
    block_size_mb: float = 64.0,
) -> list[dict]:
    cases = cases or DEFAULT_CASES
    rows = []
    for (k, m), fs in cases.items():
        for f in fs:
            hmbr_times, rack_times, cross_plain, cross_rack = [], [], [], []
            for seed in seeds:
                sc = build_scenario(
                    k, m, f,
                    wld=wld,
                    seed=seed,
                    block_size_mb=block_size_mb,
                    rack_size=rack_size,
                    cross_factor=cross_factor,
                )
                from repro.experiments.common import plan_for
                from repro.simnet.fluid import FluidSimulator

                sim = FluidSimulator(sc.ctx.cluster)
                r1 = sim.run(plan_for(sc.ctx, "hmbr").tasks)
                r2 = sim.run(plan_for(sc.ctx, "rack-hmbr").tasks)
                hmbr_times.append(r1.makespan)
                rack_times.append(r2.makespan)
                cross_plain.append(r1.cross_rack_mb)
                cross_rack.append(r2.cross_rack_mb)
            row = {
                "(k,m)": f"({k},{m})",
                "f": f,
                "hmbr": float(np.mean(hmbr_times)),
                "rack_hmbr": float(np.mean(rack_times)),
                "reduction_%": 100.0 * (1 - np.mean(rack_times) / np.mean(hmbr_times)),
                "cross_mb_hmbr": float(np.mean(cross_plain)),
                "cross_mb_rack": float(np.mean(cross_rack)),
            }
            rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print("Experiment 4 (Fig. 11) — HMBR vs rack-aware HMBR [s], racks of 8, cross-rack capped at 1/5")
    print(format_table(rows, floatfmt=".2f"))
    reductions = [r["reduction_%"] for r in rows]
    print(f"\nmean reduction: {np.mean(reductions):.1f}%  max: {max(reductions):.1f}%")
    print("paper: 33.9% on average, up to 55.3%; slightly worse at f = rack size")


if __name__ == "__main__":
    main()
