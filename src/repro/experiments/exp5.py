"""Experiment 5 (Figure 12): multi-node repair with/without the scheduler.

Multiple nodes fail at once, so many stripes need multi-block repairs
concurrently.  The enhancement spreads CR centers across new nodes with
LFS + LRS (§IV-C); the baseline lets every stripe greedily pick its
fastest-downlink new node, piling load onto one center.  Paper: 10.9%
average reduction, 15.9% max.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.bandwidth import make_wld
from repro.cluster.node import Node
from repro.cluster.placement import place_stripes_random
from repro.cluster.topology import Cluster
from repro.ec.rs import get_code
from repro.experiments.common import format_table
from repro.repair.multinode import plan_multi_node
from repro.simnet.fluid import FluidSimulator

#: (k, m, number of simultaneously failed nodes) — Fig 12 labels these (k, m, f).
DEFAULT_CASES = [(16, 4, 4), (32, 8, 4), (64, 8, 8), (64, 16, 8)]


def run_one(
    k: int,
    m: int,
    n_dead: int,
    n_data_nodes: int = 88,  # the paper's EC2 data-node count
    n_stripes: int = 24,
    wld: str = "WLD-4x",
    seed: int = 2023,
    block_size_mb: float = 64.0,
) -> dict:
    """One multi-node failure scenario, both scheduling modes."""
    n_total = n_data_nodes + n_dead
    ds = make_wld(n_total, wld, seed=seed)
    cluster = Cluster(
        [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(n_total)]
    )
    code = get_code(k, m)
    layout = place_stripes_random(
        cluster, n_stripes, k, m, rng=seed, candidates=list(range(n_data_nodes))
    )
    rng = np.random.default_rng(seed + 13)
    dead = sorted(int(x) for x in rng.choice(n_data_nodes, size=n_dead, replace=False))
    cluster.fail_nodes(dead)
    replacement_of = {d: n_data_nodes + i for i, d in enumerate(dead)}
    times = {}
    spreads = {}
    for enhanced in (False, True):
        merged, jobs = plan_multi_node(
            cluster, code, layout, dead, replacement_of,
            block_size_mb=block_size_mb, scheme="hmbr", enhanced=enhanced,
        )
        res = FluidSimulator(cluster).run(merged.tasks)
        key = "enhanced" if enhanced else "baseline"
        times[key] = res.makespan
        centers = [j.center for j in jobs]
        spreads[key] = max(centers.count(c) for c in set(centers))
    return {
        "(k,m,f)": f"({k},{m},{n_dead})",
        "stripes": len(jobs),
        "baseline_s": times["baseline"],
        "enhanced_s": times["enhanced"],
        "reduction_%": 100.0 * (1 - times["enhanced"] / times["baseline"]),
        "max_center_load_base": spreads["baseline"],
        "max_center_load_enh": spreads["enhanced"],
    }


def run(
    cases: list[tuple[int, int, int]] | None = None,
    seeds: tuple[int, ...] = (2023, 2024, 2025),
    **kwargs,
) -> list[dict]:
    cases = cases or DEFAULT_CASES
    rows = []
    for k, m, n_dead in cases:
        per_seed = [run_one(k, m, n_dead, seed=s, **kwargs) for s in seeds]
        row = dict(per_seed[0])
        for key in ("baseline_s", "enhanced_s", "reduction_%"):
            row[key] = float(np.mean([r[key] for r in per_seed]))
        rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print("Experiment 5 (Fig. 12) — multi-node repair time [s], HMBR ± LFS+LRS scheduling")
    print(format_table(rows, floatfmt=".2f"))
    reds = [r["reduction_%"] for r in rows]
    print(f"\nmean reduction: {np.mean(reds):.1f}%  max: {max(reds):.1f}%")
    print("paper: 10.9% on average, up to 15.9%")


if __name__ == "__main__":
    main()
