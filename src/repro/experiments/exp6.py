"""Experiment 6 (Table II): overall repair time breakdown, T_t vs T_o.

For (k, m) ∈ {(32, 4), (64, 8)} with f = m under WLD-8x, decompose the
overall repair time into network transfer time T_t (fluid simulation) and
everything else T_o (GF compute measured by the executor on real buffers and
scaled, plus modeled disk I/O and fixed overhead).  The paper reports T_t
dominating at ~85-90% for all three schemes.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.breakdown import CostModel, breakdown_from_trace
from repro.ec.stripe import block_name
from repro.experiments.common import build_scenario, format_table, plan_for
from repro.obs import Tracer
from repro.repair.executor import PlanExecutor, Workspace
from repro.simnet.fluid import FluidSimulator

DEFAULT_CASES = [(32, 4), (64, 8)]
SCHEMES = ["cr", "ir", "hmbr"]

#: Paper's Table II for side-by-side printing.
PAPER_TABLE2 = {
    ("CR", (32, 4)): (9.52, 1.08, 89.81),
    ("CR", (64, 8)): (21.04, 2.56, 89.15),
    ("IR", (32, 4)): (10.8, 2.0, 84.38),
    ("IR", (64, 8)): (25.92, 2.68, 90.63),
    ("HMBR", (32, 4)): (4.67, 0.79, 85.47),
    ("HMBR", (64, 8)): (8.64, 1.46, 85.54),
}


def run(
    cases: list[tuple[int, int]] | None = None,
    wld: str = "WLD-8x",
    seed: int = 2023,
    block_size_mb: float = 64.0,
    test_block_bytes: int = 1 << 18,
    cost: CostModel | None = None,
) -> list[dict]:
    cases = cases or DEFAULT_CASES
    cost = cost or CostModel()
    rows = []
    rng = np.random.default_rng(seed)
    for k, m in cases:
        f = m
        sc = build_scenario(k, m, f, wld=wld, seed=seed, block_size_mb=block_size_mb)
        ctx = sc.ctx
        data = rng.integers(0, 256, size=(k, test_block_bytes), dtype=np.uint8)
        full = ctx.code.encode_stripe(data)
        for scheme in SCHEMES:
            plan = plan_for(ctx, scheme)
            ws = Workspace()
            ws.load_stripe(ctx.stripe, full)
            for node in sc.dead_nodes:
                ws.drop_node(node)
            # the Table II row is regenerated from recorded spans: the
            # executor and the fluid simulator both write into one tracer,
            # and breakdown_from_trace reads T_t / GF bytes back out of it
            # (bit-identical to the live breakdown_for_plan path).
            tracer = Tracer()
            PlanExecutor(ws).execute(
                plan,
                verify_against={b: full[b] for b in ctx.failed_blocks},
                tracer=tracer,
            )
            FluidSimulator(ctx.cluster).run(plan.tasks, tracer=tracer)
            bd = breakdown_from_trace(tracer, ctx, test_block_bytes=test_block_bytes, cost=cost)
            row = {
                "scheme": plan.scheme,
                "(k,m)": f"({k},{m})",
                "T_t_s": bd.transfer_s,
                "T_o_s": bd.other_s,
                "T_t_frac_%": 100.0 * bd.transfer_fraction,
            }
            paper = PAPER_TABLE2.get((plan.scheme, (k, m)))
            if paper:
                row["paper_T_t"] = paper[0]
                row["paper_T_o"] = paper[1]
                row["paper_frac_%"] = paper[2]
            rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print("Experiment 6 (Table II) — repair time breakdown under WLD-8x, f = m")
    print(format_table(rows, floatfmt=".2f"))
    fracs = [r["T_t_frac_%"] for r in rows]
    print(f"\nmean transfer fraction: {np.mean(fracs):.1f}%  (paper: 87.5% average)")


if __name__ == "__main__":
    main()
