"""Extension experiment (paper §VII future work): dynamic bandwidth workloads.

Mid-repair, a set of survivor nodes loses bandwidth (a co-located workload
spins up — the scenario the paper names for future work).  The churn is
described once as a :class:`~repro.simnet.NetworkTrace` and every arm is
simulated under that same trace.  We compare:

* CR / IR — static plans, simulated under the trace;
* HMBR (stale) — split searched against the pre-change snapshot;
* HMBR (aware) — split searched against the predicted event schedule;
* HMBR (adaptive) — starts from the stale plan and re-plans the remaining
  volume at event boundaries via :class:`~repro.adaptive.AdaptiveEngine`,
  never re-sending already-moved ranges.

Expected shape: the stale split misjudges the CR/IR balance and loses part
of its advantage; the dynamics-aware split recovers it with foresight, and
the adaptive engine recovers most of it with hindsight only.
"""

from __future__ import annotations

import numpy as np

from repro.adaptive import AdaptiveConfig, AdaptiveEngine, AdaptiveEntry
from repro.experiments.common import build_scenario, format_table, plan_for
from repro.repair.hybrid import plan_hybrid
from repro.simnet import NetworkTrace
from repro.simnet.fluid import FluidSimulator

DEFAULT_CASES = [(16, 8, 4), (32, 8, 8)]


def run_one(
    k: int,
    m: int,
    f: int,
    wld: str = "WLD-2x",
    seed: int = 2023,
    change_time_s: float = 1.0,
    degrade_factor: float = 8.0,
    degraded_fraction: float = 0.5,
    block_size_mb: float = 64.0,
) -> dict:
    """One (k, m, f) cell: all arms simulated under the same churn trace."""
    sc = build_scenario(k, m, f, wld=wld, seed=seed, block_size_mb=block_size_mb)
    ctx = sc.ctx
    survivors = ctx.survivor_nodes()
    n_degraded = max(1, int(round(degraded_fraction * len(survivors))))
    network = NetworkTrace.degrade(
        survivors[:n_degraded], at_time=change_time_s, factor=degrade_factor
    )
    events = network.events_for(ctx.cluster)
    sim = FluidSimulator(ctx.cluster)
    t_cr = sim.run(plan_for(ctx, "cr").tasks, events=events).makespan
    t_ir = sim.run(plan_for(ctx, "ir").tasks, events=events).makespan
    stale = plan_hybrid(ctx)
    aware = plan_hybrid(ctx, events=events)
    t_stale = sim.run(stale.tasks, events=events).makespan
    t_aware = sim.run(aware.tasks, events=events).makespan
    engine = AdaptiveEngine(ctx.cluster, events=events, config=AdaptiveConfig())
    adaptive = engine.run([AdaptiveEntry(key="s0", ctx=ctx, scheme="hmbr", plan=stale)])
    t_adapt = adaptive.makespan_s
    return {
        "(k,m,f)": f"({k},{m},{f})",
        "cr": t_cr,
        "ir": t_ir,
        "hmbr_stale": t_stale,
        "hmbr_aware": t_aware,
        "hmbr_adapt": t_adapt,
        "stale_p": stale.meta["p0"],
        "aware_p": aware.meta["p0"],
        "replans": adaptive.replans,
        "aware_gain_%": 100.0 * (1 - t_aware / t_stale) if t_stale else 0.0,
        "adapt_gain_%": 100.0 * (1 - t_adapt / t_stale) if t_stale else 0.0,
    }


def run(cases=None, seeds=(2023, 2024, 2025), **kwargs) -> list[dict]:
    """Average :func:`run_one` over ``seeds`` for each (k, m, f) case."""
    cases = cases or DEFAULT_CASES
    rows = []
    for k, m, f in cases:
        per_seed = [run_one(k, m, f, seed=s, **kwargs) for s in seeds]
        row = dict(per_seed[0])
        for key in ("cr", "ir", "hmbr_stale", "hmbr_aware", "hmbr_adapt",
                    "aware_gain_%", "adapt_gain_%"):
            row[key] = float(np.mean([r[key] for r in per_seed]))
        rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print("Extension (§VII) — repair time [s] when survivor bandwidth collapses mid-repair")
    print(format_table(rows, floatfmt=".2f"))
    print("\nhmbr_aware searches its split against the predicted bandwidth")
    print("trajectory; hmbr_stale uses the pre-change snapshot; hmbr_adapt")
    print("re-plans the remaining volume when observed rates drift.")


if __name__ == "__main__":
    main()
