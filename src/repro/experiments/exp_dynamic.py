"""Extension experiment (paper §VII future work): dynamic bandwidth workloads.

Mid-repair, a set of survivor nodes loses bandwidth (a co-located workload
spins up — the scenario the paper names for future work).  We compare:

* CR / IR — static plans, simulated under the event schedule;
* HMBR (stale) — split searched against the pre-change snapshot;
* HMBR (aware) — split searched against the predicted event schedule.

Expected shape: the stale split misjudges the CR/IR balance and loses part
of its advantage; the dynamics-aware split recovers it.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import build_scenario, format_table, plan_for
from repro.repair.hybrid import plan_hybrid
from repro.simnet.dynamic import degrade_nodes
from repro.simnet.fluid import FluidSimulator

DEFAULT_CASES = [(16, 8, 4), (32, 8, 8)]


def run_one(
    k: int,
    m: int,
    f: int,
    wld: str = "WLD-2x",
    seed: int = 2023,
    change_time_s: float = 1.0,
    degrade_factor: float = 8.0,
    degraded_fraction: float = 0.5,
    block_size_mb: float = 64.0,
) -> dict:
    sc = build_scenario(k, m, f, wld=wld, seed=seed, block_size_mb=block_size_mb)
    ctx = sc.ctx
    survivors = ctx.survivor_nodes()
    n_degraded = max(1, int(round(degraded_fraction * len(survivors))))
    events = degrade_nodes(
        survivors[:n_degraded], at_time=change_time_s, factor=degrade_factor,
        cluster=ctx.cluster,
    )
    sim = FluidSimulator(ctx.cluster)
    t_cr = sim.run(plan_for(ctx, "cr").tasks, events=events).makespan
    t_ir = sim.run(plan_for(ctx, "ir").tasks, events=events).makespan
    stale = plan_hybrid(ctx)
    aware = plan_hybrid(ctx, events=events)
    t_stale = sim.run(stale.tasks, events=events).makespan
    t_aware = sim.run(aware.tasks, events=events).makespan
    return {
        "(k,m,f)": f"({k},{m},{f})",
        "cr": t_cr,
        "ir": t_ir,
        "hmbr_stale": t_stale,
        "hmbr_aware": t_aware,
        "stale_p": stale.meta["p0"],
        "aware_p": aware.meta["p0"],
        "aware_gain_%": 100.0 * (1 - t_aware / t_stale) if t_stale else 0.0,
    }


def run(cases=None, seeds=(2023, 2024, 2025), **kwargs) -> list[dict]:
    cases = cases or DEFAULT_CASES
    rows = []
    for k, m, f in cases:
        per_seed = [run_one(k, m, f, seed=s, **kwargs) for s in seeds]
        row = dict(per_seed[0])
        for key in ("cr", "ir", "hmbr_stale", "hmbr_aware", "aware_gain_%"):
            row[key] = float(np.mean([r[key] for r in per_seed]))
        rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print("Extension (§VII) — repair time [s] when survivor bandwidth collapses mid-repair")
    print(format_table(rows, floatfmt=".2f"))
    print("\nhmbr_aware searches its split against the predicted bandwidth")
    print("trajectory; hmbr_stale uses the pre-change snapshot.")


if __name__ == "__main__":
    main()
