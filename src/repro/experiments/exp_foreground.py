"""Extension experiment: repair's impact on foreground traffic.

Repair competes with client reads for the same links.  We inject a steady
stream of foreground reads (client fetches of random blocks) alongside each
repair scheme and measure both sides: how much the repair slows down, and
how much the p95 foreground read stretches versus an idle cluster.

Expected shape: IR floods every survivor uplink (f blocks each), stretching
reads cluster-wide; CR concentrates pain on the center; HMBR sits between
and finishes fastest, so the *duration* of interference is shortest.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import build_scenario, format_table, plan_for
from repro.simnet.flows import Flow
from repro.simnet.fluid import FluidSimulator

SCHEMES = ["cr", "ir", "hmbr"]


def _foreground_reads(
    ctx, n_reads: int, read_mb: float, rng: np.random.Generator
) -> list:
    """Client reads: random survivor -> random other node (front-end)."""
    nodes = [n for n in ctx.cluster.alive_ids()]
    tasks = []
    for i in range(n_reads):
        src, dst = rng.choice(nodes, size=2, replace=False)
        tasks.append(
            Flow(f"fg:read{i:03d}", int(src), int(dst), read_mb, tag="foreground")
        )
    return tasks


def run_one(
    k: int = 32,
    m: int = 8,
    f: int = 4,
    wld: str = "WLD-4x",
    seed: int = 2023,
    n_reads: int = 32,
    read_mb: float = 16.0,
    block_size_mb: float = 64.0,
) -> list[dict]:
    sc = build_scenario(k, m, f, wld=wld, seed=seed, block_size_mb=block_size_mb)
    ctx = sc.ctx
    rng = np.random.default_rng(seed + 5)
    reads = _foreground_reads(ctx, n_reads, read_mb, rng)
    sim = FluidSimulator(ctx.cluster)

    # idle baseline for the reads
    idle = sim.run(reads)
    idle_times = sorted(idle.finish_times[t.task_id] for t in reads)
    idle_p95 = idle_times[int(0.95 * (len(idle_times) - 1))]

    rows = []
    variants = [(s, plan_for(ctx, s)) for s in SCHEMES]
    # weighted-fair throttling: HMBR at 1/4 of a client flow's share
    from repro.repair.plan import reweighted

    variants.append(("hmbr-w0.25", reweighted(plan_for(ctx, "hmbr"), 0.25)))
    for scheme, plan in variants:
        solo = sim.run(plan.tasks).makespan
        mixed = sim.run(plan.tasks + reads)
        repair_finish = max(
            mixed.finish_times[t.task_id] for t in plan.tasks
        )
        read_times = sorted(mixed.finish_times[t.task_id] for t in reads)
        p95 = read_times[int(0.95 * (len(read_times) - 1))]
        rows.append(
            {
                "scheme": scheme,
                "repair_solo_s": solo,
                "repair_mixed_s": repair_finish,
                "repair_slowdown_x": repair_finish / solo if solo else 0.0,
                "read_p95_idle_s": idle_p95,
                "read_p95_mixed_s": p95,
                "read_stretch_x": p95 / idle_p95 if idle_p95 else 0.0,
            }
        )
    return rows


def run(seeds: tuple[int, ...] = (2023, 2024, 2025), **kwargs) -> list[dict]:
    per_seed = [run_one(seed=s, **kwargs) for s in seeds]
    rows = []
    labels = [r["scheme"] for r in per_seed[0]]
    for i, scheme in enumerate(labels):
        row = dict(per_seed[0][i])
        for key in row:
            if key == "scheme":
                continue
            row[key] = float(np.mean([ps[i][key] for ps in per_seed]))
        rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print("Extension — repair vs foreground reads, (32,8,4), WLD-4x, 32 client reads")
    print(format_table(rows, floatfmt=".2f"))
    print("\nread_stretch_x: p95 foreground read time during repair / idle p95.")
    print("Note the trade: HMBR interferes *more intensely* (it deliberately")
    print("saturates both the center and the survivor links at once) but for a")
    print("much *shorter window* — total interference (stretch x duration) is")
    print("lowest for HMBR.")


if __name__ == "__main__":
    main()
