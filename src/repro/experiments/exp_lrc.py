"""Extension experiment: wide-stripe RS + HMBR versus Azure-style LRC.

The related work (§VI) positions LRC as the classic repair-vs-storage trade:
local parities make single-block repairs read only a group, but cost extra
redundancy — the very redundancy wide stripes exist to eliminate.  This
harness quantifies the trade on one axis chart:

* redundancy (n/k),
* single-block repair: blocks read and simulated transfer time,
* the multi-block exposure (Table-I failure ratio at the stripe's width).

Wide-stripe RS leans on HMBR to keep repairs fast *without* paying LRC's
storage; LRC pays storage to make the common (single-block) repair local.
"""

from __future__ import annotations

from repro.analysis.failure_sim import failure_ratio_exact
from repro.cluster.bandwidth import make_wld
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.lrc import LRCCode
from repro.experiments.common import build_scenario, format_table, transfer_time
from repro.simnet.flows import Flow
from repro.simnet.fluid import FluidSimulator

#: (label, kind, params) — matched at ~equal data width.
DEFAULT_CONFIGS = [
    ("RS(64,8)+HMBR", "rs", (64, 8)),
    ("LRC(64,8,4)", "lrc", (64, 8, 4)),
    ("RS(12,4)+HMBR", "rs", (12, 4)),
    ("LRC(12,3,2)", "lrc", (12, 3, 2)),
]


def _lrc_single_block_time(
    k: int, l: int, g: int, wld: str, seed: int, block_size_mb: float
) -> tuple[float, int]:
    """Simulated local repair of a data block: group members -> new node."""
    code = LRCCode(k, l, g)
    n_total = code.n + 1
    ds = make_wld(n_total, wld, seed=seed)
    cluster = Cluster(
        [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(n_total)]
    )
    new_node = code.n
    group = code.group_members(0)[1:] + [code.local_parity_of(0)]  # block 0 failed
    tasks = [
        Flow(f"fetch{b}", src=b, dst=new_node, size_mb=block_size_mb) for b in group
    ]
    t = FluidSimulator(cluster).run(tasks).makespan
    return t, len(group)


def run(
    configs=None,
    wld: str = "WLD-4x",
    seed: int = 2023,
    cluster_nodes: int = 2500,
    block_size_mb: float = 64.0,
) -> list[dict]:
    configs = configs or DEFAULT_CONFIGS
    rows = []
    for label, kind, params in configs:
        if kind == "rs":
            k, m = params
            width = k + m
            sc = build_scenario(k, m, 1, wld=wld, seed=seed, block_size_mb=block_size_mb)
            t_single = transfer_time(sc.ctx, "hmbr")
            blocks_read = k
            overhead = width / k
        else:
            k, l, g = params
            code = LRCCode(k, l, g)
            width = code.n
            t_single, blocks_read = _lrc_single_block_time(
                k, l, g, wld, seed, block_size_mb
            )
            overhead = code.storage_overhead
        rows.append(
            {
                "config": label,
                "width": width,
                "overhead_x": overhead,
                "single_repair_blocks": blocks_read,
                "single_repair_s": t_single,
                "multiblock_ratio_%": 100.0
                * failure_ratio_exact(width - 1, 1, cluster_nodes),
            }
        )
    return rows


def main() -> None:
    rows = run()
    print("Extension — wide-stripe RS + HMBR vs Azure-style LRC (single-block repair)")
    print(format_table(rows, floatfmt=".3f"))
    print("\nLRC buys local repair with extra redundancy; wide stripes keep the")
    print("redundancy floor and lean on repair machinery (RP chains / HMBR).")


if __name__ == "__main__":
    main()
