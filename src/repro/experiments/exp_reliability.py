"""Extension experiment: from repair speed to durability (MTTDL).

The paper motivates fast multi-block repair with failure statistics but
stops at repair time.  This harness closes the loop: feed each scheme's
measured repair_time(f) curves into the Markov MTTDL model and report the
durability each scheme actually buys for wide stripes.
"""

from __future__ import annotations

from repro.analysis.reliability import scheme_mttdl_comparison
from repro.experiments.common import build_scenario, format_table, transfer_time

DEFAULT_CASES = [(16, 4), (32, 4), (64, 8)]
SCHEMES = ("cr", "ir", "hmbr")


def run(
    cases: list[tuple[int, int]] | None = None,
    wld: str = "WLD-8x",
    seed: int = 2023,
    node_mttf_hours: float = 10_000.0,
    detection_delay_hours: float = 1.0 / 60.0,  # ~1 min heartbeat + scheduling
    block_size_mb: float = 64.0,
) -> list[dict]:
    cases = cases or DEFAULT_CASES
    rows = []
    for k, m in cases:
        times: dict[str, dict[int, float]] = {s: {} for s in SCHEMES}
        for f in range(1, m + 1):
            sc = build_scenario(k, m, f, wld=wld, seed=seed, block_size_mb=block_size_mb)
            for scheme in SCHEMES:
                times[scheme][f] = transfer_time(sc.ctx, scheme)
        mttdl = scheme_mttdl_comparison(
            k, m, times,
            node_mttf_hours=node_mttf_hours,
            detection_delay_hours=detection_delay_hours,
        )
        row: dict = {"(k,m)": f"({k},{m})"}
        for scheme in SCHEMES:
            row[f"{scheme}_mttdl_yr"] = mttdl[scheme].mttdl_years
        row["hmbr_vs_cr_x"] = mttdl["hmbr"].mttdl_years / mttdl["cr"].mttdl_years
        row["hmbr_vs_ir_x"] = mttdl["hmbr"].mttdl_years / mttdl["ir"].mttdl_years
        rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print("Extension — stripe durability (MTTDL, years) per repair scheme, WLD-8x")
    print(format_table(rows, floatfmt=".3g"))
    print("\nper-node MTTF 10,000 h, 1 min detection delay; repair rates from measured times.")
    print("Faster multi-block repair converts directly into durability.")


if __name__ == "__main__":
    main()
