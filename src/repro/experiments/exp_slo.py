"""Extension experiment: widest affordable stripe under a repair-time SLO.

The inverse of the paper's evaluation: instead of fixing (k, m) and
measuring repair time, fix a repair-time budget and find the widest stripe
each scheme sustains — i.e. translate repair speed into storage savings.
"""

from __future__ import annotations

from repro.analysis.whatif import slo_table
from repro.experiments.common import format_table

DEFAULT_SLOS = [5.0, 10.0, 20.0]


def run(
    slos: list[float] | None = None,
    m: int = 8,
    f: int = 4,
    wld: str = "WLD-4x",
    k_max: int = 96,
    k_step: int = 4,
    seeds: tuple[int, ...] = (2023, 2024),
) -> list[dict]:
    slos = slos or DEFAULT_SLOS
    rows = []
    for slo in slos:
        for row in slo_table(
            slo, m, f, k_min=4, k_max=k_max, k_step=k_step, wld=wld, seeds=seeds
        ):
            rows.append({"slo_s": slo, **row})
    return rows


def main() -> None:
    rows = run()
    print("Extension — widest (k, 8) stripe whose f=4 repair meets an SLO, WLD-4x")
    print(format_table(rows, floatfmt=".3f"))
    print("\nFaster repair machinery converts directly into wider stripes, i.e.")
    print("lower redundancy at the same repair-time budget.")


if __name__ == "__main__":
    main()
