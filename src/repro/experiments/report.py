"""EXPERIMENTS.md generator: run every harness and record paper-vs-measured.

``python -m repro.experiments.report`` regenerates ``EXPERIMENTS.md`` in the
repository root, so the document always reflects what the code actually
produces.  Each section records the paper's claim, our measured rows, and an
honest note where shapes deviate.
"""

from __future__ import annotations

import datetime
from pathlib import Path

import numpy as np

from repro.experiments import (
    exp1,
    exp2,
    exp3,
    exp4,
    exp5,
    exp6,
    exp_dynamic,
    exp_foreground,
    exp_lrc,
    exp_reliability,
    exp_slo,
    sensitivity,
    table1,
)


def _md_table(rows: list[dict], floatfmt: str = ".2f") -> str:
    if not rows:
        return "(no rows)"
    cols = list(rows[0].keys())

    def cell(v):
        return f"{v:{floatfmt}}" if isinstance(v, float) else str(v)

    lines = ["| " + " | ".join(cols) + " |", "|" + "---|" * len(cols)]
    lines += ["| " + " | ".join(cell(r.get(c, "")) for c in cols) + " |" for r in rows]
    return "\n".join(lines)


def _section(title: str, claim: str, rows: list[dict], note: str, floatfmt=".2f") -> str:
    return (
        f"## {title}\n\n**Paper's claim.** {claim}\n\n"
        f"{_md_table(rows, floatfmt)}\n\n**Reproduction note.** {note}\n"
    )


def generate(path: str | Path = "EXPERIMENTS.md", quick: bool = False) -> Path:
    """Run all harnesses and write the report; returns the output path.

    ``quick=True`` shrinks grids/seeds (used by tests); the committed
    document is generated with ``quick=False``.
    """
    seeds = (2023,) if quick else (2023, 2024, 2025)
    sections: list[str] = []

    # ---------------- Table I ---------------- #
    rows = table1.run()
    sections.append(
        _section(
            "Table I — multi-block failure ratio after a correlated outage",
            "With 1% of nodes lost after a power outage, the fraction R of "
            "affected stripes that lost **multiple** blocks grows with the "
            "stripe width and the cluster size, reaching ~30% at k = 64.",
            rows,
            "Exact hypergeometric computation (the paper simulated). Every "
            "cell lands within ~0.4 points of the paper; the Monte-Carlo and "
            "literal placement simulators agree (see tests/benchmarks).",
        )
    )

    # ---------------- Experiment 1 ---------------- #
    rows = exp1.run(seeds=seeds)
    best_cr = max(r["hmbr_vs_cr_%"] for r in rows)
    best_ir = max(r["hmbr_vs_ir_%"] for r in rows)
    sections.append(
        _section(
            "Experiment 1 (Fig. 8) — repair time vs (k, m, f) per workload",
            "HMBR reduces multi-block repair time by up to 57.5% vs CR and "
            "64.8% vs IR at (64,8,8) under WLD-8x; IR beats CR under the 2x "
            "gap but deteriorates as the gap widens.",
            rows,
            f"HMBR wins every cell (max reduction {best_cr:.1f}% vs CR, "
            f"{best_ir:.1f}% vs IR). The IR-vs-CR crossover appears at the 8x "
            "gap in our calibration (the paper saw it from 4x): our fastest "
            "node is pinned at 200 MB/s for every dataset, so the crossover "
            "point shifts with the min-bandwidth calibration, not the "
            "mechanism.",
        )
    )

    # ---------------- Experiment 2 ---------------- #
    rows = exp2.run(seeds=seeds)
    sections.append(
        _section(
            "Experiment 2 (Fig. 9) — repair time vs f under WLD-2x",
            "Repair time grows quickly with f; CR loses to IR across f under "
            "the small gap; HMBR always wins.",
            rows,
            "All three observations hold: IR and HMBR scale ~linearly with "
            "f, CR is flat (center-downlink bound, ~k·B/D regardless of f), "
            "and HMBR ≤ min(CR, IR) everywhere.",
        )
    )

    # ---------------- Experiment 3 ---------------- #
    rows = exp3.run(seeds=seeds)
    sections.append(
        _section(
            "Experiment 3 (Fig. 10) — repair time vs block size under WLD-4x",
            "Times grow with block size; the gaps between schemes stay stable.",
            rows,
            "Exact linear scaling in B (every term of the §III model is "
            "proportional to B) with scheme ratios constant across sizes.",
        )
    )

    # ---------------- Experiment 4 ---------------- #
    rows = exp4.run(seeds=seeds if not quick else (2023,))
    mean_red = float(np.mean([r["reduction_%"] for r in rows]))
    sections.append(
        _section(
            "Experiment 4 (Fig. 11) — HMBR vs rack-aware HMBR",
            "Rack-aware HMBR cuts repair time by 33.9% on average (up to "
            "55.3% at (64,8), f=2) and becomes slightly worse at f = rack "
            "size, where per-rack intermediates stop saving cross traffic.",
            rows,
            f"Direction reproduced (mean reduction {mean_red:.1f}%), and the "
            "cross-traffic mechanism matches exactly: rack-aware ships "
            "f·(#racks) cross blocks, fewer than plain HMBR below f = rack "
            "size and **more** at f = 8 (see the cross_mb columns). Our "
            "f-trend differs from the paper's: the least-used-link repair "
            "trees keep paying off at large f because the chain-IR baseline "
            "shares every cross link f ways, so the reduction grows rather "
            "than shrinks — the paper's baseline IR appears to have been "
            "less cross-contended on EC2.",
        )
    )

    # ---------------- Experiment 5 ---------------- #
    rows = exp5.run(seeds=seeds if not quick else (2023,))
    mean_red = float(np.mean([r["reduction_%"] for r in rows]))
    max_red = max(r["reduction_%"] for r in rows)
    sections.append(
        _section(
            "Experiment 5 (Fig. 12) — multi-node repair ± LFS+LRS scheduling",
            "The §IV-C center scheduler reduces multi-node repair time by "
            "10.9% on average and up to 15.9%.",
            rows,
            f"Mean reduction {mean_red:.1f}%, max {max_red:.1f}%. Gains "
            "concentrate in wide stripes where centers are genuinely "
            "contended; with few replacement candidates per stripe the "
            "scheduler has no freedom and the effect vanishes (small-k "
            "rows). Reproducing this experiment required a global split "
            "search across stripes — per-stripe splits ignore cross-stripe "
            "contention and invert the result (kept as an ablation).",
        )
    )

    # ---------------- Experiment 6 ---------------- #
    rows = exp6.run()
    fracs = [r["T_t_frac_%"] for r in rows]
    sections.append(
        _section(
            "Experiment 6 (Table II) — repair-time breakdown",
            "Network transfer time dominates the overall repair time "
            "(87.5% on average across CR/IR/HMBR at (32,4) and (64,8)).",
            rows,
            f"Mean transfer fraction {float(np.mean(fracs)):.1f}% (paper "
            "87.5%). T_t comes from the fluid simulator; T_o charges the "
            "executor's measured GF byte counts to an ISA-L-class cost "
            "model plus disk I/O — raw Python kernel seconds are reported "
            "separately since they are ~20x off ISA-L.",
        )
    )

    # ---------------- Extensions ---------------- #
    rows = exp_dynamic.run(seeds=seeds)
    sections.append(
        _section(
            "Extension (§VII future work) — dynamic bandwidth workloads",
            "The paper defers dynamic workloads to future work. We add "
            "bandwidth-change events to the simulator and a dynamics-aware "
            "split that searches p against the predicted trajectory.",
            rows,
            "When half the survivors lose 8x bandwidth mid-repair, the "
            "stale split (searched against the snapshot) loses most of "
            "HMBR's advantage; the dynamics-aware split recovers it by "
            "shifting work toward the centralized path.",
        )
    )

    rows = sensitivity.run(seeds=seeds)
    sections.append(
        _section(
            "Extension — robustness to bandwidth-table error",
            "HMBR plans from a measured bandwidth table (§IV assumes one "
            "exists); how wrong can it be before the hybrid stops paying?",
            rows,
            "Splits planned from a corrupted table and measured on the true "
            "cluster: ~10% table error costs ~5% regret, ~20% costs ~10%, "
            "and HMBR keeps beating both pure schemes until errors reach "
            "~40%.",
        )
    )

    rows = exp_reliability.run()
    sections.append(
        _section(
            "Extension — durability pay-off (MTTDL)",
            "The paper motivates fast multi-block repair with failure "
            "statistics; this closes the loop to data durability via the "
            "Markov MTTDL model (1-minute detection delay, 10,000 h node "
            "MTTF, repair rates from the measured repair times).",
            rows,
            "Faster multi-block repair converts directly into MTTDL: HMBR "
            "buys ~1.1-1.4x over IR and up to ~10x over CR at (64,8), where "
            "CR's k-proportional repair times dominate the repair window.",
            floatfmt=".3g",
        )
    )

    rows = exp_lrc.run()
    sections.append(
        _section(
            "Extension — wide-stripe RS + HMBR vs Azure-style LRC",
            "Related work (§VI): LRC trades storage for local repair; wide "
            "stripes chase the redundancy floor instead and lean on repair "
            "machinery.",
            rows,
            "LRC reads 8x fewer blocks per single-block repair, yet the "
            "wide stripe's *pipelined* repair is faster in wall-clock time "
            "(a chain moves B bytes per link; LRC's star divides the new "
            "node's downlink by the group size) — while storing less. LRC "
            "keeps the I/O advantage, which matters for disk-bound "
            "clusters.",
        )
    )

    rows = exp_slo.run(seeds=seeds[:2])
    sections.append(
        _section(
            "Extension — widest stripe under a repair-time SLO",
            "The paper's contribution, priced in storage: fix a repair-time "
            "budget and ask how wide (cheap) stripes can go per scheme.",
            rows,
            "Under a 5 s budget with f = 4 on WLD-4x, CR affords only k = 4 "
            "(3.0x redundancy) while HMBR affords k = 96 (1.083x) — repair "
            "machinery is what makes near-1x redundancy operable.",
        )
    )

    rows = exp_foreground.run(seeds=seeds)
    sections.append(
        _section(
            "Extension — repair's impact on foreground traffic",
            "Repair competes with client reads; which scheme hurts "
            "foreground traffic least?",
            rows,
            "HMBR interferes more *intensely* (it deliberately saturates "
            "both the center and the survivor uplinks at once) but for the "
            "shortest *window* — it finishes 2-3x sooner, so the total "
            "disruption is smallest. The weighted-fair throttled variant "
            "(repair flows at 1/4 of a client flow's share) nearly removes "
            "the read stretch at almost no repair-time cost.",
        )
    )

    stamp = datetime.date.today().isoformat()
    header = (
        "# EXPERIMENTS — paper vs. reproduction\n\n"
        "Generated by `python -m repro.experiments.report` "
        f"on {stamp}. Every table below is produced by the code in "
        "`src/repro/experiments/`; the same harnesses back the test suite "
        "and the benchmark targets (see DESIGN.md for the index).\n\n"
        "Absolute seconds are not expected to match the paper (our network "
        "is a fluid simulator calibrated to a 200 MB/s fastest node, not "
        "the authors' EC2 tenancy); the claims checked are the *shapes*: "
        "who wins, by roughly what factor, and where crossovers fall.\n"
    )
    text = header + "\n" + "\n".join(sections)
    out = Path(path)
    out.write_text(text)
    return out


def main() -> None:
    out = generate()
    print(f"wrote {out} ({out.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
