"""Extension experiment: HMBR's sensitivity to bandwidth-table error.

HMBR plans its split from the coordinator's bandwidth table; that table is
measured, so it is noisy and stale.  This harness plans with a *noisy* view
(split ratio, center choice and chain order all derived from corrupted
bandwidths) and measures the plan on the *true* cluster, sweeping the error
level.  The question: how much of HMBR's advantage over the best pure scheme
survives a 10/20/40%-wrong table?
"""

from __future__ import annotations

import numpy as np

from repro.cluster.probing import noisy_cluster
from repro.experiments.common import build_scenario, format_table
from repro.repair.centralized import plan_centralized
from repro.repair.context import RepairContext
from repro.repair.hybrid import plan_hybrid
from repro.repair.independent import plan_independent
from repro.simnet.fluid import FluidSimulator

DEFAULT_ERRORS = [0.0, 0.1, 0.2, 0.4]


def run_one(
    k: int,
    m: int,
    f: int,
    rel_error: float,
    wld: str = "WLD-8x",
    seed: int = 2023,
    noise_seed: int = 1,
    block_size_mb: float = 64.0,
) -> dict:
    sc = build_scenario(k, m, f, wld=wld, seed=seed, block_size_mb=block_size_mb)
    true_ctx = sc.ctx

    # the coordinator's (noisy) view of the same failure
    view = noisy_cluster(true_ctx.cluster, rel_error, rng=noise_seed)
    noisy_ctx = RepairContext(
        cluster=view,
        code=true_ctx.code,
        stripe=true_ctx.stripe,
        failed_blocks=true_ctx.failed_blocks,
        new_nodes=true_ctx.new_nodes,
        block_size_mb=block_size_mb,
    )

    sim = FluidSimulator(true_ctx.cluster)  # ground truth
    t_cr = sim.run(plan_centralized(true_ctx).tasks).makespan
    t_ir = sim.run(plan_independent(true_ctx).tasks).makespan
    noisy_plan = plan_hybrid(noisy_ctx)  # planned on the corrupted table
    t_noisy = sim.run(noisy_plan.tasks).makespan
    oracle_plan = plan_hybrid(true_ctx)
    t_oracle = sim.run(oracle_plan.tasks).makespan
    best_pure = min(t_cr, t_ir)
    return {
        "rel_error": rel_error,
        "cr": t_cr,
        "ir": t_ir,
        "hmbr_oracle": t_oracle,
        "hmbr_noisy": t_noisy,
        "noisy_p": noisy_plan.meta["p0"],
        "regret_%": 100.0 * (t_noisy - t_oracle) / t_oracle if t_oracle else 0.0,
        "still_beats_pure": bool(t_noisy <= best_pure + 1e-9),
    }


def run(
    k: int = 32,
    m: int = 8,
    f: int = 8,
    errors: list[float] | None = None,
    seeds: tuple[int, ...] = (2023, 2024, 2025),
    **kwargs,
) -> list[dict]:
    errors = errors if errors is not None else DEFAULT_ERRORS
    rows = []
    for err in errors:
        per_seed = [
            run_one(k, m, f, err, seed=s, noise_seed=s + 97, **kwargs) for s in seeds
        ]
        row = dict(per_seed[0])
        for key in ("cr", "ir", "hmbr_oracle", "hmbr_noisy", "regret_%"):
            row[key] = float(np.mean([r[key] for r in per_seed]))
        row["still_beats_pure"] = all(r["still_beats_pure"] for r in per_seed)
        rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print("Extension — HMBR robustness to bandwidth-table error, (32,8,8), WLD-8x")
    print(format_table(rows, floatfmt=".2f"))
    print("\nregret = slowdown of the noisy-table plan vs the oracle plan,")
    print("both measured on the true cluster.")


if __name__ == "__main__":
    main()
