"""Generic parameter-sweep driver and tabular export helpers.

Every experiment harness returns ``list[dict]`` rows; these utilities build
cartesian sweeps over any row-producing function and export results as CSV
or markdown, so ad-hoc studies ("how does the HMBR gain move with the rack
size and the cross-rack factor?") are one-liners.
"""

from __future__ import annotations

import csv
import itertools
from collections.abc import Callable
from pathlib import Path


def cartesian_sweep(
    fn: Callable[..., dict | list[dict]],
    grid: dict[str, list],
    fixed: dict | None = None,
) -> list[dict]:
    """Call ``fn(**point, **fixed)`` for every point of the parameter grid.

    The swept parameter values are merged into each returned row, so the
    output is self-describing.  ``fn`` may return one row or a list of rows.
    """
    if not grid:
        raise ValueError("empty parameter grid")
    fixed = fixed or {}
    overlap = set(grid) & set(fixed)
    if overlap:
        raise ValueError(f"parameters both swept and fixed: {sorted(overlap)}")
    keys = sorted(grid)
    rows: list[dict] = []
    for values in itertools.product(*(grid[k] for k in keys)):
        point = dict(zip(keys, values))
        out = fn(**point, **fixed)
        out_rows = out if isinstance(out, list) else [out]
        for row in out_rows:
            rows.append({**point, **row})
    return rows


def rows_to_csv(rows: list[dict], path: str | Path) -> Path:
    """Write rows to CSV (union of keys, insertion-ordered)."""
    path = Path(path)
    if not rows:
        raise ValueError("no rows to write")
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def rows_to_markdown(rows: list[dict], floatfmt: str = ".3f") -> str:
    """Rows as a GitHub-flavored markdown table."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def cell(v):
        return f"{v:{floatfmt}}" if isinstance(v, float) else str(v)

    lines = ["| " + " | ".join(columns) + " |", "|" + "---|" * len(columns)]
    lines += [
        "| " + " | ".join(cell(r.get(c, "")) for c in columns) + " |" for r in rows
    ]
    return "\n".join(lines)
