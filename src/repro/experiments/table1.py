"""Table I: multi-block failure ratio R versus (k, m) and cluster size N."""

from __future__ import annotations

from repro.analysis.failure_sim import TABLE1_CODES, TABLE1_NODES, table1_grid
from repro.experiments.common import format_table

#: The paper's reported Table I values (percent), for side-by-side output.
PAPER_TABLE1 = {
    (6, 3): {500: 3.24, 1000: 3.57, 2500: 3.81, 5000: 3.92},
    (9, 3): {500: 4.46, 1000: 4.94, 2500: 5.20, 5000: 5.30},
    (12, 4): {500: 5.89, 1000: 6.80, 2500: 7.12, 5000: 7.21},
    (64, 8): {500: 28.16, 1000: 30.13, 2500: 30.80, 5000: 31.23},
    (64, 16): {500: 31.75, 1000: 32.93, 2500: 34.00, 5000: 34.36},
    (64, 24): {500: 34.15, 1000: 36.15, 2500: 36.86, 5000: 37.21},
}


def run(method: str = "exact", loss_fraction: float = 0.01, **kwargs) -> list[dict]:
    """One row per (k, m): measured R (%) per N, plus the paper's values."""
    grid = table1_grid(method=method, loss_fraction=loss_fraction, **kwargs)
    rows = []
    for (k, m), by_n in grid.items():
        row: dict = {"(k,m)": f"({k},{m})"}
        for n in TABLE1_NODES:
            row[f"R(N={n})%"] = 100.0 * by_n[n]
            paper = PAPER_TABLE1.get((k, m), {}).get(n)
            if paper is not None:
                row[f"paper(N={n})%"] = paper
        rows.append(row)
    return rows


def main() -> None:
    rows = run()
    cols = ["(k,m)"] + [f"R(N={n})%" for n in TABLE1_NODES] + [
        f"paper(N={n})%" for n in TABLE1_NODES
    ]
    print("Table I — multi-block failure ratio after a 1% power-outage loss")
    print(format_table(rows, cols, floatfmt=".2f"))


if __name__ == "__main__":
    main()
