"""Deterministic, seedable fault injection for the storage system.

Public surface:

* :class:`~repro.faults.schedule.FaultSchedule` / ``FaultEvent`` — replayable
  ``(time, kind, target)`` event lists (``FaultSchedule.random(seed, ...)``
  for chaos runs);
* :class:`~repro.faults.injector.FaultInjector` — the logical clock that
  fires events and gates transfers through ``DataBus.fault_hook``;
* :class:`~repro.faults.runtime.FaultRuntime` / ``FaultRepairReport`` — the
  degraded-repair state machine behind
  :meth:`repro.system.coordinator.Coordinator.repair_with_faults`;
* the exception hierarchy in :mod:`repro.faults.errors`.

Importing this package changes nothing: injection is active only while a
runtime attaches an injector to a coordinator's bus.  See ``docs/FAULTS.md``.
"""

from repro.faults.errors import (
    DeadAgent,
    FaultError,
    NodeFlapping,
    PlanTimeout,
    RepairAborted,
    StripeUnrecoverable,
    TransferDropped,
    TransientFault,
)
from repro.faults.injector import FaultInjector
from repro.faults.runtime import FaultRepairReport, FaultRuntime
from repro.faults.schedule import FaultEvent, FaultSchedule

__all__ = [
    "DeadAgent",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultRepairReport",
    "FaultRuntime",
    "FaultSchedule",
    "NodeFlapping",
    "PlanTimeout",
    "RepairAborted",
    "StripeUnrecoverable",
    "TransferDropped",
    "TransientFault",
]
