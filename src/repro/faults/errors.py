"""Fault-injection exception hierarchy.

Transient faults (dropped transfer, a flapping peer) are retryable against
the *same* plan: the runtime backs off and resumes from the execution
journal.  Fatal faults (a dead helper, a plan timeout) abort the in-flight
plan; the coordinator re-plans around the surviving helpers.
"""

from __future__ import annotations


class FaultError(Exception):
    """Base class for every injected fault."""


class TransientFault(FaultError):
    """Retryable against the same plan (resume from the journal)."""


class TransferDropped(TransientFault):
    """An injected one-shot loss of the next transfer touching a target."""

    def __init__(self, src: int, dst: int):
        super().__init__(f"transfer {src}->{dst} dropped by fault injection")
        self.src = src
        self.dst = dst


class NodeFlapping(TransientFault):
    """A peer is inside an injected unresponsive window."""

    def __init__(self, node: int, until: float):
        super().__init__(f"node {node} unresponsive until t={until:.3f}")
        self.node = node
        self.until = until


class DeadAgent(FaultError):
    """An op touched an agent that was killed — the plan must be rebuilt."""

    def __init__(self, node: int):
        super().__init__(f"agent {node} is dead")
        self.node = node


class PlanTimeout(FaultError):
    """The attempt exceeded the per-plan wall-clock budget."""

    def __init__(self, elapsed: float, budget: float):
        super().__init__(f"plan ran {elapsed:.3f}s > budget {budget:.3f}s")
        self.elapsed = elapsed
        self.budget = budget


class RepairAborted(RuntimeError):
    """Retries exhausted: the repair round gave up on a stripe."""

    def __init__(self, stripe_id: int, attempts: int, last: Exception):
        super().__init__(
            f"stripe {stripe_id}: gave up after {attempts} attempts ({last})"
        )
        self.stripe_id = stripe_id
        self.attempts = attempts
        self.last = last


class StripeUnrecoverable(RuntimeError):
    """Fewer than k blocks of a stripe survive — no plan can exist.

    Raised by repair planning *and* by the serving plane's degraded-read
    path (:meth:`repro.workload.serving.ServingPlane.read_object`): a
    client read of a stripe with fewer than ``k`` surviving blocks fails
    with this error rather than returning wrong bytes.
    """

    def __init__(self, stripe_id: int, surviving: int, k: int):
        super().__init__(
            f"stripe {stripe_id} unrecoverable: {surviving} surviving blocks < k={k}"
        )
        self.stripe_id = stripe_id
        self.surviving = surviving
        self.k = k
