"""The fault injector: a logical clock that fires scheduled faults.

The injector owns simulated wall time (``now``).  The fault-aware runtime
ticks it once per executed op; backoff sleeps and heartbeat-detection waits
advance it in larger jumps.  Whenever the clock passes an event's time the
event *fires*: the injector updates its own state (killed set, slowdown
factors, flap windows, armed one-shot drops/delays) and queues the event for
the caller, which applies data-plane side effects (``Agent.fail``).

Transfer faults reach the data plane through :meth:`check_transfer`, which
installs as :attr:`repro.system.bus.DataBus.fault_hook` via :meth:`attach`.
With no injector attached the bus hook is ``None`` and every hot path is
byte-for-byte identical to the fault-free system.
"""

from __future__ import annotations

from collections import deque

from repro.faults.errors import DeadAgent, NodeFlapping, TransferDropped
from repro.faults.schedule import FaultEvent, FaultSchedule


class FaultInjector:
    """Deterministic, seed-replayable fault state machine."""

    def __init__(self, schedule: FaultSchedule, tick_s: float = 0.001, start: float = 0.0):
        self.schedule = schedule
        self.tick_s = float(tick_s)
        self.now = float(start)
        self._pending: deque[FaultEvent] = deque(sorted(schedule))
        self.fired: list[FaultEvent] = []
        self._unapplied: deque[FaultEvent] = deque()
        self.killed: set[int] = set()
        self.slowdown_of: dict[int, float] = {}
        self._flaps: list[tuple[float, float, int]] = []  # (start, end, node)
        self._armed_drops: list[FaultEvent] = []
        self._armed_delays: list[FaultEvent] = []
        self.delay_accrued_s = 0.0
        self.drops_consumed = 0
        self.delays_consumed = 0

    # ---------------------------------------------------------------- #
    # clock
    # ---------------------------------------------------------------- #
    def advance(self, dt: float = 0.0) -> list[FaultEvent]:
        """Move the clock forward and fire every event now due."""
        if dt < 0:
            raise ValueError("cannot advance the clock backwards")
        self.now += dt
        newly: list[FaultEvent] = []
        while self._pending and self._pending[0].time <= self.now:
            ev = self._pending.popleft()
            self._fire(ev)
            newly.append(ev)
        return newly

    def tick(self) -> list[FaultEvent]:
        """One op's worth of logical time."""
        return self.advance(self.tick_s)

    def _fire(self, ev: FaultEvent) -> None:
        self.fired.append(ev)
        self._unapplied.append(ev)
        if ev.kind == "kill":
            self.killed.add(ev.target)
        elif ev.kind == "slow":
            self.slowdown_of[ev.target] = ev.param
        elif ev.kind == "flap":
            self._flaps.append((ev.time, ev.time + ev.param, ev.target))
        elif ev.kind == "drop":
            self._armed_drops.append(ev)
        elif ev.kind == "delay":
            self._armed_delays.append(ev)

    def drain_fired(self) -> list[FaultEvent]:
        """Events fired since the last drain (for data-plane side effects)."""
        out = list(self._unapplied)
        self._unapplied.clear()
        return out

    # ---------------------------------------------------------------- #
    # state queries
    # ---------------------------------------------------------------- #
    @property
    def exhausted(self) -> bool:
        """True once no future event can change behavior."""
        return not self._pending and not self._armed_drops and not self._armed_delays

    def next_event_time(self) -> float | None:
        """Fire time of the next scheduled (not yet fired) event."""
        return self._pending[0].time if self._pending else None

    def is_killed(self, node: int) -> bool:
        return node in self.killed

    def flapping_until(self, node: int) -> float | None:
        """End of an active flap window covering ``now``, else None."""
        ends = [end for start, end, n in self._flaps if n == node and start <= self.now < end]
        return max(ends) if ends else None

    def responsive(self, node: int) -> bool:
        """A node heartbeats unless it is dead or inside a flap window."""
        return node not in self.killed and self.flapping_until(node) is None

    def slowdown(self, node: int) -> float:
        return self.slowdown_of.get(node, 1.0)

    # ---------------------------------------------------------------- #
    # transfer injection point (bus.fault_hook)
    # ---------------------------------------------------------------- #
    def check_transfer(self, src: int, dst: int, nbytes: int) -> None:
        """Gate one transfer; raises a fault or silently delays it.

        Armed delays apply first (they advance the clock, possibly firing
        more events), then armed drops, then flap windows, then dead peers.
        """
        for ev in list(self._armed_delays):
            if ev.target in (src, dst):
                self._armed_delays.remove(ev)
                self.delays_consumed += 1
                self.delay_accrued_s += ev.param
                self.advance(ev.param)
        for ev in list(self._armed_drops):
            if ev.target in (src, dst):
                self._armed_drops.remove(ev)
                self.drops_consumed += 1
                raise TransferDropped(src, dst)
        for node in (src, dst):
            until = self.flapping_until(node)
            if until is not None:
                raise NodeFlapping(node, until)
        for node in (src, dst):
            if node in self.killed:
                raise DeadAgent(node)

    def attach(self, bus) -> None:
        bus.fault_hook = self.check_transfer

    def detach(self, bus) -> None:
        # bound-method equality (not identity: each attribute access builds a
        # fresh method object, so ``is`` would never match)
        if bus.fault_hook == self.check_transfer:
            bus.fault_hook = None
