"""Fault-aware repair runtime: retry, backoff, timeout, and re-planning.

This is the degraded-repair state machine described in ``docs/FAULTS.md``:

* the injector's logical clock ticks once per executed op, and every
  responsive agent heartbeats on each tick;
* a **transient** fault (dropped transfer, flapping peer) backs off
  exponentially and *resumes* the same plan from its execution journal —
  completed ops are never redone;
* a **fatal** fault (dead helper, per-plan timeout) waits out the heartbeat
  timeout so :class:`~repro.system.heartbeat.HeartbeatMonitor` confirms the
  death, then re-plans the stripe from scratch over the surviving helpers
  and fresh spares;
* stripes already committed are never re-executed; rounds continue until no
  stripe is missing blocks and no scheduled fault remains to fire.

The runtime only ever *adds* behavior: it drives the same agents, bus, and
planners as :meth:`repro.system.coordinator.Coordinator.repair`, and with an
empty schedule it performs the identical op sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ec.stripe import block_name
from repro.faults.errors import (
    DeadAgent,
    PlanTimeout,
    RepairAborted,
    StripeUnrecoverable,
    TransientFault,
)
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultEvent
from repro.repair.context import RepairContext
from repro.repair.executor import ExecutionJournal
from repro.repair.plan import (
    CombineOp,
    ConcatOp,
    RepairPlan,
    SliceOp,
    TransferOp,
    rename_plan,
)
from repro.repair.validate import validate_plan
from repro.simnet.fluid import FluidSimulator

_MAX_ROUNDS = 32  # safety net: schedules are finite, rounds must terminate

#: default ceiling on one exponential-backoff delay (seconds).  Without a cap
#: ``base * 2**attempt`` reaches minutes within a handful of retries and a
#: single flaky stripe can stall a whole storm round.
DEFAULT_MAX_BACKOFF_S = 30.0


def backoff_delay(
    attempt: int,
    base_s: float,
    max_s: float = DEFAULT_MAX_BACKOFF_S,
    jitter_frac: float = 0.0,
    seed: int = 0,
    key: int = 0,
) -> float:
    """Capped exponential backoff with deterministic seed-derived jitter.

    ``attempt`` is 1-based; the un-jittered sequence is
    ``min(base_s * 2**(attempt-1), max_s)``.  With ``jitter_frac > 0`` the
    delay is scaled by a factor drawn uniformly from
    ``[1 - jitter_frac, 1 + jitter_frac]`` using a generator seeded from
    ``(seed, key, attempt)`` — the same inputs always produce the same
    delay, so fault-injected runs stay replayable, while different stripes
    (different ``key``) desynchronize instead of retrying in lockstep.
    The ceiling is strict: jitter never pushes a delay above ``max_s``.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    if base_s < 0 or max_s < 0:
        raise ValueError("backoff times must be non-negative")
    if not 0.0 <= jitter_frac < 1.0:
        raise ValueError(f"jitter_frac must be in [0, 1), got {jitter_frac}")
    # cap the exponent too: 2**attempt overflows floats near attempt ~ 1024
    delay = max_s if base_s and attempt > 64 else min(base_s * 2 ** (attempt - 1), max_s)
    if jitter_frac:
        import numpy as np

        u = np.random.default_rng([seed, key, attempt]).random()
        delay *= 1.0 + jitter_frac * (2.0 * u - 1.0)
    return min(delay, max_s)


@dataclass
class FaultRepairReport:
    """Outcome of one fault-aware repair run."""

    scheme: str
    dead_nodes: list[int]
    stripes_repaired: list[int]
    blocks_recovered: int
    rounds: int
    attempts: dict[int, int] = field(default_factory=dict)  # stripe -> attempts
    replans: int = 0
    retries: int = 0
    drops: int = 0
    delay_s: float = 0.0
    backoff_s: float = 0.0
    detections: list[int] = field(default_factory=list)
    events_fired: list[FaultEvent] = field(default_factory=list)
    #: data-plane bytes actually copied between agents (== bus delta)
    executed_transfer_bytes: int = 0
    #: subset of the above belonging to attempts that were later aborted
    wasted_transfer_bytes: int = 0
    simulated_transfer_s: float = 0.0
    #: MB the fluid simulator charged for the committed plans; conservation
    #: demands this equal ``bytes_on_wire_mb_model`` (chaos tests assert it)
    sim_bytes_mb: float = 0.0
    per_stripe_transfer_s: dict[int, float] = field(default_factory=dict)
    compute_s_total: float = 0.0
    bytes_on_wire_mb_model: float = 0.0
    replacements: dict[int, int] = field(default_factory=dict)


def _op_nodes(op) -> tuple[int, ...]:
    if isinstance(op, TransferOp):
        return (op.src_node, op.dst_node)
    if isinstance(op, (SliceOp, CombineOp, ConcatOp)):
        return (op.node,)
    raise TypeError(f"unknown op {op!r}")  # pragma: no cover - defensive


class FaultRuntime:
    """Drives one coordinator repair round under an injector."""

    def __init__(
        self,
        coord,
        injector: FaultInjector,
        max_retries: int = 8,
        base_backoff_s: float = 0.5,
        plan_timeout_s: float | None = None,
        max_backoff_s: float = DEFAULT_MAX_BACKOFF_S,
        backoff_jitter: float = 0.0,
        backoff_seed: int = 0,
    ):
        self.coord = coord
        self.injector = injector
        self.max_retries = max_retries
        self.base_backoff_s = base_backoff_s
        self.plan_timeout_s = plan_timeout_s
        self.max_backoff_s = max_backoff_s
        self.backoff_jitter = backoff_jitter
        self.backoff_seed = backoff_seed
        self._replacements: dict[int, int] | None = None
        self._replacements_all: dict[int, int] = {}
        self._events: list[FaultEvent] = []
        self._detections: list[int] = []
        self.replans = 0
        self.retries = 0
        self.backoff_s = 0.0
        self.attempts: dict[int, int] = {}
        self.committed_bytes = 0
        self.wasted_bytes = 0

    @property
    def _obs(self):
        """The coordinator's observability session, if one is attached."""
        return getattr(self.coord, "obs", None)

    # ---------------------------------------------------------------- #
    # fault plumbing
    # ---------------------------------------------------------------- #
    def _sync_fired(self) -> None:
        """Apply data-plane side effects of every event fired since last sync.

        Events can fire from explicit clock advances *and* from inside the
        bus fault hook (a consumed delay moves the clock), so the runtime
        drains the injector's fired queue rather than trusting any single
        ``advance()`` return value.
        """
        obs = self._obs
        for ev in self.injector.drain_fired():
            self._events.append(ev)
            if obs is not None:
                obs.metrics.counter("faults.fired").inc()
                obs.metrics.counter(f"faults.fired.{ev.kind}").inc()
                obs.tracer.instant(
                    f"fault:{ev.kind}:{ev.target}", actor="faults", cat="fault",
                    kind=ev.kind, target=ev.target, param=ev.param, t_sim=ev.time,
                )
            agent = self.coord.agents.get(ev.target)
            if agent is None:
                continue
            if ev.kind == "kill" and agent.alive:
                agent.fail()
            elif ev.kind == "slow":
                agent.slowdown = ev.param

    def _beat_responsive(self) -> None:
        for i, agent in self.coord.agents.items():
            if agent.alive and self.injector.responsive(i):
                self.coord.monitor.beat(i, self.injector.now)

    def _tick(self) -> None:
        self.injector.tick()
        self._sync_fired()
        self._beat_responsive()

    def _heartbeat_detect(self) -> list[int]:
        """Wait out the heartbeat timeout and confirm deaths via the monitor."""
        jump = self.coord.monitor.timeout + self.injector.tick_s
        self.injector.advance(jump)
        self._sync_fired()
        self._beat_responsive()
        dead = self.coord.detect_failures(self.injector.now)
        obs = self._obs
        for d in dead:
            if d not in self._detections:
                self._detections.append(d)
                if obs is not None:
                    obs.metrics.counter("heartbeat.misses").inc()
                    obs.tracer.instant(
                        f"detect:{d}", actor="coordinator", cat="detection",
                        node=d, t_sim=self.injector.now,
                    )
        self._replacements = None  # the spare assignment must be recomputed
        return dead

    # ---------------------------------------------------------------- #
    # planning
    # ---------------------------------------------------------------- #
    def _node_alive(self, node: int) -> bool:
        return self.coord.cluster[node].alive and self.coord.agents[node].alive

    def _refresh_replacements(self) -> dict[int, int]:
        """One spare per dead node, shared by every stripe this round."""
        coord = self.coord
        dead = sorted(
            i for i in coord.agents if not self._node_alive(i)
        )
        affected = coord.layout.stripes_with_failures(dead)
        stripes = {s.stripe_id: s for s in coord.layout}
        dead_with_blocks = sorted(
            {stripes[sid].placement[b] for sid, blocks in affected.items() for b in blocks}
        )
        free = [
            s
            for s in coord.spares
            if self._node_alive(s) and len(coord.agents[s].store) == 0
        ]
        if len(dead_with_blocks) > len(free):
            raise RuntimeError(
                f"{len(dead_with_blocks)} dead nodes but only {len(free)} free spares"
            )
        self._replacements = coord._assign_spares(dead_with_blocks, free)
        self._replacements_all.update(self._replacements)
        return self._replacements

    def _build_ctx(self, sid: int) -> tuple[RepairContext, int] | None:
        """Current repair context for a stripe, or None if it is healthy."""
        coord = self.coord
        stripe = next(s for s in coord.layout if s.stripe_id == sid)
        failed = [
            b
            for b, node in enumerate(stripe.placement)
            if not self._node_alive(node)
            or not coord.agents[node].store.has(block_name(sid, b))
        ]
        if not failed:
            return None
        surviving = stripe.n - len(failed)
        if surviving < coord.code.k or len(failed) > coord.code.m:
            raise StripeUnrecoverable(sid, surviving, coord.code.k)
        replacements = self._replacements or self._refresh_replacements()
        new_nodes = [replacements[stripe.placement[b]] for b in failed]
        ctx = RepairContext(
            cluster=coord.cluster,
            code=coord.code,
            stripe=stripe,
            failed_blocks=failed,
            new_nodes=new_nodes,
            block_size_mb=coord.block_size_mb,
        )
        center = coord.center_scheduler.pick(new_nodes)
        return ctx, center

    def _make_plan(self, ctx: RepairContext, center: int, scheme: str, p: float | None) -> RepairPlan:
        from repro.repair.hybrid import plan_hybrid
        from repro.system.coordinator import _PLANNERS

        if scheme == "hmbr" and p is not None:
            plan = plan_hybrid(ctx, center=center, p=p)
        elif scheme == "auto":
            from repro.repair.selector import choose_scheme

            plan = choose_scheme(ctx).plan
        else:
            plan = _PLANNERS[scheme](ctx, center)
        validate_plan(plan, ctx)
        return plan

    def _common_split(self, work: list[tuple[int, RepairContext, int]]) -> float | None:
        """The §IV-C shared HMBR split over all stripes of one round.

        Delegates to :meth:`Coordinator._common_hmbr_split` so an empty
        schedule reproduces its exact plans; re-plans after mid-round
        failures fall back to the per-stripe split.
        """
        return self.coord._common_hmbr_split(work)

    # ---------------------------------------------------------------- #
    # execution
    # ---------------------------------------------------------------- #
    def _run_ops(self, ops, journal: ExecutionJournal, attempt_start: float) -> None:
        coord = self.coord
        agents, bus = coord.agents, coord.bus
        for i in range(journal.completed, len(ops)):
            op = ops[i]
            self._tick()
            if (
                self.plan_timeout_s is not None
                and self.injector.now - attempt_start > self.plan_timeout_s
            ):
                raise PlanTimeout(self.injector.now - attempt_start, self.plan_timeout_s)
            for node in _op_nodes(op):
                if not agents[node].alive:
                    raise DeadAgent(node)
            if isinstance(op, SliceOp):
                agents[op.node].do_slice(op)
            elif isinstance(op, TransferOp):
                agents[op.src_node].send_to(agents[op.dst_node], op.name, op.rename, bus)
                moved = agents[op.dst_node].scratch[op.rename or op.name]
                journal.transfers += 1
                journal.transfer_bytes += moved.nbytes
            elif isinstance(op, CombineOp):
                agents[op.node].do_combine(op)
            elif isinstance(op, ConcatOp):
                agents[op.node].do_concat(op)
            journal.completed = i + 1

    def _clear_scratch(self) -> None:
        for agent in self.coord.agents.values():
            if agent.alive:
                agent.clear_scratch()

    def _plan_touches_dead(self, plan: RepairPlan) -> bool:
        return any(
            not self.coord.agents[node].alive
            for op in plan.ops
            for node in _op_nodes(op)
        )

    def _repair_stripe(
        self, sid: int, scheme: str, verify: bool, prebuilt: tuple[RepairContext, int] | None, p: float | None
    ) -> RepairPlan | None:
        """Repair one stripe to completion; returns the committed plan."""
        coord = self.coord
        journal = ExecutionJournal()
        attempt = 0
        plan: RepairPlan | None = None
        ctx_center = prebuilt
        attempt_start = self.injector.now
        last_error: Exception | None = None
        using_prebuilt = prebuilt is not None
        obs = self._obs
        while True:
            if plan is None:
                try:
                    if ctx_center is None:
                        built = self._build_ctx(sid)
                        if built is None:  # healthy again (nothing to repair)
                            return None
                        ctx_center = built
                    ctx, center = ctx_center
                    plan = self._make_plan(ctx, center, scheme, p if using_prebuilt else None)
                except ValueError:
                    # a context prebuilt at round start can go stale while
                    # earlier stripes repaired (helpers died since): rebuild
                    if not using_prebuilt:
                        raise
                    using_prebuilt = False
                    ctx_center = None
                    continue
                self.wasted_bytes += journal.transfer_bytes
                journal.reset()
                self._clear_scratch()
                attempt_start = self.injector.now
            att_span = None
            if obs is not None:
                att_span = obs.tracer.begin(
                    f"stripe:{sid}:attempt:{attempt + 1}", actor="coordinator",
                    cat="attempt", stripe=sid, attempt=attempt + 1,
                    t_sim=self.injector.now,
                )
            try:
                self._run_ops(plan.ops, journal, attempt_start)
                self._sync_fired()  # a delay consumed by the last op may have fired kills
                for node, _ in plan.outputs.values():
                    if not coord.agents[node].alive:
                        raise DeadAgent(node)  # repaired buffer died with its host
                stripe = next(s for s in coord.layout if s.stripe_id == sid)
                for fb, (node, buf) in plan.outputs.items():
                    agent = coord.agents[node]
                    agent.store_block(block_name(sid, fb), agent.scratch[buf], overwrite=True)
                    stripe.placement[fb] = node
                if verify and all(self._node_alive(n) for n in stripe.placement):
                    # if another member died mid-plan the next round repairs
                    # it; parity can only be re-checked once all are up
                    coord._verify_stripe(sid)
                self.committed_bytes += journal.transfer_bytes
                self.attempts[sid] = self.attempts.get(sid, 0) + attempt + 1
                if att_span is not None:
                    obs.tracer.unwind(att_span)
                    att_span.args["outcome"] = "committed"
                return plan
            except TransientFault as err:
                if att_span is not None:
                    obs.tracer.unwind(att_span)
                    att_span.args["outcome"] = f"transient:{type(err).__name__}"
                if obs is not None:
                    obs.metrics.counter("repair.retries").inc()
                last_error = err
                attempt += 1
                self.retries += 1
                if attempt > self.max_retries:
                    raise RepairAborted(sid, attempt, err) from err
                backoff = backoff_delay(
                    attempt,
                    self.base_backoff_s,
                    max_s=self.max_backoff_s,
                    jitter_frac=self.backoff_jitter,
                    seed=self.backoff_seed,
                    key=sid,
                )
                flap_until = getattr(err, "until", None)
                if flap_until is not None:
                    # no point retrying inside the flap window
                    backoff = max(backoff, flap_until - self.injector.now + self.injector.tick_s)
                self.backoff_s += backoff
                if obs is not None:
                    obs.metrics.histogram("repair.backoff_s").observe(backoff)
                self.injector.advance(backoff)
                self._sync_fired()
                self._beat_responsive()
                if self._plan_touches_dead(plan):
                    # a helper died while we were backing off: re-plan
                    self.replans += 1
                    if obs is not None:
                        obs.metrics.counter("repair.replans").inc()
                    self._heartbeat_detect()
                    plan, ctx_center, using_prebuilt = None, None, False
            except (DeadAgent, PlanTimeout) as err:
                if att_span is not None:
                    obs.tracer.unwind(att_span)
                    att_span.args["outcome"] = type(err).__name__
                last_error = err
                attempt += 1
                if attempt > self.max_retries:
                    raise RepairAborted(sid, attempt, err) from err
                self.replans += 1
                if obs is not None:
                    obs.metrics.counter("repair.replans").inc()
                if isinstance(err, DeadAgent):
                    self._heartbeat_detect()
                plan, ctx_center, using_prebuilt = None, None, False

    # ---------------------------------------------------------------- #
    # entry points
    # ---------------------------------------------------------------- #
    def repair_stripes(
        self, sids, scheme: str = "hmbr", verify: bool = True
    ) -> list[tuple[int, RepairPlan]]:
        """Repair only the given stripes to completion under the injector.

        The job-scoped entry point used by :mod:`repro.sched`: one scheduler
        job's stripes run through exactly the per-stripe journal / backoff /
        re-plan machinery of :meth:`repair`, but other affected stripes are
        left alone (they belong to other jobs).  Rounds repeat until none of
        ``sids`` is missing blocks; returns the committed ``(stripe id,
        plan)`` pairs (a stripe re-broken by a later fault appears once per
        committed plan).  The caller owns injector attachment and the final
        timing-plane simulation.
        """
        wanted = set(sids)
        committed: list[tuple[int, RepairPlan]] = []
        rounds = 0
        while True:
            rounds += 1
            if rounds > _MAX_ROUNDS:  # pragma: no cover - safety net
                raise RuntimeError("job-scoped fault-aware repair did not converge")
            self._sync_fired()
            dead = self.coord.cluster.dead_ids()
            affected = self.coord.layout.stripes_with_failures(dead)
            todo = sorted(wanted & set(affected))
            if not todo:
                break
            self._replacements = None  # one fresh spare map per round
            work: list[tuple[int, RepairContext, int]] = []
            for sid in todo:
                built = self._build_ctx(sid)
                if built is not None:
                    work.append((sid, built[0], built[1]))
            p = self._common_split(work) if scheme == "hmbr" else None
            for sid, ctx, center in work:
                plan = self._repair_stripe(sid, scheme, verify, (ctx, center), p)
                if plan is not None:
                    committed.append((sid, plan))
        return committed

    def repair(
        self, scheme: str = "hmbr", verify: bool = True, events=()
    ) -> FaultRepairReport:
        """Repair every affected stripe to completion under the injector.

        ``events`` (:class:`~repro.simnet.dynamic.BandwidthEvent`\\ s,
        usually from a :class:`~repro.simnet.network.NetworkTrace`)
        perturb the final timing-plane simulation; the journaled data
        plane and the repaired bytes are unaffected.
        """
        coord = self.coord
        injector = self.injector
        from repro.system.coordinator import _PLANNERS

        if scheme != "auto" and scheme not in _PLANNERS:
            raise ValueError(
                f"unknown scheme {scheme!r}; choose from {sorted(_PLANNERS)} or 'auto'"
            )
        injector.attach(coord.bus)
        compute_before = {i: a.compute_seconds for i, a in coord.agents.items()}
        final_plans: list[tuple[int, RepairPlan]] = []
        rounds = 0
        obs = self._obs
        root = None
        if obs is not None:
            root = obs.tracer.begin(
                "repair-with-faults", actor="coordinator", cat="repair",
                scheme=scheme,
            )
        try:
            injector.advance(0.0)
            self._sync_fired()
            self._beat_responsive()
            while True:
                rounds += 1
                self._sync_fired()
                if rounds > _MAX_ROUNDS:  # pragma: no cover - safety net
                    raise RuntimeError("fault-aware repair did not converge")
                dead = coord.cluster.dead_ids()
                affected = coord.layout.stripes_with_failures(dead)
                if not affected:
                    if any(
                        not coord.agents[i].alive and coord.cluster[i].alive
                        for i in coord.agents
                    ):
                        # silently-killed nodes: let the monitor confirm them
                        self._heartbeat_detect()
                        continue
                    nxt = injector.next_event_time()
                    if nxt is not None:
                        # future scheduled faults: advance to them and re-check
                        injector.advance(max(0.0, nxt - injector.now))
                        self._sync_fired()
                        self._beat_responsive()
                        continue
                    break
                self._replacements = None  # one fresh spare map per round
                round_span = None
                if obs is not None:
                    round_span = obs.tracer.begin(
                        f"round:{rounds}", actor="coordinator", cat="round",
                        round=rounds, stripes=sorted(affected),
                        t_sim=injector.now,
                    )
                try:
                    work: list[tuple[int, RepairContext, int]] = []
                    for sid in sorted(affected):
                        built = self._build_ctx(sid)
                        if built is not None:
                            work.append((sid, built[0], built[1]))
                    p = self._common_split(work) if scheme == "hmbr" else None
                    for sid, ctx, center in work:
                        plan = self._repair_stripe(sid, scheme, verify, (ctx, center), p)
                        if plan is not None:
                            final_plans.append((sid, plan))
                finally:
                    if round_span is not None:
                        obs.tracer.unwind(round_span)
        finally:
            injector.detach(coord.bus)
            self._clear_scratch()
            if root is not None:
                obs.tracer.unwind(root)

        # ---- timing plane: simulate the committed plans together
        sim_tasks = []
        per_stripe: dict[int, float] = {}
        renamed: list[tuple[int, RepairPlan]] = []
        for i, (sid, plan) in enumerate(final_plans):
            rp = rename_plan(plan, f"rnd{i}:")
            renamed.append((sid, rp))
            sim_tasks.extend(rp.tasks)
        makespan = 0.0
        sim_bytes_mb = 0.0
        if sim_tasks:
            sim = FluidSimulator(coord.cluster).run(
                sim_tasks,
                events=list(events),
                tracer=obs.tracer if obs is not None else None,
                trace_label="simulate",
            )
            makespan = sim.makespan
            sim_bytes_mb = sum(sim.bytes_sent.values())
            for sid, rp in renamed:
                t = max(sim.finish_times[t.task_id] for t in rp.tasks)
                per_stripe[sid] = max(per_stripe.get(sid, 0.0), t)

        report = FaultRepairReport(
            scheme=scheme,
            dead_nodes=coord.cluster.dead_ids(),
            stripes_repaired=sorted({sid for sid, _ in final_plans}),
            blocks_recovered=sum(len(p.outputs) for _, p in final_plans),
            rounds=rounds,
            attempts=dict(self.attempts),
            replans=self.replans,
            retries=self.retries,
            drops=injector.drops_consumed,
            delay_s=injector.delay_accrued_s,
            backoff_s=self.backoff_s,
            detections=list(self._detections),
            events_fired=list(self._events),
            executed_transfer_bytes=self.committed_bytes + self.wasted_bytes,
            wasted_transfer_bytes=self.wasted_bytes,
            simulated_transfer_s=makespan,
            sim_bytes_mb=sim_bytes_mb,
            per_stripe_transfer_s=per_stripe,
            compute_s_total=sum(
                a.compute_seconds - compute_before[i] for i, a in coord.agents.items()
            ),
            bytes_on_wire_mb_model=sum(p.total_transfer_mb() for _, p in final_plans),
            replacements=dict(self._replacements_all),
        )
        if obs is not None:
            m = obs.metrics
            m.counter("repair.runs").inc()
            m.counter("repair.blocks_recovered").inc(report.blocks_recovered)
            m.gauge("repair.simulated_transfer_s").set(report.simulated_transfer_s)
            m.gauge("repair.bytes_on_wire_mb_model").set(report.bytes_on_wire_mb_model)
            m.gauge("faults.rounds").set(report.rounds)
            m.gauge("faults.drops").set(report.drops)
            m.gauge("faults.delay_s").set(report.delay_s)
            m.gauge("faults.backoff_s").set(report.backoff_s)
            if report.wasted_transfer_bytes:
                m.counter("faults.wasted_transfer_bytes").inc(report.wasted_transfer_bytes)
            for t in report.per_stripe_transfer_s.values():
                m.histogram("repair.stripe_transfer_s").observe(t)
        return report
