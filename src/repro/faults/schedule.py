"""Replayable fault schedules.

A :class:`FaultSchedule` is an ordered list of ``(time, kind, target)``
events — plus an optional per-kind parameter — that a
:class:`~repro.faults.injector.FaultInjector` fires as the logical clock
advances.  Schedules are plain data: they serialize to tuples, compare by
value, and the randomized generator is fully determined by its seed, so any
chaos-run failure replays from ``FaultSchedule.random(seed, ...)``.

Event kinds
-----------
``kill``    target node dies at ``time``: its store and scratch are lost and
            its heartbeats stop (param unused).
``slow``    target node's GF compute is metered ``param``x slower from
            ``time`` on (param: slowdown factor, default 4.0).
``flap``    target node is unresponsive during ``[time, time + param)``:
            transfers touching it fail transiently and it misses heartbeats
            (param: window seconds, default 1.0).
``drop``    one-shot: the next transfer touching target after ``time`` is
            lost (param unused).
``delay``   one-shot: the next transfer touching target after ``time`` is
            delayed by ``param`` seconds of logical time (default 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

KINDS = ("kill", "slow", "flap", "drop", "delay")

_DEFAULT_PARAM = {"kill": 0.0, "slow": 4.0, "flap": 1.0, "drop": 0.0, "delay": 1.0}


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault: fires when the logical clock reaches ``time``."""

    time: float
    kind: str
    target: int
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if self.time < 0:
            raise ValueError("event time must be >= 0")
        if self.kind in ("flap", "delay") and self.param <= 0:
            raise ValueError(f"{self.kind} needs a positive param (duration seconds)")
        if self.kind == "slow" and self.param <= 1.0:
            raise ValueError("slow needs a param (factor) > 1")


class FaultSchedule:
    """An immutable, time-sorted list of :class:`FaultEvent`."""

    def __init__(self, events: list[FaultEvent] | None = None):
        self.events: tuple[FaultEvent, ...] = tuple(sorted(events or []))

    # ---------------------------------------------------------------- #
    # constructors
    # ---------------------------------------------------------------- #
    @classmethod
    def empty(cls) -> "FaultSchedule":
        return cls([])

    @classmethod
    def from_tuples(cls, tuples) -> "FaultSchedule":
        """Build from ``(time, kind, target[, param])`` tuples."""
        events = []
        for tup in tuples:
            time, kind, target = tup[0], tup[1], tup[2]
            # unknown kinds fall through to FaultEvent's ValueError
            param = tup[3] if len(tup) > 3 else _DEFAULT_PARAM.get(kind, 0.0)
            events.append(FaultEvent(float(time), str(kind), int(target), float(param)))
        return cls(events)

    @classmethod
    def random(
        cls,
        seed: int,
        targets: list[int],
        n_events: int = 4,
        horizon_s: float = 1.0,
        max_kills: int = 1,
        kinds: tuple[str, ...] = KINDS,
    ) -> "FaultSchedule":
        """A seed-determined random schedule over ``targets``.

        At most ``max_kills`` of the events are kills (and each kill picks a
        distinct target), so callers can bound how many *permanent* failures
        a scenario adds and keep stripes recoverable.
        """
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        kill_targets: list[int] = []
        for _ in range(n_events):
            kind = str(rng.choice(kinds))
            if kind == "kill" and len(kill_targets) >= max_kills:
                kind = "drop"  # downgrade the surplus kill to a transient
            t = float(rng.uniform(0.0, horizon_s))
            if kind == "kill":
                pool = [n for n in targets if n not in kill_targets]
                if not pool:
                    continue
                target = int(rng.choice(pool))
                kill_targets.append(target)
            else:
                target = int(rng.choice(targets))
            param = _DEFAULT_PARAM[kind]
            if kind == "flap":
                param = float(rng.uniform(0.2, 2.0))
            elif kind == "delay":
                param = float(rng.uniform(0.1, 1.0))
            elif kind == "slow":
                param = float(rng.uniform(2.0, 8.0))
            events.append(FaultEvent(t, kind, target, param))
        return cls(events)

    # ---------------------------------------------------------------- #
    def to_tuples(self) -> list[tuple[float, str, int, float]]:
        return [(e.time, e.kind, e.target, e.param) for e in self.events]

    def kills(self) -> list[FaultEvent]:
        return [e for e in self.events if e.kind == "kill"]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultSchedule) and self.events == other.events

    def __repr__(self) -> str:
        return f"FaultSchedule({list(self.events)!r})"
