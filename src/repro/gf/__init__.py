"""Galois-field arithmetic substrate.

This subpackage replaces Intel ISA-L from the paper's prototype: it provides
bit-exact GF(2^w) arithmetic (w = 8 or 16) with NumPy-vectorized kernels, and
dense matrix algebra over the field (multiplication, Gauss-Jordan inversion)
used to build Reed-Solomon generator and repair matrices.
"""

from repro.gf.field import GF, GF8, GF16, gf8
from repro.gf.matrix import (
    gf_matmul,
    gf_matvec,
    gf_inv,
    gf_rank,
    gf_solve,
    gf_identity,
)
from repro.gf.batch import (
    gf_plane_matmul,
    gf_batch_matmul,
    gf_stack_plane,
    scale_lut,
    lut_cache_clear,
)
from repro.gf.backend import (
    BackendUnavailable,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    select_backend,
)

__all__ = [
    "GF",
    "GF8",
    "GF16",
    "gf8",
    "BackendUnavailable",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "select_backend",
    "gf_matmul",
    "gf_matvec",
    "gf_inv",
    "gf_rank",
    "gf_solve",
    "gf_identity",
    "gf_plane_matmul",
    "gf_batch_matmul",
    "gf_stack_plane",
    "scale_lut",
    "lut_cache_clear",
]
