"""Pluggable GF(2^w) kernel backends behind the plane-matmul seam.

The paper's testbed decodes through Intel ISA-L at GB/s, which makes
repair *network*-bound; a pure-NumPy kernel tier caps out around
200–250 MB/s and silently shifts every downstream model's compute/
transfer balance.  This package makes the kernel a pluggable tier:

* ``numpy`` — the original pair-byte/word LUT path; always available;
* ``native`` — a small C extension (compiled lazily through ``cc``,
  cached per user, driven via :mod:`ctypes`) implementing fused
  XOR/table-gather kernels with the classic split-nibble SIMD layout;
  ~13x the NumPy tier on GF(2^8) planes where AVX2 is available;
* ``isal`` — bindings to a host ``libisal`` when one exists (GF(2^8));
  auto-detected, never required.

Selection is ``REPRO_GF_BACKEND`` override → best available
(:func:`select_backend`); every engine seam accepts a ``backend=`` name
so tests and benches can pin a tier explicitly.  All backends are
bit-exact with :func:`repro.gf.matrix.gf_matmul` — the differential suite
(`tests/test_gf_backend.py`) pins each one against the reference and
against every other.  See ``docs/KERNELS.md``.
"""

from repro.gf.backend.base import (
    ENV_VAR,
    BackendUnavailable,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    select_backend,
)
from repro.gf.backend.isal import IsalBackend
from repro.gf.backend.native import NativeBackend
from repro.gf.backend.numpy_backend import NumpyBackend

#: the singleton instances selection picks from, registered best-first.
register_backend(IsalBackend())
register_backend(NativeBackend())
register_backend(NumpyBackend())

__all__ = [
    "ENV_VAR",
    "BackendUnavailable",
    "KernelBackend",
    "NumpyBackend",
    "NativeBackend",
    "IsalBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "select_backend",
]
