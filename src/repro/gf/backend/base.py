"""Backend protocol, registry, and auto-selection for the GF plane matmul.

Every repair data plane in the system funnels its hot loop through one
operation — ``mat @ plane`` over GF(2^w) (the
:meth:`~repro.repair.batch.BatchRepairEngine._plane_matmul` seam).  A
*kernel backend* is one implementation of that operation:

* :class:`KernelBackend` — the contract: a ``name``, a
  :meth:`~KernelBackend.capabilities` predicate saying which word sizes
  the backend handles, an :meth:`~KernelBackend.available` probe (may be
  expensive once — e.g. compiling a C extension — and must be cached by
  the implementation), and the kernel itself,
  :meth:`~KernelBackend.plane_matmul`.  Every backend is **bit-exact**
  with :func:`repro.gf.matrix.gf_matmul`; backends only change how fast
  the same field arithmetic runs (the differential suite pins every
  registered backend against the reference and against each other).
* the **registry** — :func:`register_backend` / :func:`get_backend` /
  :func:`available_backends`.  Registration is how pooled workers find
  the same kernel the parent selected: only the backend *name* crosses
  the process boundary.
* **selection** — :func:`select_backend` picks the highest-priority
  available backend for a word size, unless the ``REPRO_GF_BACKEND``
  environment variable (or an explicit argument) overrides it.
  :func:`resolve_backend` is the engine-facing wrapper accepting a name,
  an instance, or ``None``.

See ``docs/KERNELS.md`` for the selection order, measured throughput, and
how to add a backend.
"""

from __future__ import annotations

import abc
import os
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.gf.field import GF

#: environment variable naming the backend to force (empty/unset = auto).
ENV_VAR = "REPRO_GF_BACKEND"


class BackendUnavailable(RuntimeError):
    """A requested kernel backend is unknown, unavailable, or incapable."""


class KernelBackend(abc.ABC):
    """One implementation of the GF(2^w) plane matmul.

    Subclasses set :attr:`name` (the registry key) and :attr:`priority`
    (selection rank, higher wins) and implement the three probes below.
    Implementations must be thread-safe: engines on concurrent waves
    share one backend instance.
    """

    #: registry key; what ``REPRO_GF_BACKEND`` names.
    name: str = ""
    #: selection rank among available backends (higher = preferred).
    priority: int = 0

    @abc.abstractmethod
    def capabilities(self, w: int) -> bool:
        """Whether this backend handles GF(2^w) planes."""

    def available(self) -> bool:
        """Whether the backend can run here (compiler/library present).

        May do one-time expensive work (compiling, dlopen) — the result
        must be cached so selection stays cheap.
        """
        return True

    @abc.abstractmethod
    def plane_matmul(self, mat: np.ndarray, plane: np.ndarray, field: "GF") -> np.ndarray:
        """``mat @ plane`` over the field — bit-exact with ``gf_matmul``."""

    def warm(self, field: "GF", coeffs) -> None:
        """Pre-build per-coefficient tables (pool-initializer hook)."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} {self.name!r}>"


_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend, *, replace: bool = False) -> KernelBackend:
    """Add a backend to the registry (the name becomes selectable).

    Registration is required for the pooled data plane: worker processes
    re-resolve the parent's backend by name.  Returns the backend for
    chaining.
    """
    if not backend.name:
        raise ValueError("backend must carry a non-empty name")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return backend


def registered_backends() -> list[str]:
    """Every registered backend name, best-first (availability not probed)."""
    return sorted(_REGISTRY, key=lambda n: -_REGISTRY[n].priority)


def get_backend(name: str) -> KernelBackend:
    """The registered backend for ``name``; raises :class:`BackendUnavailable`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendUnavailable(
            f"unknown GF kernel backend {name!r}; registered: {registered_backends()}"
        ) from None


def available_backends(w: int | None = None) -> list[str]:
    """Names of backends that can run here, best-first.

    With ``w`` the list is additionally filtered to backends whose
    :meth:`~KernelBackend.capabilities` cover that word size.
    """
    names = []
    for name in registered_backends():
        b = _REGISTRY[name]
        if w is not None and not b.capabilities(w):
            continue
        if b.available():
            names.append(name)
    return names


def select_backend(w: int = 8, override: str | None = None) -> KernelBackend:
    """The backend the engines should use for GF(2^w).

    Selection order:

    1. ``override`` argument, if given;
    2. the ``REPRO_GF_BACKEND`` environment variable, if set and non-empty;
    3. the highest-:attr:`~KernelBackend.priority` registered backend that
       is available *and* capable of ``w``.

    An override naming an unknown, unavailable, or incapable backend
    raises :class:`BackendUnavailable` — a forced backend silently
    degrading to another kernel would defeat the point of forcing it.
    """
    name = override if override is not None else os.environ.get(ENV_VAR) or None
    if name:
        backend = get_backend(name)
        if not backend.capabilities(w):
            raise BackendUnavailable(
                f"backend {name!r} does not support GF(2^{w})"
            )
        if not backend.available():
            raise BackendUnavailable(
                f"backend {name!r} is not available on this host"
            )
        return backend
    for candidate in registered_backends():
        b = _REGISTRY[candidate]
        if b.capabilities(w) and b.available():
            return b
    raise BackendUnavailable(f"no registered backend supports GF(2^{w})")


def resolve_backend(spec, field_or_w) -> KernelBackend:
    """Normalize an engine's ``backend=`` argument to a live backend.

    ``spec`` may be ``None`` (auto-select, honoring ``REPRO_GF_BACKEND``),
    a registered name, or a :class:`KernelBackend` instance (validated for
    capability but not required to be registered — though only registered
    backends can cross into pooled workers).
    """
    w = int(getattr(field_or_w, "w", field_or_w))
    if spec is None:
        return select_backend(w)
    if isinstance(spec, str):
        return select_backend(w, override=spec)
    if isinstance(spec, KernelBackend):
        if not spec.capabilities(w):
            raise BackendUnavailable(
                f"backend {spec.name!r} does not support GF(2^{w})"
            )
        return spec
    raise TypeError(
        f"backend must be None, a name, or a KernelBackend, got {type(spec).__name__}"
    )
