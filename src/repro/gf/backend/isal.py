"""Optional Intel ISA-L bindings — the paper's actual decode tier.

The paper's testbed decodes through ISA-L's ``ec_encode_data`` (runtime-
dispatched SSSE3/AVX2/AVX-512 ``gf_vect_mad`` kernels over GF(2^8) with
the same primitive polynomial 0x11D this reproduction uses, so results
are bit-identical).  When a shared ``libisal`` is present on the host the
backend binds it through :mod:`ctypes` — no build step, no Python
package — and outranks the bundled native tier; absent, it simply never
appears in :func:`repro.gf.backend.available_backends`.

``ec_encode_data(len, k, rows, gftbls, data, coding)`` computes exactly
the plane product: ``coding[i] = XOR_t gf_mul(mat[i, t], data[t])`` with
``gftbls`` expanded from the row-major (rows, k) coefficient matrix by
``ec_init_tables`` — i.e. ``mat @ plane`` with each plane row a separate
source buffer.  GF(2^16) is out of scope for ISA-L's EC API; selection
falls through to the native tier there.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import threading

import numpy as np

from repro.gf.backend.base import KernelBackend
from repro.gf.field import GF
from repro.gf.tables import PRIMITIVE_POLY

#: sonames probed after ctypes.util.find_library comes up empty.
_CANDIDATE_LIBS = ("libisal.so.2", "libisal.so", "libisal.2.dylib", "libisal.dylib")

#: ISA-L's GF(2^8) generator polynomial; bit-exactness with our field
#: requires the polynomials to agree (they do: 0x11D on both sides).
_ISAL_POLY = 0x11D


def _find_isal() -> ctypes.CDLL | None:
    """dlopen libisal if the host has it; None otherwise."""
    names = []
    found = ctypes.util.find_library("isal")
    if found:
        names.append(found)
    names.extend(_CANDIDATE_LIBS)
    for name in names:
        try:
            lib = ctypes.CDLL(name)
        except OSError:
            continue
        if hasattr(lib, "ec_init_tables") and hasattr(lib, "ec_encode_data"):
            return lib
    return None


class IsalBackend(KernelBackend):
    """GF(2^8) plane matmul through ISA-L's erasure-code kernels."""

    name = "isal"
    priority = 20

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._lib: ctypes.CDLL | None = None
        self._probed = False

    def _load(self) -> ctypes.CDLL | None:
        if self._probed:
            return self._lib
        with self._lock:
            if self._probed:
                return self._lib
            lib = _find_isal()
            if lib is not None:
                ptr, c_int = ctypes.c_void_p, ctypes.c_int
                lib.ec_init_tables.argtypes = [c_int, c_int, ptr, ptr]
                lib.ec_init_tables.restype = None
                lib.ec_encode_data.argtypes = [c_int, c_int, c_int, ptr, ptr, ptr]
                lib.ec_encode_data.restype = None
            self._lib = lib
            self._probed = True
        return self._lib

    def capabilities(self, w: int) -> bool:
        """GF(2^8) only, and only while the field polynomial matches ISA-L's."""
        return w == 8 and PRIMITIVE_POLY.get(8) == _ISAL_POLY

    def available(self) -> bool:
        return self._load() is not None

    def plane_matmul(self, mat: np.ndarray, plane: np.ndarray, field: GF) -> np.ndarray:
        lib = self._load()
        if lib is None:
            raise RuntimeError("isal backend unavailable: libisal not found")
        if not self.capabilities(field.w):
            raise RuntimeError(f"isal backend does not support GF(2^{field.w})")
        mat = np.ascontiguousarray(np.asarray(mat, dtype=np.uint8))
        plane = np.asarray(plane, dtype=np.uint8)
        if mat.ndim != 2 or plane.ndim != 2 or mat.shape[1] != plane.shape[0]:
            raise ValueError(f"incompatible shapes {mat.shape} x {plane.shape}")
        f, k = mat.shape
        n = plane.shape[1]
        out = np.zeros((f, n), dtype=np.uint8)
        if n == 0 or f == 0 or k == 0:
            return out
        plane = np.ascontiguousarray(plane)
        gftbls = np.empty(k * f * 32, dtype=np.uint8)
        lib.ec_init_tables(k, f, mat.ctypes.data, gftbls.ctypes.data)
        src_ptrs = (ctypes.c_void_p * k)(
            *(plane.ctypes.data + t * n for t in range(k))
        )
        dst_ptrs = (ctypes.c_void_p * f)(
            *(out.ctypes.data + i * n for i in range(f))
        )
        lib.ec_encode_data(n, k, f, gftbls.ctypes.data, src_ptrs, dst_ptrs)
        return out
