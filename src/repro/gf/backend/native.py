"""The native C backend: fused gather-XOR kernels, lazily compiled.

The NumPy tier pays one full pass over the plane per nonzero matrix entry
*plus* a temporary per gather; this tier compiles a small C extension (no
build-time dependency — plain ``cc -O3 -fPIC -shared`` driven through
:mod:`ctypes`) that fuses the gather and the XOR accumulation and, where
the compiler targets AVX2/SSSE3, runs the classic SIMD table layout:

* **GF(2^8)** — each 256-entry multiply table splits into two 16-entry
  nibble tables (``lut[b] = lut[b & 0xf] ^ lut[b & 0xf0]``, linearity of
  GF multiply over XOR), which is exactly the shape ``pshufb`` gathers 32
  bytes of per instruction — the layout ISA-L's ``gf_vect_mad`` uses;
* **GF(2^16)** — products split per source byte (``lo[s & 0xff] ^
  hi[s >> 8]``, two 256-entry word tables), and each split-byte table
  decomposes again into nibble tables for the SIMD path;
* coefficient 1 degrades to a vectorized XOR, coefficient 0 to a skip.

**Build caching:** the shared object is compiled at most once per (source,
flags) digest into a per-user cache directory (override with
``REPRO_GF_NATIVE_CACHE``) and memory-mapped thereafter, so the first
selection on a new host pays one ~1 s compile and every later process —
including forked pool workers — just ``dlopen``\\ s the cached file.  The
compile is atomic (build to a temp name, ``os.replace``), so concurrent
first-builds cannot race each other into a torn library.

**Fallback:** no compiler, a failed compile, or a failed load simply mark
the backend unavailable (``build_info()`` keeps the error text for
diagnosis) and auto-selection falls back to the NumPy tier — behavior,
results, and tests are identical either way, only throughput changes.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.gf.backend.base import KernelBackend
from repro.gf.field import GF

#: kernel ABI version — bump when _C_SOURCE's signatures change so stale
#: cached builds from older checkouts are never dlopen'ed.
_ABI_VERSION = 1

_C_SOURCE = r"""
#include <stddef.h>
#include <stdint.h>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

/* dst ^= src over n bytes (the coefficient-1 kernel). */
void repro_xor_into(uint8_t *dst, const uint8_t *src, size_t n) {
    size_t j = 0;
#if defined(__AVX2__)
    for (; j + 32 <= n; j += 32) {
        __m256i d = _mm256_loadu_si256((const __m256i *)(dst + j));
        __m256i s = _mm256_loadu_si256((const __m256i *)(src + j));
        _mm256_storeu_si256((__m256i *)(dst + j), _mm256_xor_si256(d, s));
    }
#endif
    for (; j < n; j++)
        dst[j] ^= src[j];
}

/* dst ^= lut[src] over n bytes; lut is the 256-entry multiply-by-c table.
 * SIMD path: lut[b] = lut[b & 0xf] ^ lut[b & 0xf0] (GF multiply is linear
 * over XOR), so two 16-entry nibble tables cover the whole byte — the
 * pshufb-native split high/low-nibble layout. */
static void gf8_mulxor(uint8_t *dst, const uint8_t *src, size_t n,
                       const uint8_t *lut) {
    size_t j = 0;
#if defined(__AVX2__)
    uint8_t lo_tab[16], hi_tab[16];
    for (int i = 0; i < 16; i++) {
        lo_tab[i] = lut[i];
        hi_tab[i] = lut[i << 4];
    }
    __m256i lo = _mm256_broadcastsi128_si256(_mm_loadu_si128((const __m128i *)lo_tab));
    __m256i hi = _mm256_broadcastsi128_si256(_mm_loadu_si128((const __m128i *)hi_tab));
    __m256i mask = _mm256_set1_epi8(0x0f);
    for (; j + 32 <= n; j += 32) {
        __m256i v = _mm256_loadu_si256((const __m256i *)(src + j));
        __m256i vlo = _mm256_and_si256(v, mask);
        __m256i vhi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
        __m256i p = _mm256_xor_si256(_mm256_shuffle_epi8(lo, vlo),
                                     _mm256_shuffle_epi8(hi, vhi));
        __m256i d = _mm256_loadu_si256((const __m256i *)(dst + j));
        _mm256_storeu_si256((__m256i *)(dst + j), _mm256_xor_si256(d, p));
    }
#endif
    for (; j < n; j++)
        dst[j] ^= lut[src[j]];
}

/* Whole (f, k) x (k, n) product over GF(2^8).  lut_ids[i*k+t] routes each
 * matrix entry: -1 = coefficient 0 (skip), -2 = coefficient 1 (XOR),
 * otherwise an index into luts (256 bytes per table).  out must be
 * zeroed by the caller; rows are accumulated in place. */
void repro_gf8_plane_matmul(const int32_t *lut_ids, size_t f, size_t k,
                            const uint8_t *luts, const uint8_t *plane,
                            size_t n, uint8_t *out) {
    for (size_t i = 0; i < f; i++) {
        uint8_t *row = out + i * n;
        for (size_t t = 0; t < k; t++) {
            int32_t id = lut_ids[i * k + t];
            if (id == -1)
                continue;
            const uint8_t *src = plane + t * n;
            if (id == -2)
                repro_xor_into(row, src, n);
            else
                gf8_mulxor(row, src, n, luts + (size_t)id * 256);
        }
    }
}

/* dst ^= c * src over n uint16 words via split-byte product tables:
 * c*s = lo[s & 0xff] ^ hi[s >> 8] (two 256-entry word tables).  SIMD
 * path: each split-byte table decomposes into nibble tables again, the
 * words deinterleave into low-byte/high-byte vectors, and eight pshufb
 * gathers cover 32 words per iteration. */
static void gf16_mulxor(uint16_t *dst, const uint16_t *src, size_t n,
                        const uint16_t *lo, const uint16_t *hi) {
    size_t j = 0;
#if defined(__AVX2__)
    uint8_t tabs[8][16];
    for (int x = 0; x < 16; x++) {
        tabs[0][x] = (uint8_t)(lo[x] & 0xff);      /* lo-src low nib -> out lo */
        tabs[1][x] = (uint8_t)(lo[x << 4] & 0xff); /* lo-src high nib -> out lo */
        tabs[2][x] = (uint8_t)(lo[x] >> 8);        /* lo-src low nib -> out hi */
        tabs[3][x] = (uint8_t)(lo[x << 4] >> 8);   /* lo-src high nib -> out hi */
        tabs[4][x] = (uint8_t)(hi[x] & 0xff);      /* hi-src low nib -> out lo */
        tabs[5][x] = (uint8_t)(hi[x << 4] & 0xff); /* hi-src high nib -> out lo */
        tabs[6][x] = (uint8_t)(hi[x] >> 8);        /* hi-src low nib -> out hi */
        tabs[7][x] = (uint8_t)(hi[x << 4] >> 8);   /* hi-src high nib -> out hi */
    }
    __m256i t[8];
    for (int i = 0; i < 8; i++)
        t[i] = _mm256_broadcastsi128_si256(_mm_loadu_si128((const __m128i *)tabs[i]));
    __m256i nib = _mm256_set1_epi8(0x0f);
    __m256i bytemask = _mm256_set1_epi16(0x00ff);
    for (; j + 32 <= n; j += 32) {
        __m256i a = _mm256_loadu_si256((const __m256i *)(src + j));
        __m256i b = _mm256_loadu_si256((const __m256i *)(src + j + 16));
        /* deinterleave 32 words into 32 low bytes + 32 high bytes */
        __m256i vlo = _mm256_permute4x64_epi64(
            _mm256_packus_epi16(_mm256_and_si256(a, bytemask),
                                _mm256_and_si256(b, bytemask)), 0xd8);
        __m256i vhi = _mm256_permute4x64_epi64(
            _mm256_packus_epi16(_mm256_srli_epi16(a, 8),
                                _mm256_srli_epi16(b, 8)), 0xd8);
        __m256i ln0 = _mm256_and_si256(vlo, nib);
        __m256i ln1 = _mm256_and_si256(_mm256_srli_epi64(vlo, 4), nib);
        __m256i hn0 = _mm256_and_si256(vhi, nib);
        __m256i hn1 = _mm256_and_si256(_mm256_srli_epi64(vhi, 4), nib);
        __m256i outlo = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_shuffle_epi8(t[0], ln0),
                             _mm256_shuffle_epi8(t[1], ln1)),
            _mm256_xor_si256(_mm256_shuffle_epi8(t[4], hn0),
                             _mm256_shuffle_epi8(t[5], hn1)));
        __m256i outhi = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_shuffle_epi8(t[2], ln0),
                             _mm256_shuffle_epi8(t[3], ln1)),
            _mm256_xor_si256(_mm256_shuffle_epi8(t[6], hn0),
                             _mm256_shuffle_epi8(t[7], hn1)));
        /* re-interleave lo/hi bytes back into words */
        __m256i plo = _mm256_permute4x64_epi64(outlo, 0xd8);
        __m256i phi = _mm256_permute4x64_epi64(outhi, 0xd8);
        __m256i r0 = _mm256_unpacklo_epi8(plo, phi);
        __m256i r1 = _mm256_unpackhi_epi8(plo, phi);
        __m256i d0 = _mm256_loadu_si256((const __m256i *)(dst + j));
        __m256i d1 = _mm256_loadu_si256((const __m256i *)(dst + j + 16));
        _mm256_storeu_si256((__m256i *)(dst + j), _mm256_xor_si256(d0, r0));
        _mm256_storeu_si256((__m256i *)(dst + j + 16), _mm256_xor_si256(d1, r1));
    }
#endif
    for (; j < n; j++) {
        uint16_t s = src[j];
        dst[j] ^= (uint16_t)(lo[s & 0xff] ^ hi[s >> 8]);
    }
}

/* GF(2^16) plane product; luts holds 512 uint16 per table (lo 256 then
 * hi 256).  Same id routing and zeroed-out contract as the w=8 kernel. */
void repro_gf16_plane_matmul(const int32_t *lut_ids, size_t f, size_t k,
                             const uint16_t *luts, const uint16_t *plane,
                             size_t n, uint16_t *out) {
    for (size_t i = 0; i < f; i++) {
        uint16_t *row = out + i * n;
        for (size_t t = 0; t < k; t++) {
            int32_t id = lut_ids[i * k + t];
            if (id == -1)
                continue;
            const uint16_t *src = plane + t * n;
            if (id == -2)
                repro_xor_into((uint8_t *)row, (const uint8_t *)src, n * 2);
            else
                gf16_mulxor(row, src, n, luts + (size_t)id * 512,
                            luts + (size_t)id * 512 + 256);
        }
    }
}
"""

_BASE_FLAGS = ["-O3", "-fPIC", "-shared"]
#: tried first; dropped when the compiler rejects it (cross-compilers,
#: exotic toolchains) — the scalar kernels still beat NumPy comfortably.
_NATIVE_FLAG = "-march=native"


def _find_compiler() -> str | None:
    """The first C compiler on PATH ($CC, cc, gcc, clang) or None."""
    candidates = [os.environ.get("CC"), "cc", "gcc", "clang"]
    for cand in candidates:
        if cand and shutil.which(cand):
            return cand
    return None


def _cache_dir() -> Path:
    """Where compiled kernels live (override: REPRO_GF_NATIVE_CACHE)."""
    override = os.environ.get("REPRO_GF_NATIVE_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-gf-native"


def _source_digest() -> str:
    h = hashlib.sha256()
    h.update(f"abi{_ABI_VERSION}".encode())
    h.update(_C_SOURCE.encode())
    return h.hexdigest()[:16]


def _compile(cc: str, src_path: Path, out_path: Path) -> None:
    """Compile the kernel, atomically publishing ``out_path``.

    Tries ``-march=native`` first for the SIMD paths, retrying without it
    when the compiler objects.  Concurrent builders race harmlessly: each
    compiles to a private temp name and the final ``os.replace`` is atomic.
    """
    fd, tmp = tempfile.mkstemp(dir=str(out_path.parent), suffix=".so.tmp")
    os.close(fd)
    try:
        for flags in ([*_BASE_FLAGS, _NATIVE_FLAG], _BASE_FLAGS):
            proc = subprocess.run(
                [cc, *flags, "-o", tmp, str(src_path)],
                capture_output=True,
                text=True,
            )
            if proc.returncode == 0:
                os.replace(tmp, out_path)
                return
        raise RuntimeError(
            f"{cc} failed: {proc.stderr.strip()[:500] or 'unknown compiler error'}"
        )
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


class NativeBackend(KernelBackend):
    """ctypes-driven C kernels (XOR + nibble-table gathers), compiled lazily."""

    name = "native"
    priority = 10

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._lib: ctypes.CDLL | None = None
        self._probed = False
        self._error: str | None = None
        self._lib_path: Path | None = None
        #: bounded memo of native LUT blocks keyed by (w, coeff); entries
        #: are 256-byte (w=8) or 512-word (w=16) per-coefficient tables.
        self._luts: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
        self._luts_capacity = 512

    # -------------------------------------------------------------- #
    # build / load
    # -------------------------------------------------------------- #
    def _load(self) -> ctypes.CDLL | None:
        """The kernel library, building it on first use (cached forever)."""
        if self._probed:
            return self._lib
        with self._lock:
            if self._probed:
                return self._lib
            try:
                self._lib = self._build_and_bind()
            except Exception as exc:  # noqa: BLE001 - any failure = unavailable
                self._error = f"{type(exc).__name__}: {exc}"
                self._lib = None
            self._probed = True
        return self._lib

    def _build_and_bind(self) -> ctypes.CDLL:
        cache = _cache_dir()
        cache.mkdir(parents=True, exist_ok=True)
        digest = _source_digest()
        so_path = cache / f"gfkern-{digest}.so"
        if not so_path.exists():
            cc = _find_compiler()
            if cc is None:
                raise RuntimeError("no C compiler on PATH (tried $CC, cc, gcc, clang)")
            src_path = cache / f"gfkern-{digest}.c"
            if not src_path.exists():
                tmp = src_path.with_suffix(f".c.tmp{os.getpid()}")
                tmp.write_text(_C_SOURCE)
                os.replace(tmp, src_path)
            _compile(cc, src_path, so_path)
        lib = ctypes.CDLL(str(so_path))
        ptr, size = ctypes.c_void_p, ctypes.c_size_t
        lib.repro_xor_into.argtypes = [ptr, ptr, size]
        lib.repro_xor_into.restype = None
        matmul_sig = [ptr, size, size, ptr, ptr, size, ptr]
        lib.repro_gf8_plane_matmul.argtypes = matmul_sig
        lib.repro_gf8_plane_matmul.restype = None
        lib.repro_gf16_plane_matmul.argtypes = matmul_sig
        lib.repro_gf16_plane_matmul.restype = None
        self._lib_path = so_path
        return lib

    def build_info(self) -> dict:
        """Diagnostics: availability, the cached .so path, any build error."""
        available = self.available()
        return {
            "backend": self.name,
            "available": available,
            "path": str(self._lib_path) if self._lib_path else None,
            "error": self._error,
        }

    # -------------------------------------------------------------- #
    # backend protocol
    # -------------------------------------------------------------- #
    def capabilities(self, w: int) -> bool:
        """GF(2^8) and GF(2^16): the fields the C kernels implement."""
        return w in (8, 16)

    def available(self) -> bool:
        return self._load() is not None

    def _lut_for(self, field: GF, coeff: int) -> np.ndarray:
        """The native per-coefficient table (LRU-cached, lock-guarded)."""
        key = (field.w, coeff)
        with self._lock:
            cached = self._luts.get(key)
            if cached is not None:
                self._luts.move_to_end(key)
                return cached
        if field.w == 8:
            lut = np.ascontiguousarray(field.mul_table[coeff])
        else:
            b = np.arange(256, dtype=np.uint16)
            lut = np.empty(512, dtype=np.uint16)
            lut[:256] = field.mul(coeff, b)
            lut[256:] = field.mul(coeff, b << 8)
        lut.setflags(write=False)
        with self._lock:
            raced = self._luts.get(key)
            if raced is not None:
                self._luts.move_to_end(key)
                return raced
            self._luts[key] = lut
            while len(self._luts) > self._luts_capacity:
                self._luts.popitem(last=False)
        return lut

    def warm(self, field: GF, coeffs) -> None:
        """Build the library and the tables a decode matrix will gather."""
        if self._load() is None:
            return
        for c in coeffs:
            if int(c) > 1:
                self._lut_for(field, int(c))

    def plane_matmul(self, mat: np.ndarray, plane: np.ndarray, field: GF) -> np.ndarray:
        lib = self._load()
        if lib is None:
            raise RuntimeError(f"native backend unavailable: {self._error}")
        if not self.capabilities(field.w):
            raise RuntimeError(f"native backend does not support GF(2^{field.w})")
        mat = np.asarray(mat, dtype=field.dtype)
        plane = np.asarray(plane, dtype=field.dtype)
        if mat.ndim != 2 or plane.ndim != 2 or mat.shape[1] != plane.shape[0]:
            raise ValueError(f"incompatible shapes {mat.shape} x {plane.shape}")
        f, k = mat.shape
        n = plane.shape[1]
        out = np.zeros((f, n), dtype=field.dtype)
        if n == 0 or f == 0 or k == 0:
            return out
        plane = np.ascontiguousarray(plane)
        # route each matrix entry: -1 skip, -2 xor, else a LUT index
        tables: list[np.ndarray] = []
        index_of: dict[int, int] = {}
        ids = np.empty((f, k), dtype=np.int32)
        for i in range(f):
            for t in range(k):
                c = int(mat[i, t])
                if c == 0:
                    ids[i, t] = -1
                elif c == 1:
                    ids[i, t] = -2
                else:
                    slot = index_of.get(c)
                    if slot is None:
                        slot = index_of[c] = len(tables)
                        tables.append(self._lut_for(field, c))
                    ids[i, t] = slot
        width = 256 if field.w == 8 else 512
        if tables:
            luts = np.concatenate(tables)
        else:
            luts = np.zeros(width, dtype=field.dtype)
        fn = lib.repro_gf8_plane_matmul if field.w == 8 else lib.repro_gf16_plane_matmul
        fn(
            ids.ctypes.data,
            f,
            k,
            luts.ctypes.data,
            plane.ctypes.data,
            n,
            out.ctypes.data,
        )
        return out
