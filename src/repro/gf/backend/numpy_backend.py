"""The always-available NumPy backend: pair-byte / word LUT gathers.

This is the original kernel tier, unchanged: it delegates to
:func:`repro.gf.batch.gf_plane_matmul` (pair-byte uint16 tables for byte
fields on little-endian hosts, per-element word tables for GF(2^16),
bytewise fallback elsewhere).  It exists as a backend object so the
selection machinery, the pooled workers, and the differential tests treat
the reference tier exactly like every native tier — and so there is
always *something* to select when no compiler or library exists.
"""

from __future__ import annotations

import numpy as np

from repro.gf.backend.base import KernelBackend
from repro.gf.field import GF


class NumpyBackend(KernelBackend):
    """Pure-NumPy LUT kernel; the floor every other backend must beat."""

    name = "numpy"
    priority = 0

    def capabilities(self, w: int) -> bool:
        """Every supported field: the reference tier can never be absent."""
        return w in (4, 8, 16)

    def plane_matmul(self, mat: np.ndarray, plane: np.ndarray, field: GF) -> np.ndarray:
        from repro.gf.batch import gf_plane_matmul

        return gf_plane_matmul(mat, plane, field)

    def warm(self, field: GF, coeffs) -> None:
        """Pre-build the memoized scale LUTs for a decode matrix's coeffs."""
        from repro.gf.batch import scale_lut

        for c in coeffs:
            if int(c) > 1:
                scale_lut(field, int(c))
