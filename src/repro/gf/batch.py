"""Batched GF(2^w) kernels over stacked multi-stripe buffers.

Per-stripe repair pays the full NumPy dispatch and LUT cost for every
stripe: ``f * k`` small gathers per stripe, a fresh scale-LUT per
coefficient, and an index-conversion pass per gather.  When a failed node
takes one block from *many* stripes, every stripe with the same erasure
pattern multiplies by the *same* decode matrix — so the stripes can be
stacked side by side and repaired with one LUT-indexed matmul per pattern
group instead of one per stripe.

Two tricks make the stacked kernel fast:

* **pair-byte LUTs** (w = 8) — the byte stream is viewed as ``uint16`` and
  multiplied through a 65536-entry table that maps two packed bytes at once
  (``lut16[b1 << 8 | b0] = (c*b1) << 8 | (c*b0)``), halving the number of
  gathered elements; building the table is amortized over the whole batch;
* **per-coefficient LUT reuse** — tables are built once per distinct
  coefficient per call and additionally memoized in a bounded module cache,
  so repeated repairs of the same pattern skip table construction entirely.

All kernels are bit-exact with :func:`repro.gf.matrix.gf_matmul` (asserted
by the differential tests); they only change *how fast* the same field
arithmetic runs.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict

import numpy as np

from repro.gf.field import GF

#: bounded memo of scale LUTs keyed by (field word size, coefficient).
#: w=8 entries are 65536-element uint16 pair tables (128 KiB each);
#: w=16 entries are 65536-element uint16 word tables.  256 entries cover
#: every GF(2^8) coefficient; the LRU bound only matters for GF(2^16).
_LUT_CACHE: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
_LUT_CACHE_CAPACITY = 512
#: guards every _LUT_CACHE mutation (get+move_to_end, insert, popitem):
#: scale_lut is called from concurrent wave dispatch and the serving
#: plane's thread-level fan-out, and an unlocked OrderedDict corrupts
#: under simultaneous LRU reordering/eviction (same hazard the PlanCache
#: lock closed in repro.repair.batch).
_LUT_CACHE_LOCK = threading.Lock()

#: The pair-byte fast path reinterprets byte pairs as uint16 words, which
#: only matches :func:`_pair_lut8`'s index packing on a little-endian
#: host; big-endian hosts take the bytewise fallback in
#: :func:`gf_plane_matmul` instead (bit-exact, just one gather per byte
#: rather than per pair).
_PAIR_VIEW_OK = sys.byteorder == "little"


def _pair_lut8(field: GF, coeff: int) -> np.ndarray:
    """The uint16 pair table for ``coeff`` in a byte-sized field (w <= 8).

    Index packing is explicitly little-endian: a byte pair ``[b0, b1]``
    viewed as a host uint16 reads ``b0 | (b1 << 8)`` only when the host
    is little-endian (the ``_PAIR_VIEW_OK`` gate), and the table maps that
    index to ``(c*b0) | ((c*b1) << 8)`` — so storing the gathered word
    back puts ``c*b0`` in the low byte and ``c*b1`` in the high byte,
    exactly where the source bytes came from.  For w < 8 only indices
    whose bytes are valid field elements are ever gathered; the rest stay
    zero.
    """
    lut8 = np.zeros(256, dtype=np.uint16)
    lut8[: field.size] = field.mul_table[coeff]
    # row index = high byte (<< 8), column index = low byte: entry
    # [hi, lo] of the outer sum is (c*hi) << 8 | (c*lo), raveled so the
    # flat index is (hi << 8) | lo.
    return np.add.outer(lut8 << 8, lut8).ravel()


def _word_lut16(field: GF, coeff: int) -> np.ndarray:
    """The uint16 element table for ``coeff`` in GF(2^16) (field.scale's LUT)."""
    lut = field.exp[
        (int(field.log[coeff]) + field.log[: field.size]) % field.order
    ].astype(field.dtype)
    lut[0] = 0
    return lut


def scale_lut(field: GF, coeff: int) -> np.ndarray:
    """Memoized multiply-by-``coeff`` lookup table for batched gathers.

    For w = 8 the table maps byte *pairs* (see :func:`_pair_lut8`); for
    w = 16 it maps single field elements.  Tables are read-only views into
    a bounded LRU cache shared by every batch kernel call.
    """
    coeff = int(coeff)
    if not 0 < coeff < field.size:
        raise ValueError(f"coefficient {coeff} outside 1..{field.size - 1}")
    key = (field.w, coeff)
    with _LUT_CACHE_LOCK:
        cached = _LUT_CACHE.get(key)
        if cached is not None:
            _LUT_CACHE.move_to_end(key)
            return cached
    # Build outside the lock: table construction is the slow path and must
    # not serialize concurrent hits on other coefficients.
    if field.mul_table is not None:  # byte-sized fields (w <= 8): pair tables
        lut = _pair_lut8(field, coeff)
    else:  # w == 16: one table entry per field element
        lut = _word_lut16(field, coeff)
    lut.setflags(write=False)
    with _LUT_CACHE_LOCK:
        raced = _LUT_CACHE.get(key)
        if raced is not None:
            # Another thread built the same table first; serve its copy so
            # `scale_lut(f, c) is scale_lut(f, c)` holds under contention.
            _LUT_CACHE.move_to_end(key)
            return raced
        _LUT_CACHE[key] = lut
        while len(_LUT_CACHE) > _LUT_CACHE_CAPACITY:
            _LUT_CACHE.popitem(last=False)
    return lut


def lut_cache_clear() -> None:
    """Drop every memoized LUT (test isolation / memory pressure)."""
    with _LUT_CACHE_LOCK:
        _LUT_CACHE.clear()


def gf_plane_matmul(mat: np.ndarray, plane: np.ndarray, field: GF) -> np.ndarray:
    """``mat @ plane`` over GF(2^w) for a stacked source plane.

    ``mat`` is (f, k) and ``plane`` is (k, N) — typically N = stripes x
    block length, i.e. the survivors of a whole pattern group laid side by
    side.  Returns the (f, N) product.  One LUT gather per nonzero matrix
    entry; coefficient-1 entries degrade to a plain XOR.
    """
    mat = np.asarray(mat, dtype=field.dtype)
    plane = np.asarray(plane, dtype=field.dtype)
    if mat.ndim != 2 or plane.ndim != 2 or mat.shape[1] != plane.shape[0]:
        raise ValueError(f"incompatible shapes {mat.shape} x {plane.shape}")
    f, k = mat.shape
    n = plane.shape[1]
    out = np.zeros((f, n), dtype=field.dtype)
    if n == 0:
        return out

    if field.mul_table is not None and not _PAIR_VIEW_OK:
        # Big-endian host (or a test forcing the gate): the uint16
        # reinterpret below would swap _pair_lut8's index packing, so
        # gather one byte at a time through the plain multiply table.
        for i in range(f):
            row = out[i]
            for t in range(k):
                c = int(mat[i, t])
                if c == 0:
                    continue
                if c == 1:
                    row ^= plane[t]
                    continue
                row ^= field.mul_table[c][plane[t]]
        return out

    if field.mul_table is not None:  # byte-sized fields: pair-byte gathers
        plane = np.ascontiguousarray(plane)
        half = n // 2
        src16 = plane[:, : half * 2].view(np.uint16) if half else None
        out16 = out[:, : half * 2].view(np.uint16) if half else None
        tmp = np.empty(half, dtype=np.uint16) if half else None
        tail = n - half * 2  # odd trailing byte per row, handled bytewise
        for i in range(f):
            row16 = out16[i] if half else None
            for t in range(k):
                c = int(mat[i, t])
                if c == 0:
                    continue
                if c == 1:
                    if half:
                        row16 ^= src16[t]
                    if tail:
                        out[i, -1] ^= plane[t, -1]
                    continue
                if half:
                    np.take(scale_lut(field, c), src16[t], out=tmp)
                    row16 ^= tmp
                if tail:
                    out[i, -1] ^= field.mul_table[c, plane[t, -1]]
        return out

    # w == 16: elements are already words; gather through the element LUT
    tmp = np.empty(n, dtype=field.dtype)
    for i in range(f):
        row = out[i]
        for t in range(k):
            c = int(mat[i, t])
            if c == 0:
                continue
            if c == 1:
                row ^= plane[t]
                continue
            np.take(scale_lut(field, c), plane[t], out=tmp)
            row ^= tmp
    return out


def gf_stack_plane(groups_of_rows, field: GF) -> np.ndarray:
    """Stack per-stripe survivor rows into one (k, S*B) source plane.

    ``groups_of_rows`` is a sequence of S stripes, each a sequence of k
    equal-length buffers (survivor blocks in a fixed order).  Stripe ``s``
    occupies columns ``[s*B, (s+1)*B)`` of every row, so the plane product
    of :func:`gf_plane_matmul` slices back into per-stripe outputs.
    """
    stripes = [
        [np.asarray(r, dtype=field.dtype) for r in rows] for rows in groups_of_rows
    ]
    if not stripes:
        raise ValueError("empty batch")
    k = len(stripes[0])
    if k == 0 or any(len(rows) != k for rows in stripes):
        raise ValueError("every stripe must supply the same number of source rows")
    length = stripes[0][0].shape[-1]
    for rows in stripes:
        for r in rows:
            if r.ndim != 1 or r.shape[0] != length:
                raise ValueError("source rows must be equal-length 1-D buffers")
    plane = np.empty((k, len(stripes) * length), dtype=field.dtype)
    for s, rows in enumerate(stripes):
        for t, r in enumerate(rows):
            plane[t, s * length : (s + 1) * length] = r
    return plane


def gf_batch_matmul(mat: np.ndarray, stacked: np.ndarray, field: GF) -> np.ndarray:
    """``mat @ stacked[s]`` for every stripe ``s`` of a (S, k, B) stack.

    Returns an (S, f, B) array.  Bit-exact with calling
    :func:`repro.gf.matrix.gf_matmul` once per stripe, but executes as a
    single plane product (see :func:`gf_plane_matmul`).
    """
    stacked = np.asarray(stacked, dtype=field.dtype)
    if stacked.ndim != 3:
        raise ValueError(f"stacked must be (S, k, B), got {stacked.shape}")
    s, k, b = stacked.shape
    plane = stacked.transpose(1, 0, 2).reshape(k, s * b)
    out = gf_plane_matmul(mat, plane, field)
    f = out.shape[0]
    return np.ascontiguousarray(out.reshape(f, s, b).transpose(1, 0, 2))
