"""GF(2^w) field objects with vectorized arithmetic kernels.

The hot operation in erasure-coded repair is ``dst ^= coeff * src`` over large
byte buffers.  For w=8 this is a single LUT gather (``MUL[coeff][src]``)
followed by an in-place XOR — the NumPy equivalent of ISA-L's
``gf_vect_mad``.  Fields are cached singletons: ``GF(8) is GF(8)``.
"""

from __future__ import annotations

import numpy as np

from repro.gf.tables import PRIMITIVE_POLY, build_inv_table, build_log_exp, build_mul_table

_FIELD_CACHE: dict[int, "GF"] = {}


class GF:
    """Finite field GF(2^w).

    Parameters
    ----------
    w : word size in bits (4, 8 or 16). 8 is the default used throughout the
        reproduction (stripe widths k+m <= 256 cover every configuration in
        the paper, including the VAST (150, 4) code).
    """

    def __new__(cls, w: int = 8):
        # Only fully-initialized fields ever enter the cache (see __init__),
        # so a failed construction — GF(5) — cannot poison the singleton
        # slot with a half-built object for every later caller.
        cached = _FIELD_CACHE.get(w)
        if cached is not None:
            return cached
        return super().__new__(cls)

    def __init__(self, w: int = 8):
        if getattr(self, "_initialized", False):
            return
        if w not in PRIMITIVE_POLY:
            raise ValueError(f"unsupported word size w={w}")
        self.w = w
        self.order = (1 << w) - 1  # size of the multiplicative group
        self.size = 1 << w
        self.dtype = np.uint8 if w <= 8 else np.uint16
        self.log, self.exp = build_log_exp(w)
        self.inv_table = build_inv_table(w)
        self.mul_table = build_mul_table(w) if w <= 8 else None
        self._initialized = True
        _FIELD_CACHE[w] = self

    # ------------------------------------------------------------------ #
    # scalar / elementwise arithmetic
    # ------------------------------------------------------------------ #
    def add(self, a, b):
        """Addition in GF(2^w) is XOR (also subtraction)."""
        return np.bitwise_xor(a, b)

    sub = add

    def mul(self, a, b):
        """Elementwise product. Accepts scalars or broadcastable arrays."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        if self.mul_table is not None:
            out = self.mul_table[a.astype(np.intp), b.astype(np.intp)]
        else:
            out = self.exp[self.log[a].astype(np.int64) + self.log[b].astype(np.int64)]
            out = np.where((a == 0) | (b == 0), self.dtype(0), out)
        if out.ndim == 0:
            return int(out)
        return out

    def div(self, a, b):
        """Elementwise quotient ``a / b``; raises on division by zero."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        if np.any(b == 0):
            raise ZeroDivisionError("division by zero in GF(2^w)")
        out = self.exp[
            (self.log[a].astype(np.int64) - self.log[b].astype(np.int64)) % self.order
        ]
        out = np.where(a == 0, self.dtype(0), out)
        if out.ndim == 0:
            return int(out)
        return out

    def inv(self, a):
        """Multiplicative inverse; raises on zero."""
        a_arr = np.asarray(a)
        if np.any(a_arr == 0):
            raise ZeroDivisionError("zero has no multiplicative inverse")
        out = self.inv_table[a_arr.astype(np.intp)]
        if out.ndim == 0:
            return int(out)
        return out

    def pow(self, a, n: int):
        """``a ** n`` for integer n (n may be negative if a != 0)."""
        a = int(a)
        if a == 0:
            if n <= 0:
                raise ZeroDivisionError("0 ** n undefined for n <= 0 in GF")
            return 0
        e = (int(self.log[a]) * n) % self.order
        return int(self.exp[e])

    # ------------------------------------------------------------------ #
    # vector kernels (the ISA-L replacements)
    # ------------------------------------------------------------------ #
    def scale(self, coeff: int, src: np.ndarray) -> np.ndarray:
        """Return ``coeff * src`` elementwise for a buffer ``src``."""
        src = np.asarray(src, dtype=self.dtype)
        coeff = int(coeff)
        if coeff == 0:
            return np.zeros_like(src)
        if coeff == 1:
            return src.copy()
        if self.mul_table is not None:
            return self.mul_table[coeff][src]
        lut = self.exp[(int(self.log[coeff]) + self.log[: self.size]) % self.order].astype(
            self.dtype
        )
        lut[0] = 0
        return lut[src]

    def addmul(self, dst: np.ndarray, coeff: int, src: np.ndarray) -> np.ndarray:
        """In-place ``dst ^= coeff * src`` (the gf_vect_mad kernel)."""
        coeff = int(coeff)
        if coeff == 0:
            return dst
        if coeff == 1:
            np.bitwise_xor(dst, src, out=dst)
            return dst
        np.bitwise_xor(dst, self.scale(coeff, src), out=dst)
        return dst

    def combine(self, coeffs, blocks) -> np.ndarray:
        """Linear combination ``sum_i coeffs[i] * blocks[i]`` over the field.

        ``blocks`` is a sequence of equal-length buffers (or a 2-D array whose
        rows are the buffers).  Returns a new buffer.
        """
        blocks = [np.asarray(b, dtype=self.dtype) for b in blocks]
        if len(coeffs) != len(blocks):
            raise ValueError("coeffs and blocks length mismatch")
        if not blocks:
            raise ValueError("empty linear combination")
        out = np.zeros_like(blocks[0])
        for c, b in zip(coeffs, blocks):
            self.addmul(out, int(c), b)
        return out

    def random_elements(self, shape, rng: np.random.Generator, nonzero: bool = False):
        """Uniform random field elements, optionally excluding zero."""
        lo = 1 if nonzero else 0
        return rng.integers(lo, self.size, size=shape, dtype=np.uint32).astype(self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GF(2^{self.w})"


def GF8() -> GF:
    """The default byte-oriented field GF(2^8)."""
    return GF(8)


def GF16() -> GF:
    """GF(2^16), for hypothetical stripes wider than 256."""
    return GF(16)


#: Module-level singleton for the common case.
gf8 = GF(8)
