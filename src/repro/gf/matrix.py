"""Dense matrix algebra over GF(2^w).

Matrices are plain NumPy arrays with the field's dtype; all routines take the
field as an explicit argument so GF(2^8) and GF(2^16) coexist.
"""

from __future__ import annotations

import numpy as np

from repro.gf.field import GF


class SingularMatrixError(ValueError):
    """Raised when inverting / solving with a singular matrix over GF(2^w)."""


def gf_identity(n: int, field: GF) -> np.ndarray:
    """The n x n identity matrix over the field."""
    return np.eye(n, dtype=field.dtype)


def gf_matmul(a: np.ndarray, b: np.ndarray, field: GF) -> np.ndarray:
    """Matrix product over GF(2^w).

    Implemented as a LUT gather + XOR-reduction along the inner axis, which
    keeps everything vectorized (no Python-level inner loops over entries).
    """
    a = np.asarray(a, dtype=field.dtype)
    b = np.asarray(b, dtype=field.dtype)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    # products[i, t, j] = a[i, t] * b[t, j]
    products = field.mul(a[:, :, None], b[None, :, :])
    return np.bitwise_xor.reduce(products, axis=1)


def gf_matvec(a: np.ndarray, x: np.ndarray, field: GF) -> np.ndarray:
    """Matrix-vector product over GF(2^w)."""
    x = np.asarray(x, dtype=field.dtype)
    return gf_matmul(a, x[:, None], field)[:, 0]


def _eliminate(aug: np.ndarray, n: int, field: GF) -> np.ndarray:
    """Gauss-Jordan elimination on an augmented matrix (in place)."""
    rows = aug.shape[0]
    for col in range(n):
        # partial "pivoting": any nonzero entry works over a field
        pivot_rows = np.nonzero(aug[col:, col])[0]
        if pivot_rows.size == 0:
            raise SingularMatrixError(f"singular at column {col}")
        piv = col + int(pivot_rows[0])
        if piv != col:
            aug[[col, piv]] = aug[[piv, col]]
        inv_p = field.inv(int(aug[col, col]))
        if inv_p != 1:
            aug[col] = field.mul(field.dtype(inv_p), aug[col])
        # eliminate every other row's entry in this column
        col_vals = aug[:, col].copy()
        col_vals[col] = 0
        nz = np.nonzero(col_vals)[0]
        if nz.size:
            aug[nz] ^= field.mul(col_vals[nz][:, None], aug[col][None, :])
    if rows != n:
        raise AssertionError("augmented matrix must be square on the left")
    return aug


def gf_inv(a: np.ndarray, field: GF) -> np.ndarray:
    """Inverse of a square matrix over GF(2^w) via Gauss-Jordan."""
    a = np.asarray(a, dtype=field.dtype)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    n = a.shape[0]
    aug = np.concatenate([a.copy(), gf_identity(n, field)], axis=1)
    _eliminate(aug, n, field)
    return aug[:, n:].copy()


def gf_solve(a: np.ndarray, b: np.ndarray, field: GF) -> np.ndarray:
    """Solve ``a @ x = b`` over GF(2^w); b may be a vector or matrix."""
    a = np.asarray(a, dtype=field.dtype)
    b = np.asarray(b, dtype=field.dtype)
    vector = b.ndim == 1
    rhs = b[:, None] if vector else b
    if a.shape[0] != rhs.shape[0]:
        raise ValueError("dimension mismatch between a and b")
    n = a.shape[0]
    aug = np.concatenate([a.copy(), rhs.copy()], axis=1)
    _eliminate(aug, n, field)
    x = aug[:, n:].copy()
    return x[:, 0] if vector else x


def gf_rank(a: np.ndarray, field: GF) -> int:
    """Rank of a matrix over GF(2^w) (row echelon reduction)."""
    m = np.asarray(a, dtype=field.dtype).copy()
    rows, cols = m.shape
    rank = 0
    for col in range(cols):
        if rank == rows:
            break
        pivot_rows = np.nonzero(m[rank:, col])[0]
        if pivot_rows.size == 0:
            continue
        piv = rank + int(pivot_rows[0])
        if piv != rank:
            m[[rank, piv]] = m[[piv, rank]]
        inv_p = field.inv(int(m[rank, col]))
        if inv_p != 1:
            m[rank] = field.mul(field.dtype(inv_p), m[rank])
        below = m[rank + 1 :, col].copy()
        nz = np.nonzero(below)[0]
        if nz.size:
            m[rank + 1 + nz] ^= field.mul(below[nz][:, None], m[rank][None, :])
        rank += 1
    return rank
