"""Construction of GF(2^w) discrete-log tables.

The field GF(2^w) is realized as polynomials over GF(2) modulo a primitive
polynomial, with the monomial ``x`` (integer 2) as the generator of the
multiplicative group.  We precompute:

* ``exp`` — ``exp[i] = x^i`` for ``0 <= i < 2*(2^w - 1)`` (doubled so that
  ``exp[log[a] + log[b]]`` needs no modular reduction),
* ``log`` — inverse map, ``log[exp[i]] = i`` with ``log[0]`` unused.

Only standard primitive polynomials are used (the same ones as ISA-L and
jerasure), so encodings are interoperable with common EC implementations.
"""

from __future__ import annotations

import numpy as np

#: Primitive polynomials (including the x^w term) per word size.
PRIMITIVE_POLY = {
    4: 0x13,  # x^4 + x + 1
    8: 0x11D,  # x^8 + x^4 + x^3 + x^2 + 1
    16: 0x1100B,  # x^16 + x^12 + x^3 + x + 1
}

_SUPPORTED_W = tuple(sorted(PRIMITIVE_POLY))


def build_log_exp(w: int) -> tuple[np.ndarray, np.ndarray]:
    """Build (log, exp) tables for GF(2^w).

    Returns
    -------
    log : uint32 array of size 2^w; ``log[0]`` is set to 0 but is invalid.
    exp : dtype-sized array of length ``2*(2^w - 1)`` so sums of two logs
        index without reduction.
    """
    if w not in PRIMITIVE_POLY:
        raise ValueError(f"unsupported word size w={w}; supported: {_SUPPORTED_W}")
    order = (1 << w) - 1
    poly = PRIMITIVE_POLY[w]
    dtype = np.uint8 if w <= 8 else np.uint16 if w <= 16 else np.uint32

    exp = np.zeros(2 * order, dtype=dtype)
    log = np.zeros(1 << w, dtype=np.uint32)
    x = 1
    for i in range(order):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & (1 << w):
            x ^= poly
    if x != 1:
        raise AssertionError(f"polynomial 0x{poly:x} is not primitive for w={w}")
    exp[order : 2 * order] = exp[:order]
    return log, exp


def build_mul_table(w: int) -> np.ndarray:
    """Build the full (2^w x 2^w) multiplication table.

    Only sensible for w <= 8 (64 KiB); used for fast pairwise multiplication
    via fancy indexing.
    """
    if w > 8:
        raise ValueError("full multiplication table only built for w <= 8")
    log, exp = build_log_exp(w)
    n = 1 << w
    a = np.arange(n, dtype=np.uint32)
    # table[i, j] = exp[log[i] + log[j]], zero row/col forced to 0.
    table = exp[(log[a][:, None] + log[a][None, :])].astype(np.uint8)
    table[0, :] = 0
    table[:, 0] = 0
    return table


def build_inv_table(w: int) -> np.ndarray:
    """Build the multiplicative-inverse table (index 0 maps to 0, invalid)."""
    log, exp = build_log_exp(w)
    order = (1 << w) - 1
    dtype = np.uint8 if w <= 8 else np.uint16
    inv = np.zeros(1 << w, dtype=dtype)
    nz = np.arange(1, 1 << w, dtype=np.uint32)
    inv[nz] = exp[(order - log[nz]) % order]
    return inv
