"""Unified observability: spans, metrics, and repair timelines.

``repro.obs`` is the measurement substrate for the whole reproduction — a
zero-dependency tracer + metrics registry that every layer (system, repair,
faults, simnet, analysis) can feed through *optional* hooks which are byte-
and time-identical no-ops when disabled.

Public surface:

* :class:`~repro.obs.tracer.Tracer` / :class:`~repro.obs.tracer.Span` —
  nested spans over two logical-clock domains (data-plane op clock,
  fluid-simulator seconds), with nesting validation;
* :class:`~repro.obs.metrics.MetricsRegistry` with
  :class:`~repro.obs.metrics.Counter` / :class:`~repro.obs.metrics.Gauge` /
  :class:`~repro.obs.metrics.Histogram` series;
* :class:`~repro.obs.session.Observability` — a tracer+metrics session that
  attaches to a :class:`~repro.system.coordinator.Coordinator` the same way
  a fault injector does;
* exporters in :mod:`repro.obs.export` — Chrome-trace JSON (loads in
  ``chrome://tracing`` / Perfetto) and JSONL.

Typical use::

    from repro.obs import Observability

    obs = Observability().attach(coord)
    coord.repair("hmbr")
    obs.detach(coord)
    obs.tracer.write_chrome_trace("repair.trace.json")
    print(obs.metrics.snapshot()["counters"]["bus.bytes"])

See ``docs/OBSERVABILITY.md`` for the span/metric schema and how to read a
trace in Perfetto.
"""

from repro.obs.export import to_chrome_trace, write_chrome_trace, write_spans_jsonl
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, latency_summary
from repro.obs.session import Observability
from repro.obs.tracer import OPS_DOMAIN, SIM_DOMAIN, Span, TraceError, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "latency_summary",
    "MetricsRegistry",
    "Observability",
    "OPS_DOMAIN",
    "SIM_DOMAIN",
    "Span",
    "TraceError",
    "Tracer",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
]
