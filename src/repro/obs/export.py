"""Trace exporters: Chrome-trace JSON and JSONL.

Two formats, both loadable without any tooling from this repo:

* **Chrome trace** (``to_chrome_trace`` / ``write_chrome_trace``) — the
  Trace Event Format consumed by ``chrome://tracing`` and
  https://ui.perfetto.dev.  Ops-domain spans become complete (``"X"``)
  events on one thread per actor under the ``data-plane`` process;
  sim-domain spans become async (``"b"``/``"e"``) pairs under the
  ``fluid-sim`` process, since concurrent flows legitimately overlap.
  Timestamps are logical seconds scaled to microseconds (the format's
  native unit), so the Perfetto timeline reads directly in simulated time.
* **JSONL** (``write_spans_jsonl``) — one JSON object per span, for ad-hoc
  analysis with ``jq`` or pandas.

Exports are deterministic: actors are assigned thread ids in sorted order
and span args are emitted with sorted keys.
"""

from __future__ import annotations

import json

from repro.obs.tracer import OPS_DOMAIN, SIM_DOMAIN, Tracer

#: Chrome trace pids, one per clock domain.
_PIDS = {OPS_DOMAIN: 1, SIM_DOMAIN: 2}
_PROCESS_NAMES = {OPS_DOMAIN: "data-plane", SIM_DOMAIN: "fluid-sim"}
_US = 1e6  # trace-event timestamps are microseconds


def to_chrome_trace(tracer: Tracer) -> dict:
    """Render a tracer's spans as a Trace Event Format document."""
    events: list[dict] = []
    # stable actor -> tid assignment per domain
    tids: dict[tuple[str, str], int] = {}
    for domain in (OPS_DOMAIN, SIM_DOMAIN):
        actors = sorted({s.actor for s in tracer.spans if s.domain == domain})
        pid = _PIDS[domain]
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": _PROCESS_NAMES[domain]}}
        )
        for i, actor in enumerate(actors):
            tids[(domain, actor)] = i
            events.append(
                {"name": "thread_name", "ph": "M", "pid": pid, "tid": i,
                 "args": {"name": actor}}
            )
    for span in tracer.spans:
        if not span.closed:
            raise ValueError(f"cannot export open span {span.name!r}")
        pid = _PIDS[span.domain]
        tid = tids[(span.domain, span.actor)]
        common = {
            "name": span.name,
            "cat": span.cat,
            "pid": pid,
            "tid": tid,
            "args": dict(sorted(span.args.items())),
        }
        if span.domain == OPS_DOMAIN:
            events.append(
                {**common, "ph": "X", "ts": span.t0 * _US, "dur": span.duration * _US}
            )
        else:
            sid = f"0x{span.span_id:x}"
            events.append({**common, "ph": "b", "id": sid, "ts": span.t0 * _US})
            events.append({**common, "ph": "e", "id": sid, "ts": span.t1 * _US})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path) -> None:
    """Write ``tracer`` as Chrome-trace JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(tracer), fh, sort_keys=True)
        fh.write("\n")


def write_spans_jsonl(tracer: Tracer, path) -> None:
    """Write one JSON object per span to ``path`` (recording order)."""
    with open(path, "w") as fh:
        for span in tracer.spans:
            row = {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "cat": span.cat,
                "actor": span.actor,
                "domain": span.domain,
                "t0": span.t0,
                "t1": span.t1,
                "args": dict(sorted(span.args.items())),
            }
            fh.write(json.dumps(row, sort_keys=True) + "\n")
