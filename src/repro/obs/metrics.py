"""Metric series: the aggregate half of :mod:`repro.obs`.

A :class:`MetricsRegistry` holds named series of three kinds, mirroring the
conventional Prometheus trio but with zero dependencies:

* :class:`Counter` — monotonically increasing totals (bus bytes, transfer
  counts, retries, heartbeat misses);
* :class:`Gauge` — last-write-wins values (a repair's makespan, the HMBR
  split ratio);
* :class:`Histogram` — full distributions with exact quantiles (per-op GF
  throughput, per-transfer sizes, backoff waits).  Runs are small enough
  that observations are kept verbatim, which makes snapshots deterministic
  and exact rather than bucket-approximated.

Series names are dotted paths (``"bus.bytes"``, ``"repair.retries"``); one
name is one series of one kind — re-registering a name as a different kind
is an error.  :meth:`MetricsRegistry.snapshot` returns plain dicts and
:meth:`MetricsRegistry.write_jsonl` emits one JSON object per series.
"""

from __future__ import annotations

import json


class Counter:
    """A monotone total.  ``inc`` by any non-negative amount."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: cannot decrease")
        self.value += amount


class Gauge:
    """A last-write-wins value (``None`` until first set)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """An exact distribution: every observation is kept."""

    __slots__ = ("name", "observations")

    def __init__(self, name: str):
        self.name = name
        self.observations: list[float] = []

    def observe(self, value: float) -> None:
        self.observations.append(float(value))

    @property
    def count(self) -> int:
        return len(self.observations)

    @property
    def total(self) -> float:
        return sum(self.observations)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.observations else 0.0

    def quantile(self, q: float) -> float:
        """Exact linear-interpolated quantile, ``0 <= q <= 1``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.observations:
            raise ValueError(f"histogram {self.name!r} is empty")
        xs = sorted(self.observations)
        pos = q * (len(xs) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(xs) - 1)
        frac = pos - lo
        return xs[lo] * (1 - frac) + xs[hi] * frac

    def summary(self) -> dict:
        if not self.observations:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": min(self.observations),
            "max": max(self.observations),
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


def latency_summary(values) -> dict:
    """Deterministic p50/p99 summary of a latency sample.

    A pure function over any iterable of seconds, computed through a
    throwaway :class:`Histogram` so the numbers are *identical* to what an
    attached session's ``workload.read_latency_s`` series reports — the
    serving plane uses it for its percentile tables, which therefore do not
    depend on whether an :class:`~repro.obs.session.Observability` session
    is attached.  An empty sample returns ``{"count": 0}`` (matching
    :meth:`Histogram.summary`).
    """
    h = Histogram("latency")
    for v in values:
        h.observe(v)
    return h.summary()


class MetricsRegistry:
    """Get-or-create registry of named series."""

    def __init__(self):
        self._series: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type):
        series = self._series.get(name)
        if series is None:
            series = kind(name)
            self._series[name] = series
        elif not isinstance(series, kind):
            raise TypeError(
                f"series {name!r} is a {type(series).__name__}, not a {kind.__name__}"
            )
        return series

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        return sorted(self._series)

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def snapshot(self) -> dict:
        """Plain-dict view: ``{"counters": .., "gauges": .., "histograms": ..}``."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in self.names():
            series = self._series[name]
            if isinstance(series, Counter):
                out["counters"][name] = series.value
            elif isinstance(series, Gauge):
                out["gauges"][name] = series.value
            else:
                out["histograms"][name] = series.summary()
        return out

    def write_jsonl(self, path) -> None:
        """One JSON object per series: ``{"name", "kind", ...}``."""
        with open(path, "w") as fh:
            for name in self.names():
                series = self._series[name]
                if isinstance(series, Counter):
                    row = {"name": name, "kind": "counter", "value": series.value}
                elif isinstance(series, Gauge):
                    row = {"name": name, "kind": "gauge", "value": series.value}
                else:
                    row = {"name": name, "kind": "histogram", **series.summary()}
                fh.write(json.dumps(row, sort_keys=True) + "\n")

    def reset(self) -> None:
        self._series.clear()
