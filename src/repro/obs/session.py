"""The observability session: one tracer + one registry, attachable to a system.

:class:`Observability` bundles a :class:`~repro.obs.tracer.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry` and knows how to wire them into
a live :class:`~repro.system.coordinator.Coordinator`:

* :attr:`DataBus.obs_hook <repro.system.bus.DataBus.obs_hook>` — every
  metered transfer becomes one ops-domain ``transfer`` span carrying its
  byte count (so the trace conserves bytes against
  :meth:`DataBus.total_bytes`), plus ``bus.*`` counters;
* :attr:`Agent.obs_hook <repro.system.agent.Agent.obs_hook>` — every GF
  combine becomes one ``compute`` span carrying its (slowdown-scaled)
  seconds and bytes, plus ``gf.*`` series;
* ``coord.obs = self`` — the coordinator and the fault runtime emit
  structural spans (``repair``/``plan``/``dispatch``/``attempt``) and
  repair/fault metrics around those hooks.

Attachment follows the :mod:`repro.faults` precedent exactly: with no
session attached every hook is ``None`` and the system is byte- and
time-identical to an uninstrumented run (asserted by the invariant tests).
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class Observability:
    """A tracer + metrics pair that attaches to a coordinator."""

    def __init__(self, tracer: Tracer | None = None, metrics: MetricsRegistry | None = None):
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -------------------------------------------------------------- #
    # hook callbacks (installed on bus / agents)
    # -------------------------------------------------------------- #
    def on_transfer(self, src: int, dst: int, nbytes: int) -> None:
        """Bus hook: one transfer span + byte accounting."""
        self.tracer.tick_span(
            f"xfer:{src}->{dst}", actor=f"node:{src}", cat="transfer",
            src=src, dst=dst, bytes=nbytes,
        )
        m = self.metrics
        m.counter("bus.bytes").inc(nbytes)
        m.counter("bus.transfers").inc()
        m.histogram("bus.transfer_bytes").observe(nbytes)

    def on_compute(self, node: int, seconds: float, nbytes: int) -> None:
        """Agent hook: one GF-combine span + throughput accounting."""
        self.tracer.tick_span(
            f"gf:{node}", actor=f"node:{node}", cat="compute",
            node=node, seconds=seconds, bytes=nbytes,
        )
        m = self.metrics
        m.counter("gf.seconds").inc(seconds)
        m.counter("gf.bytes").inc(nbytes)
        if seconds > 0:
            m.histogram("gf.throughput_bps").observe(nbytes / seconds)

    # -------------------------------------------------------------- #
    # attachment
    # -------------------------------------------------------------- #
    def attach(self, coord) -> "Observability":
        """Install hooks on a coordinator (idempotent for this session)."""
        if getattr(coord, "obs", None) is self:
            return self
        if getattr(coord, "obs", None) is not None:
            raise RuntimeError("another observability session is already attached")
        coord.obs = self
        coord.bus.obs_hook = self.on_transfer
        for agent in coord.agents.values():
            agent.obs_hook = self.on_compute
        return self

    def detach(self, coord) -> None:
        """Remove this session's hooks (no-op if not attached)."""
        if getattr(coord, "obs", None) is not self:
            return
        coord.obs = None
        coord.bus.obs_hook = None
        for agent in coord.agents.values():
            agent.obs_hook = None
