"""Span tracer: the timeline half of :mod:`repro.obs`.

A :class:`Tracer` records :class:`Span` intervals in two clock domains:

* ``"ops"`` — the data plane.  There is no wall clock here (agents copy
  NumPy buffers instantly), so the tracer keeps its own *logical op clock*:
  every instrumentation point advances it by :attr:`Tracer.tick_s` and spans
  are laid out sequentially per actor.  Ops-domain spans must be **properly
  nested and non-overlapping per actor** — :meth:`Tracer.validate` enforces
  it, and the chaos-grade invariant tests rely on it.
* ``"sim"`` — the timing plane.  Timestamps are the fluid simulator's
  logical seconds (task start/finish times), recorded post-hoc by
  :meth:`repro.simnet.fluid.FluidSimulator.run` when given a tracer.  Sim
  spans are *interval* spans: flows legitimately overlap, so they are
  exported as Chrome async events and exempt from the nesting check.

Spans form a tree: :meth:`Tracer.begin`/:meth:`Tracer.end` maintain one
open-span stack per actor and record parent links; :meth:`Tracer.add`
records an already-closed span (hook call sites, sim timelines).  Export
helpers live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

#: clock domain of data-plane (logical op clock) spans
OPS_DOMAIN = "ops"
#: clock domain of fluid-simulator (simulated seconds) spans
SIM_DOMAIN = "sim"

_EPS = 1e-12


class TraceError(RuntimeError):
    """A span was misused: bad end order, unclosed span, or overlap."""


@dataclass
class Span:
    """One traced interval ``[t0, t1)`` on an actor's timeline."""

    span_id: int
    name: str
    cat: str
    actor: str
    t0: float
    t1: float | None = None
    domain: str = OPS_DOMAIN
    parent_id: int | None = None
    args: dict = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.t1 is not None

    @property
    def duration(self) -> float:
        if self.t1 is None:
            raise TraceError(f"span {self.name!r} is still open")
        return self.t1 - self.t0


class Tracer:
    """Collects spans against a monotone logical clock."""

    def __init__(self, tick_s: float = 1.0):
        self.tick_s = float(tick_s)
        self.spans: list[Span] = []
        self._now = 0.0
        self._stacks: dict[str, list[Span]] = {}
        self._next_id = 0

    # -------------------------------------------------------------- #
    # clock
    # -------------------------------------------------------------- #
    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float | None = None) -> float:
        """Move the logical clock forward by ``dt`` (default one tick)."""
        dt = self.tick_s if dt is None else dt
        if dt < 0:
            raise TraceError("cannot advance the trace clock backwards")
        self._now += dt
        return self._now

    def sync(self, t: float) -> float:
        """Fast-forward to an external logical time (never backwards)."""
        self._now = max(self._now, float(t))
        return self._now

    # -------------------------------------------------------------- #
    # span recording
    # -------------------------------------------------------------- #
    def _new_span(self, name, cat, actor, t0, t1, domain, parent_id, args) -> Span:
        span = Span(
            span_id=self._next_id,
            name=name,
            cat=cat,
            actor=actor,
            t0=t0,
            t1=t1,
            domain=domain,
            parent_id=parent_id,
            args=dict(args),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def begin(
        self, name: str, *, actor: str = "coordinator", cat: str = "span",
        ts: float | None = None, **args,
    ) -> Span:
        """Open a nested span on ``actor``'s stack (close with :meth:`end`)."""
        t0 = self._now if ts is None else float(ts)
        stack = self._stacks.setdefault(actor, [])
        parent = stack[-1].span_id if stack else None
        span = self._new_span(name, cat, actor, t0, None, OPS_DOMAIN, parent, args)
        stack.append(span)
        return span

    def end(self, span: Span, *, ts: float | None = None, **args) -> Span:
        """Close the innermost open span of ``span.actor`` (must be ``span``)."""
        stack = self._stacks.get(span.actor, [])
        if not stack or stack[-1] is not span:
            raise TraceError(
                f"span {span.name!r} is not the innermost open span of actor "
                f"{span.actor!r} (improper nesting)"
            )
        stack.pop()
        t1 = self._now if ts is None else float(ts)
        if t1 < span.t0:
            raise TraceError(f"span {span.name!r} would end before it started")
        span.t1 = t1
        span.args.update(args)
        return span

    def unwind(self, span: Span, *, ts: float | None = None) -> Span:
        """End ``span``, first closing any open spans nested inside it.

        The exception-path variant of :meth:`end`: a ``finally`` block can
        close an outer span without knowing which children were interrupted.
        """
        stack = self._stacks.get(span.actor, [])
        if span not in stack:
            raise TraceError(f"span {span.name!r} is not open on actor {span.actor!r}")
        while stack[-1] is not span:
            self.end(stack[-1], ts=ts)
        return self.end(span, ts=ts)

    @contextmanager
    def span(self, name: str, *, actor: str = "coordinator", cat: str = "span", **args):
        """``with tracer.span(...) as s:`` — begin/end bracket, exception-safe."""
        s = self.begin(name, actor=actor, cat=cat, **args)
        try:
            yield s
        finally:
            self.end(s)

    def add(
        self, name: str, *, actor: str, cat: str, t0: float, t1: float,
        domain: str = SIM_DOMAIN, parent: Span | None = None, **args,
    ) -> Span:
        """Record an already-closed span (hook call sites, sim timelines)."""
        if t1 < t0:
            raise TraceError(f"span {name!r}: t1 < t0")
        if domain == OPS_DOMAIN:
            stack = self._stacks.get(actor, [])
            parent_id = stack[-1].span_id if stack else None
        else:
            parent_id = None
        if parent is not None:
            parent_id = parent.span_id
        return self._new_span(name, cat, actor, float(t0), float(t1), domain, parent_id, args)

    def tick_span(self, name: str, *, actor: str, cat: str, **args) -> Span:
        """A one-tick ops-domain span at the current clock (advances it)."""
        t0 = self._now
        self.advance()
        return self.add(name, actor=actor, cat=cat, t0=t0, t1=self._now,
                        domain=OPS_DOMAIN, **args)

    def instant(self, name: str, *, actor: str, cat: str = "instant", **args) -> Span:
        """A zero-duration marker at the current clock."""
        return self.add(name, actor=actor, cat=cat, t0=self._now, t1=self._now,
                        domain=OPS_DOMAIN, **args)

    # -------------------------------------------------------------- #
    # queries
    # -------------------------------------------------------------- #
    def find(
        self, *, cat: str | None = None, domain: str | None = None,
        actor: str | None = None, name: str | None = None,
    ) -> list[Span]:
        """Spans matching every given filter, in recording order."""
        out = []
        for s in self.spans:
            if cat is not None and s.cat != cat:
                continue
            if domain is not None and s.domain != domain:
                continue
            if actor is not None and s.actor != actor:
                continue
            if name is not None and s.name != name:
                continue
            out.append(s)
        return out

    def open_spans(self) -> list[Span]:
        return [s for s in self.spans if not s.closed]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    # -------------------------------------------------------------- #
    # invariants
    # -------------------------------------------------------------- #
    def validate(self) -> None:
        """Check trace well-formedness; raises :class:`TraceError` on violation.

        * every span is closed;
        * ops-domain spans are properly nested and non-overlapping per actor
          (two spans of one actor either nest or are disjoint).  Sim-domain
          spans are interval spans (concurrent flows) and exempt.
        """
        open_ = self.open_spans()
        if open_:
            names = ", ".join(repr(s.name) for s in open_[:5])
            raise TraceError(f"{len(open_)} unclosed span(s): {names}")
        groups: dict[str, list[Span]] = {}
        for s in self.spans:
            if s.domain == OPS_DOMAIN:
                groups.setdefault(s.actor, []).append(s)
        for actor, spans in groups.items():
            spans = sorted(spans, key=lambda s: (s.t0, -s.t1))
            stack: list[float] = []
            for s in spans:
                while stack and stack[-1] <= s.t0 + _EPS:
                    stack.pop()
                if stack and s.t1 > stack[-1] + _EPS:
                    raise TraceError(
                        f"span {s.name!r} [{s.t0}, {s.t1}) overlaps an earlier "
                        f"span on actor {actor!r} without nesting inside it"
                    )
                stack.append(s.t1)

    # -------------------------------------------------------------- #
    # export (delegates; see repro.obs.export)
    # -------------------------------------------------------------- #
    def to_chrome_trace(self) -> dict:
        from repro.obs.export import to_chrome_trace

        return to_chrome_trace(self)

    def write_chrome_trace(self, path) -> None:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(self, path)

    def write_jsonl(self, path) -> None:
        from repro.obs.export import write_spans_jsonl

        write_spans_jsonl(self, path)
