"""Multi-core parallel repair data plane.

The serial data plane decodes every admission wave on one core; for wide
stripes (k >= 64, GF(2^16)) that compute — the paper's Table II rows — is
what bounds wall-clock throughput, not the simulated network.  This
package overlaps it:

* :class:`WorkerPool` — a lazily-forked process pool decoding
  shared-memory planes (zero-copy NumPy views, per-worker pre-warmed GF
  LUTs, stripe-aligned column shards).
* :class:`ParallelRepairEngine` — the drop-in
  :class:`~repro.repair.batch.BatchRepairEngine` subclass whose plane
  matmul fans out over the pool; ``workers=1`` is bit-exact serial.
* :func:`pipeline_schedule` / :class:`PipelineReport` — the simulated-time
  model of chunk-level decode pipelining: stripes decode as their CR/IR
  flows land instead of at the wave barrier.

See ``docs/PARALLEL.md`` for the design and the bit-exactness contract.
"""

from .pool import (
    DEFAULT_MIN_PARALLEL_COLS,
    PoolStats,
    ShardStat,
    WorkerPool,
    resolve_workers,
    shard_bounds,
)
from .engine import ParallelRepairEngine
from .pipeline import PipelineReport, PipelineSlot, pipeline_schedule

__all__ = [
    "DEFAULT_MIN_PARALLEL_COLS",
    "ParallelRepairEngine",
    "PipelineReport",
    "PipelineSlot",
    "PoolStats",
    "ShardStat",
    "WorkerPool",
    "pipeline_schedule",
    "resolve_workers",
    "shard_bounds",
]
