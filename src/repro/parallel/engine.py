"""The pooled batch-repair engine: same math, many cores.

:class:`ParallelRepairEngine` is a :class:`repro.repair.batch.BatchRepairEngine`
whose GF plane matmul runs through a :class:`repro.parallel.pool.WorkerPool`
instead of inline.  Everything else — pattern grouping, plan caching,
per-stripe accounting, the batch spans — is inherited unchanged, so the
engine drops into every seam that accepts a ``BatchRepairEngine``
(``PlanExecutor.execute_batch``, ``Coordinator._dispatch_batched``, the
scheduler's wave dispatch).

Bit-exactness contract: each worker decodes its column shard with the very
kernel tier the serial engine selected (see :mod:`repro.gf.backend` — the
backend *name* rides the pool initializer across the fork boundary), and
every output column belongs to exactly one shard, so the pooled product
equals the serial product byte for byte — for any worker count, any
backend, healthy or mid-storm.  ``workers=1`` never touches a process at
all.

Observability (when an :class:`repro.obs.Observability` session is
attached): op-domain ``parallel`` spans per pooled kernel call, and the
``parallel.*`` metric series — shard counts, per-shard decode seconds,
queue depth, and worker utilization.
"""

from __future__ import annotations

import numpy as np

from repro.repair.batch import BatchRepairEngine, PlanCache
from repro.gf.field import GF

from .pool import DEFAULT_MIN_PARALLEL_COLS, ShardStat, WorkerPool


class ParallelRepairEngine(BatchRepairEngine):
    """Batch repair with the plane matmul sharded across worker processes.

    Parameters
    ----------
    code:
        The :class:`repro.ec.rs.RSCode` being repaired (fixes the field).
    cache / obs:
        Forwarded to :class:`~repro.repair.batch.BatchRepairEngine`.
    workers:
        Worker-process count; ``None`` means the machine's CPU count and
        ``1`` is the bit-exact serial fallback (no processes ever start).
    pool:
        An existing :class:`WorkerPool` to share between engines; the
        engine then does **not** own its lifetime.  Mutually exclusive
        with ``workers``/``min_parallel_cols``.
    min_parallel_cols:
        Planes narrower than this decode inline even with workers > 1.
    backend:
        Kernel-tier spec (name, :class:`~repro.gf.backend.KernelBackend`
        instance, or ``None`` for auto-selection), forwarded both to the
        serial base engine and to an owned pool so inline and pooled
        decodes run the same tier.  When sharing an external ``pool`` the
        pool's own spec wins for pooled shards.
    """

    def __init__(
        self,
        code,
        cache: PlanCache | None = None,
        obs=None,
        *,
        workers: int | None = None,
        pool: WorkerPool | None = None,
        min_parallel_cols: int = DEFAULT_MIN_PARALLEL_COLS,
        backend=None,
    ):
        super().__init__(code, cache=cache, obs=obs, backend=backend)
        if pool is not None and workers is not None:
            raise ValueError("pass either a pool or a workers count, not both")
        if pool is not None:
            self.pool = pool
            self._owns_pool = False
        else:
            self.pool = WorkerPool(
                workers=workers,
                min_parallel_cols=min_parallel_cols,
                backend=self.backend,
            )
            self._owns_pool = True

    @property
    def workers(self) -> int:
        return self.pool.workers

    # -------------------------------------------------------------- #
    # the single overridden seam
    # -------------------------------------------------------------- #
    def _plane_matmul(
        self, mat: np.ndarray, plane: np.ndarray, item_len: int | None = None
    ) -> np.ndarray:
        """Shard ``mat @ plane`` over the pool; account shards to obs."""
        field: GF = self.code.field
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.tracer.begin(
                "parallel:decode", actor="parallel-engine", cat="parallel",
                workers=self.pool.workers, cols=int(plane.shape[1]),
            )
        st0_dispatches = self.pool.stats.dispatches
        try:
            out, shards = self.pool.decode_plane(mat, plane, field, item_len)
        finally:
            if span is not None:
                obs.tracer.end(span)
        if obs is not None:
            pooled = self.pool.stats.dispatches > st0_dispatches
            self._record_metrics(shards, pooled)
        return out

    def _record_metrics(self, shards: list[ShardStat], pooled: bool) -> None:
        m = self.obs.metrics
        m.counter("parallel.calls").inc()
        if not pooled:
            m.counter("parallel.inline_calls").inc()
            return
        m.counter("parallel.dispatches").inc()
        m.counter("parallel.shards").inc(len(shards))
        hist = m.histogram("parallel.shard_seconds")
        for s in shards:
            hist.observe(s.seconds)
        m.gauge("parallel.queue_depth").set(len(shards))
        m.gauge("parallel.worker_utilization").set(
            self.pool.stats.utilization(self.pool.workers)
        )

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #
    def close(self) -> None:
        """Reap the worker processes if this engine owns them (idempotent)."""
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "ParallelRepairEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """Plan-cache stats plus the pool's dispatch/utilization accounting."""
        out = super().stats()
        st = self.pool.stats
        out.update(
            workers=self.pool.workers,
            pool_dispatches=st.dispatches,
            pool_inline_calls=st.inline_calls,
            pool_shards=st.shards,
            pool_busy_seconds=st.busy_seconds,
            pool_wall_seconds=st.wall_seconds,
            pool_utilization=st.utilization(self.pool.workers),
        )
        return out
