"""Chunk-level decode pipelining against simulated transfer completion.

The serial data plane is a *wave barrier*: every stripe's survivor flows
must finish (simulated time) before any decode output is considered
available, and decode itself runs as one block of compute.  The paper's
HMBR lineage (ECPipe's chunk pipelining, RepairBoost's repair-traffic
scheduling) argues for overlapping those phases instead: a stripe whose
CR/IR flows land early can decode while its wave-mates are still
transferring.

:func:`pipeline_schedule` is the deterministic model of that overlap — a
greedy earliest-free-lane list scheduler in *simulated seconds*.  Each item
(one stripe's decode) becomes ready when its flows finish in the fluid
simulation and costs its measured GF time rescaled to the modeled block
size; lanes are the pool's workers.  The result reports when each stripe's
repaired sub-blocks *land* under pipelining versus under the wave barrier,
which is exactly the number the coordinator attaches to a parallel
:class:`~repro.system.request.RepairResult` and exports as sim-domain
``parallel.decode`` spans.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineSlot:
    """One item's place in the pipelined decode schedule."""

    #: caller-side index (the coordinator uses the stripe id).
    item: int
    #: simulated instant the item's input flows completed.
    ready_s: float
    #: modeled decode cost in simulated seconds.
    cost_s: float
    #: when a lane picked the item up (>= ready_s).
    start_s: float
    #: when the repaired sub-blocks land.
    done_s: float
    #: which worker lane ran it.
    lane: int


@dataclass(frozen=True)
class PipelineReport:
    """The pipelined-vs-barrier comparison for one parallel dispatch."""

    slots: tuple[PipelineSlot, ...]
    workers: int
    #: last pipelined landing: decode overlapped with remaining transfers.
    makespan_s: float
    #: the serial-engine model: nothing decodes before the last flow lands.
    barrier_makespan_s: float

    @property
    def saved_s(self) -> float:
        """Simulated seconds the pipelining recovered from the barrier."""
        return max(self.barrier_makespan_s - self.makespan_s, 0.0)

    @property
    def landed_s(self) -> dict[int, float]:
        """Item -> pipelined landing instant."""
        return {s.item: s.done_s for s in self.slots}

    def __len__(self) -> int:
        return len(self.slots)


def pipeline_schedule(
    items: list[int],
    ready_s: list[float],
    cost_s: list[float],
    workers: int,
) -> PipelineReport:
    """List-schedule decode work over ``workers`` lanes as inputs land.

    Items are picked up in ready order (ties broken by caller order — the
    coordinator's sorted stripe ids — so the schedule is deterministic);
    each runs on the earliest-free lane no sooner than its ready time.  The
    barrier comparator schedules the *same* items on the same lanes but
    with every ready time clamped to the last one, which is what the
    non-pipelined engine effectively does.
    """
    if not (len(items) == len(ready_s) == len(cost_s)):
        raise ValueError("items, ready_s and cost_s must have equal length")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not items:
        return PipelineReport(slots=(), workers=workers, makespan_s=0.0,
                              barrier_makespan_s=0.0)
    for r, c in zip(ready_s, cost_s):
        if r < 0 or c < 0:
            raise ValueError("ready/cost times must be non-negative")

    def run(ready: list[float]) -> tuple[list[PipelineSlot], float]:
        order = sorted(range(len(items)), key=lambda i: (ready[i], i))
        lanes = [0.0] * workers
        slots: list[PipelineSlot] = [None] * len(items)  # type: ignore[list-item]
        for i in order:
            lane = min(range(workers), key=lambda L: (lanes[L], L))
            start = max(ready[i], lanes[lane])
            done = start + cost_s[i]
            lanes[lane] = done
            slots[i] = PipelineSlot(
                item=items[i], ready_s=ready[i], cost_s=cost_s[i],
                start_s=start, done_s=done, lane=lane,
            )
        return slots, max(s.done_s for s in slots)

    slots, makespan = run(list(ready_s))
    barrier = max(ready_s)
    _, barrier_makespan = run([barrier] * len(items))
    return PipelineReport(
        slots=tuple(slots),
        workers=workers,
        makespan_s=makespan,
        barrier_makespan_s=barrier_makespan,
    )
