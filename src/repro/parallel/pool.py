"""Process-pool substrate for the parallel repair data plane.

:class:`WorkerPool` owns a ``multiprocessing`` pool and the shared-memory
plumbing that lets workers decode *views* of the coordinator's stacked
survivor plane instead of pickled copies:

* the source plane and the output plane live in
  :class:`multiprocessing.shared_memory.SharedMemory` segments — workers
  attach zero-copy NumPy views and write their output columns in place, so
  the only bytes crossing the IPC pipe are shard descriptors (segment
  names, shapes, column ranges) and the small (f, k) decode matrix;
* each worker runs :func:`_worker_init` once at pool start, building the
  GF(2^w) field tables, re-resolving the parent's selected kernel backend
  by *name* (only the name crosses the fork boundary; see
  :mod:`repro.gf.backend`), and pre-warming that backend's multiply LUTs
  for the decode matrix's coefficients, so no worker pays
  table-construction cost on the decode path;
* shard boundaries are aligned to whole stripes (``item_len`` columns)
  whenever the caller says how wide a stripe is, keeping per-stripe output
  slices inside a single worker's range.

``workers=1`` is the **serial fallback**: no processes, no shared memory —
:meth:`WorkerPool.decode_plane` calls straight into the selected backend's
``plane_matmul``, which is the exact kernel the serial
:class:`~repro.repair.batch.BatchRepairEngine` runs, so the two paths are
bit-identical by construction (and asserted by the twin-system
differential tests).

The pool prefers the ``fork`` start method (workers inherit the parent's
already-built field tables; startup is ~30 ms) and falls back to the
platform default elsewhere.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field as dc_field
from multiprocessing import shared_memory

import numpy as np

from repro.gf.backend import KernelBackend, get_backend, resolve_backend, select_backend
from repro.gf.field import GF

#: planes narrower than this many columns decode inline even when the pool
#: has workers: forking + segment setup costs more than the kernel saves.
DEFAULT_MIN_PARALLEL_COLS = 1 << 12

#: the per-worker field singleton, installed by :func:`_worker_init`.
_WORKER_FIELD: GF | None = None
#: the per-worker kernel backend, resolved by name in :func:`_worker_init`
#: so every shard decodes through the same tier the parent selected.
_WORKER_BACKEND: KernelBackend | None = None


def resolve_workers(workers: int | None) -> int:
    """``None`` -> the machine's CPU count; always at least 1."""
    if workers is None:
        workers = os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _worker_init(w: int, coeffs: tuple[int, ...], backend_name: str | None = None) -> None:
    """Pool initializer: build GF(2^w), pick the kernel, pre-warm its LUTs.

    Runs once per worker process.  ``backend_name`` is the tier the parent
    selected — only the *name* crosses the fork/pickle boundary; the
    worker re-resolves it against its own registry (falling back to
    auto-selection if that tier cannot run here, e.g. a cached native
    build that fails to load).  Warming here means the first shard a
    worker decodes pays zero table-construction cost — the whole point of
    a long-lived pool over per-call processes.
    """
    global _WORKER_FIELD, _WORKER_BACKEND
    _WORKER_FIELD = GF(w)
    backend = None
    if backend_name is not None:
        try:
            candidate = get_backend(backend_name)
            if candidate.capabilities(w) and candidate.available():
                backend = candidate
        except Exception:  # noqa: BLE001 - fall through to auto-select
            backend = None
    if backend is None:
        backend = select_backend(w)
    _WORKER_BACKEND = backend
    backend.warm(_WORKER_FIELD, tuple(int(c) for c in coeffs))


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    On POSIX Pythons < 3.13 *attaching* also registers the segment with the
    resource tracker.  That is harmless here — but only because
    :meth:`WorkerPool._ensure_pool` starts the parent's tracker *before*
    the workers exist, so every worker inherits it and the attach-side
    registration collapses into the parent's own (the tracker keys by
    name); the parent's ``unlink`` then unregisters exactly once.  Without
    that ordering each worker would spawn a private tracker and warn about
    "leaked" segments it never owned at exit.
    """
    return shared_memory.SharedMemory(name=name)


def _decode_shard(
    in_name: str,
    out_name: str,
    w: int,
    f: int,
    k: int,
    n: int,
    mat_bytes: bytes,
    lo: int,
    hi: int,
) -> tuple[int, int, float]:
    """Worker body: decode output columns ``[lo, hi)`` of the shared plane.

    Attaches the input/output segments, multiplies its column range through
    the decode matrix with the kernel backend installed by
    :func:`_worker_init` (the very tier the serial engine would run, so
    pooled output equals serial output byte for byte), and writes the
    result into the shared output in place.  Returns ``(lo, hi, seconds)``
    for the parent's utilization accounting.
    """
    t0 = time.perf_counter()
    field = _WORKER_FIELD if _WORKER_FIELD is not None and _WORKER_FIELD.w == w else GF(w)
    backend = _WORKER_BACKEND
    if backend is None or not backend.capabilities(w):  # pragma: no cover - safety net
        backend = select_backend(w)
    shm_in = _attach(in_name)
    shm_out = _attach(out_name)
    try:
        mat = np.frombuffer(mat_bytes, dtype=field.dtype).reshape(f, k)
        plane = np.ndarray((k, n), dtype=field.dtype, buffer=shm_in.buf)
        out = np.ndarray((f, n), dtype=field.dtype, buffer=shm_out.buf)
        out[:, lo:hi] = backend.plane_matmul(mat, plane[:, lo:hi], field)
    finally:
        shm_in.close()
        shm_out.close()
    return lo, hi, time.perf_counter() - t0


def shard_bounds(n: int, shards: int, item_len: int | None = None) -> list[int]:
    """Column boundaries splitting ``[0, n)`` into at most ``shards`` ranges.

    With ``item_len`` (the per-stripe column width) boundaries snap to whole
    items, so a stripe never straddles two workers; without it they snap to
    even columns (safe for the pair-byte kernel, which maps each byte
    independently either way).  Returns an ascending boundary list
    ``[0, ..., n]`` with duplicates removed.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    unit = item_len if item_len else 2
    bounds = [0]
    for i in range(1, shards):
        cut = (n * i) // shards
        cut -= cut % unit
        if cut > bounds[-1]:
            bounds.append(cut)
    if n > bounds[-1]:
        bounds.append(n)
    return bounds


@dataclass(frozen=True)
class ShardStat:
    """One decode shard's accounting: its column range and wall seconds."""

    lo: int
    hi: int
    seconds: float

    @property
    def cols(self) -> int:
        return self.hi - self.lo


@dataclass
class PoolStats:
    """Lifetime accounting for one :class:`WorkerPool`."""

    #: decode calls that went through worker processes.
    dispatches: int = 0
    #: decode calls served inline (serial fallback / small planes).
    inline_calls: int = 0
    #: total shards handed to workers.
    shards: int = 0
    #: sum of per-shard decode wall seconds (worker-side busy time).
    busy_seconds: float = 0.0
    #: parent-side wall seconds spent inside pooled decodes.
    wall_seconds: float = 0.0
    #: deepest shard queue a single decode call produced.
    max_queue_depth: int = 0
    per_shard_seconds: list[float] = dc_field(default_factory=list)

    def utilization(self, workers: int) -> float:
        """Busy worker-seconds over available worker-seconds (0..1-ish)."""
        if self.wall_seconds <= 0.0 or workers < 1:
            return 0.0
        return self.busy_seconds / (self.wall_seconds * workers)


class WorkerPool:
    """A lazily-started process pool that decodes shared-memory planes.

    One pool serves many decode calls (and many pattern groups): the first
    pooled call forks the workers and warms their LUTs; later calls reuse
    them.  The pool re-initializes itself transparently if a caller switches
    fields (w=8 vs w=16).  Use as a context manager — or call
    :meth:`close` — to reap the workers deterministically; an unclosed pool
    is still safe (daemonic workers die with the parent).
    """

    def __init__(
        self,
        workers: int | None = None,
        min_parallel_cols: int = DEFAULT_MIN_PARALLEL_COLS,
        start_method: str | None = None,
        backend: str | KernelBackend | None = None,
    ):
        self.workers = resolve_workers(workers)
        self.min_parallel_cols = int(min_parallel_cols)
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else None
        self.start_method = start_method
        #: the kernel-tier *spec* (name, instance, or None for auto); the
        #: live backend is resolved per field in :meth:`_backend_for`.
        self.backend_spec = backend
        self.stats = PoolStats()
        self._pool = None
        self._pool_w: int | None = None
        self._pool_backend: str | None = None
        self._warmed: set[int] = set()

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #
    def _backend_for(self, field: GF) -> KernelBackend:
        """The kernel backend this pool runs for ``field``.

        Resolution happens per call (not once at construction) because one
        pool may serve both GF(2^8) and GF(2^16) planes and the best tier
        can differ between them (e.g. ISA-L covers only w=8).
        """
        return resolve_backend(self.backend_spec, field)

    def _ensure_pool(self, field: GF, coeffs: tuple[int, ...], backend: KernelBackend):
        """The live pool for ``field``/``backend``, (re)forking if needed."""
        if (
            self._pool is not None
            and self._pool_w == field.w
            and self._pool_backend == backend.name
        ):
            return self._pool
        self.close()
        try:  # pragma: no cover - absent on Windows
            from multiprocessing import resource_tracker

            # The workers must inherit the parent's resource tracker (see
            # _attach); start it before they exist.
            resource_tracker.ensure_running()
        except (ImportError, AttributeError):
            pass
        ctx = mp.get_context(self.start_method)
        # Warm the parent-side tables *before* forking so fork-start
        # workers inherit them and the initializer's warmup is a no-op hit.
        backend.warm(field, coeffs)
        self._pool = ctx.Pool(
            self.workers,
            initializer=_worker_init,
            initargs=(field.w, tuple(coeffs), backend.name),
        )
        self._pool_w = field.w
        self._pool_backend = backend.name
        self._warmed = {int(c) for c in coeffs}
        return self._pool

    def close(self) -> None:
        """Terminate the worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_w = None
            self._pool_backend = None
            self._warmed = set()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    # -------------------------------------------------------------- #
    # the decode entry point
    # -------------------------------------------------------------- #
    def decode_plane(
        self,
        mat: np.ndarray,
        plane: np.ndarray,
        field: GF,
        item_len: int | None = None,
    ) -> tuple[np.ndarray, list[ShardStat]]:
        """``mat @ plane`` over GF(2^w), sharded across the pool's workers.

        Bit-exact with :func:`repro.gf.batch.gf_plane_matmul` for every
        worker count: each output column is produced by exactly one worker
        running exactly that kernel.  Returns the (f, n) product plus the
        per-shard timing stats.  Serial fallback (``workers=1``) and planes
        below :attr:`min_parallel_cols` never touch a process.
        """
        mat = np.asarray(mat, dtype=field.dtype)
        plane = np.asarray(plane, dtype=field.dtype)
        if mat.ndim != 2 or plane.ndim != 2 or mat.shape[1] != plane.shape[0]:
            raise ValueError(f"incompatible shapes {mat.shape} x {plane.shape}")
        f, k = mat.shape
        n = plane.shape[1]
        backend = self._backend_for(field)
        if self.workers <= 1 or n < self.min_parallel_cols or n == 0:
            t0 = time.perf_counter()
            out = backend.plane_matmul(mat, plane, field)
            dt = time.perf_counter() - t0
            self.stats.inline_calls += 1
            return out, [ShardStat(0, n, dt)]

        coeffs = tuple(sorted({int(c) for c in mat.ravel() if int(c) > 1}))
        pool = self._ensure_pool(field, coeffs, backend)
        missing = [c for c in coeffs if c not in self._warmed]
        if missing:
            # New decode matrix since the workers were forked: warm its
            # LUTs once in every worker rather than on each one's first
            # shard (run one tiny job per worker to reach them all).
            pool.starmap(
                _worker_init, [(field.w, tuple(missing), backend.name)] * self.workers
            )
            self._warmed.update(missing)

        itemsize = field.dtype().itemsize
        bounds = shard_bounds(n, self.workers, item_len)
        t0 = time.perf_counter()
        shm_in = shared_memory.SharedMemory(create=True, size=plane.size * itemsize)
        shm_out = shared_memory.SharedMemory(create=True, size=f * n * itemsize)
        try:
            src = np.ndarray((k, n), dtype=field.dtype, buffer=shm_in.buf)
            src[:] = plane
            mat_bytes = mat.tobytes()
            jobs = [
                (shm_in.name, shm_out.name, field.w, f, k, n, mat_bytes, lo, hi)
                for lo, hi in zip(bounds, bounds[1:])
            ]
            results = pool.starmap(_decode_shard, jobs)
            out = np.ndarray((f, n), dtype=field.dtype, buffer=shm_out.buf).copy()
        finally:
            shm_in.close()
            shm_in.unlink()
            shm_out.close()
            shm_out.unlink()
        wall = time.perf_counter() - t0
        shard_stats = [ShardStat(lo, hi, dt) for lo, hi, dt in results]
        st = self.stats
        st.dispatches += 1
        st.shards += len(shard_stats)
        st.busy_seconds += sum(s.seconds for s in shard_stats)
        st.wall_seconds += wall
        st.max_queue_depth = max(st.max_queue_depth, len(shard_stats))
        st.per_shard_seconds.extend(s.seconds for s in shard_stats)
        return out, shard_stats

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = "live" if self._pool is not None else "cold"
        return f"WorkerPool(workers={self.workers}, {state})"
