"""Macro-scale durability simulation driven by the real repair engines.

``repro.reliability`` answers the question the paper's repair-speed plots
imply but never state: *how many nines does faster multi-block repair buy?*
A seeded event-driven simulator (:class:`ReliabilitySimulator`) advances
simulated years over up to millions of stripes — Weibull component
lifetimes, correlated rack/power-outage bursts, latent sector errors with
periodic scrubbing — and every repair duration is derived from the actual
CR / IR / HMBR engines through the **stripe-metadata-only fast path**
(:meth:`repro.system.Coordinator.plan_repair`), never a constant MTTR.

Layers:

* :mod:`~repro.reliability.lifetimes` — Weibull models and per-component
  common-random-number substreams;
* :mod:`~repro.reliability.events` — the deterministic, invariant-checked
  event queue;
* :mod:`~repro.reliability.timing` — the repair-duration oracle
  (calibrated fits over fast-path fluid solves, or exact per-event twins);
* :mod:`~repro.reliability.simulator` — specs, trials, and the aggregated
  :class:`ReliabilityReport` (MTTDL, P(loss by year t) with Wilson CIs,
  durability nines).

Use :meth:`repro.system.Coordinator.simulate_years` to inherit a live
system's code shape, or build a :class:`ReliabilitySpec` directly.  See
``docs/RELIABILITY.md`` for the model and the HMBR-vs-CR nines results.
"""

from repro.reliability.events import EVENT_KINDS, Event, EventQueue
from repro.reliability.lifetimes import (
    ComponentLifetimes,
    Weibull,
    exponential_interval_hours,
)
from repro.reliability.simulator import (
    HOURS_PER_YEAR,
    ReliabilityReport,
    ReliabilitySimulator,
    ReliabilitySpec,
    TrialResult,
    sample_placements,
    wilson_interval,
)
from repro.reliability.timing import RepairTimingModel, build_twin

__all__ = [
    "ComponentLifetimes",
    "Event",
    "EventQueue",
    "EVENT_KINDS",
    "exponential_interval_hours",
    "HOURS_PER_YEAR",
    "ReliabilityReport",
    "ReliabilitySimulator",
    "ReliabilitySpec",
    "RepairTimingModel",
    "TrialResult",
    "Weibull",
    "build_twin",
    "sample_placements",
    "wilson_interval",
]
