"""The durability simulator's event queue.

A thin heap wrapper with the invariants the property suite pins:

* **monotone time** — :meth:`EventQueue.pop` never goes backwards; a
  violation raises immediately instead of silently corrupting a trial;
* **deterministic tie-break** — events at equal times pop in push order
  (a monotone sequence number is part of the heap key), so a trial's event
  stream is a pure function of its seed;
* **no lost events** — push/pop counters let tests assert conservation.

Event kinds are plain strings so logs stay JSON-friendly for goldens and
chaos-replay diffs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

#: a single node's lifetime expired.
FAIL = "fail"
#: a correlated rack/power-outage burst strikes one rack.
BURST = "burst"
#: a repair (node reconstruction onto a spare) started — log-only marker.
REPAIR_START = "repair-start"
#: a previously-scheduled repair completed; the node rejoins.
REPAIR_DONE = "repair-done"
#: a latent sector error silently corrupts one block.
LSE = "lse"
#: periodic scrub pass clears every detected-able latent error.
SCRUB = "scrub"
#: a stripe crossed > m concurrent losses — log-only marker.
LOSS = "loss"

EVENT_KINDS = (FAIL, BURST, REPAIR_START, REPAIR_DONE, LSE, SCRUB, LOSS)


@dataclass(frozen=True, slots=True)
class Event:
    """One popped event: simulated hour, kind, and its target ids.

    ``node`` is the affected node (or rack for bursts, -1 when N/A);
    ``eid`` identifies a repair in flight (ties ``repair-done`` back to its
    scheduling); ``gen`` is the failure-generation stamp used to invalidate
    a node's pending FAIL when a burst kills it first.
    """

    time_h: float
    kind: str
    node: int = -1
    eid: int = -1
    gen: int = -1


class EventQueue:
    """Deterministic min-heap of :class:`Event` with a monotonicity guard."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, str, int, int, int]] = []
        self._seq = 0
        self.pushes = 0
        self.pops = 0
        self.last_popped_h = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self, time_h: float, kind: str, node: int = -1, eid: int = -1, gen: int = -1
    ) -> None:
        """Schedule ``kind`` at ``time_h`` (must be finite and >= 0)."""
        if not math.isfinite(time_h) or time_h < 0:
            raise ValueError(f"bad event time {time_h!r} for {kind!r}")
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        heapq.heappush(self._heap, (time_h, self._seq, kind, node, eid, gen))
        self._seq += 1
        self.pushes += 1

    def peek_time(self) -> float:
        """Earliest scheduled time (IndexError on empty)."""
        return self._heap[0][0]

    def pop(self) -> Event:
        """Earliest event; raises if simulated time would move backwards."""
        time_h, _, kind, node, eid, gen = heapq.heappop(self._heap)
        if time_h < self.last_popped_h:
            raise RuntimeError(
                f"event queue time went backwards: {time_h} < {self.last_popped_h}"
            )
        self.last_popped_h = time_h
        self.pops += 1
        return Event(time_h, kind, node, eid, gen)
