"""Component lifetime models for the durability simulator.

Disk/node lifetimes follow a Weibull distribution (the PR-SIM tradition:
shape > 1 models wear-out, shape = 1 degenerates to the exponential
memoryless model the Markov MTTDL math assumes).  The key engineering
constraint is **common random numbers**: comparing CR / IR / HMBR on the
same seed must expose every scheme to the *identical* failure history, so
the only difference between runs is how fast repairs close the window of
vulnerability.  :class:`ComponentLifetimes` therefore gives every component
its own independent substream (via :class:`numpy.random.SeedSequence`
spawning, which is stable across processes and platforms): the i-th
lifetime drawn for component j is a pure function of ``(seed, j, i)``,
regardless of *when* the simulator asks for it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Weibull:
    """Weibull lifetime model parameterized by shape and mean (MTTF).

    Parameterizing by the mean rather than the scale keeps specs readable
    ("10-year MTTF, shape 1.12") and makes the shape a pure wear-out knob:
    changing it never changes the expected lifetime.  ``shape == 1`` is the
    exponential distribution exactly.
    """

    shape: float
    mttf_hours: float

    def __post_init__(self) -> None:
        if self.shape <= 0:
            raise ValueError(f"Weibull shape must be > 0, got {self.shape}")
        if self.mttf_hours <= 0:
            raise ValueError(f"MTTF must be > 0, got {self.mttf_hours}")

    @property
    def scale_hours(self) -> float:
        """The Weibull scale λ with mean ``mttf_hours``: λ = MTTF / Γ(1+1/k)."""
        return self.mttf_hours / math.gamma(1.0 + 1.0 / self.shape)

    def mean_hours(self) -> float:
        """Closed-form mean (== ``mttf_hours`` by construction)."""
        return self.mttf_hours

    def var_hours2(self) -> float:
        """Closed-form variance: λ²·(Γ(1+2/k) − Γ(1+1/k)²)."""
        lam = self.scale_hours
        k = self.shape
        return lam * lam * (
            math.gamma(1.0 + 2.0 / k) - math.gamma(1.0 + 1.0 / k) ** 2
        )

    def sample(self, rng: np.random.Generator, size=None):
        """Draw lifetimes in hours (float scalar when ``size`` is None)."""
        draw = self.scale_hours * rng.weibull(self.shape, size=size)
        return float(draw) if size is None else draw


def exponential_interval_hours(rng: np.random.Generator, rate_per_hour: float) -> float:
    """One exponential inter-arrival gap for a Poisson process."""
    if rate_per_hour <= 0:
        raise ValueError(f"rate must be > 0, got {rate_per_hour}")
    return float(rng.exponential(1.0 / rate_per_hour))


class ComponentLifetimes:
    """Per-component independent lifetime substreams.

    Every component gets its own :class:`numpy.random.Generator` spawned
    from one seed, so lifetime draws for different components never share a
    stream: the i-th draw for component j is a deterministic function of
    ``(seed, j, i)``.  This is what makes cross-scheme comparisons use
    common random numbers — a scheme that repairs faster revives a node
    earlier, but the node's *next* lifetime is the same draw either way.
    """

    def __init__(self, seed, n_components: int, model: Weibull):
        if n_components <= 0:
            raise ValueError(f"need >= 1 component, got {n_components}")
        ss = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        self.model = model
        self._rngs = [np.random.default_rng(s) for s in ss.spawn(n_components)]
        #: number of lifetimes drawn per component (the substream position).
        self.draws = [0] * n_components

    def __len__(self) -> int:
        return len(self._rngs)

    def next_lifetime_hours(self, component: int) -> float:
        """The component's next lifetime draw (advances its substream)."""
        self.draws[component] += 1
        return self.model.sample(self._rngs[component])
