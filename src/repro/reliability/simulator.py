"""Seeded event-driven durability simulator over millions of stripes.

The paper's claim that multi-block repair "boosts" wide stripes is, at
bottom, a durability claim: faster repair closes the window of
vulnerability, so fewer stripes ever see ``> m`` concurrent losses.  This
module advances simulated decades over a macro cluster — Weibull node
lifetimes, correlated rack/power-outage bursts, latent sector errors with
periodic scrubbing — and every repair duration comes from the **actual
repair engines** via :class:`~repro.reliability.timing.RepairTimingModel`
(the metadata-only fast path), never a constant MTTR.

Cross-scheme comparisons use common random numbers: the failure history of
a trial is a pure function of ``(seed, trial)`` and never of the scheme, so
a scheme only distinguishes itself by how fast it repairs.

Entry points: :class:`ReliabilitySpec` → :class:`ReliabilitySimulator.run`
→ :class:`ReliabilityReport` (or the
:meth:`repro.system.Coordinator.simulate_years` facade, which inherits the
code shape).  See ``docs/RELIABILITY.md``.
"""

from __future__ import annotations

import collections
import math
from dataclasses import dataclass, field

import numpy as np

from repro.reliability.events import (
    BURST,
    FAIL,
    LSE,
    REPAIR_DONE,
    SCRUB,
    EventQueue,
)
from repro.reliability.lifetimes import ComponentLifetimes, Weibull
from repro.reliability.timing import RepairTimingModel

#: one year of simulated time, matching :mod:`repro.analysis.reliability`.
HOURS_PER_YEAR = 24 * 365.25

#: at most this many loss records / logged events are kept per trial.
_LOSS_RECORD_CAP = 1000
_EVENT_LOG_CAP = 200_000


def wilson_interval(successes: int, n: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Behaves sensibly at the extremes (0 or n successes give non-degenerate
    bounds), which is exactly what durability estimation needs: a scheme
    with *zero* observed losses still gets a finite upper bound on its loss
    probability, so "nines" stay comparable across schemes.
    """
    if n <= 0:
        return (0.0, 1.0)
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return (max(0.0, center - half), min(1.0, center + half))


def sample_placements(
    rng: np.random.Generator, n_stripes: int, width: int, n_nodes: int
) -> np.ndarray:
    """Uniform distinct-node placements, chunked for millions of stripes.

    Returns an ``(n_stripes, width)`` int32 array; each row is a sorted
    ``width``-subset of ``range(n_nodes)``.  Drawn via argpartition of a
    random matrix — one vectorized pass per 64k-stripe chunk instead of a
    Python loop over stripes.
    """
    if width > n_nodes:
        raise ValueError(f"stripe width {width} exceeds cluster size {n_nodes}")
    out = np.empty((n_stripes, width), dtype=np.int32)
    chunk = 1 << 16
    for lo in range(0, n_stripes, chunk):
        hi = min(lo + chunk, n_stripes)
        keys = rng.random((hi - lo, n_nodes))
        part = np.argpartition(keys, width - 1, axis=1)[:, :width]
        out[lo:hi] = np.sort(part, axis=1)
    return out


def _node_rows(placement: np.ndarray, n_nodes: int) -> list[np.ndarray]:
    """CSR-style map node -> ascending stripe rows holding a block on it."""
    n_stripes, width = placement.shape
    flat = placement.ravel()
    order = np.argsort(flat, kind="stable")
    rows = (order // width).astype(np.int64)
    starts = np.searchsorted(flat[order], np.arange(n_nodes + 1))
    return [rows[starts[i] : starts[i + 1]] for i in range(n_nodes)]


@dataclass(frozen=True)
class ReliabilitySpec:
    """Everything a durability run depends on, in one frozen record.

    ``k`` / ``m`` / ``block_size_mb`` may be left ``None`` when going
    through :meth:`repro.system.Coordinator.simulate_years`, which fills
    them from the live system's code shape.  ``timing`` selects the repair
    duration oracle: ``"calibrated"`` (fit to fast-path fluid solves, macro
    scale) or ``"exact"`` (a per-event metadata twin; with ``materialize``
    the twin holds real bytes — small clusters only, used by the
    differential suite).
    """

    k: int | None = None
    m: int | None = None
    scheme: str = "hmbr"
    n_nodes: int = 40
    rack_size: int = 8
    n_spares: int = 8
    bandwidth_mbps: float = 100.0
    n_stripes: int = 10_000
    block_size_mb: float | None = 64.0
    node_mttf_hours: float = 10.0 * HOURS_PER_YEAR
    weibull_shape: float = 1.12
    burst_rate_per_year: float = 4.0
    burst_loss_fraction: float = 0.25
    lse_rate_per_node_year: float = 0.0
    scrub_interval_hours: float = 336.0
    detection_delay_hours: float = 0.1
    horizon_years: float = 10.0
    n_trials: int = 10
    seed: int = 20230717
    timing: str = "calibrated"
    materialize: bool = False
    twin_stripe_cap: int = 64
    twin_block_bytes: int = 512
    record_events: bool = False
    check_invariants: bool = False

    def __post_init__(self) -> None:
        if self.timing not in ("calibrated", "exact"):
            raise ValueError(f"timing must be 'calibrated' or 'exact', got {self.timing!r}")
        if self.materialize and self.timing != "exact":
            raise ValueError("materialize=True requires timing='exact'")
        if self.k is not None and self.k <= 0:
            raise ValueError(f"k must be > 0, got {self.k}")
        if self.m is not None and self.m <= 0:
            raise ValueError(f"m must be > 0, got {self.m}")
        if self.k is not None and self.m is not None and self.k + self.m > self.n_nodes:
            raise ValueError(
                f"stripe width {self.k + self.m} exceeds n_nodes={self.n_nodes}"
            )
        if self.n_nodes <= 0 or self.rack_size <= 0:
            raise ValueError("n_nodes and rack_size must be > 0")
        if self.n_spares <= 0:
            raise ValueError(f"need >= 1 spare, got {self.n_spares}")
        if self.n_stripes <= 0 or self.n_trials <= 0:
            raise ValueError("n_stripes and n_trials must be > 0")
        if self.horizon_years <= 0:
            raise ValueError(f"horizon must be > 0 years, got {self.horizon_years}")
        if self.node_mttf_hours <= 0 or self.weibull_shape <= 0:
            raise ValueError("node_mttf_hours and weibull_shape must be > 0")
        if not 0.0 < self.burst_loss_fraction <= 1.0:
            raise ValueError(
                f"burst_loss_fraction must be in (0, 1], got {self.burst_loss_fraction}"
            )
        if self.burst_rate_per_year < 0 or self.lse_rate_per_node_year < 0:
            raise ValueError("event rates must be >= 0")
        if self.detection_delay_hours < 0:
            raise ValueError("detection delay must be >= 0")

    @property
    def width(self) -> int:
        """Stripe width ``k + m`` (requires both set)."""
        return self.k + self.m

    @property
    def horizon_hours(self) -> float:
        """Trial horizon in simulated hours."""
        return self.horizon_years * HOURS_PER_YEAR


@dataclass
class TrialResult:
    """One seeded trial's outcome (a pure function of ``(spec, trial)``)."""

    trial: int
    first_loss_year: float | None
    stripes_lost: int
    n_failures: int
    n_bursts: int
    n_lse: int
    n_scrubs: int
    n_repairs: int
    max_concurrent_repairs: int
    max_spares_in_use: int
    #: first :data:`_LOSS_RECORD_CAP` losses as (time_h, stripe, concurrent).
    loss_records: list[tuple[float, int, int]] = field(default_factory=list)
    #: full (time_h, kind, node) stream when ``spec.record_events`` (capped).
    event_log: list[tuple[float, str, int]] | None = None


@dataclass
class ReliabilityReport:
    """Aggregated durability estimates over independent seeded trials."""

    spec: ReliabilitySpec
    trials: list[TrialResult]
    #: year grid for the loss curve (1, 2, ..., horizon).
    years: list[float]
    #: P(any data loss by year t) per grid point, with Wilson 95% CIs.
    p_loss: list[float]
    p_loss_lo: list[float]
    p_loss_hi: list[float]
    #: observed-years / loss-events estimate; ``None`` with zero losses.
    mttdl_years: float | None
    #: lost stripes over all exposed stripe-years' worth of stripes.
    stripe_loss_rate: float
    #: -log10 of the Wilson *upper* bound on stripe loss probability —
    #: finite even at zero observed losses, so schemes stay comparable.
    durability_nines: float
    #: every engine calibration point the timing model measured.
    calibration: list[dict]

    def nines(self) -> float:
        """Durability nines (see :attr:`durability_nines`)."""
        return self.durability_nines

    def summary(self) -> dict:
        """Canonical JSON-friendly digest (goldens, bench artifacts)."""
        return {
            "scheme": self.spec.scheme,
            "k": self.spec.k,
            "m": self.spec.m,
            "n_nodes": self.spec.n_nodes,
            "n_stripes": self.spec.n_stripes,
            "n_trials": self.spec.n_trials,
            "horizon_years": self.spec.horizon_years,
            "seed": self.spec.seed,
            "timing": self.spec.timing,
            "years": list(self.years),
            "p_loss": list(self.p_loss),
            "p_loss_lo": list(self.p_loss_lo),
            "p_loss_hi": list(self.p_loss_hi),
            "mttdl_years": self.mttdl_years,
            "stripe_loss_rate": self.stripe_loss_rate,
            "durability_nines": self.durability_nines,
            "stripes_lost_total": sum(t.stripes_lost for t in self.trials),
            "failures_total": sum(t.n_failures for t in self.trials),
            "repairs_total": sum(t.n_repairs for t in self.trials),
        }


class ReliabilitySimulator:
    """Run :class:`ReliabilitySpec` trials and aggregate a report.

    Per trial, four independent substreams are spawned from
    ``SeedSequence([spec.seed, trial])`` — placement, lifetimes, bursts,
    latent errors — so every stochastic ingredient is reproducible in
    isolation and the failure history is scheme-independent (common random
    numbers).  Repair durations come from ``timing`` (shared across trials,
    so engine calibration is paid once).
    """

    def __init__(self, spec: ReliabilitySpec, obs=None) -> None:
        if spec.k is None or spec.m is None:
            raise ValueError(
                "spec.k and spec.m must be set (or go through "
                "Coordinator.simulate_years, which fills them)"
            )
        if spec.block_size_mb is None:
            raise ValueError("spec.block_size_mb must be set")
        self.spec = spec
        self.obs = obs
        self.timing = RepairTimingModel(spec)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def run(self) -> ReliabilityReport:
        """All trials → :class:`ReliabilityReport`."""
        spec = self.spec
        obs = self.obs
        root = None
        if obs is not None:
            root = obs.tracer.begin(
                "reliability.simulate", actor="coordinator", cat="reliability",
                scheme=spec.scheme, n_trials=spec.n_trials,
                n_stripes=spec.n_stripes, horizon_years=spec.horizon_years,
            )
        try:
            trials = [self.run_trial(t) for t in range(spec.n_trials)]
        finally:
            if root is not None:
                obs.tracer.unwind(root)

        years = [float(y) for y in range(1, int(math.ceil(spec.horizon_years)) + 1)]
        if years and years[-1] > spec.horizon_years:
            years[-1] = float(spec.horizon_years)
        p_loss, p_lo, p_hi = [], [], []
        for y in years:
            lost = sum(
                1 for t in trials
                if t.first_loss_year is not None and t.first_loss_year <= y
            )
            lo, hi = wilson_interval(lost, spec.n_trials)
            p_loss.append(lost / spec.n_trials)
            p_lo.append(lo)
            p_hi.append(hi)

        n_losses = sum(1 for t in trials if t.first_loss_year is not None)
        observed_years = sum(
            t.first_loss_year if t.first_loss_year is not None else spec.horizon_years
            for t in trials
        )
        mttdl = observed_years / n_losses if n_losses else None
        stripes_lost = sum(t.stripes_lost for t in trials)
        exposure = spec.n_trials * spec.n_stripes
        _, p_ub = wilson_interval(stripes_lost, exposure)
        report = ReliabilityReport(
            spec=spec,
            trials=trials,
            years=years,
            p_loss=p_loss,
            p_loss_lo=p_lo,
            p_loss_hi=p_hi,
            mttdl_years=mttdl,
            stripe_loss_rate=stripes_lost / exposure,
            durability_nines=-math.log10(max(p_ub, 1e-300)),
            calibration=self.timing.calibration_rows(),
        )
        if obs is not None:
            m = obs.metrics
            m.counter("reliability.trials").inc(spec.n_trials)
            m.counter("reliability.losses").inc(n_losses)
            m.counter("reliability.stripes_lost").inc(stripes_lost)
            m.gauge("reliability.durability_nines").set(report.durability_nines)
            if mttdl is not None:
                m.gauge("reliability.mttdl_years").set(mttdl)
        return report

    # ------------------------------------------------------------------ #
    # one trial
    # ------------------------------------------------------------------ #
    def run_trial(self, trial: int) -> TrialResult:
        """One seeded trial of ``horizon_years`` simulated years."""
        spec = self.spec
        ss_place, ss_life, ss_burst, ss_lse = np.random.SeedSequence(
            [spec.seed, trial]
        ).spawn(4)
        rng_place = np.random.default_rng(ss_place)
        rng_burst = np.random.default_rng(ss_burst)
        rng_lse = np.random.default_rng(ss_lse)
        lifetimes = ComponentLifetimes(
            ss_life,
            spec.n_nodes,
            Weibull(spec.weibull_shape, spec.node_mttf_hours),
        )

        width = spec.width
        placement = sample_placements(rng_place, spec.n_stripes, width, spec.n_nodes)
        node_rows = _node_rows(placement, spec.n_nodes)

        failed = np.zeros(spec.n_stripes, dtype=np.int16)
        latent = np.zeros(spec.n_stripes, dtype=np.int16)
        lost = np.zeros(spec.n_stripes, dtype=bool)
        alive = np.ones(spec.n_nodes, dtype=bool)
        gen = [0] * spec.n_nodes

        q = EventQueue()
        horizon_h = spec.horizon_hours
        for node in range(spec.n_nodes):
            q.push(lifetimes.next_lifetime_hours(node), FAIL, node=node, gen=0)
        burst_rate_h = spec.burst_rate_per_year / HOURS_PER_YEAR
        if burst_rate_h > 0:
            q.push(float(rng_burst.exponential(1.0 / burst_rate_h)), BURST)
        lse_rate_h = spec.n_nodes * spec.lse_rate_per_node_year / HOURS_PER_YEAR
        if lse_rate_h > 0:
            q.push(float(rng_lse.exponential(1.0 / lse_rate_h)), LSE)
            if spec.scrub_interval_hours > 0:
                q.push(spec.scrub_interval_hours, SCRUB)

        spares_free = spec.n_spares
        wait_q: collections.deque[int] = collections.deque()
        in_flight: dict[int, int] = {}
        next_eid = 0
        res = TrialResult(
            trial, None, 0, 0, 0, 0, 0, 0, 0, 0,
            event_log=[] if spec.record_events else None,
        )
        n_racks = (spec.n_nodes + spec.rack_size - 1) // spec.rack_size

        def log(time_h: float, kind: str, node: int) -> None:
            if res.event_log is not None and len(res.event_log) < _EVENT_LOG_CAP:
                res.event_log.append((time_h, kind, node))

        def record_loss(time_h: float, rows: np.ndarray, combined: np.ndarray) -> None:
            for row, c in zip(rows.tolist(), combined.tolist()):
                res.stripes_lost += 1
                if res.first_loss_year is None:
                    res.first_loss_year = time_h / HOURS_PER_YEAR
                if len(res.loss_records) < _LOSS_RECORD_CAP:
                    res.loss_records.append((time_h, int(row), int(c)))
                log(time_h, "loss", int(row))

        def check_losses(time_h: float, rows: np.ndarray) -> None:
            if len(rows) == 0:
                return
            combined = failed[rows] + latent[rows]
            bad = combined > spec.m
            if bad.any():
                newly = rows[bad]
                lost[newly] = True
                record_loss(time_h, newly, combined[bad])

        def start_repair(time_h: float, node: int) -> None:
            nonlocal spares_free, next_eid
            spares_free -= 1
            eid = next_eid
            next_eid += 1
            in_flight[eid] = node
            c = len(in_flight)
            res.n_repairs += 1
            res.max_concurrent_repairs = max(res.max_concurrent_repairs, c)
            res.max_spares_in_use = max(
                res.max_spares_in_use, spec.n_spares - spares_free
            )
            rows = node_rows[node]
            live = rows[~lost[rows]]
            if len(live) == 0:
                dur_s = 0.0
            elif spec.timing == "exact":
                dur_s = self._exact_duration_s(placement, live, alive, c)
            else:
                f_eff = min(int(failed[live].max()), spec.m)
                dur_s = self.timing.duration_s(spec.scheme, f_eff, len(live), c)
            q.push(
                time_h + spec.detection_delay_hours + dur_s / 3600.0,
                REPAIR_DONE,
                node=node,
                eid=eid,
            )
            log(time_h, "repair-start", node)

        def kill(time_h: float, node: int) -> None:
            alive[node] = False
            gen[node] += 1
            res.n_failures += 1
            rows = node_rows[node]
            live = rows[~lost[rows]]
            failed[live] += 1
            check_losses(time_h, live)
            log(time_h, "fail", node)
            if spares_free > 0:
                start_repair(time_h, node)
            else:
                wait_q.append(node)

        while len(q) and q.peek_time() <= horizon_h:
            ev = q.pop()
            if ev.kind == FAIL:
                # stale if the node died another way (burst) since scheduling
                if alive[ev.node] and ev.gen == gen[ev.node]:
                    kill(ev.time_h, ev.node)
            elif ev.kind == BURST:
                res.n_bursts += 1
                rack = int(rng_burst.integers(n_racks))
                lo, hi = rack * spec.rack_size, min((rack + 1) * spec.rack_size, spec.n_nodes)
                victims = [n for n in range(lo, hi) if alive[n]]
                n_kill = min(
                    len(victims),
                    max(1, int(round(spec.burst_loss_fraction * spec.rack_size))),
                )
                if n_kill:
                    picks = rng_burst.choice(len(victims), size=n_kill, replace=False)
                    for i in sorted(int(p) for p in picks):
                        kill(ev.time_h, victims[i])
                log(ev.time_h, "burst", rack)
                q.push(
                    ev.time_h + float(rng_burst.exponential(1.0 / burst_rate_h)), BURST
                )
            elif ev.kind == REPAIR_DONE:
                node = in_flight.pop(ev.eid)
                rows = node_rows[node]
                live = rows[~lost[rows]]
                failed[live] -= 1
                alive[node] = True
                q.push(
                    ev.time_h + lifetimes.next_lifetime_hours(node),
                    FAIL,
                    node=node,
                    gen=gen[node],
                )
                spares_free += 1
                log(ev.time_h, "repair-done", node)
                if wait_q:
                    start_repair(ev.time_h, wait_q.popleft())
            elif ev.kind == LSE:
                res.n_lse += 1
                node = int(rng_lse.integers(spec.n_nodes))
                rows = node_rows[node]
                if len(rows):
                    row = int(rows[int(rng_lse.integers(len(rows)))])
                    if not lost[row]:
                        latent[row] += 1
                        check_losses(ev.time_h, np.asarray([row]))
                log(ev.time_h, "lse", node)
                q.push(ev.time_h + float(rng_lse.exponential(1.0 / lse_rate_h)), LSE)
            elif ev.kind == SCRUB:
                res.n_scrubs += 1
                latent[~lost] = 0
                log(ev.time_h, "scrub", -1)
                q.push(ev.time_h + spec.scrub_interval_hours, SCRUB)
            if spec.check_invariants:
                self._check_invariants(spares_free, failed, in_flight, alive)
        return res

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _exact_duration_s(
        self,
        placement: np.ndarray,
        live_rows: np.ndarray,
        alive: np.ndarray,
        concurrent: int,
    ) -> float:
        """Per-event twin duration: plan (or byte-repair) a deterministic
        sample of the degraded stripes, scaled back to the full count."""
        from repro.ec.stripe import StripeMeta

        spec = self.spec
        sample = live_rows[: spec.twin_stripe_cap]
        metas = []
        dead: set[int] = set()
        for row in sample.tolist():
            place = tuple(int(n) for n in placement[row])
            metas.append(StripeMeta(int(row), spec.k, spec.m, place))
            dead.update(n for n in place if not alive[n])
        dur = self.timing.exact_event_duration_s(
            metas, sorted(dead), materialize=spec.materialize
        )
        scale = len(live_rows) / len(sample)
        return dur * scale * self.timing.load_factor(concurrent, spec.scheme)

    def _check_invariants(self, spares_free, failed, in_flight, alive) -> None:
        """Conservation checks the chaos tier runs after every event."""
        spec = self.spec
        if not 0 <= spares_free <= spec.n_spares:
            raise AssertionError(f"spare count out of range: {spares_free}")
        if int(failed.min()) < 0:
            raise AssertionError("negative per-stripe failure count")
        for node in in_flight.values():
            if alive[node]:
                raise AssertionError(f"repair in flight for healthy node {node}")
        if len(in_flight) != spec.n_spares - spares_free:
            raise AssertionError(
                f"{len(in_flight)} repairs in flight but "
                f"{spec.n_spares - spares_free} spares in use"
            )
