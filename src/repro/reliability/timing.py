"""Repair-duration oracle: the actual engines' makespans, never an MTTR.

The whole point of the durability simulator is that repair speed feeds
back into the window of vulnerability, so repair durations must come from
the same planners and fluid simulator the rest of the repo benchmarks —
per scheme (CR / IR / HMBR), per failure multiplicity, scaled by how many
stripes the failed node touched and how many repairs are already in
flight.  Two modes:

* ``"exact"`` — every repair event builds a small :func:`build_twin`
  coordinator from the current macro state and runs the metadata-only
  fast path (:meth:`Coordinator.plan_repair
  <repro.system.coordinator.Coordinator.plan_repair>`) on it; with
  ``materialize=True`` the twin holds real bytes and the event runs a
  full byte repair instead (the differential suite pins both modes to
  identical event streams).  Affordable on small clusters only.
* ``"calibrated"`` — macro scale.  Per ``(scheme, f)`` the model plans
  canonical groups of R stripes sharing f dead nodes through the fast
  path, least-squares fits ``makespan ≈ a + b·R``, and multiplies by a
  measured concurrency factor (merged c-failure rounds vs. one).  All
  calibration numbers come from fluid solves of real plans; the fit only
  interpolates between them.
"""

from __future__ import annotations

import numpy as np

from repro.ec.stripe import StripeMeta

#: stripe-count grid each (scheme, f) base fit is measured on.
CALIBRATION_GRID = (1, 2, 4, 8)
#: concurrent-failure grid the load factor is measured on.
LOAD_GRID = (1, 2, 4)
#: stripes per failure group in the load-factor measurement.
_LOAD_STRIPES = 4


def build_twin(
    *,
    k: int,
    m: int,
    metas,
    dead_nodes,
    n_nodes: int,
    rack_size: int,
    bandwidth_mbps: float,
    block_size_mb: float,
    block_bytes: int = 512,
    materialize: bool = False,
    payload_seed: int = 2023,
    field=None,
):
    """A small live :class:`~repro.system.coordinator.Coordinator` mirroring
    a slice of macro state.

    Node ids ``0..n_nodes-1`` mirror the macro cluster (rack = id //
    rack_size, homogeneous ``bandwidth_mbps``); one fresh spare per dead
    node is appended after, in the dead node's rack (so spare assignment
    preserves rack-aware placement like a real replacement chassis).
    ``metas`` (an iterable of :class:`~repro.ec.stripe.StripeMeta`) are
    installed with their macro placements verbatim; with ``materialize``
    their payloads are seeded, encoded, and stored before the dead nodes
    crash — the twin then supports full byte repairs, and the differential
    suite pins that both flavors time identically.
    """
    from repro.cluster.node import Node
    from repro.cluster.topology import Cluster
    from repro.ec.rs import RSCode
    from repro.ec.stripe import block_name
    from repro.system.coordinator import Coordinator

    dead = sorted(set(int(d) for d in dead_nodes))
    cluster = Cluster(
        [
            Node(i, bandwidth_mbps, bandwidth_mbps, rack=i // rack_size)
            for i in range(n_nodes)
        ]
    )
    from repro.gf.field import gf8

    gf = gf8 if field is None else field
    coord = Coordinator(
        cluster,
        RSCode(k, m, gf),
        block_bytes=block_bytes,
        block_size_mb=block_size_mb,
        field_=gf,
        rng=0,
    )
    for j, d in enumerate(dead):
        coord.add_spare(
            Node(
                n_nodes + j,
                bandwidth_mbps,
                bandwidth_mbps,
                rack=cluster[d].rack,
            )
        )
    payload_rng = np.random.default_rng(payload_seed) if materialize else None
    next_sid = 0
    for meta in metas:
        stripe = meta.to_stripe()
        coord.layout.add(stripe)
        next_sid = max(next_sid, meta.stripe_id + 1)
        if materialize:
            blocks = payload_rng.integers(0, 256, size=(k, block_bytes), dtype=np.uint8)
            coded = coord.code.encode_stripe(blocks)
            for b, node in enumerate(stripe.placement):
                coord.agents[node].store_block(block_name(stripe.stripe_id, b), coded[b])
    coord._next_stripe_id = next_sid
    for d in dead:
        coord.crash_node(d)
    return coord


class RepairTimingModel:
    """Engine-derived repair durations for the reliability simulator.

    ``spec`` is a :class:`~repro.reliability.simulator.ReliabilitySpec`
    (duck-typed: only its shape/bandwidth/twin fields are read).  All
    calibration is lazy and cached per (scheme, f) / (scheme, c), so a
    trial only pays for the failure multiplicities it actually sees;
    :meth:`calibration_rows` reports every measured point for goldens and
    bench artifacts.
    """

    def __init__(self, spec) -> None:
        self.spec = spec
        self._fits: dict[tuple[str, int], tuple[float, float]] = {}
        self._load: dict[str, list[tuple[int, float]]] = {}
        self._rows: list[dict] = []

    # ------------------------------------------------------------------ #
    # public oracle
    # ------------------------------------------------------------------ #
    def duration_s(
        self, scheme: str, f: int, n_stripes: int, concurrent: int = 1
    ) -> float:
        """Seconds to rebuild a node whose loss degraded ``n_stripes``
        stripes at failure multiplicity ``f``, with ``concurrent`` repairs
        (including this one) in flight."""
        a, b = self._fit_for(scheme, max(1, int(f)))
        base = a + b * max(0, int(n_stripes))
        return base * self.load_factor(concurrent, scheme)

    def load_factor(self, concurrent: int, scheme: str | None = None) -> float:
        """Measured stretch from ``concurrent`` repairs sharing the cluster.

        Piecewise-linear in the measured :data:`LOAD_GRID` points,
        extrapolated with the last segment's slope, never below 1.
        """
        scheme = scheme or self.spec.scheme
        c = max(1, int(concurrent))
        pts = self._load_for(scheme)
        if c <= pts[0][0]:
            return max(1.0, pts[0][1])
        for (c0, f0), (c1, f1) in zip(pts, pts[1:]):
            if c <= c1:
                frac = (c - c0) / (c1 - c0)
                return max(1.0, f0 + frac * (f1 - f0))
        (c0, f0), (c1, f1) = pts[-2], pts[-1]
        slope = (f1 - f0) / (c1 - c0)
        return max(1.0, f1 + slope * (c - c1))

    def exact_event_duration_s(self, metas, dead_nodes, materialize: bool = False) -> float:
        """One event's makespan from a per-event twin of the macro state.

        Metadata mode runs the fast path (:meth:`plan_repair`); byte mode
        materializes the twin and runs a real repair — the returned
        makespan is bit-identical because both feed the same task DAG to
        the same fluid solve, which is exactly the fast-path contract.
        """
        spec = self.spec
        coord = build_twin(
            k=spec.k,
            m=spec.m,
            metas=metas,
            dead_nodes=dead_nodes,
            n_nodes=spec.n_nodes,
            rack_size=spec.rack_size,
            bandwidth_mbps=spec.bandwidth_mbps,
            block_size_mb=spec.block_size_mb,
            block_bytes=spec.twin_block_bytes,
            materialize=materialize,
        )
        if materialize:
            from repro.system.request import RepairRequest

            return coord.repair(RepairRequest(scheme=spec.scheme)).makespan_s
        return coord.plan_repair(spec.scheme).makespan_s

    def calibration_rows(self) -> list[dict]:
        """Every measured calibration point (for reports and goldens)."""
        return [dict(r) for r in self._rows]

    # ------------------------------------------------------------------ #
    # base fit: makespan(scheme, f, R) ≈ a + b·R
    # ------------------------------------------------------------------ #
    def _fit_for(self, scheme: str, f: int) -> tuple[float, float]:
        key = (scheme, f)
        fit = self._fits.get(key)
        if fit is None:
            fit = self._calibrate_base(scheme, f)
            self._fits[key] = fit
        return fit

    def _calibrate_base(self, scheme: str, f: int) -> tuple[float, float]:
        xs, ys = [], []
        for n_stripes in CALIBRATION_GRID:
            makespan = self._canonical_makespan(scheme, f, n_stripes)
            xs.append(float(n_stripes))
            ys.append(makespan)
            self._rows.append(
                {
                    "kind": "base",
                    "scheme": scheme,
                    "f": f,
                    "stripes": n_stripes,
                    "makespan_s": makespan,
                }
            )
        x = np.asarray(xs)
        y = np.asarray(ys)
        var = float(np.var(x))
        b = max(0.0, float(np.cov(x, y, bias=True)[0, 1]) / var) if var else 0.0
        a = max(0.0, float(np.mean(y)) - b * float(np.mean(x)))
        return a, b

    def _canonical_makespan(self, scheme: str, f: int, n_stripes: int) -> float:
        """Fast-path makespan of R canonical stripes sharing f dead nodes.

        Stripe r holds blocks on the shared dead set {0..f-1} plus its own
        disjoint survivor span, so the group is the textbook "one chassis
        lost, R stripes degraded at multiplicity f" workload.
        """
        spec = self.spec
        width = spec.k + spec.m
        if f >= width:
            raise ValueError(f"f={f} must be < stripe width {width}")
        dead = list(range(f))
        span = width - f
        metas = [
            StripeMeta(
                r,
                spec.k,
                spec.m,
                tuple(dead) + tuple(f + r * span + j for j in range(span)),
            )
            for r in range(n_stripes)
        ]
        coord = build_twin(
            k=spec.k,
            m=spec.m,
            metas=metas,
            dead_nodes=dead,
            n_nodes=f + n_stripes * span,
            rack_size=spec.rack_size,
            bandwidth_mbps=spec.bandwidth_mbps,
            block_size_mb=spec.block_size_mb,
            block_bytes=spec.twin_block_bytes,
        )
        return coord.plan_repair(scheme).makespan_s

    # ------------------------------------------------------------------ #
    # load factor: merged c-failure rounds vs. one
    # ------------------------------------------------------------------ #
    def _load_for(self, scheme: str) -> list[tuple[int, float]]:
        pts = self._load.get(scheme)
        if pts is None:
            pts = self._calibrate_load(scheme)
            self._load[scheme] = pts
        return pts

    def _calibrate_load(self, scheme: str) -> list[tuple[int, float]]:
        """Measure the concurrency stretch on overlapping survivor pools.

        ``c`` failure groups (one dead node + :data:`_LOAD_STRIPES`
        stripes each) draw their survivors from one shared node pool, so
        their merged fast-path round contends exactly where real
        concurrent repairs do.  The factor is the merged makespan over the
        single-group makespan.
        """
        spec = self.spec
        width = spec.k + spec.m
        c_max = max(LOAD_GRID)
        pool = 2 * (width - 1)
        rng = np.random.default_rng(1234)
        groups: list[list[StripeMeta]] = []
        sid = 0
        for g in range(c_max):
            metas = []
            for _ in range(_LOAD_STRIPES):
                survivors = rng.choice(pool, size=width - 1, replace=False)
                metas.append(
                    StripeMeta(
                        sid,
                        spec.k,
                        spec.m,
                        (g,) + tuple(int(c_max + s) for s in sorted(survivors)),
                    )
                )
                sid += 1
            groups.append(metas)
        n_nodes = c_max + pool

        def merged_makespan(c: int) -> float:
            coord = build_twin(
                k=spec.k,
                m=spec.m,
                metas=[meta for g in range(c) for meta in groups[g]],
                dead_nodes=list(range(c)),
                n_nodes=n_nodes,
                rack_size=spec.rack_size,
                bandwidth_mbps=spec.bandwidth_mbps,
                block_size_mb=spec.block_size_mb,
                block_bytes=spec.twin_block_bytes,
            )
            return coord.plan_repair(scheme).makespan_s

        base = merged_makespan(1)
        pts: list[tuple[int, float]] = []
        for c in LOAD_GRID:
            factor = 1.0 if c == 1 else max(1.0, merged_makespan(c) / base)
            pts.append((c, factor))
            self._rows.append(
                {
                    "kind": "load",
                    "scheme": scheme,
                    "concurrent": c,
                    "factor": factor,
                }
            )
        return pts
