"""Multi-block repair planners: CR, IR, HMBR and its extensions.

This package is the paper's contribution.  Planners turn a
:class:`~repro.repair.context.RepairContext` (who failed, who survives, where
new nodes are) into a :class:`~repro.repair.plan.RepairPlan` holding both a
*timing view* (flow tasks for :mod:`repro.simnet`) and a *data view* (GF ops
for :mod:`repro.repair.executor`, which repairs real bytes and verifies them).
"""

from repro.repair.context import RepairContext, make_new_node_map
from repro.repair.plan import (
    CombineOp,
    ConcatOp,
    RepairPlan,
    SliceOp,
    TransferOp,
    reweighted,
)
from repro.repair.model import (
    repair_model,
    RepairModel,
    optimal_split,
    volume_split,
    t_cr,
    t_ir,
    t_hybrid,
)
from repro.repair.centralized import plan_centralized
from repro.repair.independent import plan_independent
from repro.repair.hybrid import plan_hybrid
from repro.repair.mlf import plan_mlf
from repro.repair.rackaware import (
    plan_rack_aware_centralized,
    plan_tree_independent,
    plan_rack_aware_hybrid,
    LinkUsageTracker,
)
from repro.repair.multinode import CenterScheduler, MultiNodeRepairJob, plan_multi_node
from repro.repair.executor import (
    BatchExecutionReport,
    BatchRepairRequest,
    ExecutionReport,
    PlanExecutor,
    Workspace,
)
from repro.repair.batch import (
    BatchRepairEngine,
    DecodePlan,
    PatternGroup,
    PatternKey,
    PlanCache,
    StripeBatchItem,
    build_decode_plan,
    group_by_pattern,
    pattern_key,
)
from repro.repair.validate import validate_plan, PlanValidationError
from repro.repair.selector import choose_scheme, SchemeChoice
from repro.repair.singleblock import plan_star, plan_chain, plan_ppr, SINGLE_BLOCK_SCHEMES

__all__ = [
    "RepairContext",
    "make_new_node_map",
    "RepairPlan",
    "SliceOp",
    "TransferOp",
    "CombineOp",
    "ConcatOp",
    "repair_model",
    "RepairModel",
    "optimal_split",
    "volume_split",
    "t_cr",
    "t_ir",
    "t_hybrid",
    "plan_centralized",
    "plan_independent",
    "plan_hybrid",
    "plan_mlf",
    "plan_rack_aware_centralized",
    "plan_tree_independent",
    "plan_rack_aware_hybrid",
    "LinkUsageTracker",
    "CenterScheduler",
    "MultiNodeRepairJob",
    "plan_multi_node",
    "PlanExecutor",
    "Workspace",
    "ExecutionReport",
    "BatchRepairEngine",
    "BatchExecutionReport",
    "BatchRepairRequest",
    "DecodePlan",
    "PatternGroup",
    "PatternKey",
    "PlanCache",
    "StripeBatchItem",
    "build_decode_plan",
    "group_by_pattern",
    "pattern_key",
    "validate_plan",
    "PlanValidationError",
    "choose_scheme",
    "SchemeChoice",
    "plan_star",
    "plan_chain",
    "plan_ppr",
    "SINGLE_BLOCK_SCHEMES",
    "reweighted",
]
