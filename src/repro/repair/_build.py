"""Shared plan-building blocks for the CR / IR / HMBR planners.

Each builder emits both views of a sub-plan restricted to a *fraction range*
``[frac_start, frac_stop)`` of every block (the whole block for pure CR/IR;
the upper/lower sub-block for HMBR).  Fractions are resolved to word-aligned
byte offsets by the executor, so plans are independent of the test-time
buffer length.
"""

from __future__ import annotations

import numpy as np

from repro.ec.stripe import block_name
from repro.repair.context import RepairContext
from repro.repair.plan import CombineOp, Op, SliceOp, TransferOp
from repro.simnet.flows import Flow, PipelineFlow, Task


def _slice_name(prefix: str, block: int) -> str:
    return f"{prefix}/in/b{block:02d}"


def repaired_name(prefix: str, block: int) -> str:
    return f"{prefix}/out/b{block:02d}"


def add_centralized(
    ctx: RepairContext,
    prefix: str,
    frac_start: float,
    frac_stop: float,
    center: int,
) -> tuple[list[Task], list[Op], dict[int, tuple[int, str]]]:
    """Star repair into ``center``; redistribute the other f-1 blocks.

    Returns (tasks, ops, outputs).  Flow sizes are scaled by the fraction
    width; zero-width fractions still emit the op skeleton (empty buffers)
    so HMBR degenerates gracefully at p0 ~ 0 or ~ 1.
    """
    frac = frac_stop - frac_start
    if frac < 0:
        raise ValueError("empty fraction range")
    size = frac * ctx.block_size_mb
    survivors = ctx.chosen_survivors()
    rmat = np.asarray(ctx.repair_matrix())
    sid = ctx.stripe.stripe_id

    tasks: list[Task] = []
    ops: list[Op] = []
    outputs: dict[int, tuple[int, str]] = {}

    fetch_ids = []
    sliced_names = []
    for b in survivors:
        node = ctx.stripe.placement[b]
        sname = _slice_name(prefix, b)
        ops.append(SliceOp(node, sname, block_name(sid, b), frac_start, frac_stop))
        ops.append(TransferOp(node, center, sname))
        tid = f"{prefix}:fetch:b{b:02d}"
        tasks.append(Flow(tid, src=node, dst=center, size_mb=size, tag=f"{prefix}:fetch"))
        fetch_ids.append(tid)
        sliced_names.append(sname)

    for row, fb in enumerate(ctx.failed_blocks):
        out = repaired_name(prefix, fb)
        ops.append(
            CombineOp(
                node=center,
                out=out,
                coeffs=tuple(int(c) for c in rmat[row]),
                srcs=tuple(sliced_names),
            )
        )
        target = ctx.new_node_of(fb)
        if target != center:
            ops.append(TransferOp(center, target, out))
            tasks.append(
                Flow(
                    f"{prefix}:dist:b{fb:02d}",
                    src=center,
                    dst=target,
                    size_mb=size,
                    deps=tuple(fetch_ids),
                    tag=f"{prefix}:dist",
                )
            )
        outputs[fb] = (target, out)
    return tasks, ops, outputs


def mlf_children(k: int, degree: int) -> dict[int, list[int]]:
    """Heap-layout children map of a complete ``degree``-ary tree on 0..k-1."""
    if degree < 2:
        raise ValueError("tree degree must be >= 2")
    return {
        p: [c for c in range(degree * p + 1, degree * p + degree + 1) if c < k]
        for p in range(k)
    }


def add_multilevel(
    ctx: RepairContext,
    prefix: str,
    frac_start: float,
    frac_stop: float,
    degree: int | None = None,
    order: str = "uplink-desc",
) -> tuple[list[Task], list[Op], dict[int, tuple[int, str]]]:
    """Multi-level forwarding repair (MLF): one shared aggregation tree.

    The k survivors form a complete ``degree``-ary tree (heap layout).  Each
    node scales its own sub-block by its repair coefficients, XOR-merges the
    partials arriving from its children, and forwards the f running partials
    to its parent in one burst; the root ends up holding all f decoded
    sub-blocks and sends each to its new node.  Compared to CR no single
    downlink takes k transfers, and compared to IR no survivor's position in
    a long chain gates the finish — levels aggregate in parallel, which is
    what the rapidly-changing-network paper exploits.

    ``order`` places survivors into tree positions: ``"uplink-desc"`` puts
    fast uploaders near the root (they carry aggregated traffic),
    ``"index"`` keeps block order.  ``degree=None`` picks ~sqrt(k), which
    balances tree depth against root fan-in.
    """
    frac = frac_stop - frac_start
    if frac < 0:
        raise ValueError("empty fraction range")
    size = frac * ctx.block_size_mb
    survivors = ctx.chosen_survivors()
    rmat = np.asarray(ctx.repair_matrix())
    col_of_block = {b: i for i, b in enumerate(survivors)}
    sid = ctx.stripe.stripe_id
    k = len(survivors)
    if degree is None:
        degree = max(2, int(round(np.sqrt(k))))
    if order == "index":
        blocks = list(survivors)
    elif order == "uplink-desc":
        blocks = sorted(
            survivors,
            key=lambda b: (-ctx.cluster[ctx.stripe.placement[b]].uplink, b),
        )
    else:
        raise ValueError(f"unknown mlf order {order!r}")
    node_of_pos = [ctx.stripe.placement[b] for b in blocks]
    children = mlf_children(k, degree)

    tasks: list[Task] = []
    ops: list[Op] = []
    outputs: dict[int, tuple[int, str]] = {}

    def edge_id(pos: int) -> str:
        return f"{prefix}:agg:v{pos:02d}"

    def partial_name(fb: int, pos: int) -> str:
        return f"{prefix}/p{fb:02d}/v{pos:02d}"

    # bottom-up so every child partial exists before its parent combines
    for pos in reversed(range(k)):
        node = node_of_pos[pos]
        b = blocks[pos]
        sname = _slice_name(prefix, b)
        ops.append(SliceOp(node, sname, block_name(sid, b), frac_start, frac_stop))
        coeff = rmat[:, col_of_block[b]]
        for row, fb in enumerate(ctx.failed_blocks):
            partial = partial_name(fb, pos)
            kids = children[pos]
            ops.append(
                CombineOp(
                    node=node,
                    out=partial,
                    coeffs=(int(coeff[row]),) + (1,) * len(kids),
                    srcs=(sname,) + tuple(partial_name(fb, c) for c in kids),
                )
            )
        child_edges = tuple(edge_id(c) for c in children[pos])
        if pos > 0:
            parent_node = node_of_pos[(pos - 1) // degree]
            for fb in ctx.failed_blocks:
                ops.append(TransferOp(node, parent_node, partial_name(fb, pos)))
            tasks.append(
                Flow(
                    edge_id(pos),
                    src=node,
                    dst=parent_node,
                    size_mb=ctx.f * size,
                    deps=child_edges,
                    tag=f"{prefix}:agg",
                )
            )
        else:
            # the root's partials are the decoded sub-blocks
            for fb in ctx.failed_blocks:
                out = repaired_name(prefix, fb)
                target = ctx.new_node_of(fb)
                ops.append(TransferOp(node, target, partial_name(fb, pos), rename=out))
                tasks.append(
                    Flow(
                        f"{prefix}:dist:b{fb:02d}",
                        src=node,
                        dst=target,
                        size_mb=size,
                        deps=child_edges,
                        tag=f"{prefix}:dist",
                    )
                )
                outputs[fb] = (target, out)
    return tasks, ops, outputs


def add_independent(
    ctx: RepairContext,
    prefix: str,
    frac_start: float,
    frac_stop: float,
    paths: dict[int, list[int]],
) -> tuple[list[Task], list[Op], dict[int, tuple[int, str]]]:
    """Pipelined chain repair, one chain per failed block.

    ``paths[fb]`` is the node path: the chosen survivors (in some order)
    followed by the failed block's new node.  Every hop carries the partially
    accumulated sub-block; the fluid simulator models the chain as a single
    pipeline flow at the min-hop rate.
    """
    frac = frac_stop - frac_start
    if frac < 0:
        raise ValueError("empty fraction range")
    size = frac * ctx.block_size_mb
    survivors = ctx.chosen_survivors()
    node_to_block = {ctx.stripe.placement[b]: b for b in survivors}
    rmat = np.asarray(ctx.repair_matrix())
    col_of_block = {b: i for i, b in enumerate(survivors)}
    sid = ctx.stripe.stripe_id

    tasks: list[Task] = []
    ops: list[Op] = []
    outputs: dict[int, tuple[int, str]] = {}

    sliced: set[tuple[int, str]] = set()
    for row, fb in enumerate(ctx.failed_blocks):
        path = paths[fb]
        if len(path) != len(survivors) + 1:
            raise ValueError(
                f"chain for block {fb} has {len(path)} nodes, expected k+1={len(survivors) + 1}"
            )
        new_node = path[-1]
        if new_node != ctx.new_node_of(fb):
            raise ValueError(f"chain for block {fb} ends at {new_node}, not its new node")
        prev_partial: str | None = None
        for hop, node in enumerate(path[:-1]):
            b = node_to_block[node]
            sname = _slice_name(prefix, b)
            if (node, sname) not in sliced:
                ops.append(SliceOp(node, sname, block_name(sid, b), frac_start, frac_stop))
                sliced.add((node, sname))
            coeff = int(rmat[row, col_of_block[b]])
            partial = f"{prefix}/p{fb:02d}/h{hop:02d}"
            if prev_partial is None:
                ops.append(CombineOp(node, partial, (coeff,), (sname,)))
            else:
                ops.append(CombineOp(node, partial, (coeff, 1), (sname, prev_partial)))
            nxt = path[hop + 1]
            ops.append(TransferOp(node, nxt, partial))
            prev_partial = partial
        out = repaired_name(prefix, fb)
        # the buffer arriving at the new node *is* the repaired sub-block
        ops.append(CombineOp(new_node, out, (1,), (prev_partial,)))
        tasks.append(
            PipelineFlow(
                f"{prefix}:pipe:b{fb:02d}",
                path=tuple(path),
                size_mb=size,
                tag=f"{prefix}:pipe",
            )
        )
        outputs[fb] = (new_node, out)
    return tasks, ops, outputs
