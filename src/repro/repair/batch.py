"""Batched multi-stripe repair: pattern grouping and decode-plan caching.

When a whole node dies, every stripe that kept a block on it needs repair —
but the stripes are not all *different* repairs.  A stripe's decode work is
fully determined by its **erasure pattern**: the code parameters plus which
block indices survive and which are lost.  Stripes sharing a pattern share
the inverted decode matrix and can be repaired together:

* :class:`PlanCache` — a bounded LRU of :class:`DecodePlan` objects keyed
  by :class:`PatternKey` (code params + surviving-helper set + failed set),
  with hit/miss/eviction/invalidation accounting.  It is the system-level,
  bounded replacement for :class:`repro.ec.rs.RSCode`'s unbounded private
  repair-matrix memo.
* :func:`group_by_pattern` — deterministic grouping of per-stripe repair
  items into :class:`PatternGroup` lists.
* :class:`BatchRepairEngine` — stacks each group's survivor buffers into
  one source plane and runs a single LUT-indexed matmul per group
  (:func:`repro.gf.batch.gf_plane_matmul`) instead of one decode per
  stripe.  Bit-exact with the per-stripe path by construction; the
  property/differential tests assert it over randomized patterns.

The engine is observable: given an :class:`repro.obs.Observability`
session it emits one ``batch`` span per pattern group and ``batch.*``
metric series; detached it is a plain fast path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.ec.rs import RSCode
from repro.gf.backend import resolve_backend
from repro.gf.matrix import gf_inv, gf_matmul


@dataclass(frozen=True)
class PatternKey:
    """What makes two stripe repairs interchangeable.

    Two stripes with equal keys decode through the same matrix: same code
    (word size, construction, k, m), same surviving-helper block indices,
    same failed block indices.  Node placement is deliberately absent —
    the decode matrix only depends on *block indices*, so stripes whose
    blocks live on entirely different nodes still share a plan.
    """

    w: int
    construction: str
    k: int
    m: int
    survivors: tuple[int, ...]
    failed: tuple[int, ...]


def pattern_key(code: RSCode, survivor_ids, failed_ids) -> PatternKey:
    """Build (and validate) the cache key for one erasure pattern."""
    survivors = tuple(sorted(int(i) for i in survivor_ids))
    failed = tuple(int(i) for i in failed_ids)
    if len(set(survivors)) != code.k:
        raise ValueError(f"need exactly k={code.k} distinct survivors")
    if not failed:
        raise ValueError("empty failed set")
    if len(set(failed)) != len(failed):
        raise ValueError("failed block indices must be distinct")
    if set(survivors) & set(failed):
        raise ValueError("survivor and failed sets overlap")
    for i in survivors + failed:
        if not 0 <= i < code.n:
            raise ValueError(f"block index {i} out of range 0..{code.n - 1}")
    return PatternKey(
        w=code.field.w,
        construction=code.construction,
        k=code.k,
        m=code.m,
        survivors=survivors,
        failed=failed,
    )


@dataclass(frozen=True)
class DecodePlan:
    """One cached repair solution: the inverted decode matrix for a pattern.

    ``matrix`` is the (f, k) combination matrix R with
    ``failed = R @ survivors`` (survivors in ascending block-index order,
    failed in the key's order).  Read-only; shared freely across stripes.
    """

    key: PatternKey
    matrix: np.ndarray = field(repr=False)

    @property
    def f(self) -> int:
        return len(self.key.failed)


def build_decode_plan(code: RSCode, survivor_ids, failed_ids) -> DecodePlan:
    """Invert the survivor submatrix and derive R (cache-miss slow path)."""
    key = pattern_key(code, survivor_ids, failed_ids)
    a = code.generator[list(key.survivors)]
    a_inv = gf_inv(a, code.field)
    r = gf_matmul(code.generator[list(key.failed)], a_inv, code.field)
    r.setflags(write=False)
    return DecodePlan(key=key, matrix=r)


class PlanCache:
    """Bounded LRU of decode plans with full accounting.

    The coordinator keeps one cache per system; multi-node repairs ask it
    for one plan per *pattern group* instead of re-inverting per stripe.
    ``invalidate_survivor`` evicts every plan whose surviving-helper set
    contains a given block index — the mid-storm hook for when a helper
    dies and plans built over it must not be served again.

    Thread-safe: a reentrant lock guards lookups, LRU moves, counter
    bumps, and invalidations, so concurrent wave dispatch (the parallel
    path's thread-level fan-out) cannot corrupt the OrderedDict or lose
    hit/miss/eviction counts.  Plans themselves are immutable and safe to
    share once returned.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[PatternKey, DecodePlan] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: PatternKey) -> bool:
        with self._lock:
            return key in self._entries

    def plan_for(self, code: RSCode, survivor_ids, failed_ids) -> DecodePlan:
        """The decode plan for a pattern: LRU hit or build-and-insert."""
        key = pattern_key(code, survivor_ids, failed_ids)
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return plan
            self.misses += 1
        # Invert outside the lock: matrix inversion is the slow path and
        # must not serialize concurrent hits on other patterns.
        plan = build_decode_plan(code, key.survivors, key.failed)
        with self._lock:
            raced = self._entries.get(key)
            if raced is not None:
                # Another thread built the same plan first; serve its copy
                # so every caller shares one matrix per pattern.
                self._entries.move_to_end(key)
                return raced
            self._entries[key] = plan
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return plan

    def peek(self, key: PatternKey) -> DecodePlan | None:
        """Lookup without touching LRU order or hit/miss counters."""
        with self._lock:
            return self._entries.get(key)

    # -------------------------------------------------------------- #
    # invalidation
    # -------------------------------------------------------------- #
    def invalidate_where(self, predicate: Callable[[PatternKey], bool]) -> int:
        """Evict every plan whose key matches; returns the eviction count."""
        with self._lock:
            doomed = [k for k in self._entries if predicate(k)]
            for k in doomed:
                del self._entries[k]
            self.invalidations += len(doomed)
            return len(doomed)

    def invalidate_survivor(self, block_index: int) -> int:
        """Evict plans that decode *through* a now-unusable helper block."""
        b = int(block_index)
        return self.invalidate_where(lambda key: b in key.survivors)

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are lifetime totals)."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    def stats(self) -> dict:
        """Lifetime accounting snapshot (what the batched repair reports)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }


@dataclass
class StripeBatchItem:
    """One stripe's membership in a batched repair.

    ``sources`` holds the k survivor buffers in ascending survivor
    block-index order (matching :attr:`DecodePlan.matrix` columns);
    ``failed`` lists the lost block indices in output order.
    """

    stripe_id: int
    survivors: tuple[int, ...]
    failed: tuple[int, ...]
    sources: Sequence[np.ndarray]

    def __post_init__(self) -> None:
        self.survivors = tuple(int(b) for b in self.survivors)
        self.failed = tuple(int(b) for b in self.failed)
        if list(self.survivors) != sorted(set(self.survivors)):
            raise ValueError("survivors must be sorted and distinct")
        if len(self.sources) != len(self.survivors):
            raise ValueError(
                f"{len(self.survivors)} survivors but {len(self.sources)} source buffers"
            )


@dataclass
class PatternGroup:
    """All stripes of one batch that share an erasure pattern."""

    key: PatternKey
    items: list[StripeBatchItem]

    @property
    def stripe_ids(self) -> list[int]:
        return [it.stripe_id for it in self.items]

    def __len__(self) -> int:
        return len(self.items)


def group_by_pattern(code: RSCode, items: Iterable[StripeBatchItem]) -> list[PatternGroup]:
    """Deterministically bucket batch items by erasure pattern.

    Groups appear in first-occurrence order (stable under the caller's
    stripe ordering), items keep their relative order inside each group.
    """
    groups: OrderedDict[PatternKey, PatternGroup] = OrderedDict()
    for item in items:
        key = pattern_key(code, item.survivors, item.failed)
        grp = groups.get(key)
        if grp is None:
            groups[key] = PatternGroup(key=key, items=[item])
        else:
            grp.items.append(item)
    return list(groups.values())


@dataclass
class BatchDecodeResult:
    """What one engine run produced, plus the accounting the caller meters."""

    #: stripe id -> failed block index -> repaired buffer
    outputs: dict[int, dict[int, np.ndarray]]
    groups: int
    stripes: int
    gf_bytes: int
    compute_seconds: float
    plan_hits: int
    plan_misses: int
    #: each kernel call's cost split evenly over the stripes it repaired, so
    #: callers can charge compute/bytes to whichever node hosted each stripe.
    compute_seconds_by_stripe: dict[int, float] = field(default_factory=dict)
    gf_bytes_by_stripe: dict[int, int] = field(default_factory=dict)


class BatchRepairEngine:
    """Repairs many stripes per GF kernel call, one call per pattern group.

    The engine owns no buffers and mutates nothing outside its
    :class:`PlanCache`; callers hand it survivor bytes and receive repaired
    blocks, making it equally usable from the coordinator's agent-backed
    data plane, the executor's workspace, and bare benchmarks.

    ``backend`` selects the GF kernel tier running the plane matmul: a
    :mod:`repro.gf.backend` name (``"numpy"``, ``"native"``, ``"isal"``),
    a :class:`~repro.gf.backend.KernelBackend` instance, or ``None`` for
    auto-selection (``REPRO_GF_BACKEND`` override → best available).
    Every backend is bit-exact, so the choice only moves throughput.
    """

    def __init__(
        self, code: RSCode, cache: PlanCache | None = None, obs=None, backend=None
    ):
        self.code = code
        self.cache = cache if cache is not None else PlanCache()
        #: optional :class:`repro.obs.Observability` session for spans/metrics.
        self.obs = obs
        #: the selected GF kernel tier (resolved once, at construction).
        self.backend = resolve_backend(backend, code.field)

    # -------------------------------------------------------------- #
    # core kernels
    # -------------------------------------------------------------- #
    def _plane_matmul(
        self, mat: np.ndarray, plane: np.ndarray, item_len: int | None = None
    ) -> np.ndarray:
        """The one kernel seam subclasses may re-route.

        ``item_len`` is the per-stripe column width of ``plane`` (when the
        caller knows it), letting sharded implementations keep each
        stripe's columns on a single worker.  The base engine decodes
        inline through the selected :attr:`backend`;
        :class:`repro.parallel.ParallelRepairEngine` overrides this to fan
        out across a process pool — nothing else differs between the
        serial and parallel engines.
        """
        return self.backend.plane_matmul(mat, plane, self.code.field)

    def decode_batch(self, survivor_ids, failed_ids, stacked: np.ndarray) -> np.ndarray:
        """Decode S same-pattern stripes at once: (S, k, B) -> (S, f, B).

        ``stacked[s, t]`` is stripe ``s``'s buffer for the t-th survivor in
        ascending block-index order.  Single-stripe batches (S = 1) are the
        degenerate case and remain bit-exact with per-stripe decode.
        """
        stacked = np.asarray(stacked, dtype=self.code.field.dtype)
        if stacked.ndim != 3:
            raise ValueError(f"stacked must be (S, k, B), got {stacked.shape}")
        plan = self.cache.plan_for(self.code, survivor_ids, failed_ids)
        s, k, b = stacked.shape
        if k != self.code.k:
            raise ValueError(f"stacked has {k} source rows, need k={self.code.k}")
        plane = stacked.transpose(1, 0, 2).reshape(k, s * b)
        out = self._plane_matmul(plan.matrix, plane, item_len=b)
        return np.ascontiguousarray(
            out.reshape(plan.f, s, b).transpose(1, 0, 2)
        )

    def repair_items(self, items: Sequence[StripeBatchItem]) -> BatchDecodeResult:
        """Group, stack, and decode a heterogeneous batch of stripe repairs.

        Items may mix patterns and buffer lengths arbitrarily; stripes only
        share a kernel call when both their pattern and their block length
        agree.  Returns per-stripe repaired buffers plus accounting.
        """
        import time

        field_ = self.code.field
        hits0, misses0 = self.cache.hits, self.cache.misses
        outputs: dict[int, dict[int, np.ndarray]] = {}
        gf_bytes = 0
        compute_s = 0.0
        compute_by_stripe: dict[int, float] = {}
        bytes_by_stripe: dict[int, int] = {}
        groups = group_by_pattern(self.code, items)
        obs = self.obs
        for gi, grp in enumerate(groups):
            # split further by block length: stacking demands equal B
            by_len: OrderedDict[int, list[StripeBatchItem]] = OrderedDict()
            for it in grp.items:
                length = int(np.asarray(it.sources[0]).shape[-1])
                by_len.setdefault(length, []).append(it)
            for length, subitems in by_len.items():
                span = None
                if obs is not None:
                    span = obs.tracer.begin(
                        f"batch:g{gi}", actor="batch-engine", cat="batch",
                        pattern_failed=list(grp.key.failed),
                        stripes=[it.stripe_id for it in subitems],
                        block_bytes=length,
                    )
                try:
                    plane = np.empty(
                        (self.code.k, len(subitems) * length), dtype=field_.dtype
                    )
                    for s, it in enumerate(subitems):
                        for t, src in enumerate(it.sources):
                            plane[t, s * length : (s + 1) * length] = src
                    plan = self.cache.plan_for(
                        self.code, grp.key.survivors, grp.key.failed
                    )
                    t0 = time.perf_counter()
                    decoded = self._plane_matmul(plan.matrix, plane, item_len=length)
                    dt = time.perf_counter() - t0
                    compute_s += dt
                    nbytes = plane.size * plane.itemsize
                    gf_bytes += nbytes
                    dt_share = dt / len(subitems)
                    bytes_share = nbytes // len(subitems)
                    for s, it in enumerate(subitems):
                        compute_by_stripe[it.stripe_id] = (
                            compute_by_stripe.get(it.stripe_id, 0.0) + dt_share
                        )
                        bytes_by_stripe[it.stripe_id] = (
                            bytes_by_stripe.get(it.stripe_id, 0) + bytes_share
                        )
                        per_stripe = outputs.setdefault(it.stripe_id, {})
                        for row, fb in enumerate(it.failed):
                            per_stripe[fb] = np.ascontiguousarray(
                                decoded[row, s * length : (s + 1) * length]
                            )
                finally:
                    if span is not None:
                        obs.tracer.end(span, seconds=dt, bytes=nbytes)
        if obs is not None:
            m = obs.metrics
            m.counter("batch.groups").inc(len(groups))
            m.counter("batch.stripes").inc(len(items))
            m.counter("batch.gf_bytes").inc(gf_bytes)
            m.counter("batch.plan_hits").inc(self.cache.hits - hits0)
            m.counter("batch.plan_misses").inc(self.cache.misses - misses0)
        return BatchDecodeResult(
            outputs=outputs,
            groups=len(groups),
            stripes=len(items),
            gf_bytes=gf_bytes,
            compute_seconds=compute_s,
            plan_hits=self.cache.hits - hits0,
            plan_misses=self.cache.misses - misses0,
            compute_seconds_by_stripe=compute_by_stripe,
            gf_bytes_by_stripe=bytes_by_stripe,
        )

    # -------------------------------------------------------------- #
    # storm plumbing
    # -------------------------------------------------------------- #
    def on_helper_lost(self, block_index: int) -> int:
        """A surviving-helper block became unusable mid-storm: evict its plans.

        Returns how many cached plans were invalidated.  Fresh patterns
        (not routed through the dead helper) are rebuilt on next use.
        """
        return self.cache.invalidate_survivor(block_index)

    def stats(self) -> dict:
        out = self.cache.stats()
        out["backend"] = self.backend.name
        return out
