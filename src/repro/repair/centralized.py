"""Centralized multi-block repair (CR, §II-C).

The conventional scheme: k survivors send their blocks to one new node (the
*center*), which decodes all f failed blocks, keeps its own, and distributes
the remaining f-1 to the other new nodes.  The center's downlink is the
bottleneck for wide stripes.
"""

from __future__ import annotations

from repro.repair._build import add_centralized
from repro.repair.context import RepairContext
from repro.repair.plan import RepairPlan
from repro.repair.topology import default_center


def plan_centralized(
    ctx: RepairContext,
    center: int | None = None,
    center_policy: str = "fastest-downlink",
) -> RepairPlan:
    """Build the CR plan.

    ``center`` may name an explicit new node; otherwise ``center_policy``
    decides (default: the new node with the fastest downlink).
    """
    if center is None:
        center = default_center(ctx, center_policy)
    elif center not in ctx.new_nodes:
        raise ValueError(f"center {center} is not one of the new nodes {ctx.new_nodes}")
    tasks, ops, outputs = add_centralized(ctx, ctx.prefix("cr"), 0.0, 1.0, center)
    return RepairPlan(
        scheme="CR",
        tasks=tasks,
        ops=ops,
        outputs=outputs,
        meta={"center": center, "survivors": ctx.chosen_survivors()},
    )
