"""Repair context: the inputs every planner consumes.

A context binds one stripe's failure to concrete resources: which block
indices are lost, which k survivors participate, and which new node hosts
each repaired block.  Policies for survivor selection and center selection
live here so CR / IR / HMBR compare on identical footing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.ec.stripe import Stripe


def make_new_node_map(failed_blocks, new_nodes) -> dict[int, int]:
    """Assign failed block -> new node, one-to-one in order."""
    failed = list(failed_blocks)
    nodes = list(new_nodes)
    if len(nodes) != len(failed):
        raise ValueError(f"{len(failed)} failed blocks but {len(nodes)} new nodes")
    if len(set(nodes)) != len(nodes):
        raise ValueError("new nodes must be distinct")
    return dict(zip(failed, nodes))


@dataclass
class RepairContext:
    """Everything needed to plan the repair of one stripe.

    Parameters
    ----------
    cluster : the cluster (must contain all referenced nodes).
    code : the stripe's RS code.
    stripe : placement metadata.
    failed_blocks : lost block indices (1 <= f <= m).
    new_nodes : node ids hosting the repaired blocks, one per failed block.
    block_size_mb : block size B in MB (paper default 64).
    survivor_policy : ``"first"`` (k lowest surviving indices, deterministic)
        or ``"best-uplink"`` (k survivors whose nodes have the highest uplink).
    """

    cluster: Cluster
    code: RSCode
    stripe: Stripe
    failed_blocks: list[int]
    new_nodes: list[int]
    block_size_mb: float = 64.0
    survivor_policy: str = "first"
    _new_node_map: dict[int, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.failed_blocks = [int(b) for b in self.failed_blocks]
        self.new_nodes = [int(n) for n in self.new_nodes]
        f = len(self.failed_blocks)
        if not 1 <= f <= self.code.m:
            raise ValueError(f"f={f} must be within 1..m={self.code.m}")
        if len(set(self.failed_blocks)) != f:
            raise ValueError("failed block indices must be distinct")
        for b in self.failed_blocks:
            if not 0 <= b < self.code.n:
                raise ValueError(f"failed block {b} out of range")
        if self.stripe.k != self.code.k or self.stripe.m != self.code.m:
            raise ValueError("stripe and code disagree on (k, m)")
        if self.block_size_mb <= 0:
            raise ValueError("block size must be positive")
        stripe_nodes = set(self.stripe.placement)
        for n in self.new_nodes:
            if n not in self.cluster:
                raise ValueError(f"new node {n} not in cluster")
            if not self.cluster[n].alive:
                raise ValueError(f"new node {n} is dead")
        failed_nodes = {self.stripe.placement[b] for b in self.failed_blocks}
        if set(self.new_nodes) & (stripe_nodes - failed_nodes):
            raise ValueError("a new node already stores a surviving block of this stripe")
        self._new_node_map = make_new_node_map(self.failed_blocks, self.new_nodes)

    # -------------------------------------------------------------- #
    def prefix(self, name: str) -> str:
        """Stripe-scoped namespace for plan task ids and buffer names.

        Multi-stripe (multi-node) repairs merge many plans into one; baking
        the stripe id into every name keeps agent scratch spaces disjoint.
        """
        return f"s{self.stripe.stripe_id:04d}:{name}"

    @property
    def f(self) -> int:
        return len(self.failed_blocks)

    @property
    def k(self) -> int:
        return self.code.k

    def new_node_of(self, block_index: int) -> int:
        return self._new_node_map[block_index]

    def surviving_blocks(self) -> list[int]:
        """All block indices whose host node is alive and not failed."""
        failed = set(self.failed_blocks)
        return [
            i
            for i, nid in enumerate(self.stripe.placement)
            if i not in failed and self.cluster[nid].alive
        ]

    def chosen_survivors(self) -> list[int]:
        """The k survivor block indices participating in the repair."""
        candidates = self.surviving_blocks()
        if len(candidates) < self.k:
            raise ValueError(
                f"only {len(candidates)} surviving blocks; need k={self.k} "
                "(stripe unrecoverable)"
            )
        if self.survivor_policy == "first":
            return candidates[: self.k]
        if self.survivor_policy == "best-uplink":
            ranked = sorted(
                candidates,
                key=lambda b: (-self.cluster[self.stripe.placement[b]].uplink, b),
            )
            return sorted(ranked[: self.k])
        raise ValueError(f"unknown survivor policy {self.survivor_policy!r}")

    def survivor_nodes(self) -> list[int]:
        """Node ids of the chosen survivors, in block-index order."""
        return [self.stripe.placement[b] for b in self.chosen_survivors()]

    def repair_matrix(self):
        """f x k coefficients: failed blocks as combos of chosen survivors."""
        return self.code.repair_matrix(self.chosen_survivors(), self.failed_blocks)

    def pick_center(self, policy: str = "fastest-downlink") -> int:
        """Choose the CR center among the new nodes.

        ``"fastest-downlink"`` (default, what a bandwidth-aware coordinator
        does), ``"first"`` (paper's naive baseline), or an explicit node id
        may be passed by callers instead of using this helper.
        """
        if policy == "first":
            return self.new_nodes[0]
        if policy == "fastest-downlink":
            return max(self.new_nodes, key=lambda n: (self.cluster[n].downlink, -n))
        raise ValueError(f"unknown center policy {policy!r}")
