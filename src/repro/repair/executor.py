"""Plan executor: runs a repair plan on real bytes and verifies it.

The executor interprets a plan's ``ops`` sequentially over per-node
workspaces, performing the actual GF(2^w) arithmetic each node would do.  It
measures the CPU time spent in coding operations (per node), which — scaled
to the experiment's block size — gives the ``T_o`` compute component of the
paper's Table II breakdown, and it returns the repaired buffers so callers
can assert bit-exactness against the original blocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.ec.stripe import Stripe, block_name
from repro.ec.subblock import DEFAULT_WORD_BYTES
from repro.gf.field import GF, gf8
from repro.repair.plan import CombineOp, ConcatOp, RepairPlan, SliceOp, TransferOp


class Workspace:
    """Per-node named buffers: ``(node_id, name) -> ndarray``."""

    def __init__(self, field_: GF = gf8, word_bytes: int = DEFAULT_WORD_BYTES):
        self.field = field_
        self.word_bytes = word_bytes
        self.buffers: dict[tuple[int, str], np.ndarray] = {}

    def put(self, node: int, name: str, data: np.ndarray) -> None:
        arr = np.asarray(data, dtype=self.field.dtype)
        nbytes = arr.size * arr.itemsize
        if nbytes % self.word_bytes:
            raise ValueError(
                f"buffer {name!r} ({nbytes} B) not aligned to {self.word_bytes}-byte words"
            )
        self.buffers[(node, name)] = arr

    def get(self, node: int, name: str) -> np.ndarray:
        key = (node, name)
        if key not in self.buffers:
            raise KeyError(f"node {node} has no buffer {name!r}")
        return self.buffers[key]

    def load_stripe(self, stripe: Stripe, blocks: np.ndarray) -> None:
        """Place each block of a (k+m, L) stripe at its node."""
        if blocks.shape[0] != stripe.n:
            raise ValueError(f"expected {stripe.n} blocks, got {blocks.shape[0]}")
        for idx, node in enumerate(stripe.placement):
            self.put(node, block_name(stripe.stripe_id, idx), blocks[idx])

    def drop_node(self, node: int) -> None:
        """Discard every buffer of a failed node."""
        for key in [k for k in self.buffers if k[0] == node]:
            del self.buffers[key]

    def word_slice(self, arr: np.ndarray, frac_start: float, frac_stop: float) -> np.ndarray:
        """Word-aligned sub-view of ``arr`` for a fraction range (no copy)."""
        from repro.ec.subblock import word_slice

        return word_slice(arr, frac_start, frac_stop, self.word_bytes)


@dataclass
class ExecutionJournal:
    """Progress cursor for resumable plan execution.

    ``completed`` counts ops already executed; a resumed run starts there
    and never redoes finished work.  ``transfers``/``transfer_bytes`` meter
    the transfer ops actually performed through this journal, which is what
    the fault runtime reconciles against the data-bus byte counters.
    """

    completed: int = 0
    transfers: int = 0
    transfer_bytes: int = 0

    def reset(self) -> None:
        self.completed = 0
        self.transfers = 0
        self.transfer_bytes = 0


@dataclass
class ExecutionReport:
    """What happened when a plan ran."""

    compute_seconds: dict[int, float]  # node -> GF compute wall time
    transfer_mb_equiv: float  # MB copied between workspaces (at test scale)
    gf_bytes_processed: int  # bytes fed through GF kernels
    outputs: dict[int, np.ndarray]  # failed block index -> repaired buffer
    op_count: int = 0
    per_node_mb_sent: dict[int, float] = field(default_factory=dict)
    gf_bytes_by_node: dict[int, int] = field(default_factory=dict)

    @property
    def total_compute_seconds(self) -> float:
        return sum(self.compute_seconds.values())

    @property
    def critical_compute_seconds(self) -> float:
        """Max per-node compute: nodes work in parallel in the real system."""
        return max(self.compute_seconds.values(), default=0.0)


@dataclass
class BatchRepairRequest:
    """One stripe's entry in a batched (pattern-grouped) execution.

    The workspace must already hold the stripe's survivor blocks at their
    placement nodes under :func:`repro.ec.stripe.block_name`.  ``dest``
    maps each failed block index to the node that receives the repaired
    buffer; the first failed block's destination acts as the compute
    center (all survivors ship there, the group decode is charged there).
    """

    stripe: Stripe
    survivors: list[int]
    failed: list[int]
    dest: dict[int, int]

    @property
    def center(self) -> int:
        return self.dest[self.failed[0]]


@dataclass
class BatchExecutionReport:
    """What happened when a batched execution ran."""

    compute_seconds: dict[int, float]  # node -> GF compute wall time
    transfer_mb_equiv: float  # MB moved between workspaces (at test scale)
    gf_bytes_processed: int  # bytes fed through GF kernels
    outputs: dict[int, dict[int, np.ndarray]]  # stripe -> failed block -> buffer
    stripes: int = 0
    pattern_groups: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    per_node_mb_sent: dict[int, float] = field(default_factory=dict)
    gf_bytes_by_node: dict[int, int] = field(default_factory=dict)

    @property
    def total_compute_seconds(self) -> float:
        return sum(self.compute_seconds.values())

    @property
    def critical_compute_seconds(self) -> float:
        """Max per-node compute: nodes work in parallel in the real system."""
        return max(self.compute_seconds.values(), default=0.0)


class PlanExecutor:
    """Execute repair plans over a workspace."""

    def __init__(self, workspace: Workspace):
        self.ws = workspace

    def execute(
        self,
        plan: RepairPlan,
        verify_against: dict[int, np.ndarray] | None = None,
        journal: ExecutionJournal | None = None,
        tracer=None,
    ) -> ExecutionReport:
        """Run all ops; optionally verify outputs bit-exactly.

        ``verify_against`` maps failed block index -> expected full buffer.
        Raises ``AssertionError`` on any mismatch (repair must be exact).

        ``journal`` makes the run resumable: ops before ``journal.completed``
        are skipped (their buffers are assumed present from the earlier,
        interrupted run) and the cursor advances as each op finishes.  The
        returned report meters only the ops executed by *this* call.

        ``tracer`` (a :class:`repro.obs.Tracer`) records every executed op
        as an ops-domain span — ``transfer`` spans carry bytes, ``compute``
        spans carry GF seconds and bytes — under one ``execute:<scheme>``
        root, which is what :func:`repro.analysis.breakdown.breakdown_from_trace`
        consumes.  ``None`` (the default) changes nothing.
        """
        field_ = self.ws.field
        compute: dict[int, float] = {}
        moved_elems = 0
        gf_bytes = 0
        gf_by_node: dict[int, int] = {}
        sent_elems: dict[int, int] = {}

        root = None
        if tracer is not None:
            root = tracer.begin(
                f"execute:{plan.scheme}", actor="executor", cat="execute",
                scheme=plan.scheme, ops=len(plan.ops),
            )
        try:
            start = journal.completed if journal is not None else 0
            for op_index in range(start, len(plan.ops)):
                op = plan.ops[op_index]
                if isinstance(op, SliceOp):
                    src = self.ws.get(op.node, op.src)
                    view = self.ws.word_slice(src, op.start, op.stop)
                    self.ws.buffers[(op.node, op.out)] = view
                    if tracer is not None:
                        tracer.tick_span(
                            f"slice:{op.out}", actor=f"node:{op.node}", cat="op",
                            node=op.node, bytes=int(view.nbytes),
                        )
                elif isinstance(op, TransferOp):
                    data = self.ws.get(op.src_node, op.name)
                    self.ws.buffers[(op.dst_node, op.rename or op.name)] = data.copy()
                    moved_elems += data.size
                    sent_elems[op.src_node] = sent_elems.get(op.src_node, 0) + data.size
                    if tracer is not None:
                        tracer.tick_span(
                            f"xfer:{op.src_node}->{op.dst_node}",
                            actor=f"node:{op.src_node}", cat="transfer",
                            src=op.src_node, dst=op.dst_node, bytes=int(data.nbytes),
                        )
                elif isinstance(op, CombineOp):
                    srcs = [self.ws.get(op.node, s) for s in op.srcs]
                    t0 = time.perf_counter()
                    out = field_.combine(op.coeffs, srcs)
                    dt = time.perf_counter() - t0
                    compute[op.node] = compute.get(op.node, 0.0) + dt
                    op_bytes = sum(s.size * s.itemsize for s in srcs)
                    gf_bytes += op_bytes
                    gf_by_node[op.node] = gf_by_node.get(op.node, 0) + op_bytes
                    self.ws.buffers[(op.node, op.out)] = out
                    if tracer is not None:
                        tracer.tick_span(
                            f"gf:{op.out}", actor=f"node:{op.node}", cat="compute",
                            node=op.node, seconds=dt, bytes=op_bytes,
                        )
                elif isinstance(op, ConcatOp):
                    parts = [self.ws.get(op.node, p) for p in op.parts]
                    self.ws.buffers[(op.node, op.out)] = np.concatenate(parts)
                    if tracer is not None:
                        tracer.tick_span(
                            f"concat:{op.out}", actor=f"node:{op.node}", cat="op",
                            node=op.node,
                        )
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown op {op!r}")
                if journal is not None:
                    journal.completed = op_index + 1
                    if isinstance(op, TransferOp):
                        journal.transfers += 1
                        journal.transfer_bytes += data.size * data.itemsize
        finally:
            if root is not None:
                tracer.end(root)

        outputs: dict[int, np.ndarray] = {}
        for fb, (node, name) in plan.outputs.items():
            outputs[fb] = self.ws.get(node, name)

        if verify_against is not None:
            for fb, expected in verify_against.items():
                got = outputs.get(fb)
                if got is None:
                    raise AssertionError(f"plan produced no output for failed block {fb}")
                if not np.array_equal(got, np.asarray(expected, dtype=field_.dtype)):
                    raise AssertionError(f"repaired block {fb} differs from the original")

        itemsize = field_.dtype().itemsize
        return ExecutionReport(
            compute_seconds=compute,
            transfer_mb_equiv=moved_elems * itemsize / 2**20,
            gf_bytes_processed=gf_bytes,
            outputs=outputs,
            op_count=len(plan.ops),
            per_node_mb_sent={n: e * itemsize / 2**20 for n, e in sent_elems.items()},
            gf_bytes_by_node=gf_by_node,
        )

    def execute_batch(
        self,
        requests: list[BatchRepairRequest],
        engine,
        verify_against: dict[int, dict[int, np.ndarray]] | None = None,
        tracer=None,
    ) -> BatchExecutionReport:
        """Repair many stripes with one GF kernel call per pattern group.

        Semantically a batched CR: every request's survivor buffers move to
        its center, stripes sharing an erasure pattern decode through one
        stacked matmul (reusing the engine's cached plan), and repaired
        buffers land at their destination nodes under
        :func:`~repro.ec.stripe.block_name`.  Bit-exact with running
        :meth:`execute` on per-stripe plans for the same failures.

        ``engine`` is a :class:`repro.repair.batch.BatchRepairEngine` (it
        binds the code and owns the :class:`~repro.repair.batch.PlanCache`);
        callers that repair repeatedly should keep one engine alive so
        cached decode plans amortize across calls.  ``verify_against`` maps
        stripe id -> failed block -> expected buffer.
        """
        from repro.repair.batch import BatchRepairEngine, StripeBatchItem

        if not isinstance(engine, BatchRepairEngine):
            raise TypeError(f"engine must be a BatchRepairEngine, got {type(engine)!r}")
        field_ = self.ws.field
        itemsize = field_.dtype().itemsize
        moved_elems = 0
        sent_elems: dict[int, int] = {}
        root = None
        if tracer is not None:
            root = tracer.begin(
                "execute-batch", actor="executor", cat="execute",
                stripes=len(requests),
            )
        try:
            items: list[StripeBatchItem] = []
            for req in requests:
                sid = req.stripe.stripe_id
                center = req.center
                sources = []
                for b in req.survivors:
                    host = req.stripe.placement[b]
                    buf = self.ws.get(host, block_name(sid, b))
                    if host != center:
                        moved_elems += buf.size
                        sent_elems[host] = sent_elems.get(host, 0) + buf.size
                        if tracer is not None:
                            tracer.tick_span(
                                f"xfer:{host}->{center}", actor=f"node:{host}",
                                cat="transfer", src=host, dst=center,
                                bytes=int(buf.nbytes),
                            )
                    sources.append(buf)
                items.append(
                    StripeBatchItem(
                        stripe_id=sid, survivors=tuple(req.survivors),
                        failed=tuple(req.failed), sources=sources,
                    )
                )
            res = engine.repair_items(items)

            compute: dict[int, float] = {}
            gf_by_node: dict[int, int] = {}
            for req in requests:
                sid = req.stripe.stripe_id
                center = req.center
                compute[center] = compute.get(center, 0.0) + res.compute_seconds_by_stripe[sid]
                gf_by_node[center] = gf_by_node.get(center, 0) + res.gf_bytes_by_stripe[sid]
                for fb in req.failed:
                    out = res.outputs[sid][fb]
                    dest = req.dest[fb]
                    if dest != center:
                        moved_elems += out.size
                        sent_elems[center] = sent_elems.get(center, 0) + out.size
                        if tracer is not None:
                            tracer.tick_span(
                                f"xfer:{center}->{dest}", actor=f"node:{center}",
                                cat="transfer", src=center, dst=dest,
                                bytes=int(out.nbytes),
                            )
                    self.ws.put(dest, block_name(sid, fb), out)
        finally:
            if root is not None:
                tracer.end(root)

        if verify_against is not None:
            for sid, expected_blocks in verify_against.items():
                got = res.outputs.get(sid, {})
                for fb, expected in expected_blocks.items():
                    if fb not in got:
                        raise AssertionError(
                            f"batch produced no output for stripe {sid} block {fb}"
                        )
                    if not np.array_equal(
                        got[fb], np.asarray(expected, dtype=field_.dtype)
                    ):
                        raise AssertionError(
                            f"repaired stripe {sid} block {fb} differs from the original"
                        )

        return BatchExecutionReport(
            compute_seconds=compute,
            transfer_mb_equiv=moved_elems * itemsize / 2**20,
            gf_bytes_processed=res.gf_bytes,
            outputs=res.outputs,
            stripes=res.stripes,
            pattern_groups=res.groups,
            plan_hits=res.plan_hits,
            plan_misses=res.plan_misses,
            per_node_mb_sent={n: e * itemsize / 2**20 for n, e in sent_elems.items()},
            gf_bytes_by_node=gf_by_node,
        )
