"""HMBR: hybrid multi-block repair (§III-§IV-A).

Every available block is split at the word-aligned boundary ``p0`` (Theorem
1): the *upper* sub-blocks are repaired centrally (CR) while the *lower*
sub-blocks are repaired by f independent pipelines (IR); the two sub-repairs
run in parallel and each new node concatenates its two repaired sub-blocks
(Step 4 of §IV-A).
"""

from __future__ import annotations

from repro.repair._build import add_centralized, add_independent, repaired_name
from repro.repair.context import RepairContext
from repro.repair.model import repair_model, volume_split
from repro.repair.plan import ConcatOp, RepairPlan
from repro.repair.split import scaled_split_tasks, search_split
from repro.repair.topology import build_chain_paths, default_center


def plan_hybrid(
    ctx: RepairContext,
    p: float | None = None,
    center: int | None = None,
    center_policy: str = "fastest-downlink",
    chain_order: str = "index",
    split: str = "search",
    events=(),
) -> RepairPlan:
    """Build the HMBR plan.

    ``split`` chooses how the ratio is derived when ``p`` is not given (see
    :mod:`repro.repair.split` for the trade-offs):

    * ``"search"`` (default) — minimize the fluid-simulated makespan of the
      actual task graph over p; never loses to pure CR or IR.
    * ``"volume"`` — per-node volume bottleneck equalization, the arithmetic
      of the paper's §II-E example (accounts for shared links, closed form);
    * ``"theorem1"`` — the closed-form p0 of §III (T_CR(p0) = T_IR(p0)),
      which treats the two sub-repairs as fully independent.

    ``p`` overrides the ratio outright (used by the p-sweep ablation).

    ``events`` (optional BandwidthEvents) makes the searched split
    *dynamics-aware*: p is chosen against the predicted bandwidth
    trajectory instead of the current snapshot (§VII future work).
    """
    if center is None:
        center = default_center(ctx, center_policy)
    model = repair_model(ctx, center=center, chain_order=chain_order)
    paths_for_search = build_chain_paths(ctx, chain_order)
    if p is not None:
        p0 = float(p)
    elif split == "search":
        cr_full, _, _ = add_centralized(ctx, ctx.prefix("h.cr"), 0.0, 1.0, center)
        ir_full, _, _ = add_independent(ctx, ctx.prefix("h.ir"), 0.0, 1.0, paths_for_search)
        p0, _ = search_split(
            lambda q: scaled_split_tasks(cr_full, ir_full, q), ctx.cluster, events=events
        )
    elif split == "volume":
        p0 = volume_split(ctx, center=center, chain_order=chain_order)
    elif split == "theorem1":
        p0 = model.p0
    else:
        raise ValueError(f"unknown split {split!r} (use 'search', 'volume' or 'theorem1')")
    if not 0.0 <= p0 <= 1.0:
        raise ValueError(f"split ratio {p0} outside [0, 1]")

    cr_tasks, cr_ops, cr_out = add_centralized(ctx, ctx.prefix("h.cr"), 0.0, p0, center)
    paths = build_chain_paths(ctx, chain_order)
    ir_tasks, ir_ops, ir_out = add_independent(ctx, ctx.prefix("h.ir"), p0, 1.0, paths)

    ops = cr_ops + ir_ops
    outputs: dict[int, tuple[int, str]] = {}
    for fb in ctx.failed_blocks:
        node_cr, upper = cr_out[fb]
        node_ir, lower = ir_out[fb]
        if node_cr != node_ir:
            raise AssertionError("CR and IR sub-plans disagree on the new node")
        out = repaired_name(ctx.prefix("h"), fb)
        ops.append(ConcatOp(node_cr, out, (upper, lower)))
        outputs[fb] = (node_cr, out)

    return RepairPlan(
        scheme="HMBR",
        tasks=cr_tasks + ir_tasks,
        ops=ops,
        outputs=outputs,
        meta={
            "p0": p0,
            "split": "override" if p is not None else split,
            "theorem1_p0": model.p0,
            "model_t_cr": model.t_cr,
            "model_t_ir": model.t_ir,
            "model_t_hmbr": model.t_hmbr,
            "center": center,
            "chain_order": chain_order,
            "survivors": ctx.chosen_survivors(),
        },
    )
