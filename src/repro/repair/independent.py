"""Independent pipelined multi-block repair (IR, §II-D).

Each failed block gets its own chain-pipelined single-block repair (RP [16]):
the k survivors form a chain; every hop forwards the running GF-accumulated
partial sum in slices; the chain ends at the failed block's new node.  The f
chains run concurrently and do not cooperate, so every survivor uploads f
(sub-)blocks — the slowest survivor link becomes the bottleneck.
"""

from __future__ import annotations

from repro.repair._build import add_independent
from repro.repair.context import RepairContext
from repro.repair.plan import RepairPlan
from repro.repair.topology import build_chain_paths


def plan_independent(ctx: RepairContext, chain_order: str = "index") -> RepairPlan:
    """Build the IR plan (``chain_order``: "index" or "uplink-desc")."""
    paths = build_chain_paths(ctx, chain_order)
    tasks, ops, outputs = add_independent(ctx, ctx.prefix("ir"), 0.0, 1.0, paths)
    return RepairPlan(
        scheme="IR",
        tasks=tasks,
        ops=ops,
        outputs=outputs,
        meta={
            "chain_order": chain_order,
            "paths": {b: list(p) for b, p in paths.items()},
            "survivors": ctx.chosen_survivors(),
        },
    )
