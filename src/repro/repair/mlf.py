"""Multi-level forwarding repair (MLF) — the rapidly-changing-network scheme.

From "Multi-level Forwarding and Scheduling Recovery Algorithm in
Rapidly-changing Network for Erasure-coded Clusters" (PAPERS.md): instead of
CR's star (one hot downlink) or IR's chains (one long dependency path), the
survivors aggregate GF partials up a shallow shared tree.  Every tree edge
carries the f running partials once, so per-node upload is bounded by f·w
like IR, while the critical path is ``depth`` levels instead of ``k`` hops —
a shape that degrades gracefully when individual links suddenly slow down,
which is why the adaptive re-planner (:mod:`repro.adaptive`) keeps it in its
candidate set.
"""

from __future__ import annotations

import math

from repro.repair._build import add_multilevel, mlf_children
from repro.repair.context import RepairContext
from repro.repair.plan import RepairPlan


def plan_mlf(
    ctx: RepairContext,
    center: int | None = None,
    degree: int | None = None,
    order: str = "uplink-desc",
) -> RepairPlan:
    """Build the MLF plan (aggregation tree over the chosen survivors).

    ``center`` is accepted for planner-registry compatibility and ignored:
    the aggregation root is a survivor (picked by ``order``), not a new
    node.  ``degree=None`` auto-picks ~sqrt(k).
    """
    del center  # the tree root is a survivor, not a new-node center
    k = len(ctx.chosen_survivors())
    resolved_degree = degree if degree is not None else max(2, int(round(math.sqrt(k))))
    tasks, ops, outputs = add_multilevel(
        ctx, ctx.prefix("mlf"), 0.0, 1.0, degree=resolved_degree, order=order
    )
    depth = 0
    frontier = [0]
    children = mlf_children(k, resolved_degree)
    while frontier:
        nxt = [c for p in frontier for c in children[p]]
        if not nxt:
            break
        depth += 1
        frontier = nxt
    root = next(t.src for t in tasks if t.tag.endswith(":dist"))
    return RepairPlan(
        scheme="MLF",
        tasks=tasks,
        ops=ops,
        outputs=outputs,
        meta={
            "degree": resolved_degree,
            "depth": depth,
            "order": order,
            "root": root,
            "survivors": ctx.chosen_survivors(),
        },
    )
