"""The paper's analytical repair-transfer-time model (§III).

Implements the practical-bandwidth cases (§III-B1), the CR / IR transfer
times (Equations 2 and 3), the hybrid split (Equation 4-6) and the optimal
ratio p0 of Lemma 1 / Theorem 1:

    T_CR(p) = p * T_CR          T_IR(p) = (1 - p) * T_IR
    T(p)    = max(T_CR(p), T_IR(p))
    p0      = T_IR / (T_CR + T_IR)        (where T_CR(p0) = T_IR(p0))
    T(p0)   = T_CR * T_IR / (T_CR + T_IR)

HMBR uses this model to *choose* p0; measured times come from the fluid
simulator, mirroring the paper's model-vs-testbed split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.repair.context import RepairContext
from repro.repair.topology import build_chain_paths, default_center


# ------------------------------------------------------------------ #
# §III-B1 practical bandwidth cases
# ------------------------------------------------------------------ #
def bw_single_to_single(uplink: float, downlink: float) -> float:
    """Case 1: bw = min(U_sender, D_receiver)."""
    return min(uplink, downlink)


def bw_single_to_multiple(uplink: float, downlink: float, r: int) -> float:
    """Case 2: sender fans out to r receivers; bw = min(U/r, D_receiver)."""
    if r < 1:
        raise ValueError("receiver count must be >= 1")
    return min(uplink / r, downlink)


def bw_multiple_to_single(uplink: float, downlink: float, s: int) -> float:
    """Case 3: s senders into one receiver; bw = min(U_sender, D/s)."""
    if s < 1:
        raise ValueError("sender count must be >= 1")
    return min(uplink, downlink / s)


# ------------------------------------------------------------------ #
# Equations (2) and (3)
# ------------------------------------------------------------------ #
def t_cr(ctx: RepairContext, center: int | None = None) -> float:
    """Equation (2): CR transfer time.

    Stage 1: k survivors -> center (multiple-to-single, k connections).
    Stage 2: center -> the other f-1 new nodes (single-to-multiple).
    """
    if center is None:
        center = default_center(ctx)
    cl = ctx.cluster
    survivors = ctx.survivor_nodes()
    k = len(survivors)
    d_center = cl[center].downlink
    stage1_bw = min(
        bw_multiple_to_single(cl[n].uplink, d_center, k) for n in survivors
    )
    t1 = ctx.block_size_mb / stage1_bw

    others = [ctx.new_node_of(b) for b in ctx.failed_blocks if ctx.new_node_of(b) != center]
    if not others:
        return t1
    u_center = cl[center].uplink
    stage2_bw = min(
        bw_single_to_multiple(u_center, cl[n].downlink, len(others)) for n in others
    )
    return t1 + ctx.block_size_mb / stage2_bw


def t_ir(ctx: RepairContext, chain_order: str = "index") -> float:
    """Equation (3): IR transfer time, f pipelines over the slowest link.

    T_IR = f * B / min over adjacent (i, j) of bw1(i, j): every adjacent pair
    of every chain carries f blocks in total, so the slowest single link paces
    the whole pipelined repair.
    """
    cl = ctx.cluster
    paths = build_chain_paths(ctx, chain_order)
    min_bw = min(
        bw_single_to_single(cl[a].uplink, cl[b].downlink)
        for path in paths.values()
        for a, b in zip(path[:-1], path[1:])
    )
    return ctx.f * ctx.block_size_mb / min_bw


# ------------------------------------------------------------------ #
# Equations (4)-(6), Lemma 1 and Theorem 1
# ------------------------------------------------------------------ #
def t_cr_of_p(p: float, tcr: float) -> float:
    """Equation (4), CR part: T_CR(p) = p * T_CR."""
    return p * tcr

def t_ir_of_p(p: float, tir: float) -> float:
    """Equation (4), IR part: T_IR(p) = (1-p) * T_IR."""
    return (1.0 - p) * tir


def t_of_p(p: float, tcr: float, tir: float) -> float:
    """Equation (5): T(p) = max(T_CR(p), T_IR(p))."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p={p} outside [0, 1]")
    return max(t_cr_of_p(p, tcr), t_ir_of_p(p, tir))


def optimal_split(tcr: float, tir: float) -> float:
    """The p0 of Theorem 1: T_CR(p0) = T_IR(p0) -> p0 = T_IR/(T_CR+T_IR)."""
    if tcr < 0 or tir < 0:
        raise ValueError("transfer times must be non-negative")
    if tcr == 0 and tir == 0:
        return 0.5  # degenerate: any split is optimal
    return tir / (tcr + tir)


def t_hybrid(tcr: float, tir: float) -> float:
    """T(p0) = T_CR * T_IR / (T_CR + T_IR) (parallel combination)."""
    if tcr == 0 or tir == 0:
        return 0.0
    return tcr * tir / (tcr + tir)


def volume_split(
    ctx: RepairContext,
    center: int | None = None,
    chain_order: str = "index",
) -> float:
    """Contention-aware split: equalize *per-node volume* bottlenecks.

    The §III closed form treats CR and IR as independent, but they share
    links: the center's downlink carries the k CR fetches *and* the IR chain
    ending at the center; every survivor's uplink carries one CR fetch *and*
    f chain hops.  The paper's own §II-E example accounts for exactly this
    (N1' downloads "four sub-blocks, including three from centralized repair
    and one from independent repair").  Generalizing that arithmetic, each
    node's finish time is (bytes through its link) / (link rate), linear in
    p, so T(p) = max of linear functions is convex piecewise-linear; we
    minimize it exactly over the pairwise intersection points.

    This split never does worse than the pure schemes in the volume model
    (p = 0 reduces to IR, p = 1 to CR), restoring the paper's "HMBR always
    outperforms CR and IR" under heavy CR/IR imbalance where the Theorem 1
    split can lose to contention.
    """
    if center is None:
        center = default_center(ctx)
    lines = _volume_lines(ctx, center, chain_order)

    def t_at(p: float) -> float:
        return max(s * p + i for s, i in lines)

    candidates = {0.0, 1.0}
    for i, (s1, i1) in enumerate(lines):
        for s2, i2 in lines[i + 1 :]:
            # Near-parallel lines make (i2-i1)/(s1-s2) ill-conditioned: a
            # slope difference at rounding-noise scale can throw the
            # intersection to a wild p that floating error then lands inside
            # (0, 1).  Skip intersections whose slope gap is below a
            # *relative* tolerance of the slope magnitudes — the optimum of
            # a convex max-of-lines never sits at such a crossing anyway
            # (the endpoints and well-separated crossings cover it).
            denom = s1 - s2
            scale = max(abs(s1), abs(s2), 1e-12)
            if abs(denom) <= 1e-9 * scale:
                continue
            p = (i2 - i1) / denom
            if 0.0 < p < 1.0:
                candidates.add(p)
    return min(candidates, key=t_at)


def _volume_lines(
    ctx: RepairContext, center: int, chain_order: str = "index"
) -> list[tuple[float, float]]:
    """Per-bottleneck finish-time lines ``T = slope * p + intercept``.

    One line per (node, direction) bottleneck of the volume model described
    in :func:`volume_split`; exposed separately so property tests can
    evaluate ``T(p)`` at the split the optimizer returns.
    """
    cl = ctx.cluster
    b = ctx.block_size_mb
    f = ctx.f
    k = ctx.k
    paths = build_chain_paths(ctx, chain_order)

    # lines T = slope * p + intercept, one per (node, direction) bottleneck
    lines: list[tuple[float, float]] = []

    # chain positions: incoming/outgoing hop counts per node over all chains
    in_hops: dict[int, int] = {}
    out_hops: dict[int, int] = {}
    for path in paths.values():
        for a, c in zip(path[:-1], path[1:]):
            out_hops[a] = out_hops.get(a, 0) + 1
            in_hops[c] = in_hops.get(c, 0) + 1

    survivors = ctx.survivor_nodes()
    for n in survivors:
        # uplink: p*B (CR fetch) + (1-p)*B per outgoing chain hop
        oh = out_hops.get(n, 0)
        lines.append(((1 - oh) * b / cl[n].uplink, oh * b / cl[n].uplink))
        # downlink: (1-p)*B per incoming chain hop
        ih = in_hops.get(n, 0)
        if ih:
            lines.append((-ih * b / cl[n].downlink, ih * b / cl[n].downlink))

    # center: downlink gets k fetches (p) + its incoming chain hops (1-p)
    ihc = in_hops.get(center, 0)
    lines.append(
        ((k - ihc) * b / cl[center].downlink, ihc * b / cl[center].downlink)
    )
    # center uplink: distributes f-1 upper sub-blocks
    if f > 1:
        lines.append(((f - 1) * b / cl[center].uplink, 0.0))
    # other new nodes: p (dist) + (1-p) (chain) inbound = constant volume
    for fb in ctx.failed_blocks:
        nn = ctx.new_node_of(fb)
        if nn == center:
            continue
        ih = in_hops.get(nn, 0)
        lines.append(((1 - ih) * b / cl[nn].downlink, ih * b / cl[nn].downlink))
    return lines


@dataclass
class RepairModel:
    """Bundle of model quantities for one context/topology."""

    t_cr: float
    t_ir: float
    p0: float
    t_hmbr: float
    center: int

    def t(self, p: float) -> float:
        return t_of_p(p, self.t_cr, self.t_ir)


def repair_model(
    ctx: RepairContext,
    center: int | None = None,
    chain_order: str = "index",
) -> RepairModel:
    """Evaluate the full §III model for a repair context."""
    if center is None:
        center = default_center(ctx)
    tcr = t_cr(ctx, center)
    tir = t_ir(ctx, chain_order)
    return RepairModel(
        t_cr=tcr,
        t_ir=tir,
        p0=optimal_split(tcr, tir),
        t_hmbr=t_hybrid(tcr, tir),
        center=center,
    )
