"""Multi-node repair (§IV-C): scheduling multi-block repairs across stripes.

When whole nodes fail, many stripes need multi-block repair at once.  Each
stripe's CR part needs a center; naive center selection piles multiple
stripes onto the same well-provisioned new node.  HMBR's enhancement picks
centers with **LFS + LRS**: among the new-node candidates with the *least
frequently selected* count, pick the *least recently selected* one.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.ec.stripe import StripeLayout
from repro.repair.context import RepairContext
from repro.repair.hybrid import plan_hybrid
from repro.repair.centralized import plan_centralized
from repro.repair.independent import plan_independent
from repro.repair.plan import RepairPlan, merge_plans


class CenterScheduler:
    """LFS + LRS new-node selection (the paper's §IV-C array + priority queue).

    ``counts`` is the frequency array; a heap keyed by (last-selected
    timestamp, node id) supplies the least-recently-selected tie-break.
    """

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.last_selected: dict[int, int] = {}
        self._clock = 0

    def pick(self, candidates: list[int]) -> int:
        if not candidates:
            raise ValueError("no center candidates")
        # LFS first
        min_count = min(self.counts.get(c, 0) for c in candidates)
        lfs = [c for c in candidates if self.counts.get(c, 0) == min_count]
        # LRS among ties (never-selected nodes are the "oldest")
        heap = [(self.last_selected.get(c, -1), c) for c in lfs]
        heapq.heapify(heap)
        _, chosen = heap[0]
        self._clock += 1
        self.counts[chosen] = self.counts.get(chosen, 0) + 1
        self.last_selected[chosen] = self._clock
        return chosen

    def load_of(self, node: int) -> int:
        return self.counts.get(node, 0)

    def snapshot(self) -> tuple:
        """Opaque copy of the LFS/LRS state, for planning-only callers.

        Planning-only paths (:meth:`RepairScheduler.estimate_finish_s
        <repro.sched.scheduler.RepairScheduler.estimate_finish_s>`,
        :meth:`Coordinator.plan_repair
        <repro.system.coordinator.Coordinator.plan_repair>` with
        ``commit=False``) must make the same picks a later real repair will,
        without advancing the scheduler — they snapshot first and
        :meth:`restore` after.
        """
        return (dict(self.counts), dict(self.last_selected), self._clock)

    def restore(self, snap: tuple) -> None:
        """Undo every :meth:`pick` made since the matching :meth:`snapshot`."""
        counts, last_selected, clock = snap
        self.counts = dict(counts)
        self.last_selected = dict(last_selected)
        self._clock = clock


@dataclass
class MultiNodeRepairJob:
    """One stripe's share of a multi-node repair."""

    stripe_id: int
    failed_blocks: list[int]
    new_nodes: list[int]
    center: int
    plan: RepairPlan = field(repr=False, default=None)
    #: erasure pattern (a :class:`repro.repair.batch.PatternKey`) when the
    #: repair was planned with ``group_patterns=True``; ``None`` otherwise.
    pattern: object = None


def plan_multi_node(
    cluster: Cluster,
    code: RSCode,
    layout: StripeLayout,
    dead_nodes: list[int],
    replacement_of: dict[int, int],
    block_size_mb: float = 64.0,
    scheme: str = "hmbr",
    enhanced: bool = True,
    survivor_policy: str = "first",
    split: str = "global-search",
    group_patterns: bool = False,
    plan_cache=None,
) -> tuple[RepairPlan, list[MultiNodeRepairJob]]:
    """Plan the repair of every stripe hit by ``dead_nodes``.

    ``replacement_of`` maps each dead node to the fresh node that re-hosts
    its blocks.  With ``enhanced=True`` centers are spread via LFS+LRS; the
    baseline always lets each stripe pick its fastest-downlink new node
    (which concentrates stripes on the same center and congests it).

    With ``group_patterns=True`` stripes are bucketed by erasure pattern
    (code params + surviving-helper set + failed set) *before* center
    scheduling, so LFS+LRS walks pattern groups rather than individual
    stripes and the batched data plane can decode each group with one
    stacked kernel.  Jobs then carry their
    :class:`~repro.repair.batch.PatternKey` and the merged plan's meta
    gains ``pattern_groups``.  A :class:`~repro.repair.batch.PlanCache`
    passed as ``plan_cache`` is warmed with one decode plan per group
    (its accounting lands in ``merged.meta["plan_cache"]``).

    For ``scheme="hmbr"``, ``split`` controls the CR/IR ratio:

    * ``"global-search"`` (default) — one common p chosen by simulating the
      *merged* task graph of every stripe.  Per-stripe isolated splits are
      badly miscalibrated during multi-node repair because they ignore the
      other stripes contending for the same survivor uplinks.
    * ``"per-stripe"`` — each stripe searches its own p in isolation (shown
      as an ablation; loses to global-search under heavy overlap).

    Returns the merged plan (all stripes repaired in parallel) and the
    per-stripe jobs.
    """
    dead = set(dead_nodes)
    missing = dead - set(replacement_of)
    if missing:
        raise ValueError(f"no replacement for dead nodes {sorted(missing)}")
    scheduler = CenterScheduler()
    contexts: list[RepairContext] = []
    for stripe in layout:
        failed = stripe.failed_blocks(dead)
        if not failed:
            continue
        if len(failed) > code.m:
            raise ValueError(f"stripe {stripe.stripe_id} lost {len(failed)} > m blocks")
        new_nodes = [replacement_of[stripe.placement[b]] for b in failed]
        contexts.append(
            RepairContext(
                cluster=cluster,
                code=code,
                stripe=stripe,
                failed_blocks=failed,
                new_nodes=new_nodes,
                block_size_mb=block_size_mb,
                survivor_policy=survivor_policy,
            )
        )
    if not contexts:
        raise ValueError("no stripe was affected by the given dead nodes")

    pattern_of: dict[int, object] = {}
    pattern_groups_meta: list[dict] = []
    if group_patterns:
        from repro.repair.batch import pattern_key

        # Bucket stripes by erasure pattern (first-occurrence order), then
        # schedule group-major: LFS+LRS walks whole pattern groups, keeping
        # each group's stripes adjacent for the batched data plane.
        buckets: dict[object, list[RepairContext]] = {}
        order: list[object] = []
        for ctx in contexts:
            key = pattern_key(code, ctx.chosen_survivors(), ctx.failed_blocks)
            pattern_of[ctx.stripe.stripe_id] = key
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(ctx)
        contexts = [ctx for key in order for ctx in buckets[key]]
        for key in order:
            pattern_groups_meta.append(
                {
                    "survivors": list(key.survivors),
                    "failed": list(key.failed),
                    "stripes": [c.stripe.stripe_id for c in buckets[key]],
                }
            )
            if plan_cache is not None:
                plan_cache.plan_for(code, key.survivors, key.failed)

    work: list[tuple[RepairContext, int]] = []
    for ctx in contexts:
        center = (
            scheduler.pick(ctx.new_nodes)
            if enhanced
            else ctx.pick_center("fastest-downlink")
        )
        work.append((ctx, center))

    common_p: float | None = None
    if scheme == "hmbr" and split == "global-search":
        from repro.repair._build import add_centralized, add_independent
        from repro.repair.split import scaled_split_tasks, search_split
        from repro.repair.topology import build_chain_paths

        cr_all, ir_all = [], []
        for ctx, center in work:
            cr_t, _, _ = add_centralized(ctx, ctx.prefix("h.cr"), 0.0, 1.0, center)
            ir_t, _, _ = add_independent(
                ctx, ctx.prefix("h.ir"), 0.0, 1.0, build_chain_paths(ctx)
            )
            cr_all.extend(cr_t)
            ir_all.extend(ir_t)
        common_p, _ = search_split(
            lambda q: scaled_split_tasks(cr_all, ir_all, q), cluster
        )

    plans: list[RepairPlan] = []
    jobs: list[MultiNodeRepairJob] = []
    for ctx, center in work:
        if scheme == "hmbr":
            plan = plan_hybrid(ctx, center=center, p=common_p)
        elif scheme == "cr":
            plan = plan_centralized(ctx, center=center)
        elif scheme == "ir":
            plan = plan_independent(ctx)
        else:
            raise ValueError(f"unknown scheme {scheme!r}")
        plans.append(plan)
        jobs.append(
            MultiNodeRepairJob(
                stripe_id=ctx.stripe.stripe_id,
                failed_blocks=ctx.failed_blocks,
                new_nodes=ctx.new_nodes,
                center=center,
                plan=plan,
                pattern=pattern_of.get(ctx.stripe.stripe_id),
            )
        )
    merged = merge_plans(plans, scheme=f"multi-node/{scheme}{'+sched' if enhanced else ''}")
    merged.meta["common_p"] = common_p
    if group_patterns:
        merged.meta["pattern_groups"] = pattern_groups_meta
        if plan_cache is not None:
            merged.meta["plan_cache"] = plan_cache.stats()
    return merged, jobs
