"""Repair plans: the common output of every planner.

A plan carries two synchronized views of the same repair:

* ``tasks`` — :mod:`repro.simnet` flow tasks, consumed by the fluid
  simulator to obtain the repair *transfer* time;
* ``ops`` — data-level GF operations in topological order, consumed by
  :class:`repro.repair.executor.PlanExecutor` to repair actual bytes (and
  measure the compute component of Table II).

Buffer naming: every op reads/writes named buffers in per-node workspaces.
Planners use hierarchical names like ``"h.ir/lo/b03"`` so views stay
debuggable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simnet.flows import Task


@dataclass
class SliceOp:
    """``workspace[node][out] = workspace[node][src][start:stop]`` (bytes)."""

    node: int
    out: str
    src: str
    start: int
    stop: int


@dataclass
class TransferOp:
    """Copy buffer ``name`` from ``src_node``'s workspace to ``dst_node``'s."""

    src_node: int
    dst_node: int
    name: str
    rename: str | None = None  # optional name at the destination


@dataclass
class CombineOp:
    """``workspace[node][out] = XOR_i coeffs[i] * workspace[node][srcs[i]]``."""

    node: int
    out: str
    coeffs: tuple[int, ...]
    srcs: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.coeffs) != len(self.srcs):
            raise ValueError("coeffs/srcs length mismatch")
        if not self.srcs:
            raise ValueError("empty combine")


@dataclass
class ConcatOp:
    """``workspace[node][out] = concat(parts...)`` (sub-block join, Step 4)."""

    node: int
    out: str
    parts: tuple[str, ...]


Op = SliceOp | TransferOp | CombineOp | ConcatOp


@dataclass
class RepairPlan:
    """A fully-specified multi-block repair for one stripe."""

    scheme: str
    tasks: list[Task]
    ops: list[Op]
    #: failed block index -> (new node id, buffer name of the repaired block)
    outputs: dict[int, tuple[int, str]]
    meta: dict = field(default_factory=dict)

    def total_transfer_mb(self) -> float:
        """Sum of bytes put on the wire (pipeline hops each count)."""
        total = 0.0
        for t in self.tasks:
            hops = getattr(t, "hops", ())
            total += getattr(t, "size_mb", 0.0) * len(hops)
        return total

    def task_ids(self) -> list[str]:
        return [t.task_id for t in self.tasks]

    def merged_with(self, other: "RepairPlan", prefix_self: str, prefix_other: str) -> "RepairPlan":
        """Combine two plans into one (used by multi-stripe scheduling)."""
        renamed_self = rename_plan(self, prefix_self)
        renamed_other = rename_plan(other, prefix_other)
        return RepairPlan(
            scheme=f"{self.scheme}+{other.scheme}",
            tasks=renamed_self.tasks + renamed_other.tasks,
            ops=renamed_self.ops + renamed_other.ops,
            outputs={**renamed_self.outputs, **renamed_other.outputs},
            meta={"left": renamed_self.meta, "right": renamed_other.meta},
        )


def rename_plan(plan: RepairPlan, prefix: str) -> RepairPlan:
    """Prefix every task id (buffer names are left alone: they are already
    namespaced per stripe by the planners)."""
    import dataclasses

    tasks = []
    for t in plan.tasks:
        tasks.append(
            dataclasses.replace(
                t,
                task_id=prefix + t.task_id,
                deps=tuple(prefix + d for d in t.deps),
            )
        )
    return RepairPlan(plan.scheme, tasks, list(plan.ops), dict(plan.outputs), dict(plan.meta))


def reweighted(plan: RepairPlan, weight: float) -> RepairPlan:
    """A copy of the plan whose flows run at the given fair-share weight.

    ``weight < 1`` throttles the repair against concurrent foreground
    traffic (weight 0.5 = half a client flow's share at any shared link);
    the data view is untouched.
    """
    import dataclasses

    if weight <= 0:
        raise ValueError("weight must be positive")
    tasks = []
    for t in plan.tasks:
        tasks.append(
            t if not hasattr(t, "weight") else dataclasses.replace(t, weight=weight)
        )
    return RepairPlan(
        plan.scheme, tasks, list(plan.ops), dict(plan.outputs),
        {**plan.meta, "weight": weight},
    )


def flow_signature(tasks) -> tuple:
    """Canonical, hashable description of a task DAG.

    One tuple per task — ``(task_id, kind, payload, hops, deps, weight,
    tag)`` — sorted by task id, where ``payload`` is ``size_mb`` for flows
    and ``duration_s`` for delay tasks.  Two task lists with equal
    signatures present the identical flow topology to the fluid simulator,
    so their makespans agree exactly; the reliability differential suite
    compares metadata-only plans against byte-materializing ones through
    this function.
    """
    rows = []
    for t in tasks:
        if hasattr(t, "hops"):
            payload = float(t.size_mb)
            hops = tuple(t.hops)
            weight = float(getattr(t, "weight", 1.0))
        else:  # DelayTask
            payload = float(t.duration_s)
            hops = ()
            weight = 1.0
        rows.append(
            (
                t.task_id,
                type(t).__name__,
                payload,
                hops,
                tuple(sorted(t.deps)),
                weight,
                getattr(t, "tag", ""),
            )
        )
    return tuple(sorted(rows))


def merge_plans(plans: list[RepairPlan], scheme: str) -> RepairPlan:
    """Concatenate independently-runnable plans (e.g. one per stripe)."""
    tasks: list[Task] = []
    ops: list[Op] = []
    outputs: dict[int, tuple[int, str]] = {}
    metas = []
    for i, p in enumerate(plans):
        renamed = rename_plan(p, f"st{i}:")
        tasks.extend(renamed.tasks)
        ops.extend(renamed.ops)
        metas.append(p.meta)
    return RepairPlan(scheme, tasks, ops, outputs, {"stripes": metas})
