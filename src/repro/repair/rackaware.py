"""Rack-aware HMBR (§IV-B): rack-aware CR and tree-pipelined IR.

Rack-aware CR elects a *local collector* inside every rack holding survivors;
other survivors send blocks inner-rack to it, it computes f intermediate
blocks (the rack's partial GF sums, one per failed block) and ships only
those f intermediates cross-rack to the *global collector* (the CR center).
Cross-rack traffic drops from one block per survivor to f per rack.

Tree-pipelined IR replaces the f identical chains with per-job repair trees
built greedily over the **least frequently used links** (tracked across jobs)
so independent single-block repairs stop contending on the same links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ec.stripe import block_name
from repro.repair._build import repaired_name
from repro.repair.context import RepairContext
from repro.repair.plan import CombineOp, ConcatOp, Op, RepairPlan, SliceOp, TransferOp
from repro.repair.topology import default_center
from repro.simnet.flows import Flow, Task


# ------------------------------------------------------------------ #
# Rack-aware centralized repair
# ------------------------------------------------------------------ #
def _build_rack_aware_cr(
    ctx: RepairContext,
    prefix: str,
    frac_start: float,
    frac_stop: float,
    center: int,
    intermediate_policy: str = "paper",
) -> tuple[list[Task], list[Op], dict[int, tuple[int, str]]]:
    """Emit the rack-aware CR sub-plan for a fraction range.

    ``intermediate_policy``:
      * ``"paper"`` — every rack always computes and ships f intermediates
        (§IV-B1 verbatim; slightly wasteful when a rack holds < f survivors,
        which is exactly why rack-aware HMBR degrades at f = rack size in
        Experiment 4).
      * ``"adaptive"`` — a rack ships raw blocks instead when that is cheaper
        (min(f, survivors-in-rack) transfers).
    """
    frac = frac_stop - frac_start
    size = frac * ctx.block_size_mb
    cl = ctx.cluster
    survivors = ctx.chosen_survivors()
    rmat = np.asarray(ctx.repair_matrix())
    col_of = {b: i for i, b in enumerate(survivors)}
    sid = ctx.stripe.stripe_id

    tasks: list[Task] = []
    ops: list[Op] = []
    outputs: dict[int, tuple[int, str]] = {}

    by_rack: dict[int, list[int]] = {}
    for b in survivors:
        by_rack.setdefault(cl.rack_of(ctx.stripe.placement[b]), []).append(b)

    center_inputs: list[str] = []  # buffer names summed at the global collector
    center_input_coeffs: list[int] = []
    center_dep_rows: dict[int, list[str]] = {fb: [] for fb in ctx.failed_blocks}
    per_row_inputs: dict[int, list[tuple[int, str]]] = {fb: [] for fb in ctx.failed_blocks}

    for rack, blocks in sorted(by_rack.items()):
        nodes = [ctx.stripe.placement[b] for b in blocks]
        ship_raw = intermediate_policy == "adaptive" and len(blocks) <= ctx.f
        # slice every survivor's block
        for b, node in zip(blocks, nodes):
            ops.append(
                SliceOp(node, f"{prefix}/in/b{b:02d}", block_name(sid, b), frac_start, frac_stop)
            )
        if ship_raw or len(blocks) == 1 and intermediate_policy == "adaptive":
            # send raw sliced blocks straight to the global collector
            for b, node in zip(blocks, nodes):
                name = f"{prefix}/in/b{b:02d}"
                ops.append(TransferOp(node, center, name))
                tid = f"{prefix}:raw:r{rack}:b{b:02d}"
                tasks.append(Flow(tid, node, center, size, tag=f"{prefix}:cross"))
                for row, fb in enumerate(ctx.failed_blocks):
                    per_row_inputs[fb].append((int(rmat[row, col_of[b]]), name))
                    center_dep_rows[fb].append(tid)
            continue
        # elect the local collector: the rack survivor with the best uplink
        collector = max(nodes, key=lambda n: (cl[n].uplink, -n))
        fetch_ids = []
        for b, node in zip(blocks, nodes):
            if node == collector:
                continue
            name = f"{prefix}/in/b{b:02d}"
            ops.append(TransferOp(node, collector, name))
            tid = f"{prefix}:local:r{rack}:b{b:02d}"
            tasks.append(Flow(tid, node, collector, size, tag=f"{prefix}:local"))
            fetch_ids.append(tid)
        # f intermediate blocks, then cross-rack shipment
        for row, fb in enumerate(ctx.failed_blocks):
            inter = f"{prefix}/mid/r{rack}/b{fb:02d}"
            coeffs = tuple(int(rmat[row, col_of[b]]) for b in blocks)
            srcs = tuple(f"{prefix}/in/b{b:02d}" for b in blocks)
            ops.append(CombineOp(collector, inter, coeffs, srcs))
            ops.append(TransferOp(collector, center, inter))
            tid = f"{prefix}:mid:r{rack}:b{fb:02d}"
            tasks.append(
                Flow(tid, collector, center, size, deps=tuple(fetch_ids), tag=f"{prefix}:cross")
            )
            per_row_inputs[fb].append((1, inter))
            center_dep_rows[fb].append(tid)

    all_deps = tuple(tid for deps in center_dep_rows.values() for tid in deps)
    for fb in ctx.failed_blocks:
        out = repaired_name(prefix, fb)
        coeffs = tuple(c for c, _ in per_row_inputs[fb])
        srcs = tuple(n for _, n in per_row_inputs[fb])
        ops.append(CombineOp(center, out, coeffs, srcs))
        target = ctx.new_node_of(fb)
        if target != center:
            ops.append(TransferOp(center, target, out))
            tasks.append(
                Flow(
                    f"{prefix}:dist:b{fb:02d}",
                    center,
                    target,
                    size,
                    deps=all_deps,
                    tag=f"{prefix}:dist",
                )
            )
        outputs[fb] = (target, out)
    return tasks, ops, outputs


def plan_rack_aware_centralized(
    ctx: RepairContext,
    center: int | None = None,
    intermediate_policy: str = "paper",
) -> RepairPlan:
    """Rack-aware CR as a standalone scheme."""
    if center is None:
        center = default_center(ctx)
    tasks, ops, outputs = _build_rack_aware_cr(ctx, ctx.prefix("racr"), 0.0, 1.0, center, intermediate_policy)
    return RepairPlan(
        scheme="RackAwareCR",
        tasks=tasks,
        ops=ops,
        outputs=outputs,
        meta={"center": center, "policy": intermediate_policy},
    )


# ------------------------------------------------------------------ #
# Tree-pipelined independent repair
# ------------------------------------------------------------------ #
@dataclass
class LinkUsageTracker:
    """Link and NIC usage counts shared across repair jobs.

    Besides per-directed-link counts ("least frequently used link", §IV-B2),
    per-node send/receive counts are kept separately for cross-rack and
    inner-rack traffic: two *distinct* links that share an endpoint still
    share that endpoint's (cross-rack) NIC capacity, so the tree builder must
    spread over nodes, not just over link identities.
    """

    counts: dict[tuple[int, int], int] = field(default_factory=dict)
    node_out: dict[tuple[int, bool], int] = field(default_factory=dict)
    node_in: dict[tuple[int, bool], int] = field(default_factory=dict)

    def usage(self, u: int, v: int) -> int:
        return self.counts.get((u, v), 0)

    def nic_load(self, u: int, v: int, cross: bool) -> int:
        """Combined sender/receiver NIC occupancy for a prospective edge."""
        return self.node_out.get((u, cross), 0) + self.node_in.get((v, cross), 0)

    def use(self, u: int, v: int, cross: bool = False) -> None:
        self.counts[(u, v)] = self.counts.get((u, v), 0) + 1
        self.node_out[(u, cross)] = self.node_out.get((u, cross), 0) + 1
        self.node_in[(v, cross)] = self.node_in.get((v, cross), 0) + 1


def _edge_key(ctx: RepairContext, tracker: LinkUsageTracker, child: int, par: int):
    """Greedy selection key: inner-rack links first (cross-rack bandwidth is
    the scarce resource), then least-used links on least-loaded NICs, then
    the fastest link; node ids break remaining ties deterministically."""
    cl = ctx.cluster
    cross = not cl.same_rack(child, par)
    return (
        int(cross),
        tracker.usage(child, par),
        tracker.nic_load(child, par, cross),
        -min(cl[child].effective_uplink(cross), cl[par].effective_downlink(cross)),
        child,
        par,
    )


def _build_repair_tree(
    ctx: RepairContext,
    root: int,
    survivors_nodes: list[int],
    tracker: LinkUsageTracker,
    max_children: int,
) -> dict[int, int]:
    """Greedy least-frequently-used-link tree: child node -> parent node.

    Implemented as a lazy-revalidation heap: all key components (link usage,
    NIC load) are monotone non-decreasing as edges are chosen, so a popped
    entry whose recomputed key grew is simply re-pushed — the heap minimum
    is always the true greedy choice.  O(k^2 log k) instead of the naive
    O(k^3) scan, which dominates wide-stripe rack-aware planning.
    """
    import heapq

    children_count = {root: 0}
    parent: dict[int, int] = {}
    unconnected = set(survivors_nodes)
    heap: list[tuple] = []

    def push_edges_to(par: int) -> None:
        for child in unconnected:
            heapq.heappush(heap, (_edge_key(ctx, tracker, child, par), child, par))

    push_edges_to(root)
    while unconnected:
        while True:
            if not heap:
                raise ValueError(
                    f"cannot attach {len(unconnected)} nodes with max_children={max_children}"
                )
            key, child, par = heapq.heappop(heap)
            if child not in unconnected or children_count.get(par, 0) >= max_children:
                continue
            fresh = _edge_key(ctx, tracker, child, par)
            if fresh != key:
                heapq.heappush(heap, (fresh, child, par))
                continue
            break
        parent[child] = par
        tracker.use(child, par, cross=not ctx.cluster.same_rack(child, par))
        children_count[par] = children_count.get(par, 0) + 1
        children_count[child] = 0
        unconnected.discard(child)
        if max_children > 0:
            push_edges_to(child)
    return parent


def _build_tree_ir(
    ctx: RepairContext,
    prefix: str,
    frac_start: float,
    frac_stop: float,
    tracker: LinkUsageTracker | None = None,
    max_children: int = 2,
) -> tuple[list[Task], list[Op], dict[int, tuple[int, str]]]:
    """Emit tree-pipelined IR for a fraction range."""
    frac = frac_stop - frac_start
    size = frac * ctx.block_size_mb
    tracker = tracker if tracker is not None else LinkUsageTracker()
    survivors = ctx.chosen_survivors()
    node_of = {b: ctx.stripe.placement[b] for b in survivors}
    block_of = {v: k for k, v in node_of.items()}
    rmat = np.asarray(ctx.repair_matrix())
    col_of = {b: i for i, b in enumerate(survivors)}
    sid = ctx.stripe.stripe_id

    tasks: list[Task] = []
    ops: list[Op] = []
    outputs: dict[int, tuple[int, str]] = {}
    sliced: set[int] = set()

    for row, fb in enumerate(ctx.failed_blocks):
        root = ctx.new_node_of(fb)
        parent = _build_repair_tree(ctx, root, list(node_of.values()), tracker, max_children)
        children: dict[int, list[int]] = {}
        for c, p in parent.items():
            children.setdefault(p, []).append(c)

        # post-order emission: leaves first
        def emit(node: int) -> str:
            """Emit ops computing ``node``'s partial; returns its buffer name."""
            kid_bufs = [emit(c) for c in sorted(children.get(node, []))]
            # after a child's partial is computed, it is transferred up
            local_bufs: list[str] = []
            local_coeffs: list[int] = []
            if node != root:
                b = block_of[node]
                sname = f"{prefix}/in/b{b:02d}"
                if node not in sliced:
                    ops.append(
                        SliceOp(node, sname, block_name(sid, b), frac_start, frac_stop)
                    )
                    sliced.add(node)
                local_bufs.append(sname)
                local_coeffs.append(int(rmat[row, col_of[b]]))
            for c in sorted(children.get(node, [])):
                up_name = f"{prefix}/t{fb:02d}/up{c}"
                local_bufs.append(up_name)
                local_coeffs.append(1)
            partial = f"{prefix}/t{fb:02d}/p{node}"
            ops.append(CombineOp(node, partial, tuple(local_coeffs), tuple(local_bufs)))
            if node != root:
                ops.append(TransferOp(node, parent[node], partial, rename=f"{prefix}/t{fb:02d}/up{node}"))
                tasks.append(
                    Flow(
                        f"{prefix}:tree:b{fb:02d}:e{node}-{parent[node]}",
                        node,
                        parent[node],
                        size,
                        tag=f"{prefix}:tree",
                    )
                )
            return partial

        # ensure children partials are transferred before parents combine:
        # emit() already interleaves Combine/Transfer in post-order.
        root_partial = emit(root)
        out = repaired_name(prefix, fb)
        ops.append(CombineOp(root, out, (1,), (root_partial,)))
        outputs[fb] = (root, out)
    return tasks, ops, outputs


def plan_tree_independent(
    ctx: RepairContext,
    tracker: LinkUsageTracker | None = None,
    max_children: int = 2,
) -> RepairPlan:
    """Tree-pipelined IR as a standalone scheme."""
    tasks, ops, outputs = _build_tree_ir(ctx, ctx.prefix("tir"), 0.0, 1.0, tracker, max_children)
    return RepairPlan(
        scheme="TreeIR",
        tasks=tasks,
        ops=ops,
        outputs=outputs,
        meta={"max_children": max_children},
    )


# ------------------------------------------------------------------ #
# Rack-aware HMBR
# ------------------------------------------------------------------ #
def plan_rack_aware_hybrid(
    ctx: RepairContext,
    center: int | None = None,
    intermediate_policy: str = "paper",
    max_children: int = 2,
    p: float | None = None,
    split: str = "search",
) -> RepairPlan:
    """Rack-aware HMBR: rack-aware CR on the upper sub-blocks, tree IR below.

    The closed-form §III model does not cover the collector/tree topology,
    so the split is chosen by simulation: either a full grid search over the
    combined task graph (``split="search"``, default — never loses to the
    pure rack-aware sub-schemes) or the Theorem 1 formula applied to the two
    sub-schemes' simulated full-block times (``split="sim-theorem1"``).
    """
    from repro.repair.split import scaled_split_tasks, search_split
    from repro.simnet.fluid import FluidSimulator

    if center is None:
        center = default_center(ctx)
    if p is not None:
        p0 = float(p)
    elif split == "search":
        cr_full, _, _ = _build_rack_aware_cr(
            ctx, ctx.prefix("rh.cr"), 0.0, 1.0, center, intermediate_policy
        )
        ir_full, _, _ = _build_tree_ir(ctx, ctx.prefix("rh.ir"), 0.0, 1.0, None, max_children)
        p0, _ = search_split(
            lambda q: scaled_split_tasks(cr_full, ir_full, q), ctx.cluster
        )
    elif split == "sim-theorem1":
        sim = FluidSimulator(ctx.cluster)
        tcr = sim.run(
            plan_rack_aware_centralized(ctx, center, intermediate_policy).tasks
        ).makespan
        tir = sim.run(plan_tree_independent(ctx, max_children=max_children).tasks).makespan
        p0 = tir / (tcr + tir) if (tcr + tir) > 0 else 0.5
    else:
        raise ValueError(f"unknown split {split!r} (use 'search' or 'sim-theorem1')")

    cr_tasks, cr_ops, cr_out = _build_rack_aware_cr(
        ctx, ctx.prefix("rh.cr"), 0.0, p0, center, intermediate_policy
    )
    ir_tasks, ir_ops, ir_out = _build_tree_ir(ctx, ctx.prefix("rh.ir"), p0, 1.0, None, max_children)

    ops = cr_ops + ir_ops
    outputs: dict[int, tuple[int, str]] = {}
    for fb in ctx.failed_blocks:
        node_cr, upper = cr_out[fb]
        node_ir, lower = ir_out[fb]
        if node_cr != node_ir:
            raise AssertionError("rack-aware CR and tree IR disagree on the new node")
        out = repaired_name(ctx.prefix("rh"), fb)
        ops.append(ConcatOp(node_cr, out, (upper, lower)))
        outputs[fb] = (node_cr, out)

    return RepairPlan(
        scheme="RackAwareHMBR",
        tasks=cr_tasks + ir_tasks,
        ops=ops,
        outputs=outputs,
        meta={
            "p0": p0,
            "split": "override" if p is not None else split,
            "center": center,
            "policy": intermediate_policy,
        },
    )
