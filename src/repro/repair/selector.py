"""Automatic repair-scheme selection.

A real coordinator with a bandwidth table does not need the operator to pick
CR vs IR vs HMBR per failure: it can score candidate plans in the simulator
and dispatch the fastest.  HMBR's searched split already dominates CR and IR
for a single stripe, but the selector also covers:

* single-block failures, where the star / chain / PPR baselines compete;
* rack topologies, where the rack-aware variants may or may not pay off
  (Experiment 4 shows they lose when f reaches the rack size);
* callers that want the decision trace (every candidate's predicted time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.repair.centralized import plan_centralized
from repro.repair.context import RepairContext
from repro.repair.hybrid import plan_hybrid
from repro.repair.independent import plan_independent
from repro.repair.plan import RepairPlan
from repro.repair.rackaware import plan_rack_aware_hybrid
from repro.repair.singleblock import plan_chain, plan_ppr, plan_star
from repro.simnet.fluid import FluidSimulator


@dataclass
class SchemeChoice:
    """The selector's decision, with the full candidate scoreboard."""

    scheme: str
    plan: RepairPlan
    predicted_s: float
    candidates: dict[str, float]


def _default_candidates(ctx: RepairContext) -> dict[str, callable]:
    """Candidate planners appropriate for the context's failure shape."""
    has_racks = len({ctx.cluster[n].rack for n in ctx.cluster.node_ids()}) > 1
    if ctx.f == 1:
        cands = {"star": plan_star, "chain": plan_chain, "ppr": plan_ppr,
                 "hmbr": plan_hybrid}
    else:
        cands = {"cr": plan_centralized, "ir": plan_independent, "hmbr": plan_hybrid}
    if has_racks:
        cands["rack-hmbr"] = plan_rack_aware_hybrid
    return cands


def choose_scheme(
    ctx: RepairContext,
    candidates: dict[str, callable] | None = None,
    events=(),
) -> SchemeChoice:
    """Score every candidate plan in the simulator and return the fastest.

    ``candidates`` maps name -> planner(ctx); defaults depend on f and the
    rack structure.  ``events`` (bandwidth events) are applied during
    scoring, so the choice is dynamics-aware when a trajectory is known.
    """
    cands = candidates if candidates is not None else _default_candidates(ctx)
    if not cands:
        raise ValueError("no candidate schemes supplied")
    sim = FluidSimulator(ctx.cluster)
    scored: dict[str, tuple[float, RepairPlan]] = {}
    for name, planner in cands.items():
        plan = planner(ctx)
        t = sim.run(plan.tasks, events=events).makespan
        scored[name] = (t, plan)
    best = min(scored, key=lambda nm: scored[nm][0])
    return SchemeChoice(
        scheme=best,
        plan=scored[best][1],
        predicted_s=scored[best][0],
        candidates={nm: t for nm, (t, _) in scored.items()},
    )
