"""Single-block repair schemes: the baselines IR builds on (§II-D, §VI).

Wide-stripe papers optimize the single-block case first; HMBR's IR module is
"pipelined single-block repair, run f times".  This module provides the three
classic single-block schemes as standalone planners over the same plan IR:

* **star** — conventional repair: k survivors send to the new node, which
  decodes (the f = 1 special case of CR).
* **chain (RP [16])** — repair pipelining: survivors form a chain, each hop
  forwards the GF-accumulated partial in slices; time ~ B / min-link
  regardless of k.
* **ppr (PPR [8])** — partial-parallel repair: survivors pair up over
  ceil(log2(k+1)) rounds, halving the active senders each round; each round
  moves B bytes per pair in parallel.

All three produce executable + simulatable plans and are compared in the
benchmarks (the chain's k-independence is the reason wide stripes remain
repairable at all).
"""

from __future__ import annotations

import numpy as np

from repro.ec.stripe import block_name
from repro.repair._build import repaired_name
from repro.repair.context import RepairContext
from repro.repair.plan import CombineOp, Op, RepairPlan, SliceOp, TransferOp
from repro.simnet.flows import Flow, PipelineFlow, Task


def _single_failure(ctx: RepairContext) -> int:
    if ctx.f != 1:
        raise ValueError(f"single-block planners need f = 1, got f = {ctx.f}")
    return ctx.failed_blocks[0]


def plan_star(ctx: RepairContext) -> RepairPlan:
    """Conventional single-block repair: everyone sends to the new node."""
    fb = _single_failure(ctx)
    new_node = ctx.new_node_of(fb)
    survivors = ctx.chosen_survivors()
    rmat = np.asarray(ctx.repair_matrix())[0]
    sid = ctx.stripe.stripe_id
    prefix = ctx.prefix("star")

    tasks: list[Task] = []
    ops: list[Op] = []
    names = []
    for b in survivors:
        node = ctx.stripe.placement[b]
        name = f"{prefix}/in/b{b:02d}"
        ops.append(SliceOp(node, name, block_name(sid, b), 0.0, 1.0))
        ops.append(TransferOp(node, new_node, name))
        tasks.append(Flow(f"{prefix}:fetch:b{b:02d}", node, new_node, ctx.block_size_mb))
        names.append(name)
    out = repaired_name(prefix, fb)
    ops.append(CombineOp(new_node, out, tuple(int(c) for c in rmat), tuple(names)))
    return RepairPlan("StarSingle", tasks, ops, {fb: (new_node, out)}, {"new_node": new_node})


def plan_chain(ctx: RepairContext, chain_order: str = "index") -> RepairPlan:
    """Repair pipelining (RP): one chain through the survivors."""
    from repro.repair._build import add_independent
    from repro.repair.topology import build_chain_paths

    _single_failure(ctx)
    paths = build_chain_paths(ctx, chain_order)
    tasks, ops, outputs = add_independent(ctx, ctx.prefix("rp"), 0.0, 1.0, paths)
    return RepairPlan("ChainSingle", tasks, ops, outputs, {"chain_order": chain_order})


def plan_ppr(ctx: RepairContext) -> RepairPlan:
    """Partial-parallel repair (PPR): log2 rounds of pairwise aggregation.

    Round r: active holders pair up; the sender of each pair transfers its
    partial to the receiver, which XOR-aggregates.  After ceil(log2(k+1))
    rounds one node holds the full sum and forwards it to the new node (if
    it is not already there).  Wall-clock ~ (log2 k) * B / bw instead of the
    star's k * B / bw at the choke point.
    """
    fb = _single_failure(ctx)
    new_node = ctx.new_node_of(fb)
    survivors = ctx.chosen_survivors()
    rmat = np.asarray(ctx.repair_matrix())[0]
    sid = ctx.stripe.stripe_id
    prefix = ctx.prefix("ppr")

    tasks: list[Task] = []
    ops: list[Op] = []

    # each survivor starts with its scaled block as the local partial
    partial_of: dict[int, str] = {}
    for col, b in enumerate(survivors):
        node = ctx.stripe.placement[b]
        in_name = f"{prefix}/in/b{b:02d}"
        ops.append(SliceOp(node, in_name, block_name(sid, b), 0.0, 1.0))
        pname = f"{prefix}/p/{node}/r0"
        ops.append(CombineOp(node, pname, (int(rmat[col]),), (in_name,)))
        partial_of[node] = pname

    holders = [ctx.stripe.placement[b] for b in survivors]
    last_round_task: dict[int, str] = {}
    rnd = 0
    while len(holders) > 1:
        rnd += 1
        nxt: list[int] = []
        for i in range(0, len(holders) - 1, 2):
            sender, receiver = holders[i + 1], holders[i]
            up_name = f"{prefix}/up/{sender}/r{rnd}"
            ops.append(TransferOp(sender, receiver, partial_of[sender], rename=up_name))
            merged = f"{prefix}/p/{receiver}/r{rnd}"
            ops.append(
                CombineOp(receiver, merged, (1, 1), (partial_of[receiver], up_name))
            )
            partial_of[receiver] = merged
            deps = tuple(
                d
                for d in (last_round_task.get(sender), last_round_task.get(receiver))
                if d
            )
            tid = f"{prefix}:r{rnd}:{sender}->{receiver}"
            tasks.append(Flow(tid, sender, receiver, ctx.block_size_mb, deps=deps))
            last_round_task[receiver] = tid
            nxt.append(receiver)
        if len(holders) % 2:
            nxt.append(holders[-1])
        holders = nxt

    root = holders[0]
    out = repaired_name(prefix, fb)
    if root != new_node:
        ops.append(TransferOp(root, new_node, partial_of[root], rename=out))
        deps = tuple(d for d in (last_round_task.get(root),) if d)
        tasks.append(Flow(f"{prefix}:final", root, new_node, ctx.block_size_mb, deps=deps))
    else:  # pragma: no cover - root is a survivor, never the new node
        ops.append(CombineOp(new_node, out, (1,), (partial_of[root],)))
    return RepairPlan(
        "PPRSingle",
        tasks,
        ops,
        {fb: (new_node, out)},
        {"rounds": rnd + 1, "new_node": new_node},
    )


SINGLE_BLOCK_SCHEMES = {
    "star": plan_star,
    "chain": plan_chain,
    "ppr": plan_ppr,
}
