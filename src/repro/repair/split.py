"""Split-ratio optimization policies for HMBR.

Three ways to choose the CR/IR split ratio p, strongest last:

* ``theorem1`` — the paper's closed form (§III, Theorem 1), assuming the two
  sub-repairs never share a link.
* ``volume``  — per-node volume equalization (the §II-E example arithmetic),
  accounting for shared links but assuming an ideal schedule.
* ``search``  — evaluate the *actual* planned task graph in the fluid
  simulator over a grid of p and refine around the best point.  The
  coordinator has the full bandwidth table (§IV assumption), so this is
  implementable in a real system; at p = 0 / p = 1 the plan degenerates to
  pure IR / CR, so searched HMBR never loses to either under the
  simulator's fair-sharing semantics.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

import dataclasses

from repro.cluster.topology import Cluster
from repro.simnet.flows import DelayTask, Task
from repro.simnet.fluid import FluidSimulator


def scaled_split_tasks(
    cr_full: list[Task], ir_full: list[Task], p: float
) -> list[Task]:
    """Tasks for split ``p`` from full-block reference sub-plans.

    Transfer sizes are linear in the sub-block fraction, so the CR sub-plan
    built for the whole block scales by ``p`` and the IR one by ``1 - p`` —
    no need to re-plan per candidate p during the search.
    """
    out: list[Task] = []
    for t in cr_full:
        out.append(t if isinstance(t, DelayTask) else dataclasses.replace(t, size_mb=t.size_mb * p))
    for t in ir_full:
        out.append(t if isinstance(t, DelayTask) else dataclasses.replace(t, size_mb=t.size_mb * (1.0 - p)))
    return out


def search_split(
    build_tasks: Callable[[float], list[Task]],
    cluster: Cluster,
    coarse_points: int = 9,
    refine_rounds: int = 2,
    refine_points: int = 5,
    events=(),
) -> tuple[float, float]:
    """Grid-and-refine minimization of simulated makespan over p in [0, 1].

    Returns ``(best_p, best_makespan)``.  T(p) is piecewise smooth but not
    guaranteed convex under fair sharing, hence grid search instead of
    golden section; total simulations = coarse + rounds * refine.
    """
    sim = FluidSimulator(cluster)

    def t_of(p: float) -> float:
        return sim.run(build_tasks(p), events=events).makespan

    ps = list(np.linspace(0.0, 1.0, coarse_points))
    ts = [t_of(p) for p in ps]
    best_i = int(np.argmin(ts))
    best_p, best_t = ps[best_i], ts[best_i]
    lo = ps[max(0, best_i - 1)]
    hi = ps[min(len(ps) - 1, best_i + 1)]
    for _ in range(refine_rounds):
        grid = list(np.linspace(lo, hi, refine_points + 2))[1:-1]
        for p in grid:
            t = t_of(p)
            if t < best_t:
                best_p, best_t = p, t
        span = (hi - lo) / 4
        lo, hi = max(0.0, best_p - span), min(1.0, best_p + span)
    return float(best_p), float(best_t)
