"""Topology decisions shared by the model and the planners.

The analytical model (§III-B) and the executable planners must agree on the
*same* center node and pipeline paths, otherwise HMBR's p0 would be computed
for a different topology than the one executed.  All such decisions are made
here, once.
"""

from __future__ import annotations

from repro.repair.context import RepairContext


def default_center(ctx: RepairContext, policy: str = "fastest-downlink") -> int:
    """CR center selection (a new node; see RepairContext.pick_center)."""
    return ctx.pick_center(policy)


def chain_survivor_order(ctx: RepairContext, order: str = "index") -> list[int]:
    """Order in which survivors appear on every IR chain.

    ``"index"`` — stripe/block-index order (what RP does by default);
    ``"uplink-desc"`` — fastest uploader first, so the slowest survivor sits
    next to the (well-provisioned) new node, a cheap heuristic ablated in the
    benchmarks.
    """
    nodes = ctx.survivor_nodes()
    if order == "index":
        return nodes
    if order == "uplink-desc":
        return sorted(nodes, key=lambda n: (-ctx.cluster[n].uplink, n))
    raise ValueError(f"unknown chain order {order!r}")


def build_chain_paths(ctx: RepairContext, order: str = "index") -> dict[int, list[int]]:
    """One pipeline path per failed block: survivors (shared order) + new node."""
    base = chain_survivor_order(ctx, order)
    return {b: base + [ctx.new_node_of(b)] for b in ctx.failed_blocks}
