"""Static validation of repair plans.

A plan is executed twice — by the fluid simulator (timing view) and by the
executor/agents (data view) — so inconsistencies between the two views are a
dangerous class of bug.  This module checks a plan *without running it*:

* task ids unique, dependencies resolvable and acyclic;
* every op reads buffers that an earlier op (or the initial stripe layout)
  produced **on the same node**;
* every declared output is actually produced at its declared node;
* the data view's transfer volume matches the timing view's within the
  sub-block rounding tolerance.

The coordinator calls :func:`validate_plan` before dispatching agent
commands; tests fuzz planners against it.
"""

from __future__ import annotations

from collections import defaultdict

from repro.ec.stripe import block_name
from repro.repair.context import RepairContext
from repro.repair.plan import CombineOp, ConcatOp, RepairPlan, SliceOp, TransferOp
from repro.simnet.flows import DelayTask, validate_tasks


class PlanValidationError(ValueError):
    """A repair plan failed static validation."""


def _check_task_graph_acyclic(plan: RepairPlan) -> None:
    by_id = validate_tasks(plan.tasks)
    state: dict[str, int] = {}

    def visit(tid: str, stack: tuple[str, ...]) -> None:
        if state.get(tid) == 2:
            return
        if state.get(tid) == 1:
            raise PlanValidationError(f"dependency cycle through {tid!r}: {stack}")
        state[tid] = 1
        for dep in by_id[tid].deps:
            visit(dep, stack + (tid,))
        state[tid] = 2

    for tid in by_id:
        visit(tid, ())


def _initial_buffers(ctx: RepairContext) -> set[tuple[int, str]]:
    """Buffers present before the plan runs: every surviving block."""
    out = set()
    failed = set(ctx.failed_blocks)
    for idx, node in enumerate(ctx.stripe.placement):
        if idx in failed or not ctx.cluster[node].alive:
            continue
        out.add((node, block_name(ctx.stripe.stripe_id, idx)))
    return out


def validate_plan(plan: RepairPlan, ctx: RepairContext | None = None) -> None:
    """Raise :class:`PlanValidationError` on any structural inconsistency.

    With ``ctx`` the data-flow check starts from the surviving blocks;
    without it only the task graph and intra-plan dataflow ordering are
    checked (initial buffers are inferred from SliceOp sources).
    """
    _check_task_graph_acyclic(plan)

    if ctx is not None:
        available = _initial_buffers(ctx)
    else:
        available = set()
        for op in plan.ops:
            if isinstance(op, SliceOp):
                available.add((op.node, op.src))

    def need(node: int, name: str, op) -> None:
        if (node, name) not in available:
            raise PlanValidationError(
                f"op {op!r} reads buffer {name!r} not present on node {node}"
            )

    for op in plan.ops:
        if isinstance(op, SliceOp):
            need(op.node, op.src, op)
            available.add((op.node, op.out))
        elif isinstance(op, TransferOp):
            need(op.src_node, op.name, op)
            available.add((op.dst_node, op.rename or op.name))
        elif isinstance(op, CombineOp):
            for src in op.srcs:
                need(op.node, src, op)
            available.add((op.node, op.out))
        elif isinstance(op, ConcatOp):
            for part in op.parts:
                need(op.node, part, op)
            available.add((op.node, op.out))
        else:
            raise PlanValidationError(f"unknown op type {type(op).__name__}")

    for fb, (node, name) in plan.outputs.items():
        if (node, name) not in available:
            raise PlanValidationError(
                f"declared output for block {fb} ({name!r} on node {node}) is never produced"
            )

    if ctx is not None:
        _check_views_consistent(plan, ctx)


def _check_views_consistent(plan: RepairPlan, ctx: RepairContext) -> None:
    """Timing-view traffic must match data-view traffic per directed link.

    Data-view volume is counted in block fractions (a TransferOp moves one
    sub-block whose size the executor resolves at run time), so the match is
    structural: the multiset of directed links used must be identical, and
    the per-link task sizes must sum to the per-link transfer count times
    the sub-block sizes recorded in the plan's fractions.
    """
    timing_links: dict[tuple[int, int], float] = defaultdict(float)
    for t in plan.tasks:
        if isinstance(t, DelayTask):
            continue
        for hop in t.hops:
            timing_links[hop] += t.size_mb

    data_links: set[tuple[int, int]] = set()
    for op in plan.ops:
        if isinstance(op, TransferOp):
            data_links.add((op.src_node, op.dst_node))

    # zero-size tasks (degenerate split p = 0 or 1) still "time" their link:
    # the matching TransferOps move empty sub-blocks
    timing_set = set(timing_links)
    missing = data_links - timing_set
    extra = timing_set - data_links
    if missing:
        raise PlanValidationError(f"data view moves bytes over untimed links: {sorted(missing)}")
    if extra:
        raise PlanValidationError(f"timing view charges links the data never uses: {sorted(extra)}")
