"""Concurrent repair-job scheduling (``repro.sched``).

Queue multiple planned repair jobs, admit them under per-node / per-rack /
total in-flight caps, and run each admission wave as one merged fluid
simulation in which jobs share bandwidth by priority weight.  See
:doc:`docs/SCHEDULER.md </docs/SCHEDULER>` for the design.
"""

from repro.sched.admission import AdmissionController, AdmissionPolicy
from repro.sched.job import PRIORITY_WEIGHTS, RepairJob, weight_for
from repro.sched.scheduler import RepairEta, RepairScheduler, SchedulerReport

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "PRIORITY_WEIGHTS",
    "RepairEta",
    "RepairJob",
    "RepairScheduler",
    "SchedulerReport",
    "weight_for",
]
