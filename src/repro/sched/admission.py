"""Admission control for concurrent repair jobs.

The scheduler admits jobs into *waves* — groups that share one fluid
simulation.  The :class:`AdmissionController` bounds how much repair work
a wave may stack onto any single node or rack, modelling the production
constraint that a storage node can serve only so many concurrent
reconstruction streams before foreground traffic suffers.

Caps are per *job footprint*: a job touching a node counts once against
that node regardless of how many stripes it repairs there, matching the
per-job connection pooling a real repair service would use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.cluster.topology import Cluster

    from repro.sched.job import RepairJob


@dataclass(frozen=True)
class AdmissionPolicy:
    """Caps on concurrently running repair jobs within one wave.

    ``None`` disables the corresponding cap.  The defaults allow two jobs
    to share a node — enough to exercise weighted bandwidth sharing while
    keeping any node from serving an unbounded number of reconstructions.
    """

    #: max jobs whose footprint includes a given node.
    max_inflight_per_node: int | None = 2
    #: max jobs whose footprint touches a given rack.
    max_inflight_per_rack: int | None = None
    #: max jobs running in one wave, regardless of placement.
    max_inflight_total: int | None = None

    def __post_init__(self) -> None:
        for name in ("max_inflight_per_node", "max_inflight_per_rack", "max_inflight_total"):
            v = getattr(self, name)
            if v is not None and v < 1:
                raise ValueError(f"{name} must be >= 1 or None, got {v}")


class AdmissionController:
    """Tracks per-node / per-rack / total in-flight jobs within a wave."""

    def __init__(self, cluster: "Cluster", policy: AdmissionPolicy | None = None) -> None:
        self.cluster = cluster
        self.policy = policy or AdmissionPolicy()
        self._node_load: dict[int, int] = {}
        self._rack_load: dict[int, int] = {}
        self._total = 0

    def reset_wave(self) -> None:
        """Forget all in-flight counts; the next wave starts empty."""
        self._node_load.clear()
        self._rack_load.clear()
        self._total = 0

    def _racks_of(self, nodes: Iterable[int]) -> set[int]:
        return {self.cluster[n].rack for n in nodes}

    def try_admit(self, job: "RepairJob", footprint_nodes: Iterable[int]) -> bool:
        """Admit ``job`` if its node footprint fits under every cap.

        On success the footprint is charged against the wave's counters and
        ``True`` is returned; on failure nothing is charged and the caller
        should retry the job in a later wave.
        """
        pol = self.policy
        nodes = set(footprint_nodes)
        if pol.max_inflight_total is not None and self._total >= pol.max_inflight_total:
            return False
        if pol.max_inflight_per_node is not None:
            if any(self._node_load.get(n, 0) >= pol.max_inflight_per_node for n in nodes):
                return False
        racks = self._racks_of(nodes)
        if pol.max_inflight_per_rack is not None:
            if any(self._rack_load.get(r, 0) >= pol.max_inflight_per_rack for r in racks):
                return False
        for n in nodes:
            self._node_load[n] = self._node_load.get(n, 0) + 1
        for r in racks:
            self._rack_load[r] = self._rack_load.get(r, 0) + 1
        self._total += 1
        return True

    @property
    def inflight_total(self) -> int:
        """Jobs admitted into the current wave so far."""
        return self._total
