"""Repair-job lifecycle and priority classes for the concurrent scheduler.

A :class:`RepairJob` is one planned repair (the stripes of one failure
event, or a subset of them) flowing through the queue of
:class:`~repro.sched.scheduler.RepairScheduler`.  Its lifecycle is::

    queued -> admitted -> running -> done
       \\                      \\
        `-> failed              `-> failed

Priority classes map to weighted-fair-share weights
(:data:`PRIORITY_WEIGHTS`): a foreground degraded-read repair outweighs a
normal repair 4:1 on every shared link, and a background rebalance gets a
quarter share — exactly the :attr:`repro.simnet.flows.Flow.weight`
semantics the fluid simulator's weighted max-min allocator implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: lifecycle states (plain strings so reports serialize trivially)
QUEUED = "queued"
ADMITTED = "admitted"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: legal lifecycle transitions; anything else is a scheduler bug
_TRANSITIONS: dict[str, frozenset[str]] = {
    QUEUED: frozenset({ADMITTED, FAILED}),
    ADMITTED: frozenset({RUNNING, FAILED}),
    RUNNING: frozenset({DONE, FAILED}),
    DONE: frozenset(),
    FAILED: frozenset(),
}

#: priority class -> fair-share weight for every flow of the job's plans.
PRIORITY_WEIGHTS: dict[str, float] = {
    "foreground": 4.0,
    "normal": 1.0,
    "background": 0.25,
}

#: admission order: lower rank admits first when capacity is scarce.
PRIORITY_ORDER: dict[str, int] = {"foreground": 0, "normal": 1, "background": 2}


@dataclass
class RepairJob:
    """One repair job moving through the scheduler queue.

    Identity and request fields are set at submission; progress fields
    (``state``, ``wave``, timing, and the result accounting) are filled in
    by :meth:`RepairScheduler.run_pending
    <repro.sched.scheduler.RepairScheduler.run_pending>`.
    """

    job_id: str
    scheme: str = "hmbr"
    priority: str = "normal"
    #: weighted-fair-share weight of every flow of this job (derived from
    #: ``priority`` unless overridden at submission).
    weight: float = 1.0
    #: stripe ids this job repairs; ``None`` means "everything affected at
    #: admission time".
    stripes: tuple[int, ...] | None = None
    #: simulated arrival time of the job's flows (jobs arriving mid-run
    #: contend only from this point on).
    arrival_s: float = 0.0
    #: FIFO tie-break within a priority class.
    seq: int = 0

    # ---- progress (scheduler-owned) ----
    state: str = QUEUED
    #: 1-based index of the admission wave that ran the job.
    wave: int | None = None
    #: simulated time at which the job's wave began.
    admitted_s: float | None = None
    #: simulated time at which the job's last flow finished.
    finish_s: float | None = None
    #: number of waves the job sat in the queue before admission.
    queue_wait_waves: int = 0
    stripes_repaired: list[int] = field(default_factory=list)
    blocks_recovered: int = 0
    bytes_on_wire_mb_model: float = 0.0
    per_stripe_transfer_s: dict[int, float] = field(default_factory=dict)
    #: stripe -> data-plane attempts (only > 1 under fault injection).
    attempts: dict[int, int] = field(default_factory=dict)
    error: str | None = None

    def __post_init__(self) -> None:
        if self.priority not in PRIORITY_WEIGHTS:
            raise ValueError(
                f"unknown priority {self.priority!r}; choose from {sorted(PRIORITY_WEIGHTS)}"
            )
        if self.weight <= 0:
            raise ValueError(f"job {self.job_id}: weight must be positive")
        if self.arrival_s < 0:
            raise ValueError(f"job {self.job_id}: arrival_s must be non-negative")
        if self.stripes is not None:
            self.stripes = tuple(self.stripes)

    def transition(self, new_state: str) -> None:
        """Move to ``new_state``, refusing any illegal lifecycle edge."""
        allowed = _TRANSITIONS.get(self.state)
        if allowed is None or new_state not in allowed:
            raise ValueError(
                f"job {self.job_id}: illegal transition {self.state!r} -> {new_state!r}"
            )
        self.state = new_state

    @property
    def makespan_s(self) -> float | None:
        """Simulated run time from wave start to last flow finish."""
        if self.finish_s is None or self.admitted_s is None:
            return None
        return self.finish_s - self.admitted_s

    def priority_rank(self) -> tuple[int, int]:
        """Admission sort key: priority class first, then submission order."""
        return (PRIORITY_ORDER[self.priority], self.seq)


def weight_for(priority: str, override: float | None = None) -> float:
    """The fair-share weight for a priority class (or an explicit override)."""
    if override is not None:
        if override <= 0:
            raise ValueError("weight override must be positive")
        return float(override)
    try:
        return PRIORITY_WEIGHTS[priority]
    except KeyError:
        raise ValueError(
            f"unknown priority {priority!r}; choose from {sorted(PRIORITY_WEIGHTS)}"
        ) from None
