"""Concurrent multi-job repair scheduling over one shared fluid simulation.

:class:`RepairScheduler` queues :class:`~repro.sched.job.RepairJob`\\ s and
runs them in admission *waves*: every job admitted into a wave has its
repair plans merged into one task DAG and simulated together, so jobs
contend for shared links under the fluid simulator's weighted max-min
allocator.  Per-job task ids are namespaced (``job0:p0:...``) so each
job's makespan is recovered from the single merged run via
:meth:`SimulationResult.finish_of
<repro.simnet.fluid.SimulationResult.finish_of>`.

Key invariants:

* **Sequential equivalence** — a single submitted job executes the exact
  planning/dispatch code path of :meth:`Coordinator.repair
  <repro.system.coordinator.Coordinator.repair>` (same center-scheduler
  pick order, same common HMBR split, same data-plane ops), so repaired
  bytes are bit-identical and the makespan matches to float precision
  (task renaming does not perturb the fluid solve).
* **Weighted sharing** — a job's priority class maps to a flow weight
  (:data:`~repro.sched.job.PRIORITY_WEIGHTS`); concurrent jobs split
  shared links in proportion to those weights, and jobs with disjoint
  footprints finish as if running alone.
* **Fault tolerance** — with a fault injector, each admitted job runs
  through :meth:`FaultRuntime.repair_stripes
  <repro.faults.runtime.FaultRuntime.repair_stripes>`, reusing the
  journal / backoff / re-plan machinery; a job whose helpers die is
  re-planned within its wave, and unrecoverable jobs fail without
  aborting their peers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.repair.plan import RepairPlan, rename_plan, reweighted
from repro.sched.admission import AdmissionController, AdmissionPolicy
from repro.sched.job import (
    ADMITTED,
    DONE,
    FAILED,
    PRIORITY_ORDER,
    QUEUED,
    RUNNING,
    RepairJob,
    weight_for,
)
from repro.simnet.fluid import FluidSimulator
from repro.simnet.flows import DelayTask

if TYPE_CHECKING:  # pragma: no cover - type-only import (cycle guard)
    from repro.system.coordinator import Coordinator

#: waves are bounded: every wave admits at least one job or completes the
#: queue, so this is a pure safety net against admission-logic bugs.
_MAX_WAVES = 10_000


@dataclass
class SchedulerReport:
    """Outcome of one :meth:`RepairScheduler.run_pending` call."""

    #: every job the call processed, in submission order.
    jobs: list[RepairJob]
    #: number of admission waves (merged simulations) that ran.
    waves: int
    #: total simulated time across all waves.
    makespan_s: float
    #: job id -> simulated finish time (on the scheduler-global clock).
    per_job_finish_s: dict[str, float]
    blocks_recovered: int
    bytes_on_wire_mb_model: float
    #: jobs still queued when the call returned (always 0 today).
    queue_depth_after: int
    #: total fluid-solver rate recomputations across all waves.
    n_rate_updates: int
    #: task id -> simulated finish time for every foreground task merged
    #: into the first wave (see ``run_pending(foreground=...)``).
    foreground_finish_s: dict[str, float] = field(default_factory=dict)

    @property
    def done(self) -> list[RepairJob]:
        """Jobs that completed successfully."""
        return [j for j in self.jobs if j.state == DONE]

    @property
    def failed(self) -> list[RepairJob]:
        """Jobs that failed (unrecoverable stripes, retry exhaustion)."""
        return [j for j in self.jobs if j.state == FAILED]


@dataclass(frozen=True)
class RepairEta:
    """Planning-only estimate of queued repairs' landings.

    Produced by :meth:`RepairScheduler.estimate_finish_s`; consumed by the
    serving plane's partially-repaired-stripe fast path (see
    ``docs/PIPELINING_READS.md``).
    """

    #: stripe id -> estimated simulated landing instant of its repair.
    finish_s: dict
    #: dead node -> the spare its lost blocks are planned to rebuild onto.
    replacement_of: dict


class RepairScheduler:
    """Admission-controlled concurrent repair-job scheduler.

    Obtain one via :attr:`Coordinator.sched
    <repro.system.coordinator.Coordinator.sched>`; submit jobs with
    :meth:`submit` (or :meth:`Coordinator.submit_repair
    <repro.system.coordinator.Coordinator.submit_repair>`) and execute the
    queue with :meth:`run_pending`.
    """

    def __init__(
        self, coord: "Coordinator", policy: AdmissionPolicy | None = None
    ) -> None:
        self.coord = coord
        self.admission = AdmissionController(coord.cluster, policy)
        self._seq = 0
        self._queue: list[RepairJob] = []
        #: every job ever submitted, for inspection.
        self.jobs: list[RepairJob] = []

    # -------------------------------------------------------------- #
    # submission
    # -------------------------------------------------------------- #
    @property
    def queue_depth(self) -> int:
        """Jobs submitted but not yet run."""
        return len(self._queue)

    def submit(
        self,
        scheme: str = "hmbr",
        *,
        stripes=None,
        priority: str = "normal",
        weight: float | None = None,
        arrival_s: float = 0.0,
    ) -> RepairJob:
        """Queue a repair job; nothing executes until :meth:`run_pending`.

        ``stripes`` limits the job to those stripe ids (``None`` = every
        stripe affected at admission time).  ``priority`` picks the flow
        weight unless ``weight`` overrides it.  ``arrival_s`` delays the
        job's flows within its wave's simulation, modelling staggered
        submission.
        """
        job = RepairJob(
            job_id=f"job{self._seq}",
            scheme=scheme,
            priority=priority,
            weight=weight_for(priority, weight),
            stripes=None if stripes is None else tuple(stripes),
            arrival_s=arrival_s,
            seq=self._seq,
        )
        self._seq += 1
        self._queue.append(job)
        self.jobs.append(job)
        obs = self.coord.obs
        if obs is not None:
            obs.metrics.counter("sched.jobs_submitted").inc()
            obs.metrics.gauge("sched.queue_depth").set(len(self._queue))
        return job

    # -------------------------------------------------------------- #
    # execution
    # -------------------------------------------------------------- #
    def run_pending(
        self,
        *,
        verify: bool = True,
        faults=None,
        network=None,
        events=(),
        workers: int = 1,
        batched: bool = False,
        foreground=(),
    ):
        """Admit and run every queued job; returns a :class:`SchedulerReport`.

        Jobs are admitted in priority order (FIFO within a class) until the
        :class:`~repro.sched.admission.AdmissionPolicy` caps fill; the
        remainder wait for the next wave.  Each wave plans and dispatches
        its jobs through the coordinator's shared repair helpers, then runs
        one merged :class:`~repro.simnet.fluid.FluidSimulator` pass in which
        the jobs' flows contend at their priority weights.  Wave ``i + 1``
        starts at the simulated instant wave ``i`` finished, so
        ``per_job_finish_s`` values live on one global clock.

        ``faults`` (a :class:`~repro.faults.schedule.FaultSchedule` or
        prepared :class:`~repro.faults.injector.FaultInjector`) routes each
        job's data plane through the fault runtime's journal/backoff/replan
        machinery.  ``network`` (anything :func:`~repro.simnet.network.
        as_network` accepts) supplies bandwidth events on the
        scheduler-global clock; the legacy ``events=`` keyword still works
        but emits a :class:`DeprecationWarning`.

        ``batched=True`` runs each healthy job's data plane through the
        pattern-grouped batch engine; ``workers > 1`` (implies batching)
        additionally fans every admitted wave's kernels out to the
        coordinator's shared :class:`repro.parallel.WorkerPool`.  Both are
        bit-exact with the per-stripe plane and ignored for fault-injected
        runs, whose journaled runtime is inherently per-stripe.

        ``foreground`` is a sequence of extra simulator tasks (client
        traffic — see :mod:`repro.workload`) merged into the **first**
        wave's simulation, so foreground flows and that wave's repair flows
        contend for the same links under their respective weights.  Their
        finish times land in the report's
        :attr:`~SchedulerReport.foreground_finish_s`; with an empty queue a
        foreground-only wave still runs, so the serving plane's healthy
        regime goes through the exact simulator path the storm regime uses.
        """
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        batched = batched or workers > 1
        coord = self.coord
        from repro.simnet.network import as_network

        if events:
            from repro.system.request import warn_legacy

            if network is not None:
                raise ValueError("pass network= or the legacy events=, not both")
            warn_legacy(
                "RepairScheduler.run_pending(events=...)",
                "run_pending(network=NetworkTrace.from_events(...))",
            )
            events = list(events)
        else:
            events = as_network(network).events_for(coord.cluster)
        obs = coord.obs
        run = list(self._queue)
        self._queue.clear()

        runtime, injector = self._fault_runtime(faults)
        root = None
        if obs is not None:
            root = obs.tracer.begin(
                "sched.run_pending", actor="scheduler", cat="sched",
                jobs=[j.job_id for j in run], faults=injector is not None,
                workers=workers, batched=batched,
            )
        if injector is not None:
            injector.attach(coord.bus)
        try:
            report = self._run_waves(
                run, verify, runtime, events, workers, batched, foreground
            )
        finally:
            if injector is not None:
                injector.detach(coord.bus)
            if root is not None:
                obs.tracer.unwind(root)
        if obs is not None:
            m = obs.metrics
            m.gauge("sched.queue_depth").set(len(self._queue))
            m.counter("sched.waves").inc(report.waves)
            m.counter("sched.jobs_done").inc(len(report.done))
            m.counter("sched.jobs_failed").inc(len(report.failed))
            for job in report.jobs:
                if job.makespan_s is not None:
                    m.histogram("sched.job_makespan_s").observe(job.makespan_s)
                m.histogram("sched.job_wait_waves").observe(job.queue_wait_waves)
        return report

    def estimate_finish_s(self, requests) -> RepairEta:
        """Estimate when each stripe's queued repair lands — planning only.

        Mirrors one admission wave over ``requests`` (a sequence of
        :class:`~repro.system.request.RepairRequest`): priority-rank
        order, first-come stripe ownership between wave-mates, and the
        coordinator's own spare-assignment / planning helpers, followed by
        a repair-only fluid simulation of the planned flows at their
        priority weights.  Nothing is mutated — no job is queued, no byte
        moves, and the stateful LFS/LRS center scheduler is snapshotted
        and restored, so a subsequent real run makes identical picks.

        The estimate is deliberately **optimistic**: it ignores admission
        caps (everything lands in wave one), fault schedules, and
        contention from foreground traffic, so real landings can only be
        later.  The serving plane uses it as the fast-path cutover clock,
        which is safe because payload bytes never depend on it.  Requests
        that cannot be planned (unrecoverable stripes, not enough free
        spares) are skipped: their stripes simply get no estimate.
        """
        cs = self.coord.center_scheduler
        saved = cs.snapshot()
        try:
            return self._estimate(requests)
        finally:
            cs.restore(saved)

    def _estimate(self, requests) -> RepairEta:
        """The :meth:`estimate_finish_s` body (state save/restore aside)."""
        from repro.faults.errors import RepairAborted, StripeUnrecoverable

        coord = self.coord
        affected_all = coord.layout.stripes_with_failures(
            coord.cluster.dead_ids()
        )
        order = sorted(
            enumerate(requests),
            key=lambda e: (PRIORITY_ORDER[e[1].priority], e[0]),
        )
        wave_replacements: dict[int, int] = {}
        reserved: set[int] = set()
        claimed: set[int] = set()
        all_tasks: list = []
        index: list[tuple[int, str]] = []
        for j, req in order:
            affected = {
                sid: blocks
                for sid, blocks in affected_all.items()
                if (req.stripes is None or sid in req.stripes)
                and sid not in claimed
            }
            if not affected:
                continue
            dead_wb = coord._dead_with_blocks(affected)
            need = [d for d in dead_wb if d not in wave_replacements]
            free = [s for s in coord._free_spares() if s not in reserved]
            if len(need) > len(free):
                continue
            fresh = coord._assign_spares(need, free)
            replacement_of = {
                d: wave_replacements.get(d, fresh.get(d)) for d in dead_wb
            }
            try:
                work = coord._build_work(affected, replacement_of)
                common_p = (
                    coord._common_hmbr_split(work)
                    if req.scheme == "hmbr" else None
                )
                planned = coord._plan_work(work, req.scheme, common_p)
            except (RepairAborted, StripeUnrecoverable):
                continue
            wave_replacements.update(fresh)
            reserved.update(fresh.values())
            claimed.update(affected)
            weight = weight_for(req.priority, req.weight)
            arrival_id = None
            if req.arrival_s > 0:
                arrival_id = f"est{j}:arrival"
                all_tasks.append(DelayTask(arrival_id, req.arrival_s, tag="sched"))
            for i, (sid, plan, _ctx) in enumerate(planned):
                p = reweighted(plan, weight) if weight != 1.0 else plan
                p = rename_plan(p, f"est{j}:p{i}:")
                index.append((sid, f"est{j}:p{i}"))
                for t in p.tasks:
                    if arrival_id is not None and not t.deps:
                        t = dataclasses.replace(t, deps=(arrival_id,))
                    all_tasks.append(t)
        if not all_tasks:
            return RepairEta(finish_s={}, replacement_of=dict(wave_replacements))
        sim = FluidSimulator(coord.cluster).run(all_tasks)
        finish: dict[int, float] = {}
        for sid, prefix in index:
            t = sim.finish_of(prefix)
            finish[sid] = max(finish.get(sid, 0.0), t)
        return RepairEta(finish_s=finish, replacement_of=dict(wave_replacements))

    def _fault_runtime(self, faults):
        """Build (FaultRuntime, FaultInjector) from ``faults`` (or Nones)."""
        if faults is None:
            return None, None
        from repro.faults.injector import FaultInjector
        from repro.faults.runtime import FaultRuntime
        from repro.faults.schedule import FaultSchedule

        if isinstance(faults, FaultSchedule):
            injector = FaultInjector(faults, tick_s=0.001)
        else:
            injector = faults
        return FaultRuntime(self.coord, injector), injector

    def _run_waves(
        self, run, verify, runtime, events, workers=1, batched=False, foreground=()
    ) -> SchedulerReport:
        coord = self.coord
        obs = coord.obs
        pending = sorted(run, key=RepairJob.priority_rank)
        offset = 0.0
        waves = 0
        n_updates = 0
        fg_tasks = list(foreground)
        fg_finish: dict[str, float] = {}
        while pending or fg_tasks:
            waves += 1
            if waves > _MAX_WAVES:  # pragma: no cover - safety net
                raise RuntimeError("scheduler did not drain its queue")
            wave_span = None
            if obs is not None:
                wave_span = obs.tracer.begin(
                    f"sched.wave:{waves}", actor="scheduler", cat="sched",
                    wave=waves, pending=[j.job_id for j in pending],
                )
            try:
                admitted, pending = self._admit_wave(pending, waves, offset)
                if obs is not None:
                    obs.metrics.gauge("sched.wave_admitted").set(len(admitted))
                    obs.metrics.counter("sched.jobs_admitted").inc(len(admitted))
                extra, fg_tasks = fg_tasks, []
                sim = self._run_wave(
                    admitted, verify, runtime, events, offset, workers, batched,
                    extra,
                )
                if sim is not None:
                    for t in extra:
                        fg_finish[t.task_id] = offset + sim.finish_times[t.task_id]
                    n_updates += sim.n_rate_updates
                    self._finish_wave(admitted, sim, offset)
                    offset += sim.makespan
                else:
                    self._finish_wave(admitted, None, offset)
            finally:
                if wave_span is not None:
                    obs.tracer.unwind(wave_span)
        return SchedulerReport(
            jobs=list(run),
            waves=waves,
            makespan_s=offset,
            per_job_finish_s={
                j.job_id: j.finish_s for j in run if j.finish_s is not None
            },
            blocks_recovered=sum(j.blocks_recovered for j in run),
            bytes_on_wire_mb_model=sum(j.bytes_on_wire_mb_model for j in run),
            queue_depth_after=len(self._queue),
            n_rate_updates=n_updates,
            foreground_finish_s=fg_finish,
        )

    # -------------------------------------------------------------- #
    # one wave: admit -> plan/dispatch -> merged simulation
    # -------------------------------------------------------------- #
    def _admit_wave(self, pending, wave, offset):
        """Admit as many pending jobs as the policy allows.

        Returns ``(admitted, still_pending)`` where each admitted entry is
        ``(job, affected, replacement_of)``.  Spare reservations are shared
        across the wave: two jobs repairing stripes hit by the same dead
        node use the same replacement, mirroring :meth:`Coordinator.repair`.
        """
        coord = self.coord
        self.admission.reset_wave()
        dead = coord.cluster.dead_ids()
        affected_all = coord.layout.stripes_with_failures(dead)
        stripes_map = {s.stripe_id: s for s in coord.layout}

        wave_replacements: dict[int, int] = {}
        reserved: set[int] = set()
        admitted: list[tuple[RepairJob, dict[int, list[int]], dict[int, int]]] = []
        deferred: list[RepairJob] = []
        for job in pending:
            affected = {
                sid: blocks
                for sid, blocks in affected_all.items()
                if job.stripes is None or sid in job.stripes
            }
            # Exclude stripes a previously admitted wave-mate already
            # claimed this wave: first-come ownership, no double repair.
            for other, other_affected, _ in admitted:
                for sid in other_affected:
                    affected.pop(sid, None)
            if not affected:
                # Nothing (left) to repair: the job completes trivially.
                job.transition(ADMITTED)
                job.wave = wave
                job.admitted_s = offset
                admitted.append((job, affected, {}))
                continue

            dead_wb = coord._dead_with_blocks(affected)
            need = [d for d in dead_wb if d not in wave_replacements]
            free = [s for s in coord._free_spares() if s not in reserved]
            if len(need) > len(free):
                raise RuntimeError(
                    f"job {job.job_id}: {len(need)} dead nodes need spares "
                    f"but only {len(free)} are free"
                )
            fresh = coord._assign_spares(need, free)
            replacement_of = {
                d: wave_replacements.get(d, fresh.get(d)) for d in dead_wb
            }
            footprint = self._footprint(affected, replacement_of, stripes_map)
            if not self.admission.try_admit(job, footprint):
                job.queue_wait_waves += 1
                deferred.append(job)
                continue
            wave_replacements.update(fresh)
            reserved.update(fresh.values())
            job.transition(ADMITTED)
            job.wave = wave
            job.admitted_s = offset
            admitted.append((job, affected, replacement_of))
        return admitted, deferred

    @staticmethod
    def _footprint(affected, replacement_of, stripes_map) -> set[int]:
        """Every node a job's repair will touch: survivors + replacements."""
        nodes: set[int] = set(replacement_of.values())
        for sid, failed in affected.items():
            placement = stripes_map[sid].placement
            failed_set = set(failed)
            nodes.update(
                n for b, n in enumerate(placement) if b not in failed_set
            )
        return nodes

    def _run_wave(
        self,
        admitted,
        verify,
        runtime,
        events,
        offset,
        workers=1,
        batched=False,
        extra_tasks=(),
    ):
        """Plan + dispatch every admitted job, then simulate them merged.

        ``extra_tasks`` (foreground client traffic) join the wave's merged
        task DAG verbatim — they were never planned as repair work, so they
        only contribute flows/delays to the shared fluid solve.
        """
        coord = self.coord
        obs = coord.obs
        all_tasks = list(extra_tasks)
        finish_index: dict[str, list[tuple[int, str]]] = {}
        for job, affected, replacement_of in admitted:
            job.transition(RUNNING)
            if not affected:
                continue
            try:
                plans = self._dispatch_job(
                    job, affected, replacement_of, verify, runtime, workers, batched
                )
            except Exception as err:  # noqa: BLE001 - job isolation boundary
                from repro.faults.errors import RepairAborted, StripeUnrecoverable

                if not isinstance(err, (RepairAborted, StripeUnrecoverable)):
                    raise
                job.transition(FAILED)
                job.error = f"{type(err).__name__}: {err}"
                if obs is not None:
                    obs.tracer.instant(
                        f"sched.job_failed:{job.job_id}", actor="scheduler",
                        cat="sched", job=job.job_id, error=job.error,
                    )
                continue
            job.stripes_repaired = sorted({sid for sid, _ in plans})
            job.blocks_recovered = sum(len(b) for b in affected.values())
            job.bytes_on_wire_mb_model = sum(
                p.total_transfer_mb() for _, p in plans
            )
            for sid, _ in plans:
                job.attempts[sid] = job.attempts.get(sid, 0) + 1
            all_tasks.extend(self._sim_tasks(job, plans, finish_index))
        if not all_tasks:
            return None
        shifted = [
            dataclasses.replace(e, time=max(e.time - offset, 0.0)) for e in events
        ]
        sim = FluidSimulator(coord.cluster).run(
            all_tasks,
            events=shifted,
            tracer=obs.tracer if obs is not None else None,
            trace_label=f"sched.sim@{offset:g}",
        )
        for job_id, prefixes in finish_index.items():
            job = next(j for j, _, _ in admitted if j.job_id == job_id)
            for sid, prefix in prefixes:
                t = sim.finish_of(prefix)
                prev = job.per_stripe_transfer_s.get(sid)
                job.per_stripe_transfer_s[sid] = t if prev is None else max(prev, t)
        return sim

    def _dispatch_job(
        self, job, affected, replacement_of, verify, runtime, workers=1, batched=False
    ) -> list[tuple[int, RepairPlan]]:
        """Data plane for one job; returns its committed (sid, plan) pairs.

        With ``batched`` (healthy runs only — the fault runtime journals
        per stripe) the job's stripes decode through the coordinator's
        batched dispatch, fanning out to the shared worker pool when
        ``workers > 1``; otherwise each stripe runs its plan ops.
        """
        coord = self.coord
        obs = coord.obs
        job_span = None
        if obs is not None:
            job_span = obs.tracer.begin(
                f"sched.job:{job.job_id}", actor="scheduler", cat="sched",
                job=job.job_id, scheme=job.scheme, priority=job.priority,
                stripes=sorted(affected), batched=batched and runtime is None,
            )
        try:
            if runtime is not None:
                return runtime.repair_stripes(
                    sorted(affected), scheme=job.scheme, verify=verify
                )
            stripes_map = {s.stripe_id: s for s in coord.layout}
            work = coord._build_work(affected, replacement_of)
            common_p = coord._common_hmbr_split(work) if job.scheme == "hmbr" else None
            planned = coord._plan_work(work, job.scheme, common_p)
            if batched:
                centers = {sid: center for sid, _, center in work}
                engine = coord._engine_for(workers) if workers > 1 else None
                coord._dispatch_batched(
                    planned, centers, stripes_map, verify, engine=engine
                )
            else:
                for sid, plan, _ in planned:
                    coord._commit_plan(sid, plan, stripes_map, verify)
            for agent in coord.agents.values():
                agent.clear_scratch()
            return [(sid, plan) for sid, plan, _ in planned]
        finally:
            if job_span is not None:
                obs.tracer.unwind(job_span)

    def _sim_tasks(self, job, plans, finish_index):
        """Rename + reweight a job's plan tasks for the merged simulation.

        Task ids become ``<job_id>:p<i>:<original>`` so
        ``finish_of(job_id)`` recovers the job makespan and
        ``finish_of(f"{job_id}:p{i}")`` each plan's.  A positive
        ``arrival_s`` inserts a :class:`~repro.simnet.flows.DelayTask` that
        gates the job's root tasks.
        """
        tasks = []
        prefixes = finish_index.setdefault(job.job_id, [])
        arrival_id = None
        if job.arrival_s > 0:
            arrival_id = f"{job.job_id}:arrival"
            tasks.append(DelayTask(arrival_id, job.arrival_s, tag="sched"))
        for i, (sid, plan) in enumerate(plans):
            p = reweighted(plan, job.weight) if job.weight != 1.0 else plan
            p = rename_plan(p, f"{job.job_id}:p{i}:")
            prefixes.append((sid, f"{job.job_id}:p{i}"))
            for t in p.tasks:
                if arrival_id is not None and not t.deps:
                    t = dataclasses.replace(t, deps=(arrival_id,))
                tasks.append(t)
        return tasks

    def _finish_wave(self, admitted, sim, offset) -> None:
        """Record per-job finish times from the wave's merged simulation."""
        coord = self.coord
        obs = coord.obs
        for job, affected, _ in admitted:
            if job.state != RUNNING:
                if job.state == ADMITTED:  # trivially-empty job
                    job.transition(RUNNING)
                    job.transition(DONE)
                    job.finish_s = offset
                continue
            if sim is not None and affected:
                try:
                    job.finish_s = offset + sim.finish_of(job.job_id)
                except KeyError:  # pragma: no cover - defensive
                    job.finish_s = offset
            else:
                job.finish_s = offset
            job.transition(DONE)
            if obs is not None:
                obs.tracer.add(
                    f"sched.job:{job.job_id}", actor="scheduler", cat="sched.sim",
                    t0=job.admitted_s or 0.0, t1=job.finish_s,
                    job=job.job_id, wave=job.wave, priority=job.priority,
                    stripes=job.stripes_repaired,
                )
