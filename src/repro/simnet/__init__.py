"""Flow-level network simulation substrate.

Replaces the paper's EC2 network.  Transfers are *fluid flows* between nodes;
at any instant, flow rates are the max-min fair allocation subject to each
node's uplink/downlink capacity (and optional cross-rack caps), which
generalizes the paper's connection-count bandwidth sharing model (§III-B1):
when a node has r concurrent outgoing connections and is the bottleneck, each
gets exactly U/r, i.e. the paper's Case 2/Case 3 division.

Pipelined (chain) repairs are modeled as :class:`PipelineFlow`: one logical
flow that simultaneously occupies every hop of its path (the steady state of
slice-level pipelining) and progresses at the minimum per-hop allocation.  A
slice-accurate discrete-event validator (:mod:`repro.simnet.slicesim`) checks
this abstraction on small cases.
"""

from repro.simnet.flows import Flow, PipelineFlow, DelayTask, Task
from repro.simnet.fluid import FluidSimulator, SimulationResult
from repro.simnet.slicesim import simulate_pipeline_slices
from repro.simnet.static import StaticShareEvaluator, StaticResult
from repro.simnet.dynamic import BandwidthEvent, degrade_nodes
from repro.simnet.network import NetworkTrace, as_network, cluster_at
from repro.simnet.trace import bottleneck_report, node_throughput_timeline, peak_utilization

__all__ = [
    "Flow",
    "PipelineFlow",
    "DelayTask",
    "Task",
    "FluidSimulator",
    "SimulationResult",
    "simulate_pipeline_slices",
    "StaticShareEvaluator",
    "StaticResult",
    "BandwidthEvent",
    "degrade_nodes",
    "NetworkTrace",
    "as_network",
    "cluster_at",
    "bottleneck_report",
    "node_throughput_timeline",
    "peak_utilization",
]
