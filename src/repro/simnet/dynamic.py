"""Dynamic bandwidth workloads (the paper's §VII future work).

A :class:`BandwidthEvent` changes a node's link rates at a point in
simulated time; the fluid simulator re-solves the max-min allocation at each
event boundary, so long transfers correctly straddle rate changes.  Event
schedules also feed HMBR's search split, yielding a *dynamics-aware* hybrid
that picks the ratio minimizing makespan under the predicted bandwidth
trajectory rather than the instantaneous snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BandwidthEvent:
    """At ``time``, set the given link rates of ``node`` (None = unchanged)."""

    time: float
    node: int
    uplink: float | None = None
    downlink: float | None = None
    cross_uplink: float | None = None
    cross_downlink: float | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")
        for value in (self.uplink, self.downlink, self.cross_uplink, self.cross_downlink):
            if value is not None and value <= 0:
                raise ValueError("bandwidths must stay positive")

    def capacity_updates(self) -> dict[str, float]:
        """Resource-key -> new capacity map for the simulator."""
        out: dict[str, float] = {}
        if self.uplink is not None:
            out[f"up:{self.node}"] = self.uplink
        if self.downlink is not None:
            out[f"down:{self.node}"] = self.downlink
        if self.cross_uplink is not None:
            out[f"xup:{self.node}"] = self.cross_uplink
        if self.cross_downlink is not None:
            out[f"xdown:{self.node}"] = self.cross_downlink
        return out


def degrade_nodes(
    nodes: list[int], at_time: float, factor: float, cluster
) -> list[BandwidthEvent]:
    """Deprecated shim: use :meth:`repro.simnet.network.NetworkTrace.degrade`.

    Routes bit-exact through the facade (same events, same order).
    """
    from repro.simnet.network import NetworkTrace
    from repro.system.request import warn_legacy

    warn_legacy(
        "degrade_nodes(nodes, at_time, factor, cluster)",
        "NetworkTrace.degrade(nodes, at_time=..., factor=...).events_for(cluster)",
    )
    return NetworkTrace.degrade(nodes, at_time=at_time, factor=factor).events_for(cluster)
