"""Dynamic bandwidth workloads (the paper's §VII future work).

A :class:`BandwidthEvent` changes a node's link rates at a point in
simulated time; the fluid simulator re-solves the max-min allocation at each
event boundary, so long transfers correctly straddle rate changes.  Event
schedules also feed HMBR's search split, yielding a *dynamics-aware* hybrid
that picks the ratio minimizing makespan under the predicted bandwidth
trajectory rather than the instantaneous snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BandwidthEvent:
    """At ``time``, set the given link rates of ``node`` (None = unchanged)."""

    time: float
    node: int
    uplink: float | None = None
    downlink: float | None = None
    cross_uplink: float | None = None
    cross_downlink: float | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")
        for value in (self.uplink, self.downlink, self.cross_uplink, self.cross_downlink):
            if value is not None and value <= 0:
                raise ValueError("bandwidths must stay positive")

    def capacity_updates(self) -> dict[str, float]:
        """Resource-key -> new capacity map for the simulator."""
        out: dict[str, float] = {}
        if self.uplink is not None:
            out[f"up:{self.node}"] = self.uplink
        if self.downlink is not None:
            out[f"down:{self.node}"] = self.downlink
        if self.cross_uplink is not None:
            out[f"xup:{self.node}"] = self.cross_uplink
        if self.cross_downlink is not None:
            out[f"xdown:{self.node}"] = self.cross_downlink
        return out


def degrade_nodes(
    nodes: list[int], at_time: float, factor: float, cluster
) -> list[BandwidthEvent]:
    """Convenience: divide the listed nodes' link rates by ``factor``."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    events = []
    for n in nodes:
        node = cluster[n]
        events.append(
            BandwidthEvent(
                time=at_time,
                node=n,
                uplink=node.uplink / factor,
                downlink=node.downlink / factor,
                cross_uplink=None if node.cross_uplink is None else node.cross_uplink / factor,
                cross_downlink=None if node.cross_downlink is None else node.cross_downlink / factor,
            )
        )
    return events
