"""Task primitives consumed by the fluid simulator.

A repair plan lowers to a DAG of tasks:

* :class:`Flow` — point-to-point transfer of ``size_mb`` from ``src`` to
  ``dst`` (paper Case 1-3 semantics emerge from fair sharing).
* :class:`PipelineFlow` — a sliced chain/tree-path transfer occupying every
  hop concurrently; rate = min over hops of the per-hop allocation.
* :class:`DelayTask` — fixed-duration step (decode CPU time, disk I/O) used
  when simulating *overall* rather than transfer-only repair time.

``deps`` lists task ids that must complete before the task starts.  Tags let
analyses group tasks (e.g. ``"cr"`` vs ``"ir"`` sub-plans of HMBR).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Flow:
    task_id: str
    src: int
    dst: int
    size_mb: float
    deps: tuple[str, ...] = ()
    tag: str = ""
    #: weighted-fair-share weight: a flow of weight w gets w times the
    #: bandwidth of a weight-1 competitor on a shared link.  Background
    #: repair traffic is throttled by giving its flows weight < 1.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise ValueError(f"flow {self.task_id}: negative size")
        if self.src == self.dst:
            raise ValueError(f"flow {self.task_id}: src == dst == {self.src}")
        if self.weight <= 0:
            raise ValueError(f"flow {self.task_id}: weight must be positive")
        self.deps = tuple(self.deps)

    @property
    def hops(self) -> tuple[tuple[int, int], ...]:
        return ((self.src, self.dst),)


@dataclass
class PipelineFlow:
    """A pipelined transfer along ``path`` (>= 2 nodes, no repeats).

    ``size_mb`` is the per-hop payload: every hop of a repair pipeline carries
    one (partially accumulated) copy of the block being repaired.
    """

    task_id: str
    path: tuple[int, ...]
    size_mb: float
    deps: tuple[str, ...] = ()
    tag: str = ""
    weight: float = 1.0

    def __post_init__(self) -> None:
        self.path = tuple(self.path)
        if len(self.path) < 2:
            raise ValueError(f"pipeline {self.task_id}: needs >= 2 nodes")
        if len(set(self.path)) != len(self.path):
            raise ValueError(f"pipeline {self.task_id}: repeated node in path")
        if self.size_mb < 0:
            raise ValueError(f"pipeline {self.task_id}: negative size")
        if self.weight <= 0:
            raise ValueError(f"pipeline {self.task_id}: weight must be positive")
        self.deps = tuple(self.deps)

    @property
    def hops(self) -> tuple[tuple[int, int], ...]:
        return tuple(zip(self.path[:-1], self.path[1:]))


@dataclass
class DelayTask:
    """Fixed-duration task (no network resources)."""

    task_id: str
    duration_s: float
    node: int | None = None
    deps: tuple[str, ...] = ()
    tag: str = ""

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError(f"delay {self.task_id}: negative duration")
        self.deps = tuple(self.deps)


Task = Flow | PipelineFlow | DelayTask


def validate_tasks(tasks: list[Task]) -> dict[str, Task]:
    """Check id uniqueness and dependency closure; return id -> task."""
    by_id: dict[str, Task] = {}
    for t in tasks:
        if t.task_id in by_id:
            raise ValueError(f"duplicate task id {t.task_id!r}")
        by_id[t.task_id] = t
    for t in tasks:
        for d in t.deps:
            if d not in by_id:
                raise ValueError(f"task {t.task_id!r} depends on unknown {d!r}")
    return by_id
