"""Fluid (flow-level) network simulator with max-min fair sharing.

The simulator advances a DAG of :mod:`repro.simnet.flows` tasks through time.
Whenever the active set changes (a task completes and/or dependents start),
rates are recomputed by **progressive filling**: repeatedly find the most
contended resource, fix the fair share of every unfixed flow crossing it, and
subtract.  Resources are per-node uplink / downlink capacities plus optional
per-node cross-rack capacities (the ``tc`` shaping of Experiment 4).

This is the standard fluid approximation of TCP-fair sharing used by
flow-level datacenter simulators; on the paper's plan shapes it reproduces
the closed-form times of §III-B exactly (see tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.topology import Cluster
from repro.simnet.flows import DelayTask, Flow, PipelineFlow, Task, validate_tasks

_EPS = 1e-12


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    makespan: float
    finish_times: dict[str, float]
    start_times: dict[str, float]
    bytes_sent: dict[int, float]  # node -> MB uploaded
    bytes_received: dict[int, float]  # node -> MB downloaded
    cross_rack_mb: float  # total MB that crossed a rack boundary
    n_rate_updates: int
    #: optional rate timeline: list of (t_start, t_end, {flow id: MB/s}),
    #: populated when run(..., record_trace=True)
    trace: list[tuple[float, float, dict[str, float]]] | None = None
    #: unfinished volume (MB, or seconds for delays) per task id when the
    #: run was truncated by ``horizon_s``; empty for complete runs
    remaining_mb: dict[str, float] = field(default_factory=dict)

    def finish_of(self, tag: str) -> float:
        """Latest finish time among tasks in the ``tag`` namespace.

        A task belongs to the namespace when its id *is* ``tag`` or starts
        with ``tag`` followed by the ``:`` delimiter, so ``finish_of("cr")``
        never collects ``"cr2:..."`` or ``"cr_local:..."`` tasks the way a
        bare prefix match would.
        """
        prefix = tag if tag.endswith(":") else tag + ":"
        times = [
            t
            for tid, t in self.finish_times.items()
            if tid == tag or tid.startswith(prefix)
        ]
        if not times:
            raise KeyError(f"no task ids in the {tag!r} namespace")
        return max(times)

    def tag_finish(self, tasks: list[Task], tag: str) -> float:
        times = [self.finish_times[t.task_id] for t in tasks if t.tag == tag]
        if not times:
            raise KeyError(f"no tasks tagged {tag!r}")
        return max(times)


class _Resource:
    __slots__ = ("capacity", "flows")

    def __init__(self, capacity: float):
        self.capacity = capacity
        self.flows: set[str] = set()


class FluidSimulator:
    """Simulate a task DAG over a cluster's bandwidth resources."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    # -------------------------------------------------------------- #
    def _resources_of(self, task: Task) -> list[tuple[str, float]]:
        """(resource key, capacity) pairs the task occupies, one unit each."""
        out: list[tuple[str, float]] = []
        if isinstance(task, DelayTask):
            return out
        trunks = getattr(self.cluster, "rack_trunks", {})
        for src, dst in task.hops:
            node_s, node_d = self.cluster[src], self.cluster[dst]
            cross = node_s.rack != node_d.rack
            out.append((f"up:{src}", node_s.uplink))
            out.append((f"down:{dst}", node_d.downlink))
            if cross and node_s.cross_uplink is not None:
                out.append((f"xup:{src}", node_s.cross_uplink))
            if cross and node_d.cross_downlink is not None:
                out.append((f"xdown:{dst}", node_d.cross_downlink))
            if cross and node_s.rack in trunks:
                out.append((f"rup:{node_s.rack}", trunks[node_s.rack][0]))
            if cross and node_d.rack in trunks:
                out.append((f"rdown:{node_d.rack}", trunks[node_d.rack][1]))
        return out

    @staticmethod
    def _allocate(
        active: dict[str, list[str]],
        resources: dict[str, _Resource],
        weights: dict[str, float] | None = None,
    ) -> dict[str, float]:
        """Progressive-filling (weighted) max-min rates for the active flows.

        ``active`` maps flow id -> list of resource keys it occupies (with
        multiplicity; a flow occupying a resource twice counts twice).
        ``weights`` implements weighted fair sharing: a flow of weight w
        receives w times the rate of a weight-1 competitor at a shared
        bottleneck (used to throttle background repair traffic).
        Reference implementation; the vectorized allocator must match it.
        """
        weights = weights or {}
        remaining = {r: res.capacity for r, res in resources.items()}
        # count[r] = total weighted units of unfixed flows on r
        count: dict[str, float] = {}
        units: dict[str, dict[str, int]] = {}
        for fid, rkeys in active.items():
            w = weights.get(fid, 1.0)
            u: dict[str, int] = {}
            for r in rkeys:
                u[r] = u.get(r, 0) + 1
            units[fid] = u
            for r, n in u.items():
                count[r] = count.get(r, 0.0) + n * w
        rates: dict[str, float] = {}
        unfixed = set(active)
        # Flows with no network resources (shouldn't happen) get infinite rate.
        for fid in list(unfixed):
            if not units[fid]:
                rates[fid] = math.inf
                unfixed.discard(fid)
        while unfixed:
            # fair share per unit weight on each still-contended resource
            best_r, best_share = None, math.inf
            for r, n in count.items():
                if n <= _EPS:
                    continue
                share = remaining[r] / n
                if share < best_share - _EPS:
                    best_r, best_share = r, share
            if best_r is None:
                raise AssertionError("unfixed flows but no contended resource")
            # fix every unfixed flow occupying the bottleneck resource
            fixed_now = [fid for fid in unfixed if best_r in units[fid]]
            for fid in fixed_now:
                w = weights.get(fid, 1.0)
                rates[fid] = max(best_share * w, 0.0)
                unfixed.discard(fid)
                for r, n in units[fid].items():
                    remaining[r] -= rates[fid] * n
                    if remaining[r] < 0:
                        remaining[r] = 0.0
                    count[r] -= n * w
        return rates

    # -------------------------------------------------------------- #
    class _VectorAllocator:
        """Vectorized progressive filling over a fixed task set.

        The incidence structure (flow x resource, with multiplicity) is
        built once per ``run``; each allocation round then works on NumPy
        arrays — profiling showed the dict-based reference implementation
        (:meth:`FluidSimulator._allocate`) dominating simulation time on
        wide-stripe plans (hundreds of flows x hundreds of resources).
        """

        def __init__(
            self,
            flow_tids: list[str],
            task_resources: dict[str, list[str]],
            res_keys: list[str],
            weights: dict[str, float] | None = None,
        ):
            import numpy as np

            self.np = np
            self.flow_tids = flow_tids
            self.flow_index = {tid: i for i, tid in enumerate(flow_tids)}
            self.res_index = {r: i for i, r in enumerate(res_keys)}
            self.n_flows = len(flow_tids)
            self.n_res = len(res_keys)
            weights = weights or {}
            self.weights = np.array(
                [float(weights.get(tid, 1.0)) for tid in flow_tids]
            )
            ef, er = [], []
            for tid in flow_tids:
                fi = self.flow_index[tid]
                for r in task_resources[tid]:
                    ef.append(fi)
                    er.append(self.res_index[r])
            self.entry_flow = np.asarray(ef, dtype=np.int64)
            self.entry_res = np.asarray(er, dtype=np.int64)
            # CSR by flow (entries grouped per flow)
            order = np.argsort(self.entry_flow, kind="stable")
            self.flow_sorted_res = self.entry_res[order]
            counts = np.bincount(self.entry_flow, minlength=self.n_flows)
            self.flow_ptr = np.concatenate([[0], np.cumsum(counts)])
            # CSC by resource (entries grouped per resource)
            rorder = np.argsort(self.entry_res, kind="stable")
            self.res_sorted_flow = self.entry_flow[rorder]
            rcounts = np.bincount(self.entry_res, minlength=self.n_res)
            self.res_ptr = np.concatenate([[0], np.cumsum(rcounts)])

        def allocate(self, active_mask, caps):
            """Weighted max-min rates (array indexed like flow_tids)."""
            np = self.np
            if self.entry_flow.size:
                act_entries = active_mask[self.entry_flow]
                wsum = np.bincount(
                    self.entry_res[act_entries],
                    weights=self.weights[self.entry_flow[act_entries]],
                    minlength=self.n_res,
                )
            else:
                wsum = np.zeros(self.n_res)
            remaining = caps.astype(float).copy()
            rates = np.zeros(self.n_flows)
            unfixed = active_mask.copy()
            n_unfixed = int(unfixed.sum())
            while n_unfixed:
                share = np.where(wsum > _EPS, remaining / np.maximum(wsum, _EPS), math.inf)
                r = int(np.argmin(share))
                s = float(share[r])
                if not math.isfinite(s):
                    raise AssertionError("unfixed flows but no contended resource")
                fl = np.unique(self.res_sorted_flow[self.res_ptr[r] : self.res_ptr[r + 1]])
                fl = fl[unfixed[fl]]
                if fl.size == 0:  # pragma: no cover - defensive against stale counts
                    wsum[r] = 0.0
                    continue
                s = max(s, 0.0)
                rates[fl] = s * self.weights[fl]
                unfixed[fl] = False
                n_unfixed -= int(fl.size)
                res_idx = np.concatenate(
                    [self.flow_sorted_res[self.flow_ptr[f] : self.flow_ptr[f + 1]] for f in fl]
                )
                # each entry of flow f consumes rate(f) = s * w(f)
                entry_w = np.concatenate(
                    [
                        np.full(self.flow_ptr[f + 1] - self.flow_ptr[f], self.weights[f])
                        for f in fl
                    ]
                )
                np.subtract.at(remaining, res_idx, s * entry_w)
                np.maximum(remaining, 0.0, out=remaining)
                np.subtract.at(wsum, res_idx, entry_w)
            return rates

    # -------------------------------------------------------------- #
    @staticmethod
    def _emit_spans(tracer, label, by_id, start_times, finish_times, makespan) -> None:
        """Record a finished schedule as sim-domain spans on ``tracer``.

        Flows are attributed to their first hop's source node; overlap is
        expected (concurrent flows), so these are interval spans exported as
        Chrome async events — see :mod:`repro.obs.export`.
        """
        root = tracer.add(
            label, actor="net", cat="sim", t0=0.0, t1=makespan,
            makespan=makespan, tasks=len(by_id),
        )
        for tid, t in by_id.items():
            if isinstance(t, DelayTask):
                actor, cat = "net", "sim-delay"
                args = {"duration_s": t.duration_s}
            else:
                actor, cat = f"node:{t.hops[0][0]}", "sim-transfer"
                args = {
                    "size_mb": t.size_mb,
                    "hops": [list(h) for h in t.hops],
                    "tag": getattr(t, "tag", ""),
                }
            tracer.add(
                tid, actor=actor, cat=cat,
                t0=start_times[tid], t1=finish_times[tid], parent=root, **args,
            )

    def run(
        self,
        tasks: list[Task],
        events=(),
        record_trace: bool = False,
        tracer=None,
        trace_label: str = "simulate",
        horizon_s: float | None = None,
    ) -> SimulationResult:
        """Simulate all tasks; returns completion times and traffic stats.

        ``events`` is an optional iterable of
        :class:`repro.simnet.dynamic.BandwidthEvent`; rates are re-solved at
        each event boundary (dynamic workloads, §VII of the paper).
        ``record_trace`` keeps the piecewise-constant rate timeline for
        post-hoc analysis (see :mod:`repro.simnet.trace`).

        ``horizon_s`` truncates the run at the given simulated time: the
        state integrated so far is returned with the unfinished volume per
        task in :attr:`SimulationResult.remaining_mb` (the adaptive engine
        uses this to measure progress up to a re-plan boundary).

        ``tracer`` (a :class:`repro.obs.Tracer`) records the simulated
        timeline post-hoc as sim-domain spans: one root span named
        ``trace_label`` covering ``[0, makespan)`` plus one span per task at
        its simulated start/finish times.  The simulation itself is
        unaffected — timestamps are read from the finished schedule.
        """
        trace: list[tuple[float, float, dict[str, float]]] | None = (
            [] if record_trace else None
        )
        # events are drained through an index cursor: ``list.pop(0)`` is
        # O(n) per event, quadratic over the dense event streams the repair
        # scheduler emits (one boundary per job arrival / bandwidth change)
        pending_events = sorted(events, key=lambda e: e.time)
        next_event = 0
        by_id = validate_tasks(tasks)
        n_deps_left = {tid: len(t.deps) for tid, t in by_id.items()}
        dependents: dict[str, list[str]] = {tid: [] for tid in by_id}
        for tid, t in by_id.items():
            for d in t.deps:
                dependents[d].append(tid)

        remaining: dict[str, float] = {}
        for tid, t in by_id.items():
            if isinstance(t, DelayTask):
                remaining[tid] = t.duration_s
            else:
                remaining[tid] = t.size_mb

        start_times: dict[str, float] = {}
        finish_times: dict[str, float] = {}
        active: set[str] = set()
        now = 0.0

        def activate(tid: str) -> None:
            active.add(tid)
            start_times[tid] = now
            # zero-size tasks complete instantly; handled in the loop below.

        for tid in by_id:
            if n_deps_left[tid] == 0:
                activate(tid)

        import numpy as np

        task_resources = {tid: [r for r, _ in self._resources_of(t)] for tid, t in by_id.items()}
        res_caps: dict[str, _Resource] = {}
        for tid, t in by_id.items():
            for key, cap in self._resources_of(t):
                if key not in res_caps:
                    res_caps[key] = _Resource(cap)
        flow_tids = [tid for tid, t in by_id.items() if not isinstance(t, DelayTask)]
        res_keys = list(res_caps)
        task_weights = {
            tid: getattr(t, "weight", 1.0) for tid, t in by_id.items()
        }
        allocator = self._VectorAllocator(flow_tids, task_resources, res_keys, task_weights)
        caps_array = np.array([res_caps[r].capacity for r in res_keys], dtype=float)
        res_pos = {r: i for i, r in enumerate(res_keys)}

        bytes_sent: dict[int, float] = {}
        bytes_received: dict[int, float] = {}
        cross_rack_mb = 0.0
        n_updates = 0

        def account(t: Task) -> None:
            nonlocal cross_rack_mb
            if isinstance(t, DelayTask):
                return
            for src, dst in t.hops:
                bytes_sent[src] = bytes_sent.get(src, 0.0) + t.size_mb
                bytes_received[dst] = bytes_received.get(dst, 0.0) + t.size_mb
                if self.cluster[src].rack != self.cluster[dst].rack:
                    cross_rack_mb += t.size_mb

        while active:
            if horizon_s is not None and now >= horizon_s - _EPS:
                break
            # apply any bandwidth events that are due
            while next_event < len(pending_events) and pending_events[next_event].time <= now + _EPS:
                event = pending_events[next_event]
                next_event += 1
                for key, cap in event.capacity_updates().items():
                    if key in res_caps:
                        res_caps[key].capacity = cap
                        caps_array[res_pos[key]] = cap
            # complete all zero-remaining tasks immediately (no time passes)
            zero = [tid for tid in active if remaining[tid] <= _EPS]
            if zero:
                for tid in zero:
                    active.discard(tid)
                    finish_times[tid] = now
                    account(by_id[tid])
                    for dep in dependents[tid]:
                        n_deps_left[dep] -= 1
                        if n_deps_left[dep] == 0:
                            activate(dep)
                continue
            active_mask = np.zeros(len(flow_tids), dtype=bool)
            any_flow = False
            for tid in active:
                idx = allocator.flow_index.get(tid)
                if idx is not None:
                    active_mask[idx] = True
                    any_flow = True
            if any_flow:
                rate_vec = allocator.allocate(active_mask, caps_array)
                rates = {
                    tid: rate_vec[allocator.flow_index[tid]]
                    for tid in active
                    if tid in allocator.flow_index
                }
            else:
                rates = {}
            n_updates += 1
            # time to the first completion
            dt = math.inf
            for tid in active:
                t = by_id[tid]
                if isinstance(t, DelayTask):
                    dt = min(dt, remaining[tid])
                else:
                    r = rates[tid]
                    if r <= _EPS:
                        continue  # starved this round; another completion frees capacity
                    dt = min(dt, remaining[tid] / r)
            if not math.isfinite(dt):
                raise AssertionError("deadlock: active flows but no progress possible")
            # never integrate past the next bandwidth event or the horizon
            if next_event < len(pending_events):
                dt = min(dt, max(pending_events[next_event].time - now, _EPS))
            if horizon_s is not None:
                dt = min(dt, max(horizon_s - now, _EPS))
            if trace is not None:
                trace.append((now, now + dt, dict(rates)))
            # advance
            for tid in list(active):
                t = by_id[tid]
                if isinstance(t, DelayTask):
                    remaining[tid] -= dt
                else:
                    remaining[tid] -= rates[tid] * dt
                if remaining[tid] < _EPS:
                    remaining[tid] = 0.0
            now += dt

        if horizon_s is None and len(finish_times) != len(by_id):
            raise AssertionError("simulation ended with unscheduled tasks (dependency cycle?)")

        if tracer is not None:
            self._emit_spans(tracer, trace_label, by_id, start_times, finish_times, now)

        return SimulationResult(
            makespan=now,
            finish_times=finish_times,
            start_times=start_times,
            bytes_sent=bytes_sent,
            bytes_received=bytes_received,
            cross_rack_mb=cross_rack_mb,
            n_rate_updates=n_updates,
            trace=trace,
            remaining_mb=(
                {tid: remaining[tid] for tid in by_id if tid not in finish_times}
                if horizon_s is not None
                else {}
            ),
        )
