"""`NetworkTrace`: one value type for every way the network can change.

Before this facade, callers threaded dynamics through three ad-hoc paths —
hand-built :class:`~repro.simnet.dynamic.BandwidthEvent` lists, the
``degrade_nodes`` convenience, and the OU trace generator in
``cluster/timeseries.py``.  A :class:`NetworkTrace` captures the *intent*
(quiet / explicit events / seeded OU churn / step degradation) as an
immutable value that can be stored on a :class:`~repro.system.request.RepairRequest`
or ``ServeRequest``, compared, composed with ``+``, and lowered to concrete
simulator events against any cluster via :meth:`NetworkTrace.events_for`.

Lowering is lazy and deterministic: an ``ou`` trace carries only its seed
and parameters, so the same trace value replays bit-identically on any
machine, and a ``degrade`` trace reads the target cluster's *current* rates
when lowered (matching the old ``degrade_nodes`` semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from repro.simnet.dynamic import BandwidthEvent

_KINDS = ("quiet", "events", "ou", "degrade", "compose")


@dataclass(frozen=True)
class NetworkTrace:
    """Immutable description of how link rates evolve during a run.

    Build instances with the factories :meth:`quiet`, :meth:`from_events`,
    :meth:`ou` and :meth:`degrade`; combine with ``+``.  The constructor
    fields are an implementation detail of the chosen ``kind``.
    """

    kind: str = "quiet"
    events: tuple[BandwidthEvent, ...] = ()
    parts: tuple["NetworkTrace", ...] = ()
    # OU-churn parameters (kind == "ou")
    duration_s: float = 0.0
    step_s: float = 1.0
    rel_sigma: float = 0.15
    theta: float = 0.5
    seed: int = 0
    nodes: tuple[int, ...] | None = None
    # degradation parameters (kind == "degrade")
    at_time: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown NetworkTrace kind {self.kind!r}")

    # -------------------------------------------------------------- #
    # factories
    # -------------------------------------------------------------- #
    @classmethod
    def quiet(cls) -> "NetworkTrace":
        """A constant-bandwidth network (no events)."""
        return cls()

    @classmethod
    def from_events(cls, events: Iterable[BandwidthEvent]) -> "NetworkTrace":
        """Wrap an explicit event list (kept sorted by time)."""
        evs = tuple(events)
        for e in evs:
            if not isinstance(e, BandwidthEvent):
                raise TypeError(f"expected BandwidthEvent, got {type(e).__name__}")
        return cls(kind="events", events=tuple(sorted(evs, key=lambda e: e.time)))

    @classmethod
    def ou(
        cls,
        duration_s: float,
        *,
        step_s: float = 1.0,
        rel_sigma: float = 0.15,
        theta: float = 0.5,
        seed: int = 0,
        nodes: Sequence[int] | None = None,
    ) -> "NetworkTrace":
        """Seeded mean-reverting OU churn on every (or the given) node's links."""
        if duration_s <= 0 or step_s <= 0:
            raise ValueError("duration and step must be positive")
        if rel_sigma < 0:
            raise ValueError("rel_sigma must be non-negative")
        return cls(
            kind="ou",
            duration_s=float(duration_s),
            step_s=float(step_s),
            rel_sigma=float(rel_sigma),
            theta=float(theta),
            seed=int(seed),
            nodes=None if nodes is None else tuple(int(n) for n in nodes),
        )

    @classmethod
    def degrade(
        cls, nodes: Sequence[int], *, at_time: float = 0.0, factor: float = 2.0
    ) -> "NetworkTrace":
        """At ``at_time``, divide the listed nodes' link rates by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        if at_time < 0:
            raise ValueError("at_time must be non-negative")
        return cls(
            kind="degrade",
            nodes=tuple(int(n) for n in nodes),
            at_time=float(at_time),
            factor=float(factor),
        )

    # -------------------------------------------------------------- #
    # composition / inspection
    # -------------------------------------------------------------- #
    def __add__(self, other: "NetworkTrace") -> "NetworkTrace":
        if not isinstance(other, NetworkTrace):
            return NotImplemented
        parts = []
        for t in (self, other):
            if t.kind == "compose":
                parts.extend(t.parts)
            elif not t.is_quiet:
                parts.append(t)
        if not parts:
            return NetworkTrace.quiet()
        if len(parts) == 1:
            return parts[0]
        return NetworkTrace(kind="compose", parts=tuple(parts))

    @property
    def is_quiet(self) -> bool:
        """True iff lowering can never produce an event."""
        if self.kind == "quiet":
            return True
        if self.kind == "events":
            return not self.events
        if self.kind == "degrade":
            return not self.nodes
        if self.kind == "compose":
            return all(p.is_quiet for p in self.parts)
        return False

    # -------------------------------------------------------------- #
    # lowering
    # -------------------------------------------------------------- #
    def events_for(self, cluster) -> list[BandwidthEvent]:
        """Materialize the trace against ``cluster`` as sorted simulator events."""
        if self.kind == "quiet":
            return []
        if self.kind == "events":
            return list(self.events)
        if self.kind == "degrade":
            out = []
            for n in self.nodes or ():
                node = cluster[n]
                out.append(
                    BandwidthEvent(
                        time=self.at_time,
                        node=n,
                        uplink=node.uplink / self.factor,
                        downlink=node.downlink / self.factor,
                        cross_uplink=(
                            None if node.cross_uplink is None
                            else node.cross_uplink / self.factor
                        ),
                        cross_downlink=(
                            None if node.cross_downlink is None
                            else node.cross_downlink / self.factor
                        ),
                    )
                )
            return out
        if self.kind == "ou":
            import numpy as np

            from repro.cluster.timeseries import _trace_events

            return _trace_events(
                cluster,
                self.duration_s,
                step_s=self.step_s,
                rel_sigma=self.rel_sigma,
                theta=self.theta,
                rng=np.random.default_rng(self.seed),
                nodes=None if self.nodes is None else list(self.nodes),
            )
        # compose: stable merge keeps part order for simultaneous events
        merged: list[BandwidthEvent] = []
        for p in self.parts:
            merged.extend(p.events_for(cluster))
        return sorted(merged, key=lambda e: e.time)


def as_network(value) -> NetworkTrace:
    """Coerce ``None`` / event iterables / traces to a :class:`NetworkTrace`."""
    if value is None:
        return NetworkTrace.quiet()
    if isinstance(value, NetworkTrace):
        return value
    return NetworkTrace.from_events(value)


def cluster_at(cluster, events: Iterable[BandwidthEvent], up_to: float):
    """A capacity-view copy of ``cluster`` with events up to ``up_to`` applied.

    Returns a *new* :class:`~repro.cluster.topology.Cluster` whose nodes carry
    the link rates in force at simulated time ``up_to`` (events with
    ``time <= up_to``, in order).  Liveness flags, racks, tags and rack
    trunks are preserved; the original cluster is never mutated.  The
    adaptive engine re-plans against these snapshots.
    """
    from repro.cluster.node import Node
    from repro.cluster.topology import Cluster

    copies = []
    for nid in sorted(cluster.nodes):
        n = cluster.nodes[nid]
        copies.append(
            Node(
                nid,
                uplink=n.uplink,
                downlink=n.downlink,
                rack=n.rack,
                alive=n.alive,
                cross_uplink=n.cross_uplink,
                cross_downlink=n.cross_downlink,
                tags=set(n.tags),
            )
        )
    twin = Cluster(copies)
    twin.rack_trunks = dict(cluster.rack_trunks)
    for e in sorted(events, key=lambda ev: ev.time):
        if e.time > up_to:
            break
        node = twin[e.node]
        if e.uplink is not None:
            node.uplink = e.uplink
        if e.downlink is not None:
            node.downlink = e.downlink
        if e.cross_uplink is not None:
            node.cross_uplink = e.cross_uplink
        if e.cross_downlink is not None:
            node.cross_downlink = e.cross_downlink
    return twin
