"""Slice-level validation of the pipeline-flow abstraction.

Repair pipelining (RP [16]) splits a block into slices; node i forwards slice
j to node i+1 as soon as (a) it has received slice j and (b) the link finished
sending slice j-1.  With per-hop link bandwidths ``bw[h]`` this is the classic
wavefront recurrence::

    done[j][h] = max(done[j][h-1], done[j-1][h]) + slice / bw[h]

As the slice count grows, the total time converges to
``fill + B / min(bw)`` where the fill term vanishes — exactly the steady-state
assumption behind :class:`repro.simnet.flows.PipelineFlow`.  Tests use this to
bound the error of the fluid abstraction.
"""

from __future__ import annotations

import numpy as np


def simulate_pipeline_slices(
    size_mb: float, hop_bandwidths: list[float], n_slices: int
) -> float:
    """Completion time of one sliced pipeline over fixed per-hop bandwidths."""
    if n_slices < 1:
        raise ValueError("need at least one slice")
    bw = np.asarray(hop_bandwidths, dtype=float)
    if bw.ndim != 1 or bw.size == 0 or np.any(bw <= 0):
        raise ValueError("hop bandwidths must be a non-empty positive vector")
    slice_mb = size_mb / n_slices
    per_hop = slice_mb / bw  # transmission time of one slice per hop
    done = np.zeros(bw.size)
    # done[h] holds completion of the previous slice at hop h.
    for _ in range(n_slices):
        t = 0.0
        for h in range(bw.size):
            t = max(t, done[h]) + per_hop[h]
            done[h] = t
    return float(done[-1])


def pipeline_steady_state_time(size_mb: float, hop_bandwidths: list[float]) -> float:
    """The fluid model's prediction: B / min hop bandwidth (no fill term)."""
    bw = np.asarray(hop_bandwidths, dtype=float)
    return float(size_mb / bw.min())
