"""Static (closed-form) plan evaluation — the paper's §III-B1 model as a
general task-graph evaluator.

Where :class:`~repro.simnet.fluid.FluidSimulator` recomputes max-min rates
at every completion event, this evaluator takes one shortcut: every task's
rate is fixed by the *connection counts of all tasks that could run
concurrently with it* (the paper's Cases 1-3: uplinks divided by fan-out,
downlinks by fan-in).  Tasks then finish at ``start + size/rate`` and starts
honor dependencies.  The result upper-bounds the fluid makespan (rates never
increase as neighbors finish) and equals it whenever all sharing tasks
finish together — which is exactly the situation in the paper's CR and IR
formulas, so on those plans the two backends agree (see tests).

It is ~10x cheaper than the fluid simulator and is useful inside search
loops where thousands of candidate plans are scored.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import Cluster
from repro.simnet.flows import DelayTask, Task, validate_tasks


@dataclass
class StaticResult:
    makespan: float
    finish_times: dict[str, float]
    rates: dict[str, float]


class StaticShareEvaluator:
    """Evaluate a task graph with fixed connection-count bandwidth shares."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    def _rates(self, tasks: list[Task]) -> dict[str, float]:
        """Per-task rate from global connection counts (paper Cases 1-3).

        Shared rack trunks are handled the same way: a trunk's capacity is
        divided by the number of cross-rack connections traversing it.
        """
        trunks = getattr(self.cluster, "rack_trunks", {})
        out_count: dict[int, int] = {}
        in_count: dict[int, int] = {}
        trunk_out: dict[int, int] = {}
        trunk_in: dict[int, int] = {}
        for t in tasks:
            if isinstance(t, DelayTask):
                continue
            for src, dst in t.hops:
                out_count[src] = out_count.get(src, 0) + 1
                in_count[dst] = in_count.get(dst, 0) + 1
                rs, rd = self.cluster[src].rack, self.cluster[dst].rack
                if rs != rd:
                    trunk_out[rs] = trunk_out.get(rs, 0) + 1
                    trunk_in[rd] = trunk_in.get(rd, 0) + 1
        rates: dict[str, float] = {}
        for t in tasks:
            if isinstance(t, DelayTask):
                continue
            hop_bws = []
            for src, dst in t.hops:
                node_s, node_d = self.cluster[src], self.cluster[dst]
                cross = node_s.rack != node_d.rack
                up = node_s.effective_uplink(cross) / out_count[src]
                down = node_d.effective_downlink(cross) / in_count[dst]
                bw = min(up, down)
                if cross and node_s.rack in trunks:
                    bw = min(bw, trunks[node_s.rack][0] / trunk_out[node_s.rack])
                if cross and node_d.rack in trunks:
                    bw = min(bw, trunks[node_d.rack][1] / trunk_in[node_d.rack])
                hop_bws.append(bw)
            rates[t.task_id] = min(hop_bws)
        return rates

    def run(self, tasks: list[Task]) -> StaticResult:
        by_id = validate_tasks(tasks)
        rates = self._rates(tasks)
        finish: dict[str, float] = {}

        def finish_of(tid: str, stack: tuple[str, ...] = ()) -> float:
            if tid in finish:
                return finish[tid]
            if tid in stack:
                raise ValueError(f"dependency cycle through {tid!r}")
            t = by_id[tid]
            start = max((finish_of(d, stack + (tid,)) for d in t.deps), default=0.0)
            if isinstance(t, DelayTask):
                duration = t.duration_s
            else:
                rate = rates[tid]
                duration = t.size_mb / rate if t.size_mb > 0 else 0.0
            finish[tid] = start + duration
            return finish[tid]

        for tid in by_id:
            finish_of(tid)
        makespan = max(finish.values(), default=0.0)
        return StaticResult(makespan=makespan, finish_times=finish, rates=rates)
