"""Post-processing of simulation rate traces.

``FluidSimulator.run(..., record_trace=True)`` keeps the piecewise-constant
rate timeline.  These helpers turn it into per-node throughput and link
utilization series — the observability a real repair system would expose,
and the quickest way to see *which* link paces a repair and when.
"""

from __future__ import annotations

from repro.cluster.topology import Cluster
from repro.simnet.flows import DelayTask, Task
from repro.simnet.fluid import SimulationResult


def _hops_by_task(tasks: list[Task]) -> dict[str, tuple[tuple[int, int], ...]]:
    return {
        t.task_id: t.hops for t in tasks if not isinstance(t, DelayTask)
    }


def node_throughput_timeline(
    result: SimulationResult, tasks: list[Task], node: int, direction: str = "up"
) -> list[tuple[float, float, float]]:
    """(t0, t1, MB/s) segments of a node's aggregate up/down throughput."""
    if result.trace is None:
        raise ValueError("simulation was run without record_trace=True")
    if direction not in ("up", "down"):
        raise ValueError("direction must be 'up' or 'down'")
    hops = _hops_by_task(tasks)
    segments = []
    for t0, t1, rates in result.trace:
        total = 0.0
        for tid, rate in rates.items():
            for src, dst in hops.get(tid, ()):
                if (direction == "up" and src == node) or (
                    direction == "down" and dst == node
                ):
                    total += rate
        segments.append((t0, t1, total))
    return segments


def peak_utilization(
    result: SimulationResult, tasks: list[Task], cluster: Cluster, node: int
) -> float:
    """Peak uplink utilization (0..1) of a node over the repair."""
    segs = node_throughput_timeline(result, tasks, node, "up")
    cap = cluster[node].uplink
    return max((rate / cap for _, _, rate in segs), default=0.0)


def bottleneck_report(
    result: SimulationResult, tasks: list[Task], cluster: Cluster, top: int = 5
) -> list[dict]:
    """Nodes ranked by time spent >= 99% uplink- or downlink-saturated.

    The top entry is "the bottleneck" in the §II sense: the node whose link
    paces the repair.
    """
    if result.trace is None:
        raise ValueError("simulation was run without record_trace=True")
    hops = _hops_by_task(tasks)
    saturated: dict[int, float] = {}
    for t0, t1, rates in result.trace:
        up: dict[int, float] = {}
        down: dict[int, float] = {}
        for tid, rate in rates.items():
            for src, dst in hops.get(tid, ()):
                up[src] = up.get(src, 0.0) + rate
                down[dst] = down.get(dst, 0.0) + rate
        for node, rate in up.items():
            if rate >= 0.99 * cluster[node].uplink:
                saturated[node] = saturated.get(node, 0.0) + (t1 - t0)
        for node, rate in down.items():
            if rate >= 0.99 * cluster[node].downlink:
                saturated[node] = saturated.get(node, 0.0) + (t1 - t0)
    ranked = sorted(saturated.items(), key=lambda kv: -kv[1])[:top]
    return [
        {
            "node": node,
            "saturated_s": seconds,
            "fraction_of_makespan": seconds / result.makespan if result.makespan else 0.0,
        }
        for node, seconds in ranked
    ]
