"""Plan/simulation visualization: ASCII Gantt charts and JSON export.

Terminal-friendly observability for repair plans: which task ran when, at
what mean rate, on which link.  ``to_json`` round-trips the full result for
external tooling (the paper's figures are essentially these timelines).
"""

from __future__ import annotations

import json

from repro.simnet.flows import DelayTask, Task
from repro.simnet.fluid import SimulationResult


def ascii_gantt(
    result: SimulationResult,
    tasks: list[Task],
    width: int = 60,
    max_rows: int = 40,
) -> str:
    """Render task start/finish spans as a fixed-width Gantt chart."""
    if not tasks:
        return "(no tasks)"
    span = result.makespan or 1.0
    by_start = sorted(tasks, key=lambda t: (result.start_times[t.task_id], t.task_id))
    label_w = min(max(len(t.task_id) for t in tasks), 36)
    lines = [f"{'task'.ljust(label_w)} | 0{' ' * (width - 10)}{span:8.2f}s"]
    lines.append("-" * (label_w + 3 + width))
    shown = by_start[:max_rows]
    for t in shown:
        t0 = result.start_times[t.task_id]
        t1 = result.finish_times[t.task_id]
        a = int(round(width * t0 / span))
        b = max(int(round(width * t1 / span)), a + 1)
        bar = " " * a + "#" * (b - a) + " " * (width - b)
        label = t.task_id[:label_w].ljust(label_w)
        lines.append(f"{label} | {bar}")
    if len(by_start) > max_rows:
        lines.append(f"... ({len(by_start) - max_rows} more tasks)")
    return "\n".join(lines)


def task_summary_rows(result: SimulationResult, tasks: list[Task]) -> list[dict]:
    """One row per task: span, size, mean rate, hops."""
    rows = []
    for t in tasks:
        t0 = result.start_times[t.task_id]
        t1 = result.finish_times[t.task_id]
        duration = t1 - t0
        if isinstance(t, DelayTask):
            rows.append(
                {"task": t.task_id, "kind": "delay", "start_s": t0, "finish_s": t1,
                 "size_mb": 0.0, "mean_rate_mbps": 0.0, "hops": 0}
            )
            continue
        rate = t.size_mb / duration if duration > 0 else float("inf")
        rows.append(
            {
                "task": t.task_id,
                "kind": type(t).__name__,
                "start_s": t0,
                "finish_s": t1,
                "size_mb": t.size_mb,
                "mean_rate_mbps": rate,
                "hops": len(t.hops),
            }
        )
    return rows


def to_json(result: SimulationResult, tasks: list[Task], indent: int | None = None) -> str:
    """Serialize the simulation outcome (timeline + traffic) to JSON."""
    payload = {
        "makespan_s": result.makespan,
        "tasks": task_summary_rows(result, tasks),
        "bytes_sent_mb": {str(k): v for k, v in result.bytes_sent.items()},
        "bytes_received_mb": {str(k): v for k, v in result.bytes_received.items()},
        "cross_rack_mb": result.cross_rack_mb,
        "trace": [
            {"t0": t0, "t1": t1, "rates": rates} for t0, t1, rates in (result.trace or [])
        ],
    }
    return json.dumps(payload, indent=indent)
