"""Mini erasure-coded storage system (the OpenEC/HDFS substrate).

An in-process reproduction of the paper's prototype architecture (Figure 7):
a centralized **coordinator** on the metadata path (stripe/block metadata,
heartbeat failure detection, repair-solution generation) and one **agent**
per storage node (in-memory block store, GF compute, data exchange over a
byte-accounting bus).  Repair solutions are the same
:class:`~repro.repair.plan.RepairPlan` objects the planners emit; the
coordinator breaks them into per-agent commands exactly as OpenEC does.
"""

from repro.system.blockstore import BlockStore
from repro.system.bus import DataBus
from repro.system.agent import Agent
from repro.system.heartbeat import HeartbeatMonitor
from repro.system.request import JobOutcome, RepairRequest, RepairResult
from repro.system.coordinator import (
    Coordinator,
    RepairReport,
    RepairTiming,
    WriteReceipt,
)

__all__ = [
    "BlockStore",
    "DataBus",
    "Agent",
    "HeartbeatMonitor",
    "Coordinator",
    "JobOutcome",
    "RepairReport",
    "RepairRequest",
    "RepairResult",
    "RepairTiming",
    "WriteReceipt",
]
