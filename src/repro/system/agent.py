"""Storage-node agent.

One agent per node (Figure 7).  Agents hold the node's block store plus a
scratch workspace for in-flight repair buffers, and execute the four command
kinds a repair plan lowers to (slice / transfer / GF-combine / concat).
Compute time spent in GF kernels is metered per agent — summed over agents
this is the system's share of the Table II ``T_o`` column.
"""

from __future__ import annotations

import time

import numpy as np

from repro.ec.subblock import DEFAULT_WORD_BYTES, word_slice
from repro.gf.field import GF, gf8
from repro.repair.plan import CombineOp, ConcatOp, Op, SliceOp, TransferOp
from repro.system.blockstore import BlockStore
from repro.system.bus import DataBus


class Agent:
    """Executes coordinator commands on one node."""

    def __init__(
        self,
        node_id: int,
        field_: GF = gf8,
        word_bytes: int = DEFAULT_WORD_BYTES,
        capacity_bytes: int | None = None,
    ):
        self.node_id = node_id
        self.field = field_
        self.word_bytes = word_bytes
        self.store = BlockStore(node_id, capacity_bytes)
        self.scratch: dict[str, np.ndarray] = {}
        self.compute_seconds = 0.0
        self.alive = True
        #: metered compute multiplier; fault injection raises it to model a
        #: degraded (slow-I/O) node.  1.0 = healthy.
        self.slowdown = 1.0
        #: optional observability tap ``(node, seconds, nbytes) -> None``;
        #: called after each GF combine with the metered (slowdown-scaled)
        #: seconds and the bytes fed through the kernel.
        self.obs_hook = None

    # -------------------------------------------------------------- #
    def _resolve(self, name: str) -> np.ndarray:
        """Scratch buffers shadow stored blocks of the same name."""
        if name in self.scratch:
            return self.scratch[name]
        return self.store.get(name)

    def store_block(self, name: str, data: np.ndarray, overwrite: bool = False) -> None:
        self.store.put(name, np.asarray(data, dtype=self.field.dtype), overwrite)

    def read_block(self, name: str) -> np.ndarray:
        return self.store.get(name)

    # -------------------------------------------------------------- #
    # command handlers
    # -------------------------------------------------------------- #
    def do_slice(self, op: SliceOp) -> None:
        src = self._resolve(op.src)
        self.scratch[op.out] = word_slice(src, op.start, op.stop, self.word_bytes)

    def do_combine(self, op: CombineOp) -> None:
        srcs = [self._resolve(s) for s in op.srcs]
        t0 = time.perf_counter()
        self.scratch[op.out] = self.field.combine(op.coeffs, srcs)
        dt = (time.perf_counter() - t0) * self.slowdown
        self.compute_seconds += dt
        if self.obs_hook is not None:
            self.obs_hook(self.node_id, dt, sum(s.nbytes for s in srcs))

    def charge_compute(self, seconds: float, nbytes: int) -> None:
        """Meter GF work done on this node's behalf outside :meth:`do_combine`.

        The batched repair engine runs one kernel per pattern group and
        splits the cost across the stripes it repaired; each stripe's share
        is charged here to its center so per-node compute accounting (and
        the observability tap) stays equivalent to the per-stripe path.
        """
        dt = seconds * self.slowdown
        self.compute_seconds += dt
        if self.obs_hook is not None:
            self.obs_hook(self.node_id, dt, nbytes)

    def do_concat(self, op: ConcatOp) -> None:
        parts = [self._resolve(p) for p in op.parts]
        self.scratch[op.out] = np.concatenate(parts)

    def send_to(self, other: "Agent", name: str, rename: str | None, bus: DataBus) -> None:
        data = self._resolve(name)
        if data.nbytes:
            bus.check(self.node_id, other.node_id, data.nbytes)  # fault gate, pre-copy
        other.scratch[rename or name] = data.copy()
        if data.nbytes:
            # degenerate split fractions yield empty slices; the buffer must
            # still arrive (downstream concats read it) but puts no bytes on
            # the wire, and the bus meters only real traffic
            bus.record(self.node_id, other.node_id, data.nbytes)

    def clear_scratch(self) -> None:
        self.scratch.clear()

    def fail(self) -> None:
        """Crash the agent: loses everything (store and scratch)."""
        self.alive = False
        self.store.clear()
        self.scratch.clear()


def run_plan_ops(
    ops: list[Op], agents: dict[int, Agent], bus: DataBus, journal=None
) -> None:
    """Dispatch a plan's ops to agents in order (the coordinator's job).

    ``journal`` (an :class:`repro.repair.executor.ExecutionJournal`, or any
    object with a ``completed`` int) makes the run resumable: ops before
    ``journal.completed`` are skipped and the counter advances as ops finish,
    so a retried run never redoes completed work.
    """
    start = journal.completed if journal is not None else 0
    for i in range(start, len(ops)):
        op = ops[i]
        if isinstance(op, SliceOp):
            agents[op.node].do_slice(op)
        elif isinstance(op, TransferOp):
            agents[op.src_node].send_to(agents[op.dst_node], op.name, op.rename, bus)
        elif isinstance(op, CombineOp):
            agents[op.node].do_combine(op)
        elif isinstance(op, ConcatOp):
            agents[op.node].do_concat(op)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown op {op!r}")
        if journal is not None:
            journal.completed = i + 1
