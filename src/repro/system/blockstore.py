"""Per-node in-memory block store.

Stands in for OpenEC's Redis-backed in-memory key-value store: named block
buffers plus simple usage accounting.  Buffers are NumPy arrays owned by the
store; reads return the array itself (callers copy when mutating).
"""

from __future__ import annotations

import numpy as np


class BlockStore:
    """A node's key-value block storage."""

    def __init__(self, node_id: int, capacity_bytes: int | None = None):
        self.node_id = node_id
        self.capacity_bytes = capacity_bytes
        self._blocks: dict[str, np.ndarray] = {}

    def put(self, name: str, data: np.ndarray, overwrite: bool = False) -> None:
        if name in self._blocks and not overwrite:
            raise KeyError(f"block {name!r} already stored on node {self.node_id}")
        arr = np.asarray(data)
        new_usage = self.used_bytes() - self._nbytes(name) + arr.nbytes
        if self.capacity_bytes is not None and new_usage > self.capacity_bytes:
            raise MemoryError(
                f"node {self.node_id}: storing {name!r} would exceed capacity"
            )
        self._blocks[name] = arr

    def get(self, name: str) -> np.ndarray:
        if name not in self._blocks:
            raise KeyError(f"node {self.node_id} has no block {name!r}")
        return self._blocks[name]

    def has(self, name: str) -> bool:
        return name in self._blocks

    def delete(self, name: str) -> None:
        self._blocks.pop(name, None)

    def names(self) -> list[str]:
        return sorted(self._blocks)

    def clear(self) -> None:
        self._blocks.clear()

    def _nbytes(self, name: str) -> int:
        arr = self._blocks.get(name)
        return 0 if arr is None else arr.nbytes

    def used_bytes(self) -> int:
        return sum(a.nbytes for a in self._blocks.values())

    def __len__(self) -> int:
        return len(self._blocks)
