"""Data bus: inter-agent transfers with byte accounting.

In the prototype agents move data through Redis; here transfers are NumPy
copies, but every transfer is metered (per sender/receiver and per rack
boundary) so system-level traffic statistics match what the flow simulator
charges for the same plan.

The bus is also the transfer injection point for :mod:`repro.faults`: an
attached injector installs :attr:`DataBus.fault_hook`, and :meth:`check`
consults it *before* any bytes move.  :mod:`repro.obs` observes transfers
the same way: an attached session installs :attr:`DataBus.obs_hook`, called
by :meth:`record` *after* a transfer is metered.  With no hooks installed
both methods are byte-for-byte identical to the plain system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class DataBus:
    """Byte-accounting message fabric between agents."""

    rack_of: dict[int, int] = field(default_factory=dict)
    sent_bytes: dict[int, int] = field(default_factory=dict)
    received_bytes: dict[int, int] = field(default_factory=dict)
    cross_rack_bytes: int = 0
    transfer_count: int = 0
    #: optional fault-injection gate ``(src, dst, nbytes) -> None``; may raise
    #: a :mod:`repro.faults.errors` fault to drop or delay the transfer.
    fault_hook: Callable[[int, int, int], None] | None = None
    #: optional observability tap ``(src, dst, nbytes) -> None``; called by
    #: :meth:`record` after a transfer is metered (never raises by contract).
    obs_hook: Callable[[int, int, int], None] | None = None

    def check(self, src: int, dst: int, nbytes: int) -> None:
        """Gate a transfer about to happen (no-op unless a hook is attached)."""
        if self.fault_hook is not None:
            self.fault_hook(src, dst, nbytes)

    def record(self, src: int, dst: int, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError(f"transfer {src}->{dst}: nbytes must be positive, got {nbytes}")
        self.sent_bytes[src] = self.sent_bytes.get(src, 0) + nbytes
        self.received_bytes[dst] = self.received_bytes.get(dst, 0) + nbytes
        if self.rack_of and self.rack_of.get(src) != self.rack_of.get(dst):
            self.cross_rack_bytes += nbytes
        self.transfer_count += 1
        if self.obs_hook is not None:
            self.obs_hook(src, dst, nbytes)

    def total_bytes(self) -> int:
        return sum(self.sent_bytes.values())

    def reset(self) -> None:
        self.sent_bytes.clear()
        self.received_bytes.clear()
        self.cross_rack_bytes = 0
        self.transfer_count = 0
