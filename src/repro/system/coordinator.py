"""The coordinator: metadata server + repair orchestration (Figure 7).

Responsibilities, mirroring the paper's prototype:

* erasure-coding metadata — stripe/block placement, coding policy, the
  mapping from files to stripes;
* failure detection via heartbeats (HDFS3 NameNode behaviour);
* repair-solution generation — on a block-lost report it builds a
  :class:`~repro.repair.context.RepairContext`, asks the configured planner
  for a :class:`~repro.repair.plan.RepairPlan`, and dispatches the plan's ops
  to the agents, which execute them cooperatively;
* timing — the same plan's flow tasks run through the fluid simulator, so
  every repair returns both the *simulated transfer time* (at the modeled
  block size) and the *measured compute time* (at the stored block size).

Data plane and timing plane are deliberately scale-decoupled: agents store
small real buffers (``block_bytes``) while transfer times are simulated at
the modeled ``block_size_mb`` (64 MB default), exactly like running the
prototype with a scaled-down payload.

An attached :class:`repro.obs.Observability` session (``obs.attach(coord)``)
records every repair as a span tree (repair → plan → per-stripe dispatch →
per-transfer/-combine hook spans, plus the simulated timeline) and feeds the
``repair.*`` / ``bus.*`` / ``gf.*`` metric series; with no session attached
every instrumentation point is a no-op and behavior is byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.ec.stripe import Stripe, StripeLayout, block_name
from repro.gf.field import GF, gf8
from repro.repair.batch import BatchRepairEngine, PlanCache, StripeBatchItem
from repro.repair.centralized import plan_centralized
from repro.repair.context import RepairContext
from repro.repair.hybrid import plan_hybrid
from repro.repair.independent import plan_independent
from repro.repair.mlf import plan_mlf
from repro.repair.multinode import CenterScheduler
from repro.repair.plan import RepairPlan
from repro.repair.rackaware import plan_rack_aware_hybrid
from repro.repair.validate import validate_plan
from repro.simnet.fluid import FluidSimulator
from repro.system.agent import Agent, run_plan_ops
from repro.system.bus import DataBus
from repro.system.heartbeat import HeartbeatMonitor
from repro.system.request import RepairRequest, RepairResult, warn_legacy

_PLANNERS = {
    "cr": lambda ctx, center: plan_centralized(ctx, center=center),
    "ir": lambda ctx, center: plan_independent(ctx),
    "hmbr": lambda ctx, center: plan_hybrid(ctx, center=center),
    "mlf": lambda ctx, center: plan_mlf(ctx),
    "rack-hmbr": lambda ctx, center: plan_rack_aware_hybrid(ctx, center=center),
}


@dataclass
class WriteReceipt:
    """Result of a client write."""

    name: str
    nbytes: int
    stripe_ids: list[int]
    padded_bytes: int


@dataclass
class RepairReport:
    """Outcome of one repair round."""

    dead_nodes: list[int]
    stripes_repaired: list[int]
    scheme: str
    simulated_transfer_s: float
    compute_s_total: float
    compute_s_critical: float
    bytes_on_wire_mb_model: float
    blocks_recovered: int
    per_stripe_transfer_s: dict[int, float] = field(default_factory=dict)
    replacements: dict[int, int] = field(default_factory=dict)
    #: True when the data plane ran through the batched engine (one GF
    #: kernel per pattern group) instead of per-stripe plan ops.
    batched: bool = False
    pattern_groups: int = 0
    plan_cache_stats: dict = field(default_factory=dict)
    #: decode worker processes the data plane fanned out to (1 = serial).
    workers: int = 1
    #: :class:`repro.parallel.PipelineReport` modeling chunk-level decode
    #: overlap with transfer completion (parallel runs only).
    pipeline: object | None = None


@dataclass
class RepairTiming:
    """Planning/timing-only outcome of :meth:`Coordinator.plan_repair`.

    The metadata fast path's answer: everything a caller needs to reason
    about a repair round — per-stripe plans, the merged flow topology, and
    the fluid makespan — without a single block byte having moved.  The
    differential suite pins this against :class:`RepairReport` from a real
    byte-materializing round: same plans, same flow graphs, and
    ``makespan_s == simulated_transfer_s`` to 1e-9.
    """

    scheme: str
    dead_nodes: list[int]
    stripes: list[int]
    makespan_s: float
    per_stripe_s: dict[int, float]
    bytes_on_wire_mb_model: float
    blocks_recovered: int
    replacement_of: dict[int, int]
    #: (stripe id, plan) in planning order; tasks are un-renamed, exactly
    #: as a real round would hand them to the merged fluid simulation.
    plans: list[tuple[int, RepairPlan]] = field(default_factory=list)
    #: True when the round's placement effects were applied to metadata.
    committed: bool = False

    def flow_signature(self) -> tuple:
        """Canonical signature of the merged task DAG (all stripes)."""
        from repro.repair.plan import flow_signature

        return flow_signature([t for _, p in self.plans for t in p.tasks])


class Coordinator:
    """Centralized coordinator over a cluster of agents."""

    def __init__(
        self,
        cluster: Cluster,
        code: RSCode,
        block_bytes: int = 1 << 16,
        block_size_mb: float = 64.0,
        field_: GF = gf8,
        heartbeat_timeout: float = 30.0,
        rng: np.random.Generator | int = 0,
    ):
        if block_bytes % 8:
            raise ValueError("block_bytes must be word-aligned (multiple of 8)")
        self.cluster = cluster
        self.code = code
        self.block_bytes = block_bytes
        self.block_size_mb = block_size_mb
        self.field = field_
        self.rng = np.random.default_rng(rng) if isinstance(rng, int) else rng
        self.layout = StripeLayout()
        self.files: dict[str, tuple[list[int], int]] = {}  # name -> (stripe ids, length)
        self.agents: dict[int, Agent] = {
            i: Agent(i, field_) for i in cluster.node_ids()
        }
        self.monitor = HeartbeatMonitor(timeout=heartbeat_timeout)
        for i in cluster.node_ids():
            self.monitor.register(i)
        self.bus = DataBus(rack_of={i: cluster[i].rack for i in cluster.node_ids()})
        self.spares: list[int] = []
        #: spares consumed by *committed* metadata-only repairs
        #: (:meth:`plan_repair` with ``commit=True``).  A byte-level repair
        #: occupies its spare implicitly (the store is no longer empty); a
        #: metadata-only repair stores nothing, so the reservation is
        #: explicit.  Always empty on pure byte-plane systems.
        self.reserved_spares: set[int] = set()
        self.center_scheduler = CenterScheduler()
        #: decode-plan LRU shared by every batched repair of this system, so
        #: repeated storms with recurring erasure patterns skip re-inversion.
        self.plan_cache = PlanCache()
        self._next_stripe_id = 0
        #: optional :class:`repro.obs.Observability` session (see its
        #: ``attach``); ``None`` means every instrumentation point is a no-op.
        self.obs = None
        #: lazily-created concurrent repair scheduler (see :attr:`sched`).
        self._sched = None
        #: worker-count -> cached :class:`repro.parallel.ParallelRepairEngine`,
        #: so repeated parallel requests reuse live pools (see :meth:`close`).
        self._parallel_engines: dict[int, object] = {}

    # -------------------------------------------------------------- #
    # membership
    # -------------------------------------------------------------- #
    def add_spare(self, node: Node) -> None:
        """Register an empty node usable as a repair target."""
        self.cluster.add_node(node)
        self.agents[node.node_id] = Agent(node.node_id, self.field)
        self.monitor.register(node.node_id)
        self.bus.rack_of[node.node_id] = node.rack
        self.spares.append(node.node_id)
        if self.obs is not None:
            self.agents[node.node_id].obs_hook = self.obs.on_compute

    def data_nodes(self) -> list[int]:
        return [i for i in self.cluster.alive_ids() if i not in self.spares]

    # -------------------------------------------------------------- #
    # client path
    # -------------------------------------------------------------- #
    def write(self, name: str, data: bytes | np.ndarray) -> WriteReceipt:
        """Erasure-code ``data`` into stripes and distribute the blocks."""
        if name in self.files:
            raise KeyError(f"file {name!r} already exists")
        buf = np.frombuffer(data, dtype=np.uint8) if isinstance(data, bytes) else np.asarray(data, dtype=np.uint8)
        k = self.code.k
        stripe_payload = k * self.block_bytes
        padded = int(np.ceil(max(buf.size, 1) / stripe_payload)) * stripe_payload
        full = np.zeros(padded, dtype=np.uint8)
        full[: buf.size] = buf
        stripe_ids = []
        candidates = self.data_nodes()
        for off in range(0, padded, stripe_payload):
            sid = self._next_stripe_id
            self._next_stripe_id += 1
            blocks = full[off : off + stripe_payload].reshape(k, self.block_bytes)
            coded = self.code.encode_stripe(blocks)
            idx = self.rng.choice(len(candidates), size=self.code.n, replace=False)
            placement = [candidates[i] for i in idx]
            stripe = Stripe(sid, k, self.code.m, placement)
            self.layout.add(stripe)
            for b, node in enumerate(placement):
                self.agents[node].store_block(block_name(sid, b), coded[b])
            stripe_ids.append(sid)
        self.files[name] = (stripe_ids, buf.size)
        return WriteReceipt(name, buf.size, stripe_ids, padded)

    def place_stripes(
        self,
        n_stripes: int,
        *,
        materialize: bool = False,
        payload_seed: int = 2023,
    ) -> list[int]:
        """Provision ``n_stripes`` anonymous stripes (metadata, maybe bytes).

        The metadata fast path's provisioning primitive: placement draws
        come from :attr:`rng` **identically** whether or not bytes
        materialize, so a metadata-only system and a byte-materializing
        twin built with the same seed hold byte-for-byte identical layouts
        — the substrate the reliability differential suite compares across.
        With ``materialize=True`` each stripe's payload comes from a
        separate ``payload_seed`` stream (so payload generation cannot
        perturb placement), is erasure-coded, and lands on the agents
        exactly as :meth:`write` would store it.  Returns the new stripe
        ids; the stripes belong to no file.
        """
        if n_stripes < 0:
            raise ValueError(f"n_stripes must be >= 0, got {n_stripes}")
        k = self.code.k
        candidates = self.data_nodes()
        if len(candidates) < self.code.n:
            raise ValueError(
                f"{len(candidates)} data nodes cannot host width-{self.code.n} stripes"
            )
        payload_rng = np.random.default_rng(payload_seed) if materialize else None
        stripe_ids = []
        for _ in range(n_stripes):
            sid = self._next_stripe_id
            self._next_stripe_id += 1
            idx = self.rng.choice(len(candidates), size=self.code.n, replace=False)
            placement = [candidates[i] for i in idx]
            stripe = Stripe(sid, k, self.code.m, placement)
            self.layout.add(stripe)
            if materialize:
                blocks = payload_rng.integers(
                    0, 256, size=(k, self.block_bytes), dtype=np.uint8
                )
                coded = self.code.encode_stripe(blocks)
                for b, node in enumerate(placement):
                    self.agents[node].store_block(block_name(sid, b), coded[b])
            stripe_ids.append(sid)
        return stripe_ids

    def read(self, name: str) -> bytes:
        """Read a file back, transparently decoding around dead nodes."""
        if name not in self.files:
            raise KeyError(f"unknown file {name!r}")
        stripe_ids, length = self.files[name]
        stripes = {s.stripe_id: s for s in self.layout}
        chunks = []
        for sid in stripe_ids:
            stripe = stripes[sid]
            available: dict[int, np.ndarray] = {}
            for b, node in enumerate(stripe.placement):
                agent = self.agents[node]
                bname = block_name(sid, b)
                if agent.alive and agent.store.has(bname):
                    available[b] = agent.read_block(bname)
            data_blocks: list[np.ndarray] = []
            missing = [b for b in range(self.code.k) if b not in available]
            if missing:  # degraded read
                if len(available) < self.code.k:
                    raise IOError(f"stripe {sid} unrecoverable: {len(available)} blocks left")
                repaired = self.code.decode(available, missing)
                for b in range(self.code.k):
                    data_blocks.append(available.get(b, repaired.get(b)))
            else:
                data_blocks = [available[b] for b in range(self.code.k)]
            chunks.append(np.concatenate(data_blocks))
        return np.concatenate(chunks)[:length].tobytes()

    def serve(self, request):
        """Run a client workload (optionally merged with a repair storm).

        ``request`` is a :class:`repro.workload.serving.ServeRequest`; the
        run provisions the spec's objects, serves its trace through the
        agents (degraded reads decode lost blocks on the fly via the shared
        :attr:`plan_cache`), queues any ``request.repair`` jobs on the
        scheduler, and simulates foreground and repair flows in one merged
        wave.  Returns a :class:`repro.workload.serving.ServeResult` with
        p50/p99 read-latency tables.  See ``docs/SERVING.md``.
        """
        from repro.workload.serving import ServeRequest, ServingPlane

        if not isinstance(request, ServeRequest):
            raise TypeError(
                f"serve() takes a ServeRequest, got {type(request).__name__}"
            )
        plane = ServingPlane(
            self,
            request.spec,
            foreground_weight=request.foreground_weight,
            decode_mbps=request.decode_mbps,
            chunks=request.chunks,
            fast_path=request.fast_path,
            network=request.network,
        )
        return plane.run(repair=request.repair)

    # -------------------------------------------------------------- #
    # failure handling
    # -------------------------------------------------------------- #
    def beat(self, node_id: int, now: float) -> None:
        self.monitor.beat(node_id, now)

    def beat_alive(self, now: float) -> None:
        """All currently-alive agents heartbeat (convenience for tests)."""
        for i, agent in self.agents.items():
            if agent.alive:
                self.monitor.beat(i, now)

    def crash_node(self, node_id: int) -> None:
        """Crash an agent: its data is gone; heartbeats stop."""
        self.agents[node_id].fail()
        self.cluster[node_id].fail()

    def detect_failures(self, now: float) -> list[int]:
        """Heartbeat-timeout failure detection (marks cluster nodes dead)."""
        dead = self.monitor.dead_nodes(now)
        for i in dead:
            if self.cluster[i].alive:
                self.cluster[i].fail()
            if self.agents[i].alive:
                self.agents[i].fail()
        return dead

    # -------------------------------------------------------------- #
    # repair
    # -------------------------------------------------------------- #
    def repair(
        self,
        request: "RepairRequest | list[RepairRequest] | str | None" = None,
        verify: bool = True,
        batched: bool = False,
        *,
        scheme: str | None = None,
    ):
        """Repair every stripe that lost blocks to the current dead nodes.

        **The one entry point.**  Pass a :class:`~repro.system.request.
        RepairRequest` (or a list of them, queued as contending scheduler
        jobs) and get a :class:`~repro.system.request.RepairResult` back;
        the request's fields pick the route — healthy round, batched or
        parallel data plane, fault runtime, or the concurrent scheduler::

            coord.repair(RepairRequest())                        # hmbr round
            coord.repair(RepairRequest(scheme="cr", workers=4))  # pooled decode
            coord.repair(RepairRequest(faults=schedule))         # degraded
            coord.repair([RepairRequest(priority="foreground"),
                          RepairRequest(priority="background")]) # scheduled

        The pre-1.1 form ``repair(scheme_str, verify=..., batched=...)``
        still works, emits a :class:`DeprecationWarning`, and returns the
        legacy :class:`RepairReport` (see the migration table in
        ``docs/API.md``).
        """
        if isinstance(request, RepairRequest):
            return self._repair_request(request)
        if isinstance(request, (list, tuple)):
            reqs = list(request)
            if not reqs or not all(isinstance(r, RepairRequest) for r in reqs):
                raise TypeError("repair() takes a RepairRequest or a non-empty list of them")
            return self._repair_request_many(reqs)
        if request is not None and not isinstance(request, str):
            raise TypeError(
                f"repair() takes a RepairRequest, a list of them, or a legacy "
                f"scheme string; got {type(request).__name__}"
            )
        warn_legacy(
            "Coordinator.repair(scheme, verify=..., batched=...)",
            "Coordinator.repair(RepairRequest(...))",
        )
        return self._repair_round(request or scheme or "hmbr", verify, batched)

    # -------------------------------------------------------------- #
    # request routing (the new facade's internals)
    # -------------------------------------------------------------- #
    def _repair_request(self, req: RepairRequest) -> RepairResult:
        """Route one request: scheduler, fault runtime, or plain round."""
        if req.needs_scheduler():
            return self._repair_request_many([req])
        bytes_before = self.bus.total_bytes()
        if req.adaptive:
            report = self._repair_adaptive(req)
            return RepairResult.from_adaptive(
                report, req, self.bus.total_bytes() - bytes_before
            )
        from repro.simnet.network import as_network

        events = as_network(req.network).events_for(self.cluster)
        if req.faults is not None:
            report = self._repair_faulted(req, events=events)
            return RepairResult.from_fault(
                report, req, self.bus.total_bytes() - bytes_before
            )
        report = self._repair_round(
            req.scheme,
            req.verify,
            req.batched or req.workers > 1,
            workers=req.workers,
            events=events,
            predict_network=req.predict_network,
        )
        return RepairResult.from_report(
            report, req, self.bus.total_bytes() - bytes_before
        )

    def _repair_adaptive(self, req: RepairRequest):
        """The adaptive route: drift-watched re-planning rounds.

        Planning (spares, centers, common HMBR split) is byte-identical
        to the static round; the :class:`~repro.adaptive.runtime.
        AdaptiveRuntime` then re-plans the remaining volume whenever the
        request's network trace makes observed flow rates drift past
        ``req.drift_threshold``.  On a quiet trace this degenerates to
        exactly one static round (bit-exact, same makespan).
        """
        from repro.adaptive import AdaptiveConfig, AdaptiveRuntime

        runtime = AdaptiveRuntime(
            self,
            network=req.network,
            config=AdaptiveConfig(
                drift_threshold=req.drift_threshold,
                max_replans=req.max_replans,
            ),
        )
        return runtime.repair(scheme=req.scheme, verify=req.verify)

    def _repair_request_many(self, reqs: list[RepairRequest]) -> RepairResult:
        """Run requests as scheduler jobs sharing one admission queue.

        Per-job fields (scheme, stripes, priority, weight, arrival) come
        from each request; run-global fields (verify, faults, workers,
        batching) must be expressible once per run — at most one request
        may carry a fault schedule, ``verify`` is the conjunction, and the
        data plane batches if any request asks (``workers`` = max).
        """
        faulted = [r for r in reqs if r.faults is not None]
        if len(faulted) > 1:
            raise ValueError("at most one request per run may carry faults")
        nets = [r.network for r in reqs if r.network is not None]
        if any(n != nets[0] for n in nets[1:]):
            raise ValueError(
                "requests in one scheduled run must share a network trace"
            )
        bytes_before = self.bus.total_bytes()
        compute_before = sum(a.compute_seconds for a in self.agents.values())
        for r in reqs:
            self.sched.submit(
                scheme=r.scheme,
                stripes=r.stripes,
                priority=r.priority,
                weight=r.weight,
                arrival_s=r.arrival_s,
            )
        workers = max(r.workers for r in reqs)
        report = self.sched.run_pending(
            verify=all(r.verify for r in reqs),
            faults=faulted[0].faults if faulted else None,
            network=nets[0] if nets else None,
            workers=workers,
            batched=any(r.batched for r in reqs) or workers > 1,
        )
        return RepairResult.from_scheduler(
            report,
            reqs[0],
            self.bus.total_bytes() - bytes_before,
            compute_s_total=sum(a.compute_seconds for a in self.agents.values())
            - compute_before,
        )

    def _repair_faulted(self, req: RepairRequest, events=()):
        """The fault-runtime route (journaled retries; see docs/FAULTS.md)."""
        from repro.faults.injector import FaultInjector
        from repro.faults.runtime import DEFAULT_MAX_BACKOFF_S, FaultRuntime
        from repro.faults.schedule import FaultSchedule

        faults = req.faults
        if isinstance(faults, FaultSchedule):
            injector = FaultInjector(
                faults, tick_s=req.tick_s if req.tick_s is not None else 0.001
            )
        else:
            injector = faults
            if req.tick_s is not None:
                injector.tick_s = req.tick_s
        runtime = FaultRuntime(
            self,
            injector,
            max_retries=req.max_retries,
            base_backoff_s=req.base_backoff_s,
            plan_timeout_s=req.plan_timeout_s,
            max_backoff_s=DEFAULT_MAX_BACKOFF_S
            if req.max_backoff_s is None
            else req.max_backoff_s,
            backoff_jitter=req.backoff_jitter,
            backoff_seed=req.backoff_seed,
        )
        return runtime.repair(scheme=req.scheme, verify=req.verify, events=events)

    def _repair_round(
        self,
        scheme: str = "hmbr",
        verify: bool = True,
        batched: bool = False,
        workers: int = 1,
        events=(),
        predict_network: bool = False,
    ) -> RepairReport:
        """One healthy repair round (the pre-request ``repair`` body).

        ``events`` (:class:`~repro.simnet.dynamic.BandwidthEvent`\\ s,
        usually materialized from a :class:`~repro.simnet.network.
        NetworkTrace`) perturb the timing simulation; the repaired bytes
        are unaffected.  ``predict_network=True`` additionally makes the
        common HMBR split dynamics-aware — searched against the event
        trajectory instead of the plan-time snapshot.

        New nodes are drawn from the spare pool (one replacement per dead
        node).  Repairs of different stripes run in parallel: their plans are
        simulated together so shared links contend, and centers are spread
        with the §IV-C LFS+LRS scheduler.  ``scheme="auto"`` scores every
        candidate per stripe in the simulator and picks the fastest.

        With ``batched=True`` the *data plane* runs through the
        :class:`~repro.repair.batch.BatchRepairEngine`: stripes are grouped
        by erasure pattern and each group decodes via one stacked GF kernel,
        reusing inverted decode matrices from :attr:`plan_cache`.  Planning,
        center scheduling, and the simulated timing plane are unchanged, and
        the repaired bytes are bit-exact with the per-stripe path — only the
        wall-clock compute (and its per-node attribution via
        :meth:`~repro.system.agent.Agent.charge_compute`) gets cheaper.

        ``workers > 1`` additionally fans the batched kernels out over a
        :class:`repro.parallel.WorkerPool` (implies ``batched``) and models
        chunk-level decode pipelining against the simulated transfer finish
        times (the report's :attr:`~RepairReport.pipeline`).
        """
        if scheme != "auto" and scheme not in _PLANNERS:
            raise ValueError(
                f"unknown scheme {scheme!r}; choose from {sorted(_PLANNERS)} or 'auto'"
            )
        dead = self.cluster.dead_ids()
        affected = self.layout.stripes_with_failures(dead)
        if not affected:
            return RepairReport(dead, [], scheme, 0.0, 0.0, 0.0, 0.0, 0)

        obs = self.obs
        root = None
        if obs is not None:
            root = obs.tracer.begin(
                "repair", actor="coordinator", cat="repair",
                scheme=scheme, dead_nodes=list(dead), stripes=sorted(affected),
                batched=batched,
            )
        try:
            dead_with_blocks = self._dead_with_blocks(affected)
            free_spares = self._free_spares()
            if len(dead_with_blocks) > len(free_spares):
                raise RuntimeError(
                    f"{len(dead_with_blocks)} dead nodes but only {len(free_spares)} free spares"
                )
            replacement_of = self._assign_spares(dead_with_blocks, free_spares)

            plan_span = None
            if obs is not None:
                plan_span = obs.tracer.begin(
                    "plan", actor="coordinator", cat="plan", scheme=scheme,
                )
            stripes = {s.stripe_id: s for s in self.layout}
            work = self._build_work(affected, replacement_of)

            # For HMBR with several stripes repairing in parallel, a per-stripe
            # split is miscalibrated (it ignores the other stripes on the same
            # links); search one common p over the merged task graph instead.
            common_p = (
                self._common_hmbr_split(
                    work, events=events if predict_network else ()
                )
                if scheme == "hmbr"
                else None
            )

            all_tasks = []
            plans = self._plan_work(work, scheme, common_p)
            for _, plan, _ in plans:
                all_tasks.extend(plan.tasks)
            if plan_span is not None:
                obs.tracer.end(
                    plan_span,
                    stripes=len(plans),
                    tasks=len(all_tasks),
                    ops=sum(len(p.ops) for _, p, _ in plans),
                    common_p=common_p,
                )

            # ---- data plane: dispatch ops to agents, commit repaired blocks
            compute_before = {i: a.compute_seconds for i, a in self.agents.items()}
            pattern_groups = 0
            batch_res = None
            if batched:
                centers = {sid: center for sid, _, center in work}
                engine = self._engine_for(workers) if workers > 1 else None
                batch_res = self._dispatch_batched(
                    plans, centers, stripes, verify, engine=engine
                )
                pattern_groups = batch_res.groups
            else:
                for sid, plan, ctx in plans:
                    self._commit_plan(sid, plan, stripes, verify)
            for agent in self.agents.values():
                agent.clear_scratch()

            # ---- timing plane: simulate all plans together
            sim = FluidSimulator(self.cluster).run(
                all_tasks,
                events=list(events),
                tracer=obs.tracer if obs is not None else None,
            )
            per_stripe = {}
            for sid, plan, _ in plans:
                per_stripe[sid] = max(sim.finish_times[t.task_id] for t in plan.tasks)
            pipeline = None
            if workers > 1 and batch_res is not None and per_stripe:
                pipeline = self._pipeline_model(batch_res, per_stripe, workers)
        finally:
            if root is not None:
                obs.tracer.unwind(root)

        compute_by_node = {
            i: a.compute_seconds - compute_before[i] for i, a in self.agents.items()
        }
        report = RepairReport(
            dead_nodes=dead,
            stripes_repaired=sorted(affected),
            scheme=scheme,
            simulated_transfer_s=sim.makespan,
            compute_s_total=sum(compute_by_node.values()),
            compute_s_critical=max(compute_by_node.values(), default=0.0),
            bytes_on_wire_mb_model=sum(p.total_transfer_mb() for _, p, _ in plans),
            blocks_recovered=sum(len(f) for f in affected.values()),
            per_stripe_transfer_s=per_stripe,
            replacements=replacement_of,
            batched=batched,
            pattern_groups=pattern_groups,
            plan_cache_stats=self.plan_cache.stats() if batched else {},
            workers=workers,
            pipeline=pipeline,
        )
        if obs is not None:
            m = obs.metrics
            m.counter("repair.runs").inc()
            m.counter("repair.blocks_recovered").inc(report.blocks_recovered)
            m.gauge("repair.simulated_transfer_s").set(report.simulated_transfer_s)
            m.gauge("repair.compute_s_total").set(report.compute_s_total)
            m.gauge("repair.bytes_on_wire_mb_model").set(report.bytes_on_wire_mb_model)
            for t in report.per_stripe_transfer_s.values():
                m.histogram("repair.stripe_transfer_s").observe(t)
            if pipeline is not None:
                m.gauge("parallel.pipeline_saved_s").set(pipeline.saved_s)
        return report

    def plan_repair(
        self,
        scheme: str = "hmbr",
        *,
        stripes=None,
        commit: bool = False,
        network=None,
    ) -> RepairTiming:
        """Plan and time a repair round without moving a byte.

        ``network`` (anything :func:`repro.simnet.network.as_network`
        accepts) perturbs the timing simulation with its bandwidth
        events, so the fast path can answer "how long under *this*
        churn"; plans and placements are unaffected.

        The **stripe-metadata-only fast path**: runs the exact planning
        pipeline of :meth:`repair` — spare assignment, LFS/LRS center
        picks, the common HMBR split, per-stripe planners, plan validation
        — and the exact merged fluid simulation, but skips the data plane
        entirely (no ops dispatched, no payloads stored, no parity
        verified).  On a system provisioned via
        :meth:`place_stripes(..., materialize=False) <place_stripes>` this
        answers "how long would this repair take, and where would the
        blocks land" at metadata cost; the differential suite pins its
        plans, flow graphs, and makespan against byte-materializing rounds
        to 1e-9.

        ``stripes`` restricts the round to those stripe ids (``None`` =
        everything affected).  With ``commit=False`` (default) nothing is
        mutated — the stateful center scheduler is snapshotted and
        restored, so a later real run makes identical picks.  With
        ``commit=True`` the round's *metadata* effects are applied: the
        center scheduler advances, repaired blocks' placements move to
        their planned nodes, and the consumed spares join
        :attr:`reserved_spares` (a metadata-only repair stores nothing, so
        the reservation must be explicit).  Raises like :meth:`repair` on
        unknown schemes or insufficient spares.
        """
        if scheme != "auto" and scheme not in _PLANNERS:
            raise ValueError(
                f"unknown scheme {scheme!r}; choose from {sorted(_PLANNERS)} or 'auto'"
            )
        dead = self.cluster.dead_ids()
        affected = self.layout.stripes_with_failures(dead)
        if stripes is not None:
            wanted = set(stripes)
            affected = {sid: b for sid, b in affected.items() if sid in wanted}
        if not affected:
            return RepairTiming(
                scheme, dead, [], 0.0, {}, 0.0, 0, {}, [], committed=commit
            )

        obs = self.obs
        root = None
        if obs is not None:
            root = obs.tracer.begin(
                "plan_repair", actor="coordinator", cat="plan",
                scheme=scheme, dead_nodes=list(dead), stripes=sorted(affected),
                commit=commit,
            )
        snap = None if commit else self.center_scheduler.snapshot()
        try:
            dead_with_blocks = self._dead_with_blocks(affected)
            free_spares = self._free_spares()
            if len(dead_with_blocks) > len(free_spares):
                raise RuntimeError(
                    f"{len(dead_with_blocks)} dead nodes but only "
                    f"{len(free_spares)} free spares"
                )
            replacement_of = self._assign_spares(dead_with_blocks, free_spares)
            work = self._build_work(affected, replacement_of)
            common_p = self._common_hmbr_split(work) if scheme == "hmbr" else None
            plans = self._plan_work(work, scheme, common_p)
            all_tasks = [t for _, p, _ in plans for t in p.tasks]
            from repro.simnet.network import as_network

            sim = FluidSimulator(self.cluster).run(
                all_tasks, events=as_network(network).events_for(self.cluster)
            )
            per_stripe = {
                sid: max(sim.finish_times[t.task_id] for t in plan.tasks)
                for sid, plan, _ in plans
            }
            if commit:
                stripes_map = {s.stripe_id: s for s in self.layout}
                for sid, plan, _ in plans:
                    for fb, (node, _buf) in plan.outputs.items():
                        stripes_map[sid].placement[fb] = node
                self.reserved_spares.update(replacement_of.values())
        finally:
            if snap is not None:
                self.center_scheduler.restore(snap)
            if root is not None:
                obs.tracer.unwind(root)
        timing = RepairTiming(
            scheme=scheme,
            dead_nodes=dead,
            stripes=sorted(affected),
            makespan_s=sim.makespan,
            per_stripe_s=per_stripe,
            bytes_on_wire_mb_model=sum(p.total_transfer_mb() for _, p, _ in plans),
            blocks_recovered=sum(len(f) for f in affected.values()),
            replacement_of=replacement_of,
            plans=[(sid, plan) for sid, plan, _ in plans],
            committed=commit,
        )
        if obs is not None:
            m = obs.metrics
            m.counter("plan.fast_path_rounds").inc()
            m.gauge("plan.fast_path_makespan_s").set(timing.makespan_s)
        return timing

    def simulate_years(self, spec) -> "object":
        """Run the macro-scale durability simulator over this code shape.

        ``spec`` is a :class:`repro.reliability.ReliabilitySpec`; fields
        left as ``None`` (``k``, ``m``, ``block_size_mb``) inherit this
        coordinator's code shape and modeled block size, so
        ``coord.simulate_years(ReliabilitySpec(horizon_years=10))`` asks
        "how durable is *this* system's configuration over a decade".
        Returns a :class:`repro.reliability.ReliabilityReport` (MTTDL,
        P(data loss by year t) curves with confidence intervals,
        per-trial outcomes); an attached obs session records
        ``reliability.*`` spans and metrics.  See ``docs/RELIABILITY.md``.
        """
        import dataclasses

        from repro.reliability import ReliabilitySimulator

        fills = {}
        if spec.k is None:
            fills["k"] = self.code.k
        if spec.m is None:
            fills["m"] = self.code.m
        if spec.block_size_mb is None:
            fills["block_size_mb"] = self.block_size_mb
        if fills:
            spec = dataclasses.replace(spec, **fills)
        return ReliabilitySimulator(spec, obs=self.obs).run()

    def _pipeline_model(self, batch_res, per_stripe: dict, workers: int):
        """Chunk-level pipelining: decode each stripe as its flows land.

        Ready times are the stripes' simulated transfer finishes; costs are
        their measured GF shares rescaled from the stored ``block_bytes``
        to the modeled ``block_size_mb`` (the same scale decoupling the two
        planes always use).  Emits one sim-domain ``parallel.decode`` span
        per stripe so the pipelined landings show up on the trace timeline
        next to the flows that gated them.
        """
        from repro.parallel.pipeline import pipeline_schedule

        scale = (self.block_size_mb * (1 << 20)) / self.block_bytes
        sids = sorted(per_stripe)
        pipeline = pipeline_schedule(
            sids,
            [per_stripe[sid] for sid in sids],
            [
                batch_res.compute_seconds_by_stripe.get(sid, 0.0) * scale
                for sid in sids
            ],
            workers,
        )
        if self.obs is not None:
            for slot in pipeline.slots:
                self.obs.tracer.add(
                    f"parallel.decode:{slot.item}",
                    actor=f"decode-lane{slot.lane}",
                    cat="parallel.sim",
                    t0=slot.start_s,
                    t1=slot.done_s,
                    stripe=slot.item,
                    ready_s=slot.ready_s,
                )
        return pipeline

    def _engine_for(self, workers: int):
        """The cached parallel engine for a worker count (pools are dear)."""
        from repro.parallel.engine import ParallelRepairEngine

        engine = self._parallel_engines.get(workers)
        if engine is None:
            engine = ParallelRepairEngine(
                self.code, cache=self.plan_cache, obs=self.obs, workers=workers
            )
            self._parallel_engines[workers] = engine
        engine.obs = self.obs  # track attach/detach since creation
        return engine

    def close(self) -> None:
        """Reap any live worker pools (idempotent; serial systems no-op)."""
        for engine in self._parallel_engines.values():
            engine.close()
        self._parallel_engines.clear()

    # -------------------------------------------------------------- #
    # repair planning/dispatch helpers (shared with repro.sched)
    # -------------------------------------------------------------- #
    def _free_spares(self) -> list[int]:
        """Alive spares with empty stores, usable as repair targets."""
        return [
            s
            for s in self.spares
            if self.cluster[s].alive
            and len(self.agents[s].store) == 0
            and s not in self.reserved_spares
        ]

    def _dead_with_blocks(self, affected: dict[int, list[int]]) -> list[int]:
        """Dead nodes that actually held blocks of the affected stripes."""
        stripes = {s.stripe_id: s for s in self.layout}
        return sorted(
            {
                stripes[sid].placement[b]
                for sid, blocks in affected.items()
                for b in blocks
            }
        )

    def _build_work(
        self, affected: dict[int, list[int]], replacement_of: dict[int, int]
    ) -> list[tuple[int, RepairContext, int]]:
        """Repair contexts + LFS/LRS centers for the affected stripes.

        Stripes are visited in sorted id order so the stateful center
        scheduler makes the same picks for the same failure set regardless
        of which path (``repair`` or a scheduler job) asks.
        """
        stripes = {s.stripe_id: s for s in self.layout}
        work: list[tuple[int, RepairContext, int]] = []
        for sid, failed in sorted(affected.items()):
            stripe = stripes[sid]
            new_nodes = [replacement_of[stripe.placement[b]] for b in failed]
            ctx = RepairContext(
                cluster=self.cluster,
                code=self.code,
                stripe=stripe,
                failed_blocks=failed,
                new_nodes=new_nodes,
                block_size_mb=self.block_size_mb,
            )
            center = self.center_scheduler.pick(new_nodes)
            work.append((sid, ctx, center))
        return work

    def _common_hmbr_split(
        self, work: list[tuple[int, RepairContext, int]], events=()
    ) -> float | None:
        """One shared HMBR split ratio over all stripes of a round (§IV-C).

        Returns ``None`` for fewer than two stripes (the per-stripe split is
        already exact there).  ``events`` makes the search dynamics-aware:
        candidate splits are scored against the bandwidth-event trajectory
        instead of the plan-time snapshot (``predict_network=True``).
        """
        if len(work) < 2:
            return None
        from repro.repair._build import add_centralized, add_independent
        from repro.repair.split import scaled_split_tasks, search_split
        from repro.repair.topology import build_chain_paths

        cr_all, ir_all = [], []
        for _, ctx, center in work:
            cr_t, _, _ = add_centralized(ctx, ctx.prefix("h.cr"), 0.0, 1.0, center)
            ir_t, _, _ = add_independent(
                ctx, ctx.prefix("h.ir"), 0.0, 1.0, build_chain_paths(ctx)
            )
            cr_all.extend(cr_t)
            ir_all.extend(ir_t)
        common_p, _ = search_split(
            lambda q: scaled_split_tasks(cr_all, ir_all, q),
            self.cluster,
            events=events,
        )
        return common_p

    def _plan_work(
        self,
        work: list[tuple[int, RepairContext, int]],
        scheme: str,
        common_p: float | None,
    ) -> list[tuple[int, RepairPlan, RepairContext]]:
        """Run the configured planner over the work list and validate."""
        plans: list[tuple[int, RepairPlan, RepairContext]] = []
        for sid, ctx, center in work:
            if scheme == "hmbr" and common_p is not None:
                plan = plan_hybrid(ctx, center=center, p=common_p)
            elif scheme == "auto":
                from repro.repair.selector import choose_scheme

                plan = choose_scheme(ctx).plan
            else:
                plan = _PLANNERS[scheme](ctx, center)
            validate_plan(plan, ctx)  # refuse to dispatch an inconsistent solution
            plans.append((sid, plan, ctx))
        return plans

    def _commit_plan(self, sid: int, plan: RepairPlan, stripes: dict, verify: bool) -> None:
        """Data plane for one stripe: run ops, commit outputs, verify parity."""
        obs = self.obs
        stripe_span = None
        if obs is not None:
            stripe_span = obs.tracer.begin(
                f"stripe:{sid}", actor="coordinator", cat="dispatch",
                stripe=sid, scheme=plan.scheme, ops=len(plan.ops),
            )
        try:
            run_plan_ops(plan.ops, self.agents, self.bus)
            for fb, (node, buf) in plan.outputs.items():
                agent = self.agents[node]
                repaired = agent.scratch[buf]
                agent.store_block(block_name(sid, fb), repaired, overwrite=True)
                stripes[sid].placement[fb] = node
            if verify:
                self._verify_stripe(sid)
        finally:
            if stripe_span is not None:
                obs.tracer.end(stripe_span)

    # -------------------------------------------------------------- #
    # concurrent scheduler entry points (see repro.sched)
    # -------------------------------------------------------------- #
    @property
    def sched(self):
        """The coordinator's :class:`~repro.sched.scheduler.RepairScheduler`.

        Created lazily on first use so un-scheduled workloads pay nothing;
        replace it (or mutate ``sched.admission.policy``) to change the
        admission policy.
        """
        if self._sched is None:
            from repro.sched.scheduler import RepairScheduler

            self._sched = RepairScheduler(self)
        return self._sched

    def submit_repair(
        self,
        scheme: str = "hmbr",
        *,
        stripes=None,
        priority: str = "normal",
        weight: float | None = None,
        arrival_s: float = 0.0,
    ):
        """Queue a repair job on the concurrent scheduler (``repro.sched``).

        .. deprecated:: 1.1
            Pass a list of :class:`~repro.system.request.RepairRequest`\\ s
            to :meth:`repair` instead; it queues, runs, and wraps the jobs
            in one call.

        ``stripes`` restricts the job to those stripe ids (``None`` repairs
        everything affected at admission time); ``priority`` maps to a
        weighted-fair-share weight via
        :data:`repro.sched.job.PRIORITY_WEIGHTS` unless ``weight`` overrides
        it; ``arrival_s`` delays the job's flows in simulated time.  Returns
        the queued :class:`~repro.sched.job.RepairJob`; nothing executes
        until :meth:`run_pending`.
        """
        warn_legacy(
            "Coordinator.submit_repair(...)",
            "Coordinator.repair([RepairRequest(...), ...])",
        )
        return self.sched.submit(
            scheme=scheme,
            stripes=stripes,
            priority=priority,
            weight=weight,
            arrival_s=arrival_s,
        )

    def run_pending(self, *, verify: bool = True, faults=None, events=()):
        """Admit and run every queued repair job; see
        :meth:`repro.sched.scheduler.RepairScheduler.run_pending`.

        .. deprecated:: 1.1
            Pass a list of :class:`~repro.system.request.RepairRequest`\\ s
            to :meth:`repair` instead.
        """
        warn_legacy(
            "Coordinator.run_pending(...)",
            "Coordinator.repair([RepairRequest(...), ...])",
        )
        from repro.simnet.network import NetworkTrace

        network = NetworkTrace.from_events(events) if events else None
        return self.sched.run_pending(verify=verify, faults=faults, network=network)

    def repair_with_faults(
        self,
        faults,
        scheme: str = "hmbr",
        *,
        verify: bool = True,
        max_retries: int = 8,
        base_backoff_s: float = 0.5,
        plan_timeout_s: float | None = None,
        tick_s: float | None = None,
        max_backoff_s: float | None = None,
        backoff_jitter: float = 0.0,
        backoff_seed: int = 0,
    ):
        """Like :meth:`repair`, but resilient to faults injected mid-repair.

        .. deprecated:: 1.1
            Use ``repair(RepairRequest(faults=schedule, ...))`` instead;
            this shim forwards there and returns the legacy
            :class:`repro.faults.runtime.FaultRepairReport` (the request
            path's ``result.report``).

        ``faults`` is a :class:`repro.faults.schedule.FaultSchedule` (or an
        already-constructed :class:`repro.faults.injector.FaultInjector`).
        Helpers that die mid-transfer are confirmed through the heartbeat
        monitor, the in-flight plan is aborted, and the stripe is re-planned
        over the surviving helpers with exponential backoff between retries
        (``base_backoff_s * 2**attempt``, clamped to ``max_backoff_s`` with
        optional deterministic seed-derived jitter — see
        :func:`repro.faults.runtime.backoff_delay`) and an optional per-plan
        timeout.
        Transient faults (drops, flaps) resume the same plan from its
        execution journal.

        With an empty schedule this performs exactly the op sequence of
        :meth:`repair` — the fault machinery is pay-for-what-you-use.
        """
        warn_legacy(
            "Coordinator.repair_with_faults(...)",
            "Coordinator.repair(RepairRequest(faults=..., ...))",
        )
        req = RepairRequest(
            scheme=scheme,
            verify=verify,
            faults=faults,
            max_retries=max_retries,
            base_backoff_s=base_backoff_s,
            plan_timeout_s=plan_timeout_s,
            tick_s=tick_s,
            max_backoff_s=max_backoff_s,
            backoff_jitter=backoff_jitter,
            backoff_seed=backoff_seed,
        )
        return self._repair_request(req).report

    def _dispatch_batched(self, plans, centers, stripes, verify: bool, engine=None):
        """Batched data plane: one stacked GF kernel per erasure-pattern group.

        Each stripe's survivors ship to its center (metered on the bus like
        the op-level path), pattern groups decode through the shared
        :attr:`plan_cache`, repaired buffers land at the planned output
        nodes, and each stripe's share of the group kernel cost is charged
        to its center via :meth:`~repro.system.agent.Agent.charge_compute`.
        ``engine`` swaps the decode engine (the parallel path passes a
        :class:`repro.parallel.ParallelRepairEngine`); the default is the
        serial :class:`~repro.repair.batch.BatchRepairEngine`.  Returns the
        engine's :class:`~repro.repair.batch.BatchDecodeResult`.
        """
        obs = self.obs
        if engine is None:
            engine = BatchRepairEngine(self.code, cache=self.plan_cache, obs=obs)
        span = None
        if obs is not None:
            span = obs.tracer.begin(
                "dispatch-batch", actor="coordinator", cat="dispatch",
                stripes=len(plans),
            )
        try:
            items: list[StripeBatchItem] = []
            for sid, plan, ctx in plans:
                center = centers[sid]
                survivors = ctx.chosen_survivors()
                sources = []
                for b in survivors:
                    host = ctx.stripe.placement[b]
                    buf = self.agents[host].read_block(block_name(sid, b))
                    if host != center:
                        self.bus.check(host, center, buf.nbytes)
                        self.bus.record(host, center, buf.nbytes)
                    sources.append(buf)
                items.append(
                    StripeBatchItem(
                        stripe_id=sid,
                        survivors=tuple(survivors),
                        failed=tuple(ctx.failed_blocks),
                        sources=sources,
                    )
                )
            res = engine.repair_items(items)
            for sid, plan, ctx in plans:
                center = centers[sid]
                for fb, (dest, _buf) in plan.outputs.items():
                    out = res.outputs[sid][fb]
                    if dest != center:
                        self.bus.check(center, dest, out.nbytes)
                        self.bus.record(center, dest, out.nbytes)
                    self.agents[dest].store_block(block_name(sid, fb), out, overwrite=True)
                    stripes[sid].placement[fb] = dest
                self.agents[center].charge_compute(
                    res.compute_seconds_by_stripe[sid], res.gf_bytes_by_stripe[sid]
                )
                if verify:
                    self._verify_stripe(sid)
            return res
        finally:
            if span is not None:
                obs.tracer.end(span)

    def _assign_spares(self, dead_nodes: list[int], free_spares: list[int]) -> dict[int, int]:
        """Match each dead node to a replacement spare.

        Preference order: a spare in the dead node's rack (preserves
        rack-aware placement invariants), then the spare with the fastest
        downlink (it is about to receive every repaired block).  Greedy in
        dead-node order, which is deterministic.
        """
        remaining = list(free_spares)
        out: dict[int, int] = {}
        for dead in dead_nodes:
            rack = self.cluster[dead].rack
            same_rack = [s for s in remaining if self.cluster[s].rack == rack]
            pool = same_rack if same_rack else remaining
            pick = max(pool, key=lambda s: (self.cluster[s].downlink, -s))
            out[dead] = pick
            remaining.remove(pick)
        return out

    def update(self, name: str, offset: int, patch: bytes) -> dict:
        """In-place update with delta parity maintenance.

        Overwrite ``patch`` at byte ``offset`` of the file.  Instead of
        re-encoding whole stripes, each touched data block sends only the
        GF *delta* to the parity nodes: ``P_j ^= alpha_{i,j} * (new - old)``
        — the standard parity-delta update the related work (§VI) optimizes.
        Returns accounting: blocks patched and parity deltas applied.
        """
        if name not in self.files:
            raise KeyError(f"unknown file {name!r}")
        stripe_ids, length = self.files[name]
        if offset < 0 or offset + len(patch) > length:
            raise ValueError("update range outside the file")
        stripes = {s.stripe_id: s for s in self.layout}
        patch_arr = np.frombuffer(patch, dtype=np.uint8)
        k = self.code.k
        stripe_payload = k * self.block_bytes
        touched_blocks = 0
        parity_deltas = 0
        pos = 0
        while pos < len(patch_arr):
            abs_off = offset + pos
            stripe_idx = abs_off // stripe_payload
            sid = stripe_ids[stripe_idx]
            stripe = stripes[sid]
            block_idx = (abs_off % stripe_payload) // self.block_bytes
            block_off = abs_off % self.block_bytes
            span = min(self.block_bytes - block_off, len(patch_arr) - pos)
            node = stripe.placement[block_idx]
            agent = self.agents[node]
            if not agent.alive:
                raise IOError(f"cannot update block on dead node {node}")
            bname = block_name(sid, block_idx)
            old = agent.read_block(bname)
            new = old.copy()
            new[block_off : block_off + span] = patch_arr[pos : pos + span]
            delta = old ^ new
            agent.store_block(bname, new, overwrite=True)
            touched_blocks += 1
            # ship the scaled delta to every parity node
            for j in range(self.code.m):
                coeff = int(self.code.generator[k + j, block_idx])
                pnode = stripe.placement[k + j]
                pagent = self.agents[pnode]
                if not pagent.alive:
                    continue  # parity will be rebuilt by repair later
                pname = block_name(sid, k + j)
                parity = pagent.read_block(pname).copy()
                self.field.addmul(parity, coeff, delta)
                pagent.store_block(pname, parity, overwrite=True)
                self.bus.record(node, pnode, delta.nbytes)
                parity_deltas += 1
            pos += span
        return {"blocks_patched": touched_blocks, "parity_deltas": parity_deltas}

    # -------------------------------------------------------------- #
    # maintenance
    # -------------------------------------------------------------- #
    def delete(self, name: str) -> int:
        """Delete a file: drop its blocks from every agent; returns blocks freed."""
        if name not in self.files:
            raise KeyError(f"unknown file {name!r}")
        stripe_ids, _ = self.files.pop(name)
        sids = set(stripe_ids)
        freed = 0
        keep = []
        for stripe in self.layout:
            if stripe.stripe_id not in sids:
                keep.append(stripe)
                continue
            for b, node in enumerate(stripe.placement):
                agent = self.agents[node]
                if agent.alive:
                    agent.store.delete(block_name(stripe.stripe_id, b))
                    freed += 1
        self.layout.stripes = keep
        return freed

    def rebalance(self, max_moves: int | None = None, tolerance: int = 1) -> dict:
        """Even out per-node block counts after repairs shifted load.

        Repairs land every reconstructed block on ex-spare nodes, so after a
        few failure cycles placement skews.  Greedily move blocks from the
        most- to the least-loaded alive node, never co-locating two blocks
        of one stripe, until the max/min spread is within ``tolerance`` (or
        ``max_moves`` is exhausted).  Returns accounting.
        """
        moves = 0
        moved_bytes = 0
        while max_moves is None or moves < max_moves:
            counts = {i: 0 for i in self.cluster.alive_ids()}
            for stripe in self.layout:
                for nid in stripe.placement:
                    if nid in counts:
                        counts[nid] += 1
            if not counts:
                break
            hot = max(counts, key=lambda i: (counts[i], i))
            cold = min(counts, key=lambda i: (counts[i], -i))
            if counts[hot] - counts[cold] <= tolerance:
                break
            # find a block on `hot` whose stripe doesn't touch `cold`
            candidate = None
            for stripe in self.layout:
                if cold in stripe.placement:
                    continue
                b = stripe.block_on(hot)
                if b is not None:
                    candidate = (stripe, b)
                    break
            if candidate is None:
                break  # constrained: nothing movable without co-location
            stripe, b = candidate
            name = block_name(stripe.stripe_id, b)
            data = self.agents[hot].read_block(name)
            self.agents[cold].store_block(name, data.copy())
            self.agents[hot].store.delete(name)
            stripe.placement[b] = cold
            self.bus.record(hot, cold, data.nbytes)
            moves += 1
            moved_bytes += data.nbytes
        counts = self.layout.blocks_per_node()
        alive_counts = [counts.get(i, 0) for i in self.cluster.alive_ids()]
        return {
            "moves": moves,
            "moved_bytes": moved_bytes,
            "max_blocks": max(alive_counts, default=0),
            "min_blocks": min(alive_counts, default=0),
        }

    def scrub(self) -> dict[int, bool]:
        """Background integrity scrub: re-verify parity of every stripe.

        Returns stripe id -> healthy.  A stripe with unreachable blocks
        (dead node, missing buffer) or mismatched parity reports False —
        this is how silent corruption or an incomplete repair would surface
        between heartbeat rounds.
        """
        out: dict[int, bool] = {}
        for stripe in self.layout:
            try:
                self._verify_stripe(stripe.stripe_id)
            except (AssertionError, KeyError):
                out[stripe.stripe_id] = False
            else:
                out[stripe.stripe_id] = True
        return out

    def stats(self) -> dict:
        """Operational snapshot: capacity, placement, traffic, health."""
        alive = self.cluster.alive_ids()
        return {
            "nodes_alive": len(alive),
            "nodes_dead": len(self.cluster.dead_ids()),
            "spares_free": sum(
                1
                for s in self.spares
                if self.cluster[s].alive and len(self.agents[s].store) == 0
            ),
            "files": len(self.files),
            "stripes": len(self.layout),
            "blocks_stored": sum(len(a.store) for a in self.agents.values()),
            "bytes_stored": sum(a.store.used_bytes() for a in self.agents.values()),
            "bus_transfers": self.bus.transfer_count,
            "bus_bytes": self.bus.total_bytes(),
            "bus_cross_rack_bytes": self.bus.cross_rack_bytes,
        }

    def _verify_stripe(self, sid: int) -> None:
        """Re-check stripe consistency: parity rows match re-encoded data."""
        stripe = next(s for s in self.layout if s.stripe_id == sid)
        blocks = []
        for b, node in enumerate(stripe.placement):
            agent = self.agents[node]
            if not agent.alive:
                raise AssertionError(f"stripe {sid} block {b} maps to a dead node")
            blocks.append(agent.read_block(block_name(sid, b)))
        data = np.stack(blocks[: self.code.k])
        parity = np.stack(blocks[self.code.k :])
        expect = self.code.encode(data)
        if not np.array_equal(parity, expect):
            raise AssertionError(f"stripe {sid} failed post-repair parity verification")
