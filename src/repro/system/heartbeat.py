"""Heartbeat-based failure detection.

HDFS3's NameNode marks a DataNode dead when heartbeats stop (the paper relies
on this for block/node failure detection).  We model a logical clock: agents
beat every interval; the monitor declares nodes dead after ``timeout``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class HeartbeatMonitor:
    """Tracks last-heard times and derives liveness."""

    timeout: float = 30.0
    last_beat: dict[int, float] = field(default_factory=dict)

    def register(self, node_id: int, now: float = 0.0) -> None:
        self.last_beat[node_id] = now

    def beat(self, node_id: int, now: float) -> None:
        if node_id not in self.last_beat:
            raise KeyError(f"unregistered node {node_id}")
        self.last_beat[node_id] = now

    def deregister(self, node_id: int) -> None:
        self.last_beat.pop(node_id, None)

    def dead_nodes(self, now: float) -> list[int]:
        """Nodes whose last heartbeat is older than the timeout."""
        return sorted(
            nid for nid, t in self.last_beat.items() if now - t > self.timeout
        )

    def alive_nodes(self, now: float) -> list[int]:
        return sorted(
            nid for nid, t in self.last_beat.items() if now - t <= self.timeout
        )
