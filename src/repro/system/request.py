"""The unified repair facade: :class:`RepairRequest` in, :class:`RepairResult` out.

The coordinator grew three entry points as the system grew — ``repair``
(healthy rounds, later with ``batched=``), ``repair_with_faults`` (the
journaled degraded path), and ``submit_repair``/``run_pending`` (the
concurrent scheduler) — each with its own kwargs and its own report type.
This module collapses them: describe *what* to repair in one
:class:`RepairRequest` value, call ``Coordinator.repair(request)``, and
get one :class:`RepairResult` back no matter which machinery ran.

Routing is derived from the request, never named by the caller:

* ``faults`` present → the fault runtime (journals, backoff, re-plans);
* ``priority`` / ``weight`` / ``arrival_s`` / ``stripes`` set → the
  concurrent scheduler (one job per request; pass a *list* of requests
  for a contending batch);
* otherwise → a plain healthy round, per-stripe or batched/parallel
  according to ``batched`` / ``workers``.

The legacy entry points survive as deprecation shims that build the
equivalent request, forward, and return their historical report types —
bit-exact with the old code by construction (the shim-equivalence tests
assert it).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field as dc_field
from typing import Any

_SCHEMES = ("cr", "ir", "hmbr", "mlf", "rack-hmbr", "auto")
#: schemes the adaptive re-planner can decompose and re-solve.
_ADAPTIVE_SCHEMES = ("cr", "ir", "hmbr", "mlf")
_PRIORITIES = ("foreground", "normal", "background")


def warn_legacy(old: str, new: str) -> None:
    """Emit the one deprecation message every legacy shim uses."""
    warnings.warn(
        f"{old} is deprecated; use {new} (see docs/API.md migration table)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class RepairRequest:
    """Everything one repair should do, as a single immutable value.

    Only ``scheme`` is commonly set; the rest defaults to today's
    ``Coordinator.repair()`` behavior (healthy, per-stripe, verified,
    serial).  Field groups:

    * **what** — ``scheme``, ``stripes`` (``None`` = everything affected);
    * **data plane** — ``batched`` (pattern-grouped GF kernels),
      ``workers`` (process-pool decode; ``>1`` implies batching),
      ``verify`` (post-repair parity check);
    * **scheduling** — ``priority``/``weight``/``arrival_s`` route through
      the concurrent scheduler (as does restricting ``stripes``);
    * **faults** — a :class:`~repro.faults.schedule.FaultSchedule` or
      prepared injector plus the retry/backoff knobs of the fault runtime;
    * **network** — a :class:`~repro.simnet.network.NetworkTrace` (or bare
      :class:`~repro.simnet.dynamic.BandwidthEvent` iterable) describing
      how capacities change while the repair runs.  Alone it perturbs the
      timing simulation; with ``adaptive=True`` the run re-plans the
      remaining volume whenever observed flow rates drift more than
      ``drift_threshold`` from the plan-time prediction (at most
      ``max_replans`` times).  ``predict_network=True`` instead keeps the
      plan static but searches HMBR's split against the predicted
      trajectory.

    ``faults`` routes the data plane through the journaled per-stripe
    fault runtime, so it composes with scheduling but not with
    ``batched``/``workers > 1`` (validation rejects the combination
    rather than silently decoding serially).  ``adaptive`` likewise
    rejects ``batched``/``workers > 1``/``faults``/scheduler fields: the
    re-planner owns its own round structure.
    """

    scheme: str = "hmbr"
    stripes: tuple[int, ...] | None = None
    batched: bool = False
    workers: int = 1
    verify: bool = True
    # ---- scheduling ----
    priority: str = "normal"
    weight: float | None = None
    arrival_s: float = 0.0
    # ---- faults ----
    faults: Any = None
    max_retries: int = 8
    base_backoff_s: float = 0.5
    plan_timeout_s: float | None = None
    tick_s: float | None = None
    max_backoff_s: float | None = None
    backoff_jitter: float = 0.0
    backoff_seed: int = 0
    # ---- network dynamics ----
    network: Any = None
    adaptive: bool = False
    drift_threshold: float = 0.2
    max_replans: int = 8
    predict_network: bool = False

    def __post_init__(self) -> None:
        if self.scheme not in _SCHEMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; choose from {sorted(_SCHEMES)}"
            )
        if self.priority not in _PRIORITIES:
            raise ValueError(
                f"unknown priority {self.priority!r}; choose from {sorted(_PRIORITIES)}"
            )
        if int(self.workers) < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        object.__setattr__(self, "workers", int(self.workers))
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if self.weight is not None and self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.stripes is not None:
            object.__setattr__(
                self, "stripes", tuple(int(s) for s in self.stripes)
            )
        if self.faults is not None and (self.batched or self.workers > 1):
            raise ValueError(
                "faults route through the journaled per-stripe runtime; "
                "they do not compose with batched/parallel decode "
                "(use workers=1, batched=False)"
            )
        if self.network is not None:
            from repro.simnet.network import as_network

            # normalize early so equality/validation errors surface at
            # construction, not deep inside a route
            object.__setattr__(self, "network", as_network(self.network))
        if self.drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        if self.max_replans < 0:
            raise ValueError("max_replans must be >= 0")
        if self.adaptive:
            if self.scheme not in _ADAPTIVE_SCHEMES:
                raise ValueError(
                    f"adaptive repair supports {_ADAPTIVE_SCHEMES}, "
                    f"not {self.scheme!r}"
                )
            if self.batched or self.workers > 1:
                raise ValueError(
                    "adaptive repair re-plans per stripe; it does not "
                    "compose with batched/parallel decode"
                )
            if self.faults is not None:
                raise ValueError(
                    "adaptive repair does not compose with a fault "
                    "schedule (the fault runtime owns its own re-plans)"
                )
            if self.needs_scheduler():
                raise ValueError(
                    "adaptive repair runs as one drift-watched round; "
                    "drop priority/weight/arrival_s/stripes"
                )

    def needs_scheduler(self) -> bool:
        """Whether this request must run as a scheduler job.

        Any of ``priority``/``weight``/``arrival_s``/``stripes`` implies
        queueing semantics the plain round cannot express.
        """
        return (
            self.priority != "normal"
            or self.weight is not None
            or self.arrival_s > 0
            or self.stripes is not None
        )


@dataclass(frozen=True)
class JobOutcome:
    """One scheduler job's result, flattened for :attr:`RepairResult.jobs`."""

    job_id: str
    state: str
    scheme: str
    priority: str
    stripes: tuple[int, ...]
    blocks_recovered: int
    wave: int | None
    finish_s: float | None
    error: str | None = None

    @classmethod
    def from_job(cls, job) -> "JobOutcome":
        return cls(
            job_id=job.job_id,
            state=job.state,
            scheme=job.scheme,
            priority=job.priority,
            stripes=tuple(job.stripes_repaired),
            blocks_recovered=job.blocks_recovered,
            wave=job.wave,
            finish_s=job.finish_s,
            error=job.error,
        )


@dataclass
class RepairResult:
    """What one ``Coordinator.repair(request)`` call accomplished.

    The same shape comes back from every route; route-specific detail
    stays reachable through :attr:`report` (the legacy
    ``RepairReport`` / ``FaultRepairReport`` / ``SchedulerReport``
    the run produced internally).
    """

    request: RepairRequest
    scheme: str
    stripes_repaired: list[int]
    blocks_recovered: int
    #: simulated seconds until the last repaired byte landed.
    makespan_s: float
    #: data-plane bytes the run actually moved (== the ``DataBus`` delta).
    bytes_moved: int
    #: modeled MB the plans put on the wire at ``block_size_mb`` scale.
    bytes_on_wire_mb_model: float
    #: measured GF compute seconds across all agents.
    compute_s_total: float
    #: batching/caching accounting: pattern groups, plan-cache stats, shards.
    plan_summary: dict = dc_field(default_factory=dict)
    #: per-job outcomes (exactly one entry unless the scheduler ran).
    jobs: list[JobOutcome] = dc_field(default_factory=list)
    per_stripe_transfer_s: dict[int, float] = dc_field(default_factory=dict)
    replacements: dict[int, int] = dc_field(default_factory=dict)
    batched: bool = False
    workers: int = 1
    #: chunk-level decode pipelining model (parallel runs only).
    pipeline: Any = None
    #: the route-specific report the run produced internally.
    report: Any = None

    @property
    def ok(self) -> bool:
        """True when no job failed."""
        return all(j.state != "failed" for j in self.jobs)

    # -------------------------------------------------------------- #
    # constructors, one per route
    # -------------------------------------------------------------- #
    @classmethod
    def from_report(cls, report, request: RepairRequest, bytes_moved: int) -> "RepairResult":
        """Wrap a healthy-round ``RepairReport``."""
        plan_summary = {
            "batched": report.batched,
            "pattern_groups": report.pattern_groups,
            "plan_cache": dict(report.plan_cache_stats),
        }
        pipeline = getattr(report, "pipeline", None)
        if pipeline is not None:
            plan_summary["pipeline_saved_s"] = pipeline.saved_s
        return cls(
            request=request,
            scheme=report.scheme,
            stripes_repaired=list(report.stripes_repaired),
            blocks_recovered=report.blocks_recovered,
            makespan_s=report.simulated_transfer_s,
            bytes_moved=bytes_moved,
            bytes_on_wire_mb_model=report.bytes_on_wire_mb_model,
            compute_s_total=report.compute_s_total,
            plan_summary=plan_summary,
            jobs=[
                JobOutcome(
                    job_id="round0",
                    state="done",
                    scheme=report.scheme,
                    priority=request.priority,
                    stripes=tuple(report.stripes_repaired),
                    blocks_recovered=report.blocks_recovered,
                    wave=None,
                    finish_s=report.simulated_transfer_s,
                )
            ],
            per_stripe_transfer_s=dict(report.per_stripe_transfer_s),
            replacements=dict(report.replacements),
            batched=report.batched,
            workers=getattr(report, "workers", 1),
            pipeline=pipeline,
            report=report,
        )

    @classmethod
    def from_fault(cls, report, request: RepairRequest, bytes_moved: int) -> "RepairResult":
        """Wrap a fault-runtime ``FaultRepairReport``."""
        return cls(
            request=request,
            scheme=report.scheme,
            stripes_repaired=list(report.stripes_repaired),
            blocks_recovered=report.blocks_recovered,
            makespan_s=report.simulated_transfer_s,
            bytes_moved=bytes_moved,
            bytes_on_wire_mb_model=report.bytes_on_wire_mb_model,
            compute_s_total=report.compute_s_total,
            plan_summary={
                "rounds": report.rounds,
                "replans": report.replans,
                "retries": report.retries,
                "wasted_transfer_bytes": report.wasted_transfer_bytes,
            },
            jobs=[
                JobOutcome(
                    job_id="round0",
                    state="done",
                    scheme=report.scheme,
                    priority=request.priority,
                    stripes=tuple(report.stripes_repaired),
                    blocks_recovered=report.blocks_recovered,
                    wave=None,
                    finish_s=report.simulated_transfer_s,
                )
            ],
            per_stripe_transfer_s=dict(report.per_stripe_transfer_s),
            replacements=dict(report.replacements),
            report=report,
        )

    @classmethod
    def from_adaptive(cls, report, request: "RepairRequest", bytes_moved: int) -> "RepairResult":
        """Wrap an :class:`~repro.adaptive.runtime.AdaptiveRepairReport`."""
        return cls(
            request=request,
            scheme=report.scheme,
            stripes_repaired=list(report.stripes_repaired),
            blocks_recovered=report.blocks_recovered,
            makespan_s=report.simulated_transfer_s,
            bytes_moved=bytes_moved,
            bytes_on_wire_mb_model=report.bytes_on_wire_mb_model,
            compute_s_total=report.compute_s_total,
            plan_summary={
                "adaptive": True,
                "rounds": report.rounds,
                "replans": report.replans,
                "wasted_mb": report.wasted_mb,
                "pieces_per_stripe": dict(report.pieces_per_stripe),
            },
            jobs=[
                JobOutcome(
                    job_id="adaptive0",
                    state="done",
                    scheme=report.scheme,
                    priority=request.priority,
                    stripes=tuple(report.stripes_repaired),
                    blocks_recovered=report.blocks_recovered,
                    wave=None,
                    finish_s=report.simulated_transfer_s,
                )
            ],
            per_stripe_transfer_s=dict(report.per_stripe_transfer_s),
            replacements=dict(report.replacements),
            report=report,
        )

    @classmethod
    def from_scheduler(
        cls,
        report,
        request: RepairRequest,
        bytes_moved: int,
        compute_s_total: float = 0.0,
    ) -> "RepairResult":
        """Wrap a scheduler ``SchedulerReport`` (one or many jobs)."""
        stripes = sorted({s for j in report.jobs for s in j.stripes_repaired})
        return cls(
            request=request,
            scheme=request.scheme,
            stripes_repaired=stripes,
            blocks_recovered=report.blocks_recovered,
            makespan_s=report.makespan_s,
            bytes_moved=bytes_moved,
            bytes_on_wire_mb_model=report.bytes_on_wire_mb_model,
            compute_s_total=compute_s_total,
            plan_summary={"waves": report.waves},
            jobs=[JobOutcome.from_job(j) for j in report.jobs],
            per_stripe_transfer_s={
                sid: t
                for j in report.jobs
                for sid, t in j.per_stripe_transfer_s.items()
            },
            report=report,
        )
