"""Client workload generation and the online serving plane.

Two halves (see ``docs/SERVING.md``):

* :mod:`repro.workload.generator` — seeded, deterministic client load:
  zipf object popularity, open-loop Poisson arrivals, replayable traces;
* :mod:`repro.workload.serving` — :class:`ServingPlane` runs a trace
  against a coordinator with an on-the-fly degraded-read path and merges
  the foreground flows into the repair scheduler's fluid simulation, so
  read-latency percentiles reflect contention with repair storms.

Entry point: build a :class:`ServeRequest` and call
:meth:`Coordinator.serve <repro.system.coordinator.Coordinator.serve>`.
"""

from repro.workload.generator import (
    ClientOp,
    WorkloadGenerator,
    WorkloadSpec,
    object_payload,
)
from repro.workload.serving import OpOutcome, ServeRequest, ServeResult, ServingPlane

__all__ = [
    "ClientOp",
    "OpOutcome",
    "ServeRequest",
    "ServeResult",
    "ServingPlane",
    "WorkloadGenerator",
    "WorkloadSpec",
    "object_payload",
]
