"""Client workload generation and the online serving plane.

Two halves (see ``docs/SERVING.md``):

* :mod:`repro.workload.generator` — seeded, deterministic client load:
  zipf object popularity, open-loop Poisson arrivals, replayable traces;
* :mod:`repro.workload.serving` — :class:`ServingPlane` runs a trace
  against a coordinator with an on-the-fly degraded-read path and merges
  the foreground flows into the repair scheduler's fluid simulation, so
  read-latency percentiles reflect contention with repair storms;
* :mod:`repro.workload.pipeline` — chunked degraded-read pipelining:
  word-aligned slice geometry, bit-exact per-slice decode, and the
  streaming fetch/decode task DAG that overlaps decode with in-flight
  survivor fetches (``docs/PIPELINING_READS.md``).

Entry point: build a :class:`ServeRequest` (``chunks=N`` enables the
pipelined degraded path) and call :meth:`Coordinator.serve
<repro.system.coordinator.Coordinator.serve>`.
"""

from repro.workload.generator import (
    ClientOp,
    WorkloadGenerator,
    WorkloadSpec,
    object_payload,
)
from repro.workload.pipeline import (
    ChunkSlice,
    StripeChunkPlan,
    chunk_slices,
    chunked_read_tasks,
    decode_chunked,
    read_pipeline_report,
)
from repro.workload.serving import OpOutcome, ServeRequest, ServeResult, ServingPlane

__all__ = [
    "ChunkSlice",
    "ClientOp",
    "OpOutcome",
    "ServeRequest",
    "ServeResult",
    "ServingPlane",
    "StripeChunkPlan",
    "WorkloadGenerator",
    "WorkloadSpec",
    "chunk_slices",
    "chunked_read_tasks",
    "decode_chunked",
    "object_payload",
    "read_pipeline_report",
]
