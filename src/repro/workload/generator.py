"""Seeded, deterministic client load generation.

The generator models the front-end traffic the ROADMAP's "millions of
users" north star implies, with the two standard ingredients of storage
traces:

* **zipf object popularity** — object ranks are drawn from a normalized
  ``rank**-s`` law via inverse-CDF sampling, so a small hot set absorbs
  most reads (``s = 0`` degenerates to uniform);
* **open-loop Poisson arrivals** — inter-arrival gaps are exponential at
  ``rate_ops_s``, and arrival times never depend on how long earlier
  operations took.  Open-loop load is what makes degraded-read latency an
  honest metric: a slow system does not slow the offered load down.

Determinism is a hard contract, not a convenience: one
:class:`WorkloadSpec` seed fans out (via :class:`numpy.random.SeedSequence`
spawning) into *independent* substreams for arrivals and per-op detail, so

* the same spec always yields the byte-identical :meth:`trace
  <WorkloadGenerator.trace_bytes>`, and
* changing read/write mix or popularity skew cannot move a single arrival
  tick (the property tests pin both).

Payload bytes are part of the same contract: :func:`object_payload` and
:meth:`WorkloadGenerator.patch_bytes` derive every object body and write
patch from the spec seed, so a differential test can recompute the exact
expected bytes of any object at any point of a run without snapshotting
state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: domain-separation tags for seed-derived byte streams, so object bodies
#: and write patches can never collide even for equal integer ids.
_OBJECT_STREAM = 0
_PATCH_STREAM = 1


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that defines a client workload (hashable, reusable).

    ``duration_s`` bounds the open-loop arrival window; ``rate_ops_s`` is
    the Poisson arrival rate; ``zipf_s`` the popularity skew exponent
    (``0`` = uniform); ``read_fraction`` the probability an op is a whole-
    object read (the rest are ``write_bytes``-sized in-place updates at a
    uniform offset).
    """

    n_objects: int = 16
    object_bytes: int = 1 << 16
    duration_s: float = 10.0
    rate_ops_s: float = 4.0
    zipf_s: float = 1.1
    read_fraction: float = 0.9
    write_bytes: int = 256
    seed: int = 20230717

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ValueError("n_objects must be >= 1")
        if self.object_bytes < 1:
            raise ValueError("object_bytes must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.rate_ops_s <= 0:
            raise ValueError("rate_ops_s must be positive")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 1 <= self.write_bytes <= self.object_bytes:
            raise ValueError("write_bytes must be in [1, object_bytes]")

    def object_name(self, i: int) -> str:
        """The canonical name of the rank-``i`` object (0 = hottest)."""
        if not 0 <= i < self.n_objects:
            raise ValueError(f"object index {i} out of range 0..{self.n_objects - 1}")
        return f"obj{i:04d}"

    def zipf_pmf(self) -> np.ndarray:
        """Theoretical popularity of each object rank (sums to 1)."""
        ranks = np.arange(1, self.n_objects + 1, dtype=np.float64)
        weights = ranks ** -self.zipf_s
        return weights / weights.sum()


@dataclass(frozen=True)
class ClientOp:
    """One generated client operation.

    ``kind`` is ``"read"`` (whole object) or ``"write"`` (an in-place
    patch of ``nbytes`` at ``offset``); ``t_s`` is the open-loop arrival
    time in simulated seconds.
    """

    op_id: int
    t_s: float
    kind: str
    obj: str
    offset: int
    nbytes: int


def object_payload(spec: WorkloadSpec, i: int) -> bytes:
    """The deterministic initial body of object ``i`` under ``spec``."""
    rng = np.random.default_rng(
        np.random.SeedSequence([spec.seed, _OBJECT_STREAM, i])
    )
    return rng.integers(0, 256, size=spec.object_bytes, dtype=np.uint8).tobytes()


class WorkloadGenerator:
    """Replayable op-trace generator for one :class:`WorkloadSpec`.

    Stateless between calls: :meth:`arrivals`, :meth:`ops`, and
    :meth:`trace_bytes` rebuild their RNG substreams from the spec seed
    every time, so repeated calls (and repeated runs) agree byte for byte.
    """

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec

    # -------------------------------------------------------------- #
    # substreams
    # -------------------------------------------------------------- #
    def _substreams(self) -> tuple[np.random.Generator, np.random.Generator]:
        """Fresh (arrival, op-detail) generators from the spec seed.

        Spawned from one :class:`~numpy.random.SeedSequence` so the two
        streams are statistically independent: consuming more or fewer
        op-detail draws can never shift an arrival time.
        """
        arr_ss, op_ss = np.random.SeedSequence(self.spec.seed).spawn(2)
        return np.random.default_rng(arr_ss), np.random.default_rng(op_ss)

    # -------------------------------------------------------------- #
    # generation
    # -------------------------------------------------------------- #
    def arrivals(self) -> list[float]:
        """Open-loop Poisson arrival times within ``[0, duration_s)``."""
        rng, _ = self._substreams()
        scale = 1.0 / self.spec.rate_ops_s
        out: list[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(scale))
            if t >= self.spec.duration_s:
                return out
            out.append(t)

    def ops(self) -> list[ClientOp]:
        """The full deterministic op trace for the spec."""
        spec = self.spec
        _, op_rng = self._substreams()
        cdf = np.cumsum(spec.zipf_pmf())
        out: list[ClientOp] = []
        for op_id, t in enumerate(self.arrivals()):
            rank = int(np.searchsorted(cdf, op_rng.random(), side="right"))
            rank = min(rank, spec.n_objects - 1)  # guard the u == 1.0 edge
            if op_rng.random() < spec.read_fraction:
                kind, offset, nbytes = "read", 0, spec.object_bytes
            else:
                kind = "write"
                offset = int(
                    op_rng.integers(0, spec.object_bytes - spec.write_bytes + 1)
                )
                nbytes = spec.write_bytes
            out.append(
                ClientOp(op_id, t, kind, spec.object_name(rank), offset, nbytes)
            )
        return out

    def patch_bytes(self, op: ClientOp) -> bytes:
        """The deterministic payload of a write op (keyed by its id)."""
        if op.kind != "write":
            raise ValueError(f"op {op.op_id} is a {op.kind}, not a write")
        rng = np.random.default_rng(
            np.random.SeedSequence([self.spec.seed, _PATCH_STREAM, op.op_id])
        )
        return rng.integers(0, 256, size=op.nbytes, dtype=np.uint8).tobytes()

    def trace_bytes(self) -> bytes:
        """Canonical byte encoding of the trace (for byte-identity tests).

        One line per op; arrival times use ``repr`` so every bit of the
        float is part of the contract.
        """
        lines = [
            f"{op.op_id},{op.t_s!r},{op.kind},{op.obj},{op.offset},{op.nbytes}"
            for op in self.ops()
        ]
        return ("\n".join(lines) + "\n").encode() if lines else b""
