"""Chunked degraded-read pipelining: decode overlaps the survivor fetches.

PR 6's degraded read is a *barrier*: the modeled decode delay starts only
after every one of the ``k`` survivor blocks has fully landed at the
gateway, so a degraded read pays ``fetch + decode`` end to end.  Repair
Pipelining (ECPipe) observes that erasure decode is column-local: byte
``i`` of a lost block depends only on byte ``i`` of each survivor.  Split
every block into ``chunks`` column slices and the gateway can decode slice
``c`` while slices ``c+1 .. n-1`` are still on the wire, collapsing the
decode tail to a single chunk's worth.

This module holds the three reusable pieces the serving plane composes:

* :func:`chunk_slices` — word-aligned column geometry (via
  :func:`repro.parallel.shard_bounds`, the same splitter the worker pool
  shards decode with);
* :func:`decode_chunked` — the data plane: per-slice
  :meth:`~repro.repair.batch.BatchRepairEngine.decode_batch` calls that
  are **bit-exact** with one whole-block decode, because the GF plane
  matmul treats every column independently.  Emits one ops-domain
  ``workload.chunk:*`` span per slice when a tracer is attached;
* :func:`chunked_read_tasks` — the timing plane: per-chunk survivor
  sub-flows chained per block (streaming: chunk ``c`` of a block ships
  after chunk ``c-1``, preserving the block's total transfer time under
  fluid sharing) and per-chunk decode :class:`~repro.simnet.flows.
  DelayTask`\\ s chained on the gateway's single decode lane.  That chain
  *is* :func:`repro.parallel.pipeline_schedule` with ``workers=1`` —
  :func:`read_pipeline_report` replays the post-sim ready/cost pairs
  through it to report the barrier-vs-pipelined saving.

With ``chunks=1`` the emitted task ids and topology are exactly PR 6's
barrier model, so every existing golden number is the degenerate case.
See ``docs/PIPELINING_READS.md`` for the timing diagrams and formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.pipeline import PipelineReport, pipeline_schedule
from repro.parallel.pool import shard_bounds
from repro.simnet.flows import DelayTask, Flow


@dataclass(frozen=True)
class ChunkSlice:
    """One column range ``[lo, hi)`` of a chunked degraded read."""

    #: 0-based chunk index within the block.
    index: int
    #: first column (field word) of the slice.
    lo: int
    #: one past the last column of the slice.
    hi: int

    @property
    def width(self) -> int:
        """Columns in the slice."""
        return self.hi - self.lo


def chunk_slices(block_len: int, chunks: int) -> tuple[ChunkSlice, ...]:
    """Split ``[0, block_len)`` into at most ``chunks`` word-aligned slices.

    Delegates to :func:`repro.parallel.shard_bounds`, so cuts snap to even
    columns (safe for the pair-byte GF(2^16) kernel) and degenerate
    requests (``chunks`` > ``block_len``) collapse to fewer, non-empty
    slices instead of erroring.  ``chunks=1`` yields the whole block.
    """
    if block_len < 1:
        raise ValueError(f"block_len must be >= 1, got {block_len}")
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    bounds = shard_bounds(block_len, chunks)
    return tuple(
        ChunkSlice(i, lo, hi)
        for i, (lo, hi) in enumerate(zip(bounds, bounds[1:]))
    )


def decode_chunked(
    engine,
    survivor_ids,
    failed_ids,
    stacked: np.ndarray,
    chunks: int,
    *,
    tracer=None,
    label: str = "",
) -> np.ndarray:
    """Decode ``stacked`` (S, k, B) slice by slice; bit-exact with one shot.

    Each slice runs through ``engine.decode_batch`` on the column range
    alone — the decode matrix multiplies columns independently, so
    reassembling the per-slice outputs reproduces the whole-block decode
    byte for byte (the property suite pins this for every tested chunk
    count).  With ``tracer`` attached, each slice is wrapped in an
    ops-domain ``workload.chunk:{label}c{i}`` span carrying its geometry.
    """
    stacked = np.asarray(stacked, dtype=engine.code.field.dtype)
    if stacked.ndim != 3:
        raise ValueError(f"stacked must be (S, k, B), got {stacked.shape}")
    slices = chunk_slices(stacked.shape[2], chunks)
    if len(slices) == 1 and tracer is None:
        return engine.decode_batch(survivor_ids, failed_ids, stacked)
    out = np.empty(
        (stacked.shape[0], len(failed_ids), stacked.shape[2]),
        dtype=stacked.dtype,
    )
    for sl in slices:
        span = None
        if tracer is not None:
            span = tracer.begin(
                f"workload.chunk:{label}c{sl.index}", actor="serving",
                cat="workload", chunk=sl.index, lo=sl.lo, hi=sl.hi,
                chunks=len(slices),
            )
        try:
            out[:, :, sl.lo:sl.hi] = engine.decode_batch(
                survivor_ids, failed_ids, stacked[:, :, sl.lo:sl.hi]
            )
        finally:
            if span is not None:
                tracer.end(span)
    return out


@dataclass(frozen=True)
class StripeChunkPlan:
    """Timing-plane artifacts of one degraded stripe's chunked read.

    ``flow_ids[c]`` / ``dec_ids[c]`` / ``cost_s[c]`` describe chunk ``c``;
    :meth:`ServingPlane._assemble <repro.workload.serving.ServingPlane>`
    resolves them against the merged simulation's finish times to compute
    per-chunk spans and the pipelined-vs-barrier saving.
    """

    sid: int
    tasks: tuple
    #: per chunk: the survivor sub-flow ids whose finishes gate its decode.
    flow_ids: tuple[tuple[str, ...], ...]
    #: per chunk: the decode DelayTask id.
    dec_ids: tuple[str, ...]
    #: per chunk: the modeled decode cost in simulated seconds.
    cost_s: tuple[float, ...]


def chunked_read_tasks(
    *,
    prefix: str,
    sid: int,
    fetches,
    n_missing: int,
    slices,
    block_size_mb: float,
    decode_mbps: float,
    weight: float,
    gateway: int,
) -> StripeChunkPlan:
    """Build one degraded stripe's chunked fetch + decode task DAG.

    ``fetches`` is the ``(block_index, host)`` list of survivors shipping
    to ``gateway`` (local blocks contribute no flow, matching the metered
    data plane).  Per block, chunk ``c``'s sub-flow (``block_size_mb *
    width/B`` MB) depends on chunk ``c-1``'s sub-flow of the same block —
    a streaming chain, so the block's *total* transfer time under fluid
    fair sharing equals the unchunked flow's while early chunks land
    early.  Per chunk, one decode :class:`~repro.simnet.flows.DelayTask`
    (``n_missing * chunk_mb / decode_mbps`` seconds at the gateway)
    depends on that chunk's sub-flows plus the previous chunk's decode:
    the gateway's single decode lane, i.e. ``pipeline_schedule(...,
    workers=1)`` materialized as simulator tasks.

    With a single slice the emitted ids (``{prefix}s{sid}:b{b}``,
    ``{prefix}dec{sid}``) and topology are exactly the pre-chunking
    barrier model.
    """
    slices = tuple(slices)
    n = len(slices)
    block_len = slices[-1].hi
    arrival = (f"{prefix}arr",)
    tasks: list = []
    flow_ids: list[tuple[str, ...]] = []
    dec_ids: list[str] = []
    cost_s: list[float] = []
    prev_flow: dict[int, str] = {}
    prev_dec: str | None = None
    for sl in slices:
        frac = sl.width / block_len
        chunk_mb = block_size_mb * frac
        ids = []
        for b, host in fetches:
            base = f"{prefix}s{sid}:b{b}"
            fid = base if n == 1 else f"{base}:c{sl.index}"
            deps = (prev_flow[b],) if b in prev_flow else arrival
            tasks.append(
                Flow(fid, host, gateway, chunk_mb, deps=deps, tag="fg",
                     weight=weight)
            )
            prev_flow[b] = fid
            ids.append(fid)
        dec_id = f"{prefix}dec{sid}" if n == 1 else f"{prefix}dec{sid}:c{sl.index}"
        deps = tuple(ids) or (arrival if prev_dec is None else ())
        if prev_dec is not None:
            deps = deps + (prev_dec,)
        cost = n_missing * chunk_mb / decode_mbps
        tasks.append(
            DelayTask(dec_id, cost, node=gateway, deps=deps, tag="fg")
        )
        prev_dec = dec_id
        flow_ids.append(tuple(ids))
        dec_ids.append(dec_id)
        cost_s.append(cost)
    return StripeChunkPlan(
        sid=sid,
        tasks=tuple(tasks),
        flow_ids=tuple(flow_ids),
        dec_ids=tuple(dec_ids),
        cost_s=tuple(cost_s),
    )


def read_pipeline_report(ready_s, cost_s) -> PipelineReport:
    """Pipelined-vs-barrier comparison for one stripe's chunk decodes.

    ``ready_s[c]`` is when chunk ``c``'s survivor sub-flows finished in
    the merged simulation; ``cost_s[c]`` its modeled decode cost.  The
    gateway decodes on one lane, so this is
    :func:`~repro.parallel.pipeline_schedule` with ``workers=1``: the
    report's ``saved_s`` is exactly how much earlier the chained decode
    finished than the barrier model (fetch everything, then decode).
    """
    ready = list(ready_s)
    return pipeline_schedule(list(range(len(ready))), ready, list(cost_s), 1)
