"""Online serving plane: client reads/writes under live repair traffic.

:class:`ServingPlane` drives a :class:`~repro.workload.generator.
WorkloadSpec` trace against a :class:`~repro.system.coordinator.
Coordinator`, in the same two-plane style every other layer uses:

* **data plane** — each read fetches its stripes' blocks from the agents
  through the metered :class:`~repro.system.bus.DataBus`.  A read landing
  on a dead/empty node takes the **degraded path**: the first ``k``
  surviving blocks ship to the gateway and the lost data blocks decode on
  the fly through the coordinator's shared
  :class:`~repro.repair.batch.PlanCache` /
  :class:`~repro.repair.batch.BatchRepairEngine` — bit-exact with a
  healthy read by construction (the differential suite pins it).  A stripe
  with fewer than ``k`` survivors raises
  :class:`~repro.faults.errors.StripeUnrecoverable`.  Writes go through
  :meth:`Coordinator.update`'s parity-delta path.
* **timing plane** — every op contributes arrival-gated
  :class:`~repro.simnet.flows.Flow`/:class:`~repro.simnet.flows.DelayTask`
  tasks at the foreground weight, merged into the **same**
  :class:`~repro.simnet.fluid.FluidSimulator` wave as any queued repair
  jobs via :meth:`RepairScheduler.run_pending(foreground=...)
  <repro.sched.scheduler.RepairScheduler.run_pending>` — so a repair storm
  genuinely steals bandwidth from users in proportion to the scheduler's
  priority weights.  Degraded reads additionally pay a *modeled* decode
  delay (``blocks x block_size_mb / decode_mbps``), never wall clock, so
  every latency percentile is deterministic.

Two latency optimizations ride on top (both default-compatible with the
barrier model; see ``docs/PIPELINING_READS.md``):

* **chunked decode pipelining** (``chunks > 1``) — each degraded read is
  split into word-aligned column slices through
  :mod:`repro.workload.pipeline`; per-chunk survivor sub-flows stream and
  the per-chunk decode delays chain on the gateway's decode lane, so
  decode overlaps the remaining fetches instead of waiting for the last
  block.  Bit-exact with the barrier path for every chunk count.
* **the partially-repaired-stripe fast path** (``fast_path=True``) — when
  a repair storm is queued, :meth:`RepairScheduler.estimate_finish_s
  <repro.sched.scheduler.RepairScheduler.estimate_finish_s>` provides a
  planning-only per-stripe landing clock; ops arriving after a stripe's
  estimated landing short-circuit to a healthy read against the planned
  spare (the repaired block is already there in the modeled timeline),
  skipping the degraded surcharge entirely.


Per-op read latencies summarize through
:func:`repro.obs.metrics.latency_summary` into p50/p99 tables for the
three regimes the ISSUE names (healthy / degraded / repair storm); with an
:class:`~repro.obs.session.Observability` session attached the run also
emits ``workload.*`` spans in both clock domains and ``workload.*`` metric
series, without changing a single reported number.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.ec.stripe import block_name
from repro.faults.errors import StripeUnrecoverable
from repro.obs.metrics import latency_summary
from repro.repair.batch import BatchRepairEngine
from repro.simnet.flows import DelayTask, Flow
from repro.system.request import RepairRequest
from repro.workload.generator import WorkloadGenerator, WorkloadSpec, object_payload
from repro.workload.pipeline import (
    chunk_slices,
    chunked_read_tasks,
    decode_chunked,
    read_pipeline_report,
)


@dataclass(frozen=True)
class ServeRequest:
    """One serving scenario: a workload plus an optional repair storm.

    ``repair`` requests are queued on the coordinator's scheduler and run
    in the same merged simulation as the workload's foreground tasks (at
    most one may carry a fault schedule, mirroring
    :meth:`Coordinator.repair <repro.system.coordinator.Coordinator.
    repair>`'s multi-request rules).  ``foreground_weight`` is the fair-
    share weight of every client flow (the scheduler's foreground class
    default is 4.0); ``decode_mbps`` the modeled gateway decode throughput
    charged per degraded block.  ``chunks`` splits every degraded read
    into that many pipelined sub-block slices (1 = the barrier model);
    ``fast_path`` lets ops arriving after a queued repair's estimated
    landing read the rebuilt block from its spare instead of degrading.
    ``network`` (anything :func:`~repro.simnet.network.as_network`
    accepts) perturbs the merged simulation with its bandwidth events, so
    client traffic and repair flows contend on a *changing* network.
    """

    spec: WorkloadSpec
    repair: tuple = ()
    foreground_weight: float = 4.0
    decode_mbps: float = 1024.0
    chunks: int = 1
    fast_path: bool = True
    network: Any = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "repair", tuple(self.repair))
        if self.network is not None:
            from repro.simnet.network import as_network

            object.__setattr__(self, "network", as_network(self.network))
        if self.foreground_weight <= 0:
            raise ValueError("foreground_weight must be positive")
        if self.decode_mbps <= 0:
            raise ValueError("decode_mbps must be positive")
        if int(self.chunks) != self.chunks or self.chunks < 1:
            raise ValueError(f"chunks must be a positive integer, got {self.chunks}")
        object.__setattr__(self, "chunks", int(self.chunks))
        for r in self.repair:
            if not isinstance(r, RepairRequest):
                raise TypeError(
                    f"repair entries must be RepairRequest, got {type(r).__name__}"
                )
        if sum(1 for r in self.repair if r.faults is not None) > 1:
            raise ValueError("at most one repair request per run may carry faults")


@dataclass(frozen=True)
class OpOutcome:
    """What one client op did and how long it took (simulated seconds).

    ``digest`` is the sha256 of the returned payload for completed reads
    (chaos tests verify bytes without keeping payloads around); failed
    reads carry the :class:`~repro.faults.errors.StripeUnrecoverable`
    message in ``error`` and are excluded from the latency percentiles.
    ``fast_stripes`` counts stripes this op served through the
    partially-repaired fast path (such stripes are *not* degraded: their
    timing is a healthy fetch against the planned spare).
    """

    op_id: int
    kind: str
    obj: str
    t_s: float
    ok: bool
    degraded: bool
    degraded_stripes: int
    nbytes: int
    digest: str
    finish_s: float
    latency_s: float
    error: str = ""
    fast_stripes: int = 0


@dataclass
class ServeResult:
    """Outcome of one :meth:`ServingPlane.run`."""

    spec: WorkloadSpec
    outcomes: list[OpOutcome]
    #: :func:`~repro.obs.metrics.latency_summary` tables over completed
    #: reads: all of them, the healthy subset, and the degraded subset.
    latency: dict
    latency_healthy: dict
    latency_degraded: dict
    reads: int
    degraded_reads: int
    failed_reads: int
    writes: int
    failed_writes: int
    #: bytes the foreground data plane itself metered on the bus (block
    #: fetches to gateways + parity deltas); conservation tests check this
    #: against :meth:`DataBus.total_bytes` deltas.
    foreground_bytes: int
    #: total bus-byte delta across the run (foreground + any repair jobs).
    bus_bytes_delta: int
    #: scheduler-global simulated makespan of the merged run.
    makespan_s: float
    #: the merged wave's :class:`~repro.sched.scheduler.SchedulerReport`.
    repair: object = None
    plan_cache_stats: dict = field(default_factory=dict)
    #: ops that served at least one stripe through the partially-repaired
    #: fast path (healthy-style reads against the planned spare).
    fast_path_reads: int = 0
    #: simulated seconds the chunked decode pipeline recovered versus the
    #: barrier model, summed over every degraded stripe read.
    pipeline_saved_s: float = 0.0
    #: the run's degraded-read chunk count (1 = barrier model).
    chunks: int = 1

    def summary(self) -> dict:
        """Golden-friendly scalar view (deterministic, wall-clock-free)."""
        return {
            "ops": len(self.outcomes),
            "reads": self.reads,
            "degraded_reads": self.degraded_reads,
            "fast_path_reads": self.fast_path_reads,
            "failed_reads": self.failed_reads,
            "writes": self.writes,
            "failed_writes": self.failed_writes,
            "latency_all": self.latency,
            "latency_healthy": self.latency_healthy,
            "latency_degraded": self.latency_degraded,
            "foreground_bytes": self.foreground_bytes,
            "makespan_s": self.makespan_s,
            "chunks": self.chunks,
            "pipeline_saved_s": self.pipeline_saved_s,
            "repair_jobs": len(self.repair.jobs) if self.repair is not None else 0,
            "repair_makespan_s": (
                self.repair.makespan_s if self.repair is not None else 0.0
            ),
        }


class ServingPlane:
    """Serves one workload against a coordinator (see the module docstring).

    Reusable: :meth:`provision` is idempotent, and every :meth:`run`
    regenerates the trace from the spec seed, so the same plane can serve
    the same workload across healthy/degraded/storm regimes of one system
    (the canonical golden scenario does exactly that).
    """

    def __init__(
        self,
        coord,
        spec: WorkloadSpec,
        *,
        foreground_weight: float = 4.0,
        decode_mbps: float = 1024.0,
        chunks: int = 1,
        fast_path: bool = True,
        network=None,
        backend=None,
    ):
        if foreground_weight <= 0:
            raise ValueError("foreground_weight must be positive")
        if decode_mbps <= 0:
            raise ValueError("decode_mbps must be positive")
        if int(chunks) != chunks or chunks < 1:
            raise ValueError(f"chunks must be a positive integer, got {chunks}")
        self.coord = coord
        self.spec = spec
        self.foreground_weight = foreground_weight
        self.decode_mbps = decode_mbps
        self.chunks = int(chunks)
        self.fast_path = fast_path
        #: how capacities change during the run (see ``ServeRequest.network``).
        self.network = network
        #: kernel-tier spec for degraded-read decodes (name / instance /
        #: ``None`` = auto); forwarded to every engine this plane builds.
        self.backend = backend
        self.gen = WorkloadGenerator(spec)
        #: stripe id -> estimated repair landing (set per run; see run()).
        self._eta: dict[int, float] = {}
        #: dead node -> planned replacement spare, from the same estimate.
        self._repl: dict[int, int] = {}

    # -------------------------------------------------------------- #
    # provisioning
    # -------------------------------------------------------------- #
    def provision(self) -> int:
        """Write every workload object that does not exist yet.

        Object bodies come from :func:`~repro.workload.generator.
        object_payload`, so a test can recompute any object's expected
        bytes from the spec alone.  Returns how many objects were written.
        """
        coord, spec = self.coord, self.spec
        written = 0
        for i in range(spec.n_objects):
            name = spec.object_name(i)
            if name in coord.files:
                continue
            coord.write(name, object_payload(spec, i))
            written += 1
        return written

    # -------------------------------------------------------------- #
    # data plane
    # -------------------------------------------------------------- #
    def read_object(self, name: str, *, gateway: int | None = None) -> bytes:
        """The exact bytes a client read of ``name`` returns right now.

        Data plane only (no timing tasks): fetches are metered on the bus
        and lost data blocks decode through the shared plan cache — the
        same path :meth:`run` takes, so differential tests can compare a
        degraded read against a healthy one byte for byte.  Raises
        :class:`~repro.faults.errors.StripeUnrecoverable` when any stripe
        has fewer than ``k`` survivors.
        """
        gw = gateway if gateway is not None else self._gateways()[0]
        engine = BatchRepairEngine(
            self.coord.code,
            cache=self.coord.plan_cache,
            obs=self.coord.obs,
            backend=self.backend,
        )
        payload, _ = self._read_plan(name, gw, engine, None, "")
        return payload

    def _gateways(self) -> list[int]:
        gws = sorted(self.coord.data_nodes())
        if not gws:
            raise RuntimeError("no alive data nodes to serve from")
        return gws

    def _read_plan(self, name, gateway, engine, tasks, task_prefix, arrival_s=None):
        """Fetch + decode one object; returns ``(payload, stats)``.

        When ``tasks`` is a list, appends the op's timing tasks to it
        (``task_prefix`` must then be the op's unique ``fg:<id>:`` prefix,
        with the arrival task ``<prefix>arr`` already present).  ``stats``
        carries the ``degraded`` / ``fast`` stripe counts, the ``metered``
        foreground bytes, and one :class:`~repro.workload.pipeline.
        StripeChunkPlan` per degraded stripe for post-sim accounting.
        ``arrival_s`` (the op's arrival instant) arms the fast path; data-
        plane-only callers like :meth:`read_object` leave it ``None``.
        """
        coord = self.coord
        code = coord.code
        k = code.k
        stripe_ids, length = coord.files[name]
        stripes = {s.stripe_id: s for s in coord.layout}
        obs = coord.obs
        parts = []
        stats = {"degraded": 0, "fast": 0, "metered": 0, "chunk_plans": []}
        for sid in stripe_ids:
            stripe = stripes[sid]
            available: dict[int, int] = {}
            for b, node in enumerate(stripe.placement):
                agent = coord.agents[node]
                if agent.alive and agent.store.has(block_name(sid, b)):
                    available[b] = node
            missing = [b for b in range(k) if b not in available]
            if missing and len(available) < k:
                raise StripeUnrecoverable(sid, len(available), k)
            if missing and self._fast_path_ready(sid, stripe, missing, arrival_s):
                parts.append(
                    self._read_fast(
                        sid, stripe, available, missing, gateway, engine,
                        tasks, task_prefix, stats,
                    )
                )
                continue
            chosen = sorted(available)[:k] if missing else list(range(k))
            bufs: dict[int, np.ndarray] = {}
            fetches: list[tuple[int, int]] = []
            for b in chosen:
                host = available[b]
                buf = coord.agents[host].read_block(block_name(sid, b))
                if host != gateway:
                    coord.bus.check(host, gateway, buf.nbytes)
                    coord.bus.record(host, gateway, buf.nbytes)
                    stats["metered"] += buf.nbytes
                    fetches.append((b, host))
                bufs[b] = buf
            if missing:
                stats["degraded"] += 1
                stacked = np.stack([bufs[b] for b in chosen])[None, ...]
                decoded = decode_chunked(
                    engine, tuple(chosen), tuple(missing), stacked, self.chunks,
                    tracer=obs.tracer if obs is not None else None,
                    label=f"{task_prefix}s{sid}:",
                )
                for j, b in enumerate(missing):
                    bufs[b] = decoded[0, j]
                if tasks is not None:
                    # modeled per-chunk fetch sub-flows + decode delays at
                    # the gateway — deterministic, never wall clock.
                    plan = chunked_read_tasks(
                        prefix=task_prefix, sid=sid, fetches=fetches,
                        n_missing=len(missing),
                        slices=chunk_slices(int(stacked.shape[2]), self.chunks),
                        block_size_mb=coord.block_size_mb,
                        decode_mbps=self.decode_mbps,
                        weight=self.foreground_weight, gateway=gateway,
                    )
                    tasks.extend(plan.tasks)
                    stats["chunk_plans"].append(plan)
            elif tasks is not None:
                for b, host in fetches:
                    tasks.append(
                        Flow(
                            f"{task_prefix}s{sid}:b{b}", host, gateway,
                            coord.block_size_mb, deps=(f"{task_prefix}arr",),
                            tag="fg", weight=self.foreground_weight,
                        )
                    )
            parts.append(np.concatenate([bufs[b] for b in range(k)]))
        payload = np.concatenate(parts)[:length].tobytes()
        return payload, stats

    def _fast_path_ready(self, sid, stripe, missing, arrival_s) -> bool:
        """True when the op arrives after the stripe's estimated repair."""
        eta = self._eta.get(sid)
        return (
            eta is not None
            and arrival_s is not None
            and arrival_s >= eta
            and all(stripe.placement[b] in self._repl for b in missing)
        )

    def _read_fast(
        self, sid, stripe, available, missing, gateway, engine, tasks,
        task_prefix, stats,
    ):
        """Serve a partially-repaired stripe as a healthy read (fast path).

        The scheduler's planning-only estimate says this stripe's repair
        landed before the op arrived, so the timing plane models a healthy
        fetch against the repaired layout: one whole-block flow per data
        block, with rebuilt blocks shipping from their planned spare — no
        degraded surcharge.  The payload still decodes from the current
        survivors (repairs are bit-exact, so the bytes are identical
        either way), and exactly the modeled fetches are metered on the
        bus.  Returns the stripe's concatenated data blocks.
        """
        coord = self.coord
        k = coord.code.k
        chosen = sorted(available)[:k]
        bufs = {
            b: coord.agents[available[b]].read_block(block_name(sid, b))
            for b in chosen
        }
        stacked = np.stack([bufs[b] for b in chosen])[None, ...]
        decoded = engine.decode_batch(tuple(chosen), tuple(missing), stacked)
        for j, b in enumerate(missing):
            bufs[b] = decoded[0, j]
        stats["fast"] += 1
        bb = coord.block_bytes
        for b in range(k):
            host = (
                available[b] if b in available
                else self._repl[stripe.placement[b]]
            )
            if host == gateway:
                continue
            coord.bus.check(host, gateway, bb)
            coord.bus.record(host, gateway, bb)
            stats["metered"] += bb
            if tasks is not None:
                tasks.append(
                    Flow(
                        f"{task_prefix}s{sid}:b{b}", host, gateway,
                        coord.block_size_mb, deps=(f"{task_prefix}arr",),
                        tag="fg", weight=self.foreground_weight,
                    )
                )
        return np.concatenate([bufs[b] for b in range(k)])

    def _write_plan(self, op, tasks, task_prefix):
        """Apply one write op; returns (ok, metered_bytes).

        Pre-checks every touched data-block host so a doomed write fails
        without mutating anything (:meth:`Coordinator.update` would raise
        mid-stripe otherwise).  Timing: one foreground flow per applied
        parity delta — exactly the transfers the data plane metered.
        """
        coord = self.coord
        k, bb = coord.code.k, coord.block_bytes
        stripe_payload = k * bb
        patch = self.gen.patch_bytes(op)
        stripe_ids, _ = coord.files[op.obj]
        stripes = {s.stripe_id: s for s in coord.layout}
        touched: list[tuple[int, int, int]] = []
        pos = 0
        while pos < len(patch):
            abs_off = op.offset + pos
            sid = stripe_ids[abs_off // stripe_payload]
            bi = (abs_off % stripe_payload) // bb
            touched.append((sid, bi, stripes[sid].placement[bi]))
            pos += min(bb - abs_off % bb, len(patch) - pos)
        if any(not coord.agents[n].alive for _, _, n in touched):
            return False, 0
        res = coord.update(op.obj, op.offset, patch)
        if tasks is not None:
            for sid, bi, node in touched:
                for j in range(coord.code.m):
                    pnode = stripes[sid].placement[k + j]
                    if not coord.agents[pnode].alive:
                        continue
                    tasks.append(
                        Flow(
                            f"{task_prefix}w{sid}:{bi}:p{j}",
                            node, pnode, coord.block_size_mb,
                            deps=(f"{task_prefix}arr",), tag="fg",
                            weight=self.foreground_weight,
                        )
                    )
        return True, res["parity_deltas"] * bb

    # -------------------------------------------------------------- #
    # the run
    # -------------------------------------------------------------- #
    def run(self, repair=()) -> ServeResult:
        """Serve the whole trace, merged with ``repair`` storm jobs.

        The foreground data plane executes first (reads return what the
        cluster holds *before* this run's repairs land — the degraded-read
        regime), then the timing plane runs every foreground task and every
        repair job through one merged scheduler pass.
        """
        coord, spec = self.coord, self.spec
        self.provision()
        obs = coord.obs
        self._eta, self._repl = {}, {}
        reqs = tuple(repair)
        if reqs and self.fast_path and all(r.faults is None for r in reqs):
            # Planning-only landing clock for the fast path: which stripes
            # the queued storm will have rebuilt by when (state-free; the
            # real run's center picks are unaffected).
            est = coord.sched.estimate_finish_s(reqs)
            self._eta, self._repl = est.finish_s, est.replacement_of
        ops = self.gen.ops()
        engine = BatchRepairEngine(
            coord.code, cache=coord.plan_cache, obs=obs, backend=self.backend
        )
        gateways = self._gateways()
        bus_before = coord.bus.total_bytes()
        fg_tasks: list = []
        records: list[dict] = []
        fg_bytes = 0
        root = None
        if obs is not None:
            root = obs.tracer.begin(
                "workload.run", actor="serving", cat="workload",
                ops=len(ops), objects=spec.n_objects, seed=spec.seed,
            )
        try:
            for op in ops:
                prefix = f"fg:{op.op_id}:"
                gw = gateways[op.op_id % len(gateways)]
                fg_tasks.append(DelayTask(f"{prefix}arr", op.t_s, tag="fg"))
                rec = {
                    "op": op, "ok": True, "degraded_stripes": 0,
                    "fast_stripes": 0, "chunk_plans": [],
                    "nbytes": 0, "digest": "", "error": "",
                }
                span = None
                if obs is not None:
                    span = obs.tracer.begin(
                        f"workload.op:{op.op_id}", actor="serving",
                        cat="workload", op=op.op_id, kind=op.kind, obj=op.obj,
                    )
                try:
                    if op.kind == "read":
                        try:
                            payload, stats = self._read_plan(
                                op.obj, gw, engine, fg_tasks, prefix,
                                arrival_s=op.t_s,
                            )
                        except StripeUnrecoverable as err:
                            rec["ok"] = False
                            rec["error"] = f"{type(err).__name__}: {err}"
                        else:
                            rec["degraded_stripes"] = stats["degraded"]
                            rec["fast_stripes"] = stats["fast"]
                            rec["chunk_plans"] = stats["chunk_plans"]
                            rec["nbytes"] = len(payload)
                            rec["digest"] = hashlib.sha256(payload).hexdigest()
                            fg_bytes += stats["metered"]
                    else:
                        ok, metered = self._write_plan(op, fg_tasks, prefix)
                        rec["ok"] = ok
                        rec["nbytes"] = op.nbytes if ok else 0
                        if not ok:
                            rec["error"] = "write touched a dead data node"
                        fg_bytes += metered
                finally:
                    if span is not None:
                        obs.tracer.end(
                            span, ok=rec["ok"],
                            degraded=rec["degraded_stripes"] > 0,
                        )
                records.append(rec)

            report = self._run_merged(repair, fg_tasks)
        finally:
            if root is not None:
                obs.tracer.unwind(root)
        return self._assemble(records, report, fg_bytes, bus_before)

    def _run_merged(self, repair, fg_tasks):
        """Queue the storm requests and run one merged scheduler pass."""
        coord = self.coord
        reqs = list(repair)
        faulted = [r for r in reqs if r.faults is not None]
        if len(faulted) > 1:
            raise ValueError("at most one repair request per run may carry faults")
        for r in reqs:
            coord.sched.submit(
                scheme=r.scheme, stripes=r.stripes, priority=r.priority,
                weight=r.weight, arrival_s=r.arrival_s,
            )
        workers = max((r.workers for r in reqs), default=1)
        return coord.sched.run_pending(
            verify=all(r.verify for r in reqs),
            faults=faulted[0].faults if faulted else None,
            network=self.network,
            workers=workers,
            batched=any(r.batched for r in reqs) or workers > 1,
            foreground=tuple(fg_tasks),
        )

    def _assemble(self, records, report, fg_bytes, bus_before) -> ServeResult:
        """Resolve per-op finishes from the merged sim and summarize."""
        coord = self.coord
        obs = coord.obs
        fin = report.foreground_finish_s
        outcomes: list[OpOutcome] = []
        for rec in records:
            op = rec["op"]
            prefix = f"fg:{op.op_id}:"
            # clamped at t_s: the sim's arrival-task finish can drift a
            # last ulp below the exact arrival time it was given.
            finish = max(
                max(
                    (t for tid, t in fin.items() if tid.startswith(prefix)),
                    default=op.t_s,
                ),
                op.t_s,
            )
            outcomes.append(
                OpOutcome(
                    op_id=op.op_id, kind=op.kind, obj=op.obj, t_s=op.t_s,
                    ok=rec["ok"], degraded=rec["degraded_stripes"] > 0,
                    degraded_stripes=rec["degraded_stripes"],
                    nbytes=rec["nbytes"], digest=rec["digest"],
                    finish_s=finish, latency_s=max(finish - op.t_s, 0.0),
                    error=rec["error"],
                    fast_stripes=rec.get("fast_stripes", 0),
                )
            )
        # Replay every degraded stripe's per-chunk (ready, cost) pairs
        # through the single-lane pipeline model: saved_s is how much
        # earlier the chained decode finished than the barrier would have.
        pipeline_saved = 0.0
        chunk_rows = []
        for rec in records:
            op = rec["op"]
            for plan in rec.get("chunk_plans", ()):
                ready = [
                    max(
                        max((fin[f] for f in ids if f in fin), default=op.t_s),
                        op.t_s,
                    )
                    for ids in plan.flow_ids
                ]
                rep = read_pipeline_report(ready, plan.cost_s)
                pipeline_saved += rep.saved_s
                chunk_rows.append((op, plan))
        reads = [o for o in outcomes if o.kind == "read"]
        done = [o for o in reads if o.ok]
        degraded = [o for o in done if o.degraded]
        healthy = [o for o in done if not o.degraded]
        writes = [o for o in outcomes if o.kind == "write"]
        result = ServeResult(
            spec=self.spec,
            outcomes=outcomes,
            latency=latency_summary(o.latency_s for o in done),
            latency_healthy=latency_summary(o.latency_s for o in healthy),
            latency_degraded=latency_summary(o.latency_s for o in degraded),
            reads=len(done),
            degraded_reads=len(degraded),
            failed_reads=len(reads) - len(done),
            writes=sum(1 for o in writes if o.ok),
            failed_writes=sum(1 for o in writes if not o.ok),
            foreground_bytes=fg_bytes,
            bus_bytes_delta=coord.bus.total_bytes() - bus_before,
            makespan_s=report.makespan_s,
            repair=report,
            plan_cache_stats=coord.plan_cache.stats(),
            fast_path_reads=sum(1 for o in outcomes if o.fast_stripes > 0),
            pipeline_saved_s=pipeline_saved,
            chunks=self.chunks,
        )
        if obs is not None:
            for o in outcomes:
                obs.tracer.add(
                    f"workload.op:{o.op_id}", actor="client", cat="workload.sim",
                    t0=o.t_s, t1=max(o.finish_s, o.t_s),
                    op=o.op_id, kind=o.kind, ok=o.ok, degraded=o.degraded,
                )
            for op, plan in chunk_rows:
                # sim-domain twin of the ops-domain workload.chunk spans:
                # each chunk's decode occupancy on the gateway's lane.
                for i, dec_id in enumerate(plan.dec_ids):
                    t1 = fin.get(dec_id)
                    if t1 is None:
                        continue
                    obs.tracer.add(
                        f"workload.chunk:{op.op_id}:{plan.sid}:{i}",
                        actor="serving", cat="workload.sim",
                        t0=max(t1 - plan.cost_s[i], op.t_s), t1=t1,
                        op=op.op_id, stripe=plan.sid, chunk=i,
                    )
            m = obs.metrics
            m.counter("workload.ops").inc(len(outcomes))
            m.counter("workload.reads").inc(len(done))
            m.counter("workload.degraded_reads").inc(len(degraded))
            m.counter("workload.fast_path_reads").inc(result.fast_path_reads)
            m.counter("workload.pipeline_saved_s").inc(pipeline_saved)
            m.gauge("workload.chunks").set(self.chunks)
            m.counter("workload.unrecoverable").inc(result.failed_reads)
            m.counter("workload.writes").inc(result.writes)
            m.counter("workload.failed_writes").inc(result.failed_writes)
            m.counter("workload.read_bytes").inc(sum(o.nbytes for o in done))
            m.counter("workload.foreground_bytes").inc(fg_bytes)
            for o in done:
                m.histogram("workload.read_latency_s").observe(o.latency_s)
            for o in degraded:
                m.histogram("workload.degraded_read_latency_s").observe(o.latency_s)
        return result
