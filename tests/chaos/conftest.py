"""Chaos-harness fixtures: seed fan-out and a small, fault-ready system.

Iteration count and master seed come from the repo-root options
``--chaos-iterations`` / ``--chaos-seed``.  Every iteration's schedule seed
is derived deterministically from the master seed (via the suite-wide
:func:`tests.seeds.seed_fanout`) and appears in the test id; when an
iteration fails, the report gains a ``chaos replay`` section with the exact
command — node id plus the ``--chaos-seed`` / ``--chaos-iterations`` values
that produced it — to rerun just that schedule.
"""

import pytest

from repro.cluster.bandwidth import make_wld
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.system.coordinator import Coordinator
from tests.seeds import seed_fanout


def pytest_generate_tests(metafunc):
    if "chaos_seed" in metafunc.fixturenames:
        iterations = metafunc.config.getoption("--chaos-iterations")
        master = metafunc.config.getoption("--chaos-seed")
        seeds = seed_fanout(master, iterations)
        metafunc.parametrize("chaos_seed", seeds, ids=[f"seed{s}" for s in seeds])


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """On a chaos failure, name the exact reseed command in the report.

    The schedule seed alone is not replayable (it is *derived* from the
    master), so the section spells out the full invocation: this node id
    under the same ``--chaos-seed`` master and ``--chaos-iterations`` count
    regenerates the identical parametrization and nothing else.
    """
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    callspec = getattr(item, "callspec", None)
    if callspec is None or "chaos_seed" not in callspec.params:
        return
    master = item.config.getoption("--chaos-seed")
    iterations = item.config.getoption("--chaos-iterations")
    cmd = (
        f'PYTHONPATH=src python -m pytest "{item.nodeid}" '
        f"--chaos-seed={master} --chaos-iterations={iterations}"
    )
    report.sections.append(
        (
            "chaos replay",
            f"schedule seed {callspec.params['chaos_seed']} "
            f"(derived from master {master}); replay exactly with:\n  {cmd}",
        )
    )


@pytest.fixture
def chaos_system():
    """Factory: a coordinator sized so chaos kills stay recoverable.

    (k=4, m=3) over 16 data nodes with 8 spares and a short heartbeat
    timeout; one initial crash plus up to m-1 injected kills keeps every
    stripe within the code's erasure budget.
    """

    def make(seed, n_data=16, n_spare=8, k=4, m=3, block_bytes=1024):
        ds = make_wld(n_data + n_spare, "WLD-4x", seed=seed % (2**31))
        nodes = [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(n_data)]
        coord = Coordinator(
            Cluster(nodes),
            RSCode(k, m),
            block_bytes=block_bytes,
            block_size_mb=16.0,
            rng=seed % (2**31),
            heartbeat_timeout=5.0,
        )
        for j in range(n_spare):
            i = n_data + j
            coord.add_spare(Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])))
        return coord

    return make
