"""Chaos harness: adaptive re-planning under randomized churn traces.

Every iteration builds a fresh system, writes a file, crashes nodes, then
runs an *adaptive* repair under a seed-derived churn trace — OU noise plus
random mid-repair collapses on random survivor slabs (the same master seed
and ``--chaos-seed`` replay machinery the fault storms use, so a failing
trace is one command away from reproduction).  After each round:

* **bit-exactness** — every restored block equals the originally encoded
  bytes and the file round-trips;
* **journal conservation** — the range journal tiles [0, 1) exactly once
  per repaired stripe, whatever mixture of schemes the rounds chose;
* **churn + faults compose** — a second arm runs fault storms and churned
  static repairs back-to-back on one system, pinning that the adaptive
  facade leaves the fault machinery untouched.
"""

import numpy as np
import pytest

from repro.ec.stripe import block_name
from repro.faults import FaultSchedule
from repro.simnet import NetworkTrace
from repro.system.request import RepairRequest

pytestmark = pytest.mark.chaos


def _payload(nbytes, seed):
    return np.random.default_rng(seed).integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()


def _churn_trace(rng, alive_ids):
    """A seed-derived trace: OU background noise + 1-2 sudden collapses."""
    trace = NetworkTrace.ou(
        duration_s=float(rng.uniform(5.0, 30.0)),
        step_s=float(rng.uniform(0.2, 1.0)),
        rel_sigma=float(rng.uniform(0.1, 0.4)),
        seed=int(rng.integers(0, 2**31)),
    )
    for _ in range(int(rng.integers(1, 3))):
        n_hit = int(rng.integers(2, max(3, len(alive_ids) // 2)))
        hit = [int(x) for x in rng.choice(alive_ids, size=n_hit, replace=False)]
        trace = trace + NetworkTrace.degrade(
            hit,
            at_time=float(rng.uniform(0.05, 2.0)),
            factor=float(rng.uniform(2.0, 32.0)),
        )
    return trace


def test_adaptive_repair_under_random_churn(chaos_system, chaos_seed):
    """Seed-derived churn storms: adaptive repairs stay bit-exact."""
    rng = np.random.default_rng(chaos_seed)
    coord = chaos_system(chaos_seed)
    data = _payload(40_000, chaos_seed)
    coord.write("f", data)
    originals = {
        (s.stripe_id, b): coord.agents[n].read_block(block_name(s.stripe_id, b)).copy()
        for s in coord.layout
        for b, n in enumerate(s.placement)
    }

    n_down = int(rng.integers(1, 3))
    for v in rng.choice(16, size=n_down, replace=False):
        coord.crash_node(int(v))
    trace = _churn_trace(rng, coord.cluster.alive_ids())
    scheme = ("hmbr", "cr", "ir", "mlf")[int(rng.integers(0, 4))]

    res = coord.repair(RepairRequest(
        scheme=scheme, network=trace, adaptive=True,
        drift_threshold=float(rng.uniform(0.05, 0.5)),
    ))

    for stripe in coord.layout:
        for b, node in enumerate(stripe.placement):
            got = coord.agents[node].read_block(block_name(stripe.stripe_id, b))
            assert np.array_equal(got, originals[(stripe.stripe_id, b)]), (
                f"seed {chaos_seed}: stripe {stripe.stripe_id} block {b} differs"
            )
    assert coord.read("f") == data
    assert coord.scrub() == {s.stripe_id: True for s in coord.layout}

    # the range journal tiles [0, 1) exactly once per repaired stripe
    journal = res.report.engine.journal
    assert sorted(journal.keys()) == [f"s{sid:04d}" for sid in sorted(res.stripes_repaired)]
    for key in journal.keys():
        assert journal.is_complete(key), f"seed {chaos_seed}: {key} journal has gaps"
    assert res.plan_summary["wasted_mb"] >= 0.0


def test_churn_and_fault_storms_compose(chaos_system, chaos_seed):
    """Churned adaptive repair, then a fault-storm repair, on one system."""
    rng = np.random.default_rng(chaos_seed ^ 0x5EED)
    coord = chaos_system(chaos_seed)
    data = _payload(30_000, chaos_seed)
    coord.write("f", data)

    coord.crash_node(int(rng.integers(0, 16)))
    trace = _churn_trace(rng, coord.cluster.alive_ids())
    coord.repair(RepairRequest(scheme="hmbr", network=trace, adaptive=True))
    assert coord.read("f") == data

    # second wave: a fault storm on the repaired system (legacy machinery)
    targets = [i for i in coord.cluster.alive_ids()]
    coord.crash_node(targets[0])
    schedule = FaultSchedule.random(
        chaos_seed,
        targets[1:],
        n_events=int(rng.integers(2, 6)),
        horizon_s=float(rng.uniform(0.05, 0.4)),
        max_kills=coord.code.m - 1,
    )
    coord.repair(RepairRequest(scheme="hmbr", faults=schedule, max_retries=10,
                               base_backoff_s=0.25))
    assert coord.read("f") == data
    assert coord.scrub() == {s.stripe_id: True for s in coord.layout}
