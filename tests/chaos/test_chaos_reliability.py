"""Chaos tier for the durability simulator: long seeded soaks.

Each iteration runs a full reliability trial under a seed-derived spec and
asserts the conservation invariants that make a durability number
trustworthy:

* every lost stripe traces to ``> m`` concurrent block losses at the
  moment it was declared lost;
* spare accounting never goes negative or exceeds the pool, and a repair
  is never in flight for a healthy node (``check_invariants=True`` makes
  the simulator itself assert both after *every* event);
* component state transitions conserve: fail/repair strictly alternate per
  node, repairs never outnumber failures, and the event clock never runs
  backwards.

The headline soak — 100 simulated years over 10k stripes — is marked
``slow`` and runs in the dedicated CI tier; a shrunken smoke variant keeps
the invariants exercised in every tier-1 run.  Replay any failing
iteration with the ``--chaos-seed`` command printed in its report section.
"""

import dataclasses

import pytest

from repro.reliability import ReliabilitySimulator, ReliabilitySpec
from tests.seeds import DEFAULT_MASTER_SEED

pytestmark = pytest.mark.chaos


def _soak_spec(seed, **overrides):
    base = dict(
        k=8,
        m=2,
        scheme="hmbr",
        n_nodes=40,
        rack_size=8,
        n_spares=8,
        n_stripes=10_000,
        node_mttf_hours=12_000.0,
        burst_rate_per_year=6.0,
        burst_loss_fraction=0.25,
        lse_rate_per_node_year=20.0,
        scrub_interval_hours=336.0,
        horizon_years=100.0,
        n_trials=1,
        seed=seed,
        check_invariants=True,
    )
    base.update(overrides)
    return ReliabilitySpec(**base)


def _assert_conservation(spec, trial):
    # every recorded loss saw more concurrent failures than the code tolerates
    for time_h, stripe, concurrent in trial.loss_records:
        assert concurrent > spec.m, (
            f"stripe {stripe} lost at {time_h:.1f}h with only "
            f"{concurrent} concurrent losses (m={spec.m})"
        )
        assert 0 <= stripe < spec.n_stripes
        assert 0.0 <= time_h <= spec.horizon_hours
    # spare pool stayed within bounds (also asserted per-event in-run)
    assert 0 <= trial.max_spares_in_use <= spec.n_spares
    assert trial.max_concurrent_repairs <= spec.n_spares
    # transitions conserve: a repair only ever follows a failure
    assert trial.n_repairs <= trial.n_failures
    if trial.first_loss_year is not None:
        assert trial.stripes_lost > 0
        assert 0.0 < trial.first_loss_year <= spec.horizon_years


@pytest.mark.slow
def test_century_soak_conserves_invariants(chaos_seed):
    """100 simulated years × 10k stripes, invariant-checked every event."""
    spec = _soak_spec(chaos_seed)
    trial = ReliabilitySimulator(spec).run_trial(0)
    assert trial.n_failures > 0, "a century must see failures at this MTTF"
    assert trial.n_scrubs > 0 and trial.n_lse > 0
    _assert_conservation(spec, trial)


@pytest.mark.slow
def test_century_soak_replays_identically(chaos_seed):
    """The soak is a pure function of its seed (chaos-seed replayability)."""
    spec = _soak_spec(chaos_seed, n_stripes=2000, horizon_years=25.0)
    a = ReliabilitySimulator(spec).run_trial(0)
    b = ReliabilitySimulator(spec).run_trial(0)
    assert a == b


def test_smoke_soak_conserves_invariants():
    """Tier-1 shrink of the century soak: same invariants, seconds not minutes."""
    spec = _soak_spec(
        DEFAULT_MASTER_SEED,
        n_stripes=500,
        horizon_years=5.0,
        node_mttf_hours=2500.0,
        burst_rate_per_year=15.0,
        record_events=True,
    )
    trial = ReliabilitySimulator(spec).run_trial(0)
    assert trial.n_failures > 0
    _assert_conservation(spec, trial)
    # event stream sanity: monotone clock, strict fail/repair alternation
    down = set()
    last_h = 0.0
    for time_h, kind, node in trial.event_log:
        assert time_h >= last_h
        last_h = time_h
        if kind == "fail":
            assert node not in down
            down.add(node)
        elif kind == "repair-done":
            assert node in down
            down.remove(node)


def test_smoke_soak_losses_need_more_than_m_failures():
    """Push rates until stripes die, then check each loss is legitimate."""
    spec = _soak_spec(
        DEFAULT_MASTER_SEED,
        n_stripes=500,
        horizon_years=5.0,
        node_mttf_hours=1200.0,
        burst_rate_per_year=30.0,
        burst_loss_fraction=0.5,
    )
    trial = ReliabilitySimulator(spec).run_trial(0)
    assert trial.stripes_lost > 0, "rates tuned so losses must occur"
    _assert_conservation(spec, trial)
