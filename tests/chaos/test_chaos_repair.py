"""Chaos harness: randomized fault schedules against full stripe repairs.

Every iteration builds a fresh system, writes a file, crashes one node, then
runs a repair under a seed-derived :class:`FaultSchedule` mixing kills,
flaps, drops, delays, and slowdowns.  After the storm the harness asserts
the two properties that make the simulator trustworthy:

* **bit-exactness** — every block of every stripe (including blocks that
  were re-planned onto fresh spares mid-repair) equals the originally
  encoded bytes, and a full file read round-trips;
* **conservation** — the data bus metered exactly the bytes the execution
  journals moved (retries included), and the fluid simulator charged
  exactly the model-scale bytes of the committed plans.

The schedule seed is baked into the test id and printed on failure; replay
with ``pytest tests/chaos -k seed<N>`` (same ``--chaos-seed``).
"""

import numpy as np
import pytest

from repro.ec.stripe import block_name
from repro.faults import FaultSchedule

pytestmark = pytest.mark.chaos


def _payload(nbytes, seed):
    return np.random.default_rng(seed).integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()


def _snapshot_blocks(coord):
    """(stripe id, block index) -> original coded bytes, straight after write."""
    out = {}
    for stripe in coord.layout:
        for b, node in enumerate(stripe.placement):
            out[(stripe.stripe_id, b)] = coord.agents[node].read_block(
                block_name(stripe.stripe_id, b)
            ).copy()
    return out


def _assert_bit_exact(coord, originals):
    for stripe in coord.layout:
        for b, node in enumerate(stripe.placement):
            agent = coord.agents[node]
            assert agent.alive, f"stripe {stripe.stripe_id} block {b} on dead node {node}"
            got = agent.read_block(block_name(stripe.stripe_id, b))
            want = originals[(stripe.stripe_id, b)]
            assert np.array_equal(got, want), (
                f"stripe {stripe.stripe_id} block {b} differs from the original"
            )


def test_randomized_schedules(chaos_system, chaos_seed):
    """≥20 seed-derived storms (see --chaos-iterations): always bit-exact."""
    rng = np.random.default_rng(chaos_seed)
    coord = chaos_system(chaos_seed)
    data = _payload(40_000, chaos_seed)
    coord.write("f", data)
    originals = _snapshot_blocks(coord)

    first_down = int(rng.integers(0, 16))
    coord.crash_node(first_down)
    targets = [i for i in range(16) if coord.cluster[i].alive]
    schedule = FaultSchedule.random(
        chaos_seed,
        targets,
        n_events=int(rng.integers(3, 8)),
        horizon_s=float(rng.uniform(0.05, 0.6)),
        max_kills=coord.code.m - 1,  # 1 crash + m-1 kills stays recoverable
    )
    bus_before = coord.bus.total_bytes()
    report = coord.repair_with_faults(
        schedule, scheme="hmbr", max_retries=10, base_backoff_s=0.25
    )

    # the repair completed: every block restored, bit-for-bit
    _assert_bit_exact(coord, originals)
    assert coord.read("f") == data
    assert coord.scrub() == {s.stripe_id: True for s in coord.layout}

    # conservation: bus bytes == journal-metered bytes actually moved
    assert report.executed_transfer_bytes == coord.bus.total_bytes() - bus_before, (
        f"schedule seed {chaos_seed}: bus/journal byte mismatch"
    )
    # conservation: fluid-sim bytes == committed plans' model-scale bytes
    assert report.sim_bytes_mb == pytest.approx(report.bytes_on_wire_mb_model), (
        f"schedule seed {chaos_seed}: sim/model byte mismatch"
    )
    # every scheduled kill fired and was confirmed dead via heartbeats
    for ev in schedule.kills():
        assert ev in report.events_fired
        assert ev.target in report.dead_nodes


def test_helper_killed_mid_transfer_replans(chaos_system):
    """The acceptance scenario: a helper dies mid-transfer, repair re-plans."""
    coord = chaos_system(7)
    data = _payload(30_000, 7)
    coord.write("f", data)
    originals = _snapshot_blocks(coord)
    coord.crash_node(0)
    # a surviving member of a stripe that lost a block: a guaranteed helper
    stripe = next(s for s in coord.layout if 0 in s.placement)
    helper = next(n for n in stripe.placement if n != 0)
    schedule = FaultSchedule.from_tuples([(0.01, "kill", helper)])

    report = coord.repair_with_faults(schedule, scheme="hmbr")

    assert report.replans >= 1, "the kill must abort a plan and force a re-plan"
    assert helper in report.detections, "death must be confirmed via heartbeats"
    _assert_bit_exact(coord, originals)
    assert coord.read("f") == data


def test_transient_storm_resumes_without_redoing_work(chaos_system):
    """Drops and flaps retry the same plan; completed ops are not redone."""
    coord = chaos_system(11)
    data = _payload(20_000, 11)
    coord.write("f", data)
    originals = _snapshot_blocks(coord)
    coord.crash_node(3)
    stripe = next(s for s in coord.layout if 3 in s.placement)
    helper = next(n for n in stripe.placement if n != 3)
    schedule = FaultSchedule.from_tuples(
        [
            (0.002, "drop", helper),
            (0.004, "drop", helper),
            (0.006, "flap", helper, 0.4),
            (0.001, "slow", helper, 5.0),
        ]
    )
    bus_before = coord.bus.total_bytes()
    report = coord.repair_with_faults(schedule, scheme="hmbr", base_backoff_s=0.1)

    assert report.retries >= 2
    assert report.drops == 2
    assert report.replans == 0, "transient faults must not force a re-plan"
    assert report.wasted_transfer_bytes == 0, "resumed attempts redo no transfers"
    assert report.executed_transfer_bytes == coord.bus.total_bytes() - bus_before
    _assert_bit_exact(coord, originals)
    assert coord.read("f") == data


def test_inactive_faults_zero_behavior_change(chaos_system):
    """Empty schedule ⇒ op-for-op identical to the plain repair path."""
    for scheme in ("cr", "ir", "hmbr"):
        plain = chaos_system(5)
        faulty = chaos_system(5)
        data = _payload(50_000, 5)
        plain.write("f", data)
        faulty.write("f", data)
        for node in (0, 1):
            plain.crash_node(node)
            faulty.crash_node(node)

        ref = plain.repair(scheme=scheme)
        rep = faulty.repair_with_faults(FaultSchedule.empty(), scheme=scheme)

        assert plain.bus.total_bytes() == faulty.bus.total_bytes()
        assert plain.bus.sent_bytes == faulty.bus.sent_bytes
        assert plain.bus.received_bytes == faulty.bus.received_bytes
        assert plain.bus.transfer_count == faulty.bus.transfer_count
        assert ref.bytes_on_wire_mb_model == rep.bytes_on_wire_mb_model
        assert ref.simulated_transfer_s == pytest.approx(rep.simulated_transfer_s)
        placements = lambda c: {s.stripe_id: list(s.placement) for s in c.layout}
        assert placements(plain) == placements(faulty)
        assert plain.read("f") == faulty.read("f") == data
