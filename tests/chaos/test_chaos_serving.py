"""Chaos: the serving plane under randomized fault storms (ISSUE 6).

Invariants, per randomized schedule seed:

* **no wrong bytes, ever** — every completed read's digest equals the
  sha256 of the independently-tracked expected object state (initial
  payload + every applied write patch, in op order);
* **no silent drops** — every generated op produces exactly one outcome,
  and every failed read names :class:`~repro.faults.errors.
  StripeUnrecoverable` (the only legal way for a read to fail);
* **no hangs** — every latency/finish value is finite, and the merged
  run's makespan is bounded.

Kills are drawn without regard for the erasure budget, so some rounds
push stripes beyond ``m`` losses on purpose: those reads must *fail
loudly*, not fabricate data.

Each round serves through a freshly-built plane with a random degraded-
read chunk count (the ISSUE 7 pipelined path), a random GF kernel backend
(the ISSUE 9 pluggable tier — all backends must produce identical bytes),
and the fast path armed, so the byte invariants cover every chunk
geometry x kernel tier under storm + kills.
"""

import hashlib
import math

import numpy as np

from repro.gf.backend import available_backends
from repro.system.request import RepairRequest
from repro.workload import ServingPlane, WorkloadGenerator, WorkloadSpec, object_payload

K, M, BLOCK_BYTES = 4, 3, 1024
ROUNDS = 3


def _apply_writes_and_check(res, gen, expected):
    """Replay outcomes in op order against the tracked object state."""
    for o in res.outcomes:
        if o.kind == "read":
            if o.ok:
                want = hashlib.sha256(bytes(expected[o.obj])).hexdigest()
                assert o.digest == want, f"read op {o.op_id} returned wrong bytes"
                assert o.nbytes == len(expected[o.obj])
            else:
                assert o.error.startswith("StripeUnrecoverable"), o.error
        else:
            if o.ok:
                op = next(p for p in gen.ops() if p.op_id == o.op_id)
                patch = gen.patch_bytes(op)
                expected[o.obj][op.offset : op.offset + len(patch)] = patch
        assert math.isfinite(o.latency_s) and o.latency_s >= 0.0
        assert math.isfinite(o.finish_s) and o.finish_s >= o.t_s


def test_serving_survives_fault_storm(chaos_system, chaos_seed):
    rng = np.random.default_rng(chaos_seed)
    coord = chaos_system(chaos_seed, k=K, m=M, block_bytes=BLOCK_BYTES)
    spec = WorkloadSpec(
        n_objects=6,
        object_bytes=2 * K * BLOCK_BYTES,
        duration_s=4.0,
        rate_ops_s=8.0,
        read_fraction=0.85,
        write_bytes=128,
        seed=int(chaos_seed) % (2**31),
    )
    plane = ServingPlane(coord, spec)
    plane.provision()
    gen = WorkloadGenerator(spec)
    n_ops = len(gen.ops())
    expected = {
        spec.object_name(i): bytearray(object_payload(spec, i))
        for i in range(spec.n_objects)
    }

    for _ in range(ROUNDS):
        # random kills, deliberately allowed to exceed the erasure budget
        alive = coord.data_nodes()
        n_kill = int(rng.integers(0, 3))
        for v in rng.choice(alive, size=min(n_kill, max(len(alive) - K, 0)), replace=False):
            coord.crash_node(int(v))
        # run a background repair alongside the traffic when spares allow it
        repair = ()
        if len(coord._free_spares()) >= len(coord.cluster.dead_ids()):
            repair = (RepairRequest(scheme="hmbr", batched=True, priority="background"),)
        # a random chunk geometry and kernel backend per round: the
        # pipelined degraded path must produce identical bytes for every
        # chunk count and every GF kernel tier
        chunks = int(rng.integers(1, 9))
        backend = str(rng.choice(available_backends(coord.code.field.w)))
        plane = ServingPlane(coord, spec, chunks=chunks, backend=backend)
        res = plane.run(repair=repair)
        assert res.chunks == chunks
        assert len(res.outcomes) == n_ops, "an op was silently dropped"
        assert math.isfinite(res.makespan_s) and res.makespan_s >= 0.0
        _apply_writes_and_check(res, gen, expected)
        assert res.reads + res.failed_reads + res.writes + res.failed_writes == n_ops
        # conservation: the plane's own byte count never exceeds the bus delta
        assert 0 <= res.foreground_bytes <= res.bus_bytes_delta
