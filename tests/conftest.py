"""Shared fixtures: the paper's Figure 2 scenario and generic repair setups.

Seed fan-out for randomized suites lives in :mod:`tests.seeds` (one master
seed, deterministic derivation); it is re-exported here so every tier —
including ``tests/chaos`` — draws from the same helper instead of repeating
the ``SeedSequence`` recipe.
"""

import numpy as np
import pytest

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.ec.stripe import Stripe
from repro.repair.context import RepairContext
from tests.seeds import DEFAULT_MASTER_SEED, seed_fanout  # noqa: F401  (re-export)


@pytest.fixture
def fig2():
    """The paper's Figure 2 scenario.

    (3, 2) RS code; D1,D2,D3,P1,P2 on N1..N5; N1 and N2 fail so D1 and P1
    are lost; new nodes N1' (id 5) and N2' (id 6) with ample bandwidth.
    Node bandwidths chosen so the paper's worked numbers come out: the new
    node downlink is 1000 MB/s (t_CR stage 1 = 3*64/1000 = 0.192 s) and the
    slowest survivor uplink is 640 MB/s (t_IR = 2*64/640 = 0.20 s).
    """
    nodes = [
        Node(0, 800, 1000),  # N1 (dies)
        Node(1, 800, 1000),  # N2 (dies)
        Node(2, 800, 1000),  # N3 -> D2
        Node(3, 640, 1000),  # N4 -> D3 (slowest uplink)
        Node(4, 900, 1000),  # N5 -> P1
        Node(5, 1000, 1000),  # N1'
        Node(6, 1000, 1000),  # N2'
    ]
    cluster = Cluster(nodes)
    code = RSCode(3, 2)
    # D1@N1, D2@N3, D3@N4, P1@N5, P2@N2 -> failing N1,N2 loses D1 (block 0)
    # and P2 (block 4), matching the paper exactly.
    stripe = Stripe(0, 3, 2, [0, 2, 3, 4, 1])
    cluster.fail_nodes([0, 1])
    ctx = RepairContext(
        cluster=cluster,
        code=code,
        stripe=stripe,
        failed_blocks=[0, 4],
        new_nodes=[5, 6],
        block_size_mb=64.0,
    )
    return ctx


@pytest.fixture
def stripe_data():
    """Callable producing (full stripe array, loaded workspace) for a ctx."""
    from repro.repair.executor import Workspace

    def make(ctx, length=512, seed=0):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, size=(ctx.code.k, length), dtype=np.uint8)
        full = ctx.code.encode_stripe(data)
        ws = Workspace()
        ws.load_stripe(ctx.stripe, full)
        for b in ctx.failed_blocks:
            ws.drop_node(ctx.stripe.placement[b])
        return full, ws

    return make


def make_repair_ctx(
    k=4,
    m=2,
    f=2,
    uplinks=None,
    downlinks=None,
    block_size_mb=16.0,
    rack_size=None,
    cross=None,
    survivor_policy="first",
):
    """Generic helper: identity placement, last f stripe nodes failed."""
    n = k + m + f
    ups = uplinks if uplinks is not None else [100.0] * n
    downs = downlinks if downlinks is not None else ups
    nodes = []
    for i in range(n):
        rack = i // rack_size if rack_size else 0
        nodes.append(
            Node(
                i,
                ups[i],
                downs[i],
                rack=rack,
                cross_uplink=cross,
                cross_downlink=cross,
            )
        )
    cluster = Cluster(nodes)
    code = RSCode(k, m)
    stripe = Stripe(0, k, m, list(range(k + m)))
    failed = list(range(k + m - f, k + m))
    cluster.fail_nodes(failed)
    return RepairContext(
        cluster=cluster,
        code=code,
        stripe=stripe,
        failed_blocks=failed,
        new_nodes=list(range(k + m, n)),
        block_size_mb=block_size_mb,
        survivor_policy=survivor_policy,
    )
