"""Single source of truth for deterministic seed fan-out in the test suite.

Every randomized tier — the chaos harness (``tests/chaos``), the
fluid-vs-static topology sweep, and any future property suite — derives its
per-case seeds from one master seed through :func:`seed_fanout`, so a seed
printed in a failing test id always reproduces from the same master
(``--chaos-seed`` for chaos runs, :data:`DEFAULT_MASTER_SEED` otherwise).
"""

import numpy as np

#: the repo-wide default master seed (also the default of ``--chaos-seed``).
DEFAULT_MASTER_SEED = 20230717


def seed_fanout(master: int, n: int) -> list[int]:
    """``n`` independent 32-bit seeds derived deterministically from ``master``."""
    return [int(s) for s in np.random.SeedSequence(master).generate_state(n)]
