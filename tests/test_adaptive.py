"""Property suite for adaptive re-planning (ISSUE 10 tentpole).

Pins the three contracts the adaptive layer must keep:

* **quiet no-op** — on a quiet network the adaptive run is bit-exact with
  the static run (same stored bytes, same data-plane bytes) and its
  modeled makespan matches within 1e-9;
* **conservation** — re-planned repairs still recover every block, the
  range journal tiles [0, 1) exactly once per stripe, and already-moved
  (journaled) ranges are never re-sent;
* **adaptivity pays** — under a drift-heavy trace the adaptive run beats
  the static plan simulated on the same trace.
"""

import numpy as np
import pytest

from repro.adaptive import (
    ADAPTIVE_SCHEMES,
    AdaptiveConfig,
    AdaptiveEngine,
    AdaptiveEntry,
    OverlapError,
    RangeJournal,
)
from repro.cluster.bandwidth import make_wld
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.ec.rs import RSCode
from repro.simnet import NetworkTrace
from repro.system.coordinator import Coordinator
from repro.system.request import RepairRequest


def make_system(n_data=18, n_spare=4, k=4, m=2, seed=0, block_size_mb=16.0):
    ds = make_wld(n_data + n_spare, "WLD-4x", seed=seed)
    nodes = [Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(n_data)]
    coord = Coordinator(Cluster(nodes), RSCode(k, m), block_bytes=2048,
                        block_size_mb=block_size_mb, rng=seed)
    for j in range(n_spare):
        i = n_data + j
        coord.add_spare(Node(i, float(ds.uplinks[i]), float(ds.downlinks[i])))
    return coord


def payload(nbytes, seed=0):
    return np.random.default_rng(seed).integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()


def collapse_trace(first=2, last=12, at=0.6, factor=20.0):
    """Mid-repair bandwidth collapse on a slab of survivors."""
    return NetworkTrace.degrade(list(range(first, last)), at_time=at, factor=factor)


# ------------------------------------------------------------------ #
# range journal
# ------------------------------------------------------------------ #
def test_journal_commit_and_completion():
    j = RangeJournal()
    j.commit("s0", 0.0, 0.4, round_index=0, scheme="hmbr", piece_id="a")
    assert not j.is_complete("s0")
    assert j.covered("s0") == pytest.approx(0.4)
    j.commit("s0", 0.4, 1.0, round_index=1, scheme="cr", piece_id="b")
    assert j.is_complete("s0")
    assert j.covered("s0") == pytest.approx(1.0)
    assert [r.piece_id for r in j.ranges("s0")] == ["a", "b"]


def test_journal_rejects_overlap_and_bad_ranges():
    j = RangeJournal()
    j.commit("s0", 0.2, 0.6, round_index=0, scheme="ir", piece_id="a")
    with pytest.raises(OverlapError):
        j.commit("s0", 0.5, 0.9, round_index=1, scheme="ir", piece_id="b")
    with pytest.raises(OverlapError):
        j.commit("s0", 0.0, 0.21, round_index=1, scheme="ir", piece_id="c")
    with pytest.raises(ValueError):
        j.commit("s0", -0.1, 0.1, round_index=0, scheme="ir", piece_id="d")
    with pytest.raises(ValueError):
        j.commit("s0", 0.9, 0.9, round_index=0, scheme="ir", piece_id="e")
    # touching endpoints are fine
    j.commit("s0", 0.6, 1.0, round_index=1, scheme="cr", piece_id="f")
    j.commit("s0", 0.0, 0.2, round_index=2, scheme="cr", piece_id="g")
    assert j.is_complete("s0")


# ------------------------------------------------------------------ #
# quiet network: adaptivity is a bit-exact no-op
# ------------------------------------------------------------------ #
@pytest.mark.parametrize("scheme", ADAPTIVE_SCHEMES)
def test_quiet_network_adaptive_is_noop(scheme):
    data = payload(60_000, seed=3)

    c1 = make_system()
    c1.write("f", data)
    c1.crash_node(0)
    c1.crash_node(1)
    static = c1.repair(RepairRequest(scheme=scheme))

    c2 = make_system()
    c2.write("f", data)
    c2.crash_node(0)
    c2.crash_node(1)
    adaptive = c2.repair(RepairRequest(scheme=scheme, adaptive=True))

    assert c1.read("f") == c2.read("f") == data
    # every repaired block is bit-identical on both systems
    from repro.ec.stripe import block_name

    for sid, stripe in enumerate(c1.layout):
        other = next(s for s in c2.layout if s.stripe_id == stripe.stripe_id)
        for b, (n1, n2) in enumerate(zip(stripe.placement, other.placement)):
            name = block_name(stripe.stripe_id, b)
            s1, s2 = c1.agents[n1].store, c2.agents[n2].store
            assert s1.has(name) == s2.has(name), (sid, b)
            if s1.has(name):
                assert np.array_equal(s1.get(name), s2.get(name)), (sid, b)
    assert adaptive.makespan_s == pytest.approx(static.makespan_s, abs=1e-9)
    assert adaptive.bytes_moved == static.bytes_moved
    assert adaptive.plan_summary["replans"] == 0
    assert adaptive.plan_summary["rounds"] == 1
    assert adaptive.plan_summary["wasted_mb"] == 0.0


# ------------------------------------------------------------------ #
# drift-heavy trace: adaptivity pays and conserves bytes
# ------------------------------------------------------------------ #
def test_adaptive_beats_static_under_collapse():
    data = payload(200_000, seed=4)
    trace = collapse_trace()

    c1 = make_system(block_size_mb=64.0)
    c1.write("f", data)
    c1.crash_node(0)
    static = c1.repair(RepairRequest(scheme="hmbr", network=trace))

    c2 = make_system(block_size_mb=64.0)
    c2.write("f", data)
    c2.crash_node(0)
    adaptive = c2.repair(RepairRequest(scheme="hmbr", network=trace, adaptive=True))

    assert c1.read("f") == c2.read("f") == data
    assert adaptive.plan_summary["replans"] >= 1
    assert adaptive.makespan_s < static.makespan_s


def test_adaptive_journal_tiles_unit_interval():
    data = payload(200_000, seed=5)
    c = make_system(block_size_mb=64.0)
    c.write("f", data)
    c.crash_node(0)
    res = c.repair(RepairRequest(scheme="hmbr", network=collapse_trace(), adaptive=True))
    assert c.read("f") == data

    engine_report = res.report.engine
    journal = engine_report.journal
    assert journal.keys()
    for key in journal.keys():
        assert journal.is_complete(key)
        total = sum(r.width for r in journal.ranges(key))
        assert total == pytest.approx(1.0, abs=1e-9)
    # pieces carry the same partition the journal recorded
    for key in journal.keys():
        widths = sorted((p.lo, p.hi) for p in engine_report.pieces[key])
        prev_hi = 0.0
        for lo, hi in widths:
            assert lo == pytest.approx(prev_hi, abs=1e-9)
            prev_hi = hi
        assert prev_hi == pytest.approx(1.0, abs=1e-9)
    assert engine_report.wasted_mb >= 0.0


def test_adaptive_execution_journals_complete():
    """Every stripe's op journal finishes at len(ops): resumable, no gaps."""
    from repro.adaptive import AdaptiveRuntime

    data = payload(120_000, seed=6)
    coord = make_system(block_size_mb=64.0)
    coord.write("f", data)
    coord.crash_node(0)
    runtime = AdaptiveRuntime(coord, network=collapse_trace())
    report = runtime.repair(scheme="hmbr")
    assert coord.read("f") == data
    assert report.blocks_recovered > 0
    assert runtime.journals
    for sid, journal in runtime.journals.items():
        assert journal.completed > 0


def test_resumed_ops_never_resend_journaled_transfers():
    """The executor machinery adaptive reuses counts each transfer once."""
    from repro.repair.executor import ExecutionJournal
    from repro.system.agent import run_plan_ops

    def build():
        coord = make_system()
        coord.write("f", payload(60_000, seed=7))
        coord.crash_node(0)
        dead = coord.cluster.dead_ids()
        affected = coord.layout.stripes_with_failures(dead)
        dead_with_blocks = coord._dead_with_blocks(affected)
        replacement_of = coord._assign_spares(dead_with_blocks, coord._free_spares())
        work = coord._build_work(affected, replacement_of)
        plans = coord._plan_work(work, "hmbr", None)
        return coord, plans[0][1].ops

    # uninterrupted reference
    coord_a, ops_a = build()
    bus_a = coord_a.bus
    base = bus_a.transfer_count
    run_plan_ops(ops_a, coord_a.agents, bus_a, journal=ExecutionJournal())
    want = bus_a.transfer_count - base

    # interrupted after half the ops, then resumed with the same journal
    coord_b, ops_b = build()
    bus_b = coord_b.bus
    base = bus_b.transfer_count
    journal = ExecutionJournal()
    run_plan_ops(ops_b[: len(ops_b) // 2], coord_b.agents, bus_b, journal=journal)
    assert journal.completed == len(ops_b) // 2
    run_plan_ops(ops_b, coord_b.agents, bus_b, journal=journal)
    assert journal.completed == len(ops_b)
    assert bus_b.transfer_count - base == want


# ------------------------------------------------------------------ #
# request validation + engine API
# ------------------------------------------------------------------ #
def test_adaptive_request_validation():
    with pytest.raises(ValueError):
        RepairRequest(adaptive=True, scheme="rack-hmbr")
    with pytest.raises(ValueError):
        RepairRequest(adaptive=True, batched=True)
    with pytest.raises(ValueError):
        RepairRequest(adaptive=True, workers=2)
    with pytest.raises(ValueError):
        RepairRequest(adaptive=True, drift_threshold=0.0)
    with pytest.raises(ValueError):
        RepairRequest(adaptive=True, max_replans=-1)
    with pytest.raises(ValueError):
        RepairRequest(adaptive=True, priority="high")


def test_adaptive_config_validation():
    with pytest.raises(ValueError):
        AdaptiveConfig(drift_threshold=0.0)
    with pytest.raises(ValueError):
        AdaptiveConfig(max_replans=-1)
    with pytest.raises(ValueError):
        AdaptiveConfig(candidates=("nope",))


def test_engine_rejects_unknown_scheme():
    from repro.experiments.common import build_scenario, plan_for

    sc = build_scenario(8, 4, 2, wld="WLD-2x", seed=1)
    plan = plan_for(sc.ctx, "cr")
    engine = AdaptiveEngine(sc.ctx.cluster)
    with pytest.raises(ValueError):
        engine.run([AdaptiveEntry(key="s0", ctx=sc.ctx, scheme="rack-hmbr", plan=plan)])


def test_mlf_scheme_routes_through_facade():
    data = payload(60_000, seed=8)
    coord = make_system()
    coord.write("f", data)
    coord.crash_node(0)
    res = coord.repair(RepairRequest(scheme="mlf"))
    assert res.scheme == "mlf"
    assert coord.read("f") == data
