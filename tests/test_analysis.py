"""Table I failure-ratio and Table II breakdown analysis tests."""

import numpy as np
import pytest

from repro.analysis.breakdown import CostModel, breakdown_for_plan
from repro.analysis.failure_sim import (
    failure_ratio_exact,
    failure_ratio_montecarlo,
    simulate_failure_ratio_placement,
    table1_grid,
)
from repro.experiments.table1 import PAPER_TABLE1


# ------------------------------------------------------------------ #
# Table I estimators
# ------------------------------------------------------------------ #
def test_exact_matches_paper_table1():
    """The closed form lands within ~1.5 points of every paper cell."""
    for (k, m), by_n in PAPER_TABLE1.items():
        for n, paper_pct in by_n.items():
            ours = 100.0 * failure_ratio_exact(k, m, n)
            assert ours == pytest.approx(paper_pct, abs=1.5), (k, m, n)


def test_estimators_agree():
    k, m, n = 12, 4, 1000
    exact = failure_ratio_exact(k, m, n)
    mc = failure_ratio_montecarlo(k, m, n, n_stripes=400_000, rng=0)
    placed = simulate_failure_ratio_placement(k, m, n, n_stripes=30_000, rng=0)
    assert mc == pytest.approx(exact, rel=0.05)
    assert placed == pytest.approx(exact, rel=0.15)


def test_ratio_increases_with_stripe_width():
    """The paper's core observation: wider stripes -> more multi-block failures."""
    widths = [(6, 3), (12, 4), (32, 8), (64, 8), (64, 24)]
    ratios = [failure_ratio_exact(k, m, 2500) for k, m in widths]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))


def test_ratio_increases_with_cluster_size():
    ratios = [failure_ratio_exact(64, 8, n) for n in (500, 1000, 2500, 5000)]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))


def test_ratio_increases_with_loss_fraction():
    low = failure_ratio_exact(32, 8, 1000, loss_fraction=0.005)
    high = failure_ratio_exact(32, 8, 1000, loss_fraction=0.02)
    assert low < high


def test_degenerate_all_nodes_fail():
    assert failure_ratio_exact(6, 3, 100, loss_fraction=1.0) == pytest.approx(1.0)


def test_width_exceeding_cluster_rejected():
    with pytest.raises(ValueError):
        failure_ratio_exact(64, 8, 50)


def test_table1_grid_shapes_and_methods():
    grid = table1_grid(codes=[(6, 3)], node_counts=[500, 1000], method="exact")
    assert set(grid) == {(6, 3)}
    assert set(grid[(6, 3)]) == {500, 1000}
    mc = table1_grid(codes=[(6, 3)], node_counts=[500], method="montecarlo", n_stripes=50_000)
    assert 0 < mc[(6, 3)][500] < 0.2
    with pytest.raises(ValueError):
        table1_grid(method="nonsense")


# ------------------------------------------------------------------ #
# Table II breakdown
# ------------------------------------------------------------------ #
def test_breakdown_transfer_dominates():
    from repro.experiments.common import build_scenario, plan_for
    from repro.repair.executor import PlanExecutor, Workspace

    sc = build_scenario(16, 4, 4, wld="WLD-8x", seed=1, block_size_mb=64.0)
    ctx = sc.ctx
    rng = np.random.default_rng(0)
    test_bytes = 1 << 14
    data = rng.integers(0, 256, size=(ctx.code.k, test_bytes), dtype=np.uint8)
    full = ctx.code.encode_stripe(data)
    plan = plan_for(ctx, "hmbr")
    ws = Workspace()
    ws.load_stripe(ctx.stripe, full)
    for n in sc.dead_nodes:
        ws.drop_node(n)
    report = PlanExecutor(ws).execute(plan)
    bd = breakdown_for_plan(ctx, plan, report, test_bytes)
    assert bd.transfer_s > 0 and bd.other_s > 0
    assert 0.5 < bd.transfer_fraction < 1.0
    assert bd.total_s == pytest.approx(bd.transfer_s + bd.other_s)
    assert bd.scheme == "HMBR" and bd.f == 4


def test_cost_model_scaling():
    """Doubling GF throughput must not increase the non-transfer time."""
    from repro.experiments.exp6 import run

    slow = run(cases=[(8, 4)], test_block_bytes=1 << 12, cost=CostModel(gf_throughput_gbps=5))
    fast = run(cases=[(8, 4)], test_block_bytes=1 << 12, cost=CostModel(gf_throughput_gbps=10))
    for s, f in zip(slow, fast):
        assert f["T_o_s"] <= s["T_o_s"] + 1e-9
        assert f["T_t_s"] == pytest.approx(s["T_t_s"])
