"""MTTDL reliability-model tests."""

import numpy as np
import pytest

from repro.analysis.reliability import (
    mttdl_closed_form_m1,
    mttdl_markov,
    scheme_mttdl_comparison,
)


def test_matches_closed_form_for_m1():
    k, mttf, rep = 10, 10_000.0, 24.0
    markov = mttdl_markov(k, 1, mttf, {1: rep})
    closed = mttdl_closed_form_m1(k, mttf, rep)
    assert markov.mttdl_hours == pytest.approx(closed, rel=1e-9)


def test_faster_repair_improves_mttdl():
    slow = mttdl_markov(6, 3, 10_000.0, {1: 10.0, 2: 10.0, 3: 10.0})
    fast = mttdl_markov(6, 3, 10_000.0, {1: 1.0, 2: 1.0, 3: 1.0})
    assert fast.mttdl_hours > slow.mttdl_hours * 10


def test_more_parity_improves_mttdl():
    rep = {f: 2.0 for f in range(1, 5)}
    m2 = mttdl_markov(10, 2, 10_000.0, {f: 2.0 for f in (1, 2)})
    m4 = mttdl_markov(10, 4, 10_000.0, rep)
    assert m4.mttdl_hours > m2.mttdl_hours * 100


def test_wider_stripe_same_m_hurts_mttdl():
    rep = {1: 2.0, 2: 2.0}
    narrow = mttdl_markov(6, 2, 10_000.0, rep)
    wide = mttdl_markov(64, 2, 10_000.0, rep)
    assert wide.mttdl_hours < narrow.mttdl_hours


def test_callable_repair_times():
    r = mttdl_markov(6, 2, 10_000.0, lambda f: 0.5 * f)
    assert r.repair_rates_per_hour[2] == pytest.approx(1.0)


def test_invalid_repair_time():
    with pytest.raises(ValueError):
        mttdl_markov(6, 2, 10_000.0, {1: 1.0, 2: 0.0})


def test_nines_are_monotone_in_mttdl():
    a = mttdl_markov(6, 3, 10_000.0, {f: 5.0 for f in (1, 2, 3)})
    b = mttdl_markov(6, 3, 10_000.0, {f: 0.5 for f in (1, 2, 3)})
    assert b.nines() > a.nines()
    assert a.mttdl_years == pytest.approx(a.mttdl_hours / (24 * 365.25))


def test_scheme_comparison_uses_measured_times():
    times = {
        "cr": {1: 20.0, 2: 22.0},
        "hmbr": {1: 8.0, 2: 9.0},
    }
    out = scheme_mttdl_comparison(16, 2, times, node_mttf_hours=20_000.0)
    assert out["hmbr"].mttdl_hours > out["cr"].mttdl_hours
    with pytest.raises(ValueError):
        scheme_mttdl_comparison(16, 2, {"cr": {1: 20.0}})


def test_hmbr_durability_gain_end_to_end():
    """Close the paper's loop: faster multi-block repair -> more durability.

    Uses the experiment harness repair times for (16, 4) under WLD-8x."""
    from repro.experiments.common import build_scenario, transfer_time

    times = {"cr": {}, "ir": {}, "hmbr": {}}
    for f in range(1, 5):
        sc = build_scenario(16, 4, f, wld="WLD-8x", seed=2023)
        for scheme in times:
            times[scheme][f] = transfer_time(sc.ctx, scheme)
    out = scheme_mttdl_comparison(16, 4, times, node_mttf_hours=5_000.0)
    assert out["hmbr"].mttdl_hours >= out["cr"].mttdl_hours
    assert out["hmbr"].mttdl_hours >= out["ir"].mttdl_hours
