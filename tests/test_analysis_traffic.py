"""Traffic-profile and load-balance analysis tests."""

import pytest

from repro.analysis.traffic import TrafficProfile, compare_load_balance, traffic_profile
from repro.repair.centralized import plan_centralized
from repro.repair.hybrid import plan_hybrid
from repro.repair.independent import plan_independent
from tests.conftest import make_repair_ctx


def test_cr_concentrates_receive_on_center():
    ctx = make_repair_ctx(k=8, m=4, f=2, block_size_mb=64.0)
    plan = plan_centralized(ctx)
    prof = traffic_profile(plan)
    center = plan.meta["center"]
    # center receives all k fetches
    assert prof.received_mb[center] == pytest.approx(8 * 64.0)
    # only two nodes receive anything (center + 1 other new node), and the
    # center takes 8/9 of it
    assert prof.max_over_mean("received") > 1.5


def test_ir_balances_send_load():
    """Every survivor uploads exactly f blocks in IR (paper §IV-C)."""
    ctx = make_repair_ctx(k=8, m=4, f=3, block_size_mb=64.0)
    prof = traffic_profile(plan_independent(ctx))
    survivor_sends = [prof.sent_mb[n] for n in ctx.survivor_nodes()[:-1]]
    assert all(s == pytest.approx(3 * 64.0) for s in survivor_sends)
    assert prof.gini("sent") < 0.2


def test_ir_fairer_than_cr_on_receive():
    ctx = make_repair_ctx(k=16, m=4, f=4, block_size_mb=64.0)
    cr = traffic_profile(plan_centralized(ctx))
    ir = traffic_profile(plan_independent(ctx))
    assert ir.gini("received") < cr.gini("received")
    assert ir.max_over_mean("received") < cr.max_over_mean("received")


def test_total_traffic_matches_plan_accounting():
    ctx = make_repair_ctx(k=6, m=3, f=2)
    for planner in (plan_centralized, plan_independent, plan_hybrid):
        plan = planner(ctx)
        prof = traffic_profile(plan)
        assert prof.total_mb == pytest.approx(plan.total_transfer_mb())
        assert sum(prof.sent_mb.values()) == pytest.approx(prof.total_mb)
        assert sum(prof.received_mb.values()) == pytest.approx(prof.total_mb)


def test_gini_extremes():
    flat = TrafficProfile("x", {i: 10.0 for i in range(8)}, {}, 80.0)
    assert flat.gini("sent") == pytest.approx(0.0, abs=1e-9)
    hog = TrafficProfile("y", {0: 100.0, **{i: 1e-12 for i in range(1, 8)}}, {}, 100.0)
    assert hog.gini("sent") > 0.8
    empty = TrafficProfile("z", {}, {}, 0.0)
    assert empty.gini("sent") == 0.0
    assert empty.max_over_mean("sent") == 0.0


def test_compare_load_balance_rows():
    ctx = make_repair_ctx(k=8, m=4, f=2)
    rows = compare_load_balance(
        [plan_centralized(ctx), plan_independent(ctx), plan_hybrid(ctx)]
    )
    schemes = [r["scheme"] for r in rows]
    assert schemes == ["CR", "IR", "HMBR"]
    by = {r["scheme"]: r for r in rows}
    assert by["IR"]["recv_gini"] < by["CR"]["recv_gini"]
    # HMBR sits between the two extremes on receive fairness
    assert by["IR"]["recv_gini"] <= by["HMBR"]["recv_gini"] + 0.05
