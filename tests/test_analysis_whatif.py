"""Capacity-planning (what-if) tests."""

import pytest

from repro.analysis.whatif import max_width_under_slo, repair_time_at_width, slo_table


def test_repair_time_trend_in_k():
    """The multi-seed mean grows with width (individual draws may jitter)."""
    times = [repair_time_at_width(k, 4, 2, "cr") for k in (4, 16, 64)]
    assert times[0] < times[1] < times[2]


def test_scan_finds_largest_feasible_width():
    slo = repair_time_at_width(16, 4, 2, "cr") * 1.001
    plan = max_width_under_slo(slo, 4, 2, "cr", k_min=4, k_max=32, k_step=4)
    assert plan.feasible
    assert plan.max_k >= 16
    assert plan.repair_s_at_max <= slo
    assert plan.redundancy == pytest.approx((plan.max_k + 4) / plan.max_k)


def test_infeasible_slo():
    plan = max_width_under_slo(1e-6, 4, 2, "cr", k_max=8)
    assert not plan.feasible
    assert plan.max_k == 0


def test_unbounded_slo_hits_k_max():
    plan = max_width_under_slo(1e9, 4, 2, "ir", k_max=24, k_step=5)
    assert plan.max_k == 24  # k_max always included even off-grid


def test_validation():
    with pytest.raises(ValueError):
        max_width_under_slo(-1.0, 4, 2, "cr")
    with pytest.raises(ValueError):
        max_width_under_slo(1.0, 2, 3, "cr")
    with pytest.raises(ValueError):
        max_width_under_slo(1.0, 4, 2, "cr", k_step=0)


def test_hmbr_supports_widest_stripes():
    """The paper's pitch, inverted: faster repair buys wider (cheaper)
    stripes under the same repair-time budget."""
    slo = repair_time_at_width(24, 4, 4, "hmbr", seeds=(2023,)) * 1.01
    rows = slo_table(slo, 4, 4, k_min=4, k_max=48, k_step=4, seeds=(2023,))
    by = {r["scheme"]: r for r in rows}
    assert by["hmbr"]["max_k"] >= by["cr"]["max_k"]
    assert by["hmbr"]["max_k"] >= by["ir"]["max_k"]
    assert by["hmbr"]["redundancy_x"] <= by["cr"]["redundancy_x"]
