"""Unit and differential tests for `repro.repair.batch`.

Three layers of guarantees:

* `PlanCache` bookkeeping — hit/miss accounting, LRU eviction at capacity,
  and surviving-helper invalidation (driven by real `repro.faults` kill
  schedules, mirroring a helper dying mid-storm);
* decode plans — `build_decode_plan` matches `RSCode.repair_matrix`
  bit-for-bit, so a cached plan can never drift from the per-stripe path;
* the engine — batched decode vs per-stripe `RSCode.decode` over
  seeded-random (k, m, f, erasure pattern, block size) samples in GF(2^8)
  and GF(2^16), including degenerate single-stripe batches and batches
  mixing patterns and block lengths.
"""

import numpy as np
import pytest

from repro.ec.rs import RSCode, get_code
from repro.faults.schedule import FaultSchedule
from repro.gf.field import GF
from repro.repair.batch import (
    BatchRepairEngine,
    PlanCache,
    StripeBatchItem,
    build_decode_plan,
    group_by_pattern,
    pattern_key,
)

SEEDS = [int(s) for s in np.random.SeedSequence(51202).generate_state(6)]


def random_pattern(rng, code):
    """A random (survivors, failed) pair valid for ``code``."""
    f = int(rng.integers(1, code.m + 1))
    failed = sorted(int(x) for x in rng.choice(code.n, size=f, replace=False))
    avail = [i for i in range(code.n) if i not in failed]
    survivors = tuple(sorted(int(x) for x in rng.choice(avail, size=code.k, replace=False)))
    return survivors, tuple(failed)


# --------------------------------------------------------------------- #
# pattern keys
# --------------------------------------------------------------------- #
class TestPatternKey:
    def test_key_fields_and_survivor_sorting(self):
        code = get_code(4, 3, 8)
        key = pattern_key(code, (6, 0, 1, 2), (3, 5))
        assert key.survivors == (0, 1, 2, 6)
        assert key.failed == (3, 5)
        assert (key.w, key.k, key.m) == (8, 4, 3)

    def test_same_pattern_different_order_hashes_equal(self):
        code = get_code(4, 3, 8)
        assert pattern_key(code, (2, 1, 0, 6), (3,)) == pattern_key(code, (0, 1, 2, 6), (3,))

    def test_failed_order_is_significant(self):
        """Output row order differs, so (3, 5) and (5, 3) are distinct plans."""
        code = get_code(4, 3, 8)
        assert pattern_key(code, (0, 1, 2, 6), (3, 5)) != pattern_key(code, (0, 1, 2, 6), (5, 3))

    @pytest.mark.parametrize(
        "survivors,failed",
        [
            ((0, 1, 2), (3,)),  # too few survivors
            ((0, 1, 2, 3, 4), (5,)),  # too many
            ((0, 1, 2, 3), ()),  # empty failed
            ((0, 1, 2, 3), (3,)),  # overlap
            ((0, 1, 2, 3), (4, 4)),  # duplicate failed
            ((0, 1, 2, 3), (99,)),  # out of range
        ],
    )
    def test_rejects_invalid_patterns(self, survivors, failed):
        code = get_code(4, 3, 8)
        with pytest.raises(ValueError):
            pattern_key(code, survivors, failed)


def test_decode_plan_matches_repair_matrix():
    rng = np.random.default_rng(2)
    for k, m, w in [(4, 3, 8), (8, 4, 8), (6, 3, 16)]:
        code = get_code(k, m, w)
        for _ in range(4):
            survivors, failed = random_pattern(rng, code)
            plan = build_decode_plan(code, survivors, failed)
            assert np.array_equal(plan.matrix, code.repair_matrix(survivors, failed))
            assert not plan.matrix.flags.writeable
            assert plan.f == len(failed)


# --------------------------------------------------------------------- #
# PlanCache
# --------------------------------------------------------------------- #
class TestPlanCache:
    def test_hit_miss_accounting(self):
        code = get_code(4, 3, 8)
        cache = PlanCache()
        p1 = cache.plan_for(code, (0, 1, 2, 3), (4,))
        assert (cache.hits, cache.misses) == (0, 1)
        p2 = cache.plan_for(code, (3, 2, 1, 0), (4,))  # same pattern, reordered
        assert p2 is p1
        assert (cache.hits, cache.misses) == (1, 1)
        cache.plan_for(code, (0, 1, 2, 3), (5,))
        assert (cache.hits, cache.misses) == (1, 2)
        stats = cache.stats()
        assert stats["size"] == 2 and stats["hit_rate"] == pytest.approx(1 / 3)

    def test_lru_eviction_at_capacity(self):
        code = get_code(4, 3, 8)
        cache = PlanCache(capacity=2)
        k_a = pattern_key(code, (0, 1, 2, 3), (4,))
        k_b = pattern_key(code, (0, 1, 2, 3), (5,))
        k_c = pattern_key(code, (0, 1, 2, 3), (6,))
        cache.plan_for(code, k_a.survivors, k_a.failed)
        cache.plan_for(code, k_b.survivors, k_b.failed)
        cache.plan_for(code, k_a.survivors, k_a.failed)  # touch A: B is now LRU
        cache.plan_for(code, k_c.survivors, k_c.failed)  # evicts B
        assert k_a in cache and k_c in cache and k_b not in cache
        assert cache.evictions == 1
        # re-requesting the evicted pattern is a miss that rebuilds it
        misses = cache.misses
        cache.plan_for(code, k_b.survivors, k_b.failed)
        assert cache.misses == misses + 1

    def test_peek_does_not_touch_lru_or_counters(self):
        code = get_code(4, 3, 8)
        cache = PlanCache(capacity=2)
        k_a = pattern_key(code, (0, 1, 2, 3), (4,))
        cache.plan_for(code, k_a.survivors, k_a.failed)
        cache.plan_for(code, (0, 1, 2, 3), (5,))
        hits = cache.hits
        assert cache.peek(k_a) is not None
        assert cache.hits == hits  # peek is not a hit
        cache.plan_for(code, (0, 1, 2, 3), (6,))  # evicts A (peek didn't refresh it)
        assert k_a not in cache

    def test_clear_counts_as_invalidation(self):
        code = get_code(4, 3, 8)
        cache = PlanCache()
        cache.plan_for(code, (0, 1, 2, 3), (4,))
        cache.plan_for(code, (0, 1, 2, 3), (5,))
        cache.clear()
        assert len(cache) == 0 and cache.invalidations == 2
        assert cache.hits == 0 and cache.misses == 2  # lifetime totals survive

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_invalidate_survivor_mid_storm(self):
        """A storm kill makes a helper block unusable: every cached plan
        decoding through it must go, fresh patterns must survive."""
        code = get_code(4, 3, 8)
        cache = PlanCache()
        # plans from before the storm: two route through block 2, one doesn't
        cache.plan_for(code, (0, 1, 2, 3), (4,))
        cache.plan_for(code, (1, 2, 3, 5), (0,))
        cache.plan_for(code, (0, 1, 3, 4), (2,))  # block 2 is *failed* here, not a helper
        # reuse the chaos harness's schedule machinery to pick the casualty
        schedule = FaultSchedule.random(
            seed=7, targets=[2], n_events=1, max_kills=1, kinds=("kill",)
        )
        assert [e.target for e in schedule.kills()] == [2]
        evicted = cache.invalidate_survivor(schedule.kills()[0].target)
        assert evicted == 2
        assert cache.invalidations == 2
        assert len(cache) == 1
        assert pattern_key(code, (0, 1, 3, 4), (2,)) in cache
        # post-storm: the same logical repair re-plans over new survivors
        misses = cache.misses
        plan = cache.plan_for(code, (0, 1, 3, 5), (4,))
        assert cache.misses == misses + 1
        assert np.array_equal(plan.matrix, code.repair_matrix((0, 1, 3, 5), (4,)))

    def test_invalidate_where_predicate(self):
        code = get_code(4, 3, 8)
        cache = PlanCache()
        cache.plan_for(code, (0, 1, 2, 3), (4,))
        cache.plan_for(code, (0, 1, 2, 3), (5, 6))
        assert cache.invalidate_where(lambda k: len(k.failed) == 2) == 1
        assert len(cache) == 1


# --------------------------------------------------------------------- #
# grouping
# --------------------------------------------------------------------- #
def _item(code, sid, survivors, failed, length=64, seed=0):
    rng = np.random.default_rng(seed + sid)
    sources = [
        rng.integers(0, code.field.size, size=length).astype(code.field.dtype)
        for _ in survivors
    ]
    return StripeBatchItem(stripe_id=sid, survivors=survivors, failed=failed, sources=sources)


def test_group_by_pattern_first_occurrence_order():
    code = get_code(4, 3, 8)
    a = (tuple(range(4)), (4,))
    b = (tuple(range(1, 5)), (0,))
    items = [
        _item(code, 0, *a),
        _item(code, 1, *b),
        _item(code, 2, *a),
        _item(code, 3, *a),
    ]
    groups = group_by_pattern(code, items)
    assert [g.stripe_ids for g in groups] == [[0, 2, 3], [1]]
    assert len(groups[0]) == 3


def test_stripe_batch_item_validation():
    code = get_code(4, 3, 8)
    with pytest.raises(ValueError):
        _item(code, 0, (3, 1, 0, 2), (4,))  # unsorted survivors
    with pytest.raises(ValueError):
        StripeBatchItem(stripe_id=0, survivors=(0, 1, 2, 3), failed=(4,), sources=[np.zeros(4, np.uint8)])


# --------------------------------------------------------------------- #
# the engine: batched vs per-stripe, property-style
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("w", [8, 16])
@pytest.mark.parametrize("seed", SEEDS)
def test_engine_bit_exact_with_per_stripe_decode(w, seed):
    """The core differential property: randomized (k, m, f, pattern, block
    size) batches decode bit-exactly like per-stripe ``RSCode.decode``."""
    rng = np.random.default_rng(seed)
    k = int(rng.integers(2, 10))
    m = int(rng.integers(1, 5))
    code = get_code(k, m, w)
    engine = BatchRepairEngine(code)
    n_patterns = int(rng.integers(1, 4))
    patterns = [random_pattern(rng, code) for _ in range(n_patterns)]
    items, reference = [], {}
    sid = 0
    for survivors, failed in patterns:
        for _ in range(int(rng.integers(1, 5))):
            length = int(rng.integers(1, 2048))
            data = rng.integers(0, code.field.size, size=(k, length)).astype(code.field.dtype)
            blocks = code.encode_stripe(data)
            items.append(
                StripeBatchItem(
                    stripe_id=sid,
                    survivors=survivors,
                    failed=failed,
                    sources=[blocks[i] for i in survivors],
                )
            )
            reference[sid] = {
                fb: code.decode({i: blocks[i] for i in survivors}, [fb])[fb]
                for fb in failed
            }
            sid += 1
    res = engine.repair_items(items)
    assert res.stripes == len(items)
    for s, per_block in reference.items():
        for fb, expected in per_block.items():
            assert np.array_equal(res.outputs[s][fb], expected), (w, seed, s, fb)


def test_engine_single_stripe_single_block_degenerate():
    """The smallest possible batch: one stripe, one lost block."""
    code = get_code(4, 2, 8)
    engine = BatchRepairEngine(code)
    rng = np.random.default_rng(77)
    data = rng.integers(0, 256, size=(4, 8)).astype(np.uint8)
    blocks = code.encode_stripe(data)
    item = StripeBatchItem(
        stripe_id=9, survivors=(0, 1, 2, 3), failed=(5,), sources=[blocks[i] for i in range(4)]
    )
    res = engine.repair_items([item])
    assert res.groups == 1 and res.stripes == 1
    assert np.array_equal(res.outputs[9][5], blocks[5])


def test_engine_groups_split_by_block_length():
    """Same pattern but different block lengths cannot share one stack —
    they still decode correctly (and count as one pattern group)."""
    code = get_code(3, 2, 8)
    engine = BatchRepairEngine(code)
    rng = np.random.default_rng(4)
    items, reference = [], {}
    for sid, length in enumerate([64, 64, 256]):
        data = rng.integers(0, 256, size=(3, length)).astype(np.uint8)
        blocks = code.encode_stripe(data)
        items.append(
            StripeBatchItem(
                stripe_id=sid, survivors=(0, 1, 2), failed=(3, 4),
                sources=[blocks[i] for i in range(3)],
            )
        )
        reference[sid] = blocks
    res = engine.repair_items(items)
    assert res.groups == 1  # one erasure pattern...
    assert res.plan_misses == 1 and res.plan_hits == 1  # ...two stacked kernels
    for sid, blocks in reference.items():
        assert np.array_equal(res.outputs[sid][3], blocks[3])
        assert np.array_equal(res.outputs[sid][4], blocks[4])


def test_engine_decode_batch_stacked_api():
    code = get_code(4, 2, 8)
    engine = BatchRepairEngine(code)
    rng = np.random.default_rng(11)
    survivors, failed = (0, 1, 2, 4), (3, 5)
    stack, expect = [], []
    for _ in range(6):
        data = rng.integers(0, 256, size=(4, 512)).astype(np.uint8)
        blocks = code.encode_stripe(data)
        stack.append([blocks[i] for i in survivors])
        expect.append([blocks[i] for i in failed])
    out = engine.decode_batch(survivors, failed, np.asarray(stack))
    assert out.shape == (6, 2, 512)
    for s in range(6):
        for row, fb in enumerate(failed):
            assert np.array_equal(out[s, row], expect[s][row])


def test_engine_accounting_and_helper_loss():
    code = get_code(4, 2, 8)
    engine = BatchRepairEngine(code)
    rng = np.random.default_rng(13)
    data = rng.integers(0, 256, size=(4, 128)).astype(np.uint8)
    blocks = code.encode_stripe(data)
    item = StripeBatchItem(
        stripe_id=0, survivors=(0, 1, 2, 3), failed=(4,), sources=[blocks[i] for i in range(4)]
    )
    res = engine.repair_items([item])
    assert res.gf_bytes == 4 * 128
    assert res.compute_seconds > 0
    assert res.compute_seconds_by_stripe[0] == pytest.approx(res.compute_seconds)
    assert res.gf_bytes_by_stripe[0] == res.gf_bytes
    # a helper dies: its plans leave the cache, stats reflect it
    assert engine.on_helper_lost(2) == 1
    assert engine.stats()["invalidations"] == 1
    res2 = engine.repair_items([item])
    assert res2.plan_misses == 1  # rebuilt after invalidation
    assert np.array_equal(res2.outputs[0][4], blocks[4])


def test_engine_rejects_wrong_row_count():
    code = get_code(4, 2, 8)
    engine = BatchRepairEngine(code)
    with pytest.raises(ValueError):
        engine.decode_batch((0, 1, 2, 3), (4,), np.zeros((2, 3, 8), dtype=np.uint8))
    with pytest.raises(ValueError):
        engine.decode_batch((0, 1, 2, 3), (4,), np.zeros((3, 8), dtype=np.uint8))


def test_engine_respects_w16_code():
    code = RSCode(3, 2, GF(16))
    engine = BatchRepairEngine(code)
    rng = np.random.default_rng(21)
    data = rng.integers(0, 1 << 16, size=(3, 300)).astype(np.uint16)
    blocks = code.encode_stripe(data)
    item = StripeBatchItem(
        stripe_id=0, survivors=(0, 1, 2), failed=(3, 4), sources=[blocks[i] for i in range(3)]
    )
    res = engine.repair_items([item])
    assert np.array_equal(res.outputs[0][3], blocks[3])
    assert np.array_equal(res.outputs[0][4], blocks[4])
