"""CLI entry-point tests (python -m repro)."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment_fails(capsys):
    assert main(["nonsense"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "(64,8)" in out
    assert "done in" in out


def test_all_targets_registered():
    # every experiment module named in the CLI must import and expose main()
    import importlib

    for name in EXPERIMENTS:
        module = importlib.import_module(f"repro.experiments.{name}")
        assert callable(module.main)
        assert callable(module.run)
