"""Cluster substrate tests: nodes, topology, failure injection."""

import numpy as np
import pytest

from repro.cluster.failure import FailureInjector, PowerOutage
from repro.cluster.node import Node
from repro.cluster.topology import Cluster


def test_node_validation():
    with pytest.raises(ValueError):
        Node(0, uplink=0, downlink=10)
    with pytest.raises(ValueError):
        Node(0, uplink=10, downlink=-1)
    with pytest.raises(ValueError):
        Node(0, uplink=10, downlink=10, cross_uplink=0)


def test_node_effective_bandwidth():
    n = Node(0, uplink=100, downlink=200, cross_uplink=20, cross_downlink=30)
    assert n.effective_uplink(cross_rack=False) == 100
    assert n.effective_uplink(cross_rack=True) == 20
    assert n.effective_downlink(cross_rack=True) == 30
    plain = Node(1, uplink=100, downlink=200)
    assert plain.effective_uplink(cross_rack=True) == 100


def test_node_fail_recover():
    n = Node(0, 10, 10)
    assert n.alive
    n.fail()
    assert not n.alive
    n.recover()
    assert n.alive


def test_cluster_duplicate_ids_rejected():
    with pytest.raises(ValueError):
        Cluster([Node(1, 10, 10), Node(1, 20, 20)])
    cl = Cluster([Node(1, 10, 10)])
    with pytest.raises(ValueError):
        cl.add_node(Node(1, 10, 10))


def test_homogeneous_constructor_with_racks():
    cl = Cluster.homogeneous(10, bandwidth=100, rack_size=4, cross_bandwidth=25)
    assert len(cl) == 10
    assert cl.rack_of(0) == 0 and cl.rack_of(4) == 1 and cl.rack_of(9) == 2
    assert cl.racks() == {0: [0, 1, 2, 3], 1: [4, 5, 6, 7], 2: [8, 9]}
    assert cl.same_rack(0, 3) and not cl.same_rack(3, 4)
    assert cl.rack_size(1) == 4
    assert cl[0].cross_uplink == 25


def test_from_bandwidths():
    cl = Cluster.from_bandwidths([10, 20], [30, 40])
    assert cl[0].uplink == 10 and cl[0].downlink == 30
    assert cl[1].uplink == 20 and cl[1].downlink == 40
    symmetric = Cluster.from_bandwidths([10, 20])
    assert symmetric[1].downlink == 20
    with pytest.raises(ValueError):
        Cluster.from_bandwidths([10], [20, 30])


def test_alive_dead_tracking():
    cl = Cluster.homogeneous(5, 100)
    cl.fail_nodes([1, 3])
    assert cl.alive_ids() == [0, 2, 4]
    assert cl.dead_ids() == [1, 3]
    cl.recover_all()
    assert cl.dead_ids() == []


def test_failure_injector_kill_and_heal():
    cl = Cluster.homogeneous(10, 100)
    inj = FailureInjector(cl, rng=0)
    killed = inj.kill([2, 5])
    assert killed == [2, 5]
    # killing again is a no-op
    assert inj.kill([2]) == []
    assert inj.killed == [2, 5]
    inj.heal_all()
    assert cl.dead_ids() == [] and inj.killed == []


def test_failure_injector_random_respects_exclusions():
    cl = Cluster.homogeneous(10, 100)
    inj = FailureInjector(cl, rng=1)
    killed = inj.kill_random(3, exclude=[0, 1, 2, 3, 4])
    assert all(k >= 5 for k in killed)
    with pytest.raises(ValueError):
        inj.kill_random(100)


def test_kill_rack():
    cl = Cluster.homogeneous(8, 100, rack_size=4)
    inj = FailureInjector(cl, rng=0)
    assert inj.kill_rack(1) == [4, 5, 6, 7]
    assert cl.alive_ids() == [0, 1, 2, 3]


def test_power_outage_model():
    with pytest.raises(ValueError):
        PowerOutage(0.0)
    outage = PowerOutage(0.01)
    rng = np.random.default_rng(0)
    dead = outage.sample_dead_nodes(1000, rng)
    assert len(dead) == 10
    assert len(set(dead.tolist())) == 10
    # tiny cluster still loses at least one node
    assert len(outage.sample_dead_nodes(10, rng)) == 1


def test_power_outage_via_injector():
    cl = Cluster.homogeneous(200, 100)
    inj = FailureInjector(cl, rng=7)
    dead = inj.power_outage(PowerOutage(0.05))
    assert len(dead) == 10
    assert set(dead) == set(cl.dead_ids())
