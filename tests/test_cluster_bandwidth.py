"""Bandwidth workload (WLD) dataset tests."""

import numpy as np
import pytest

from repro.cluster.bandwidth import (
    BASE_MAX_BANDWIDTH,
    WLD_PRESETS,
    BandwidthDataset,
    load_bandwidth_csv,
    make_wld,
    save_bandwidth_csv,
)


@pytest.mark.parametrize("preset,gap", sorted(WLD_PRESETS.items()))
def test_presets_have_exact_gap(preset, gap):
    ds = make_wld(80, preset, seed=1)
    assert ds.name == preset
    assert ds.uplinks.max() == pytest.approx(BASE_MAX_BANDWIDTH)
    assert ds.uplinks.min() == pytest.approx(BASE_MAX_BANDWIDTH / gap)
    assert ds.measured_gap == pytest.approx(gap)


def test_numeric_gap_accepted():
    ds = make_wld(40, 3.0, seed=2)
    assert ds.gap == 3.0
    assert ds.name == "WLD-3x"


def test_unknown_preset_rejected():
    with pytest.raises(KeyError):
        make_wld(10, "WLD-99x")
    with pytest.raises(ValueError):
        make_wld(10, 0.5)


def test_deterministic_by_seed():
    a = make_wld(50, "WLD-4x", seed=5)
    b = make_wld(50, "WLD-4x", seed=5)
    c = make_wld(50, "WLD-4x", seed=6)
    assert np.array_equal(a.uplinks, b.uplinks)
    assert not np.array_equal(a.uplinks, c.uplinks)


def test_symmetric_option():
    ds = make_wld(30, "WLD-2x", seed=3, symmetric=True)
    assert np.array_equal(ds.uplinks, ds.downlinks)
    ds2 = make_wld(30, "WLD-2x", seed=3, symmetric=False)
    assert not np.array_equal(ds2.uplinks, ds2.downlinks)


@pytest.mark.parametrize("dist", ["normal", "uniform", "zipf"])
def test_distribution_families(dist):
    ds = make_wld(100, "WLD-8x", distribution=dist, seed=4)
    assert len(ds) == 100
    assert ds.uplinks.min() == pytest.approx(25.0)
    assert ds.uplinks.max() == pytest.approx(200.0)


def test_zipf_is_skewed_low():
    """Zipf should put most nodes near the slow end (heavier low tail)."""
    ds = make_wld(500, "WLD-8x", distribution="zipf", seed=5)
    median = np.median(ds.uplinks)
    mean_range = (ds.uplinks.min() + ds.uplinks.max()) / 2
    assert median < mean_range


def test_unknown_distribution():
    with pytest.raises(ValueError):
        make_wld(10, "WLD-2x", distribution="pareto")


def test_single_node_dataset():
    ds = make_wld(1, "WLD-2x")
    assert len(ds) == 1
    assert 100.0 <= ds.uplinks[0] <= 200.0


def test_dataset_validation():
    with pytest.raises(ValueError):
        BandwidthDataset("x", np.array([1.0, 2.0]), np.array([1.0]), 2, "normal", 0)
    with pytest.raises(ValueError):
        BandwidthDataset("x", np.array([0.0]), np.array([1.0]), 2, "normal", 0)


def test_csv_roundtrip(tmp_path):
    ds = make_wld(20, "WLD-4x", seed=9)
    path = tmp_path / "wld4.csv"
    save_bandwidth_csv(ds, path)
    loaded = load_bandwidth_csv(path, name="WLD-4x")
    assert loaded.name == "WLD-4x"
    assert np.allclose(loaded.uplinks, ds.uplinks, atol=1e-3)
    assert np.allclose(loaded.downlinks, ds.downlinks, atol=1e-3)
