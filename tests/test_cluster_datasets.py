"""Canonical dataset tests."""

import numpy as np
import pytest

from repro.cluster.datasets import (
    CANONICAL_NODES,
    canonical_wld,
    load_wld,
    materialize_datasets,
)


def test_canonical_datasets_deterministic():
    a = canonical_wld("WLD-8x")
    b = canonical_wld("WLD-8x")
    assert np.array_equal(a.uplinks, b.uplinks)
    assert len(a) == CANONICAL_NODES
    assert a.measured_gap == pytest.approx(8.0)


def test_unknown_preset():
    with pytest.raises(KeyError):
        canonical_wld("WLD-3x")


def test_materialize_and_load_roundtrip(tmp_path):
    paths = materialize_datasets(tmp_path)
    assert set(paths) == {"WLD-2x", "WLD-4x", "WLD-8x"}
    for p in paths.values():
        assert p.exists()
    loaded = load_wld("WLD-4x", tmp_path)
    generated = canonical_wld("WLD-4x")
    assert np.allclose(loaded.uplinks, generated.uplinks, atol=1e-3)


def test_load_without_directory_generates_in_memory():
    ds = load_wld("WLD-2x")
    assert len(ds) == CANONICAL_NODES


def test_load_materializes_missing_csv(tmp_path):
    assert not any(tmp_path.iterdir())
    ds = load_wld("WLD-8x", tmp_path)
    assert (tmp_path / "wld_8x.csv").exists()
    assert len(ds) == CANONICAL_NODES
