"""Placement policy tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.placement import (
    place_stripes_rack_aware,
    place_stripes_random,
    random_stripe_nodes,
)
from repro.cluster.topology import Cluster


def test_random_stripe_nodes_distinct():
    rng = np.random.default_rng(0)
    nodes = random_stripe_nodes(list(range(20)), 9, rng)
    assert len(nodes) == 9
    assert len(set(nodes)) == 9
    with pytest.raises(ValueError):
        random_stripe_nodes([1, 2, 3], 4, rng)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=1000),
)
def test_random_placement_property(k, m, seed):
    cl = Cluster.homogeneous(30, 100)
    layout = place_stripes_random(cl, 5, k, m, rng=seed)
    for stripe in layout:
        assert len(set(stripe.placement)) == k + m
        assert all(0 <= n < 30 for n in stripe.placement)


def test_random_placement_skips_dead_nodes():
    cl = Cluster.homogeneous(12, 100)
    cl.fail_nodes(range(6))
    layout = place_stripes_random(cl, 10, 3, 2, rng=0)
    for stripe in layout:
        assert all(n >= 6 for n in stripe.placement)


def test_random_placement_candidate_restriction():
    cl = Cluster.homogeneous(20, 100)
    layout = place_stripes_random(cl, 10, 3, 2, rng=0, candidates=list(range(10)))
    for stripe in layout:
        assert all(n < 10 for n in stripe.placement)


def test_rack_aware_respects_per_rack_cap():
    cl = Cluster.homogeneous(24, 100, rack_size=4)
    layout = place_stripes_rack_aware(cl, 20, 8, 4, max_blocks_per_rack=2, rng=0)
    for stripe in layout:
        per_rack = {}
        for n in stripe.placement:
            per_rack[cl.rack_of(n)] = per_rack.get(cl.rack_of(n), 0) + 1
        assert max(per_rack.values()) <= 2
        assert len(set(stripe.placement)) == 12


def test_rack_aware_capacity_check():
    cl = Cluster.homogeneous(8, 100, rack_size=4)  # 2 racks
    with pytest.raises(ValueError):
        place_stripes_rack_aware(cl, 1, 8, 4, max_blocks_per_rack=2, rng=0)


def test_rack_aware_tolerates_rack_failure():
    """With cap <= m, killing any single rack leaves every stripe repairable."""
    cl = Cluster.homogeneous(30, 100, rack_size=5)
    k, m, cap = 6, 3, 3
    layout = place_stripes_rack_aware(cl, 15, k, m, max_blocks_per_rack=cap, rng=1)
    for rack, members in cl.racks().items():
        dead = set(members)
        for stripe in layout:
            assert len(stripe.failed_blocks(dead)) <= m
