"""Bandwidth probing / estimation / noise tests."""

import numpy as np
import pytest

from repro.cluster.bandwidth import make_wld
from repro.cluster.node import Node
from repro.cluster.probing import BandwidthEstimator, measure_bandwidths, noisy_cluster
from repro.cluster.topology import Cluster


def probe_cluster():
    nodes = [Node(0, 10_000.0, 10_000.0)]  # fast reference
    ds = make_wld(6, "WLD-4x", seed=5)
    nodes += [Node(i + 1, float(ds.uplinks[i]), float(ds.downlinks[i])) for i in range(6)]
    return Cluster(nodes)


def test_probing_recovers_exact_bandwidths():
    cl = probe_cluster()
    measured = measure_bandwidths(cl, reference_node=0)
    for nid, (up, down) in measured.items():
        assert up == pytest.approx(cl[nid].uplink)
        assert down == pytest.approx(cl[nid].downlink)
    assert 0 not in measured


def test_probing_rejects_slow_reference():
    cl = Cluster([Node(0, 10.0, 10.0), Node(1, 100.0, 100.0)])
    with pytest.raises(ValueError):
        measure_bandwidths(cl, reference_node=0)


def test_estimator_ewma_converges():
    est = BandwidthEstimator(alpha=0.5)
    for _ in range(20):
        est.observe(3, "up", 80.0)
    up, down = est.estimate(3)
    assert up == pytest.approx(80.0)
    assert down is None


def test_estimator_tracks_changes():
    est = BandwidthEstimator(alpha=0.5)
    est.observe(1, "down", 100.0)
    for _ in range(10):
        est.observe(1, "down", 20.0)
    _, down = est.estimate(1)
    assert down == pytest.approx(20.0, rel=0.01)


def test_estimator_validation():
    est = BandwidthEstimator()
    with pytest.raises(ValueError):
        est.observe(0, "sideways", 10.0)
    with pytest.raises(ValueError):
        est.observe(0, "up", -1.0)
    with pytest.raises(ValueError):
        BandwidthEstimator(alpha=0.0)


def test_estimated_cluster_merges_estimates_with_truth():
    cl = probe_cluster()
    est = BandwidthEstimator(alpha=1.0)
    est.observe(1, "up", 42.0)
    view = est.estimated_cluster(cl)
    assert view[1].uplink == pytest.approx(42.0)
    assert view[1].downlink == pytest.approx(cl[1].downlink)  # unknown -> truth
    assert view[2].uplink == pytest.approx(cl[2].uplink)
    assert len(view) == len(cl)


def test_noisy_cluster_statistics():
    cl = probe_cluster()
    rng = np.random.default_rng(0)
    noisy = noisy_cluster(cl, rel_error=0.2, rng=rng)
    ratios = [noisy[i].uplink / cl[i].uplink for i in cl.node_ids()]
    assert any(abs(r - 1) > 0.01 for r in ratios)  # actually perturbed
    assert all(r > 0 for r in ratios)
    zero = noisy_cluster(cl, rel_error=0.0)
    assert all(zero[i].uplink == pytest.approx(cl[i].uplink) for i in cl.node_ids())
    with pytest.raises(ValueError):
        noisy_cluster(cl, rel_error=-0.1)


def test_noisy_cluster_preserves_structure():
    cl = Cluster([Node(0, 100, 100, rack=0, cross_uplink=20), Node(1, 100, 100, rack=1)])
    cl.set_rack_trunk(0, 50.0)
    noisy = noisy_cluster(cl, 0.3, rng=1)
    assert noisy[0].rack == 0 and noisy[1].rack == 1
    assert noisy[0].cross_uplink is not None and noisy[1].cross_uplink is None
    assert noisy.rack_trunks == cl.rack_trunks


def test_sensitivity_harness_monotone_regret():
    from repro.experiments.sensitivity import run

    rows = run(k=8, m=4, f=2, errors=[0.0, 0.3], seeds=(2023,))
    assert rows[0]["regret_%"] == pytest.approx(0.0, abs=1e-6)
    assert rows[1]["regret_%"] >= -1e-6
