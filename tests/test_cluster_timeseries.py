"""OU bandwidth-trace tests (vectorized paths + NetworkTrace facade)."""

import numpy as np
import pytest

from repro.cluster.node import Node
from repro.cluster.timeseries import ou_path, ou_paths
from repro.cluster.topology import Cluster
from repro.simnet.flows import Flow
from repro.simnet.fluid import FluidSimulator
from repro.simnet.network import NetworkTrace


def _ou_path_scalar_reference(base, duration_s, step_s, sigma, theta, rng,
                              floor_fraction=0.1):
    """The historical one-value-at-a-time loop, kept inline as the pin.

    ``ou_paths`` must reproduce this bit for bit on the same seed: the
    vectorized recurrence performs the identical element-wise IEEE
    operations, and a single-row batch consumes the generator stream in
    the same order as this loop.
    """
    n = int(np.ceil(duration_s / step_s)) + 1
    x = np.empty(n)
    x[0] = base
    sq = np.sqrt(step_s)
    noise = rng.normal(0.0, 1.0, size=(1, n - 1))
    for i in range(1, n):
        drift = theta * (base - x[i - 1]) * step_s
        x[i] = x[i - 1] + drift + sigma * sq * noise[0, i - 1]
    return np.maximum(x, floor_fraction * base)


def test_ou_path_bit_exact_vs_scalar_loop():
    """Vectorized ou_path equals the historical scalar loop bit for bit."""
    for seed in (0, 7, 123):
        got = ou_path(100.0, duration_s=50.0, step_s=0.5, sigma=12.0,
                      theta=0.4, rng=np.random.default_rng(seed))
        want = _ou_path_scalar_reference(100.0, 50.0, 0.5, 12.0, 0.4,
                                         np.random.default_rng(seed))
        assert got.shape == want.shape
        assert np.array_equal(got, want)  # bitwise, not approx


def test_ou_paths_batch_rows_are_independent_of_batching():
    """A 1-row batch and a multi-row batch agree on the draws they share.

    Noise is drawn in one row-major block, so row 0 of any batch consumes
    the same leading stream slice as a single-path call on the same seed.
    """
    single = ou_paths(np.array([100.0]), 20.0, 1.0, np.array([10.0]), 0.5,
                      np.random.default_rng(9))
    batch = ou_paths(np.array([100.0, 80.0]), 20.0, 1.0,
                     np.array([10.0, 8.0]), 0.5, np.random.default_rng(9))
    assert np.array_equal(single[0], batch[0])


def test_ou_path_statistics():
    rng = np.random.default_rng(0)
    path = ou_path(100.0, duration_s=500.0, step_s=1.0, sigma=10.0, theta=0.5, rng=rng)
    assert path[0] == 100.0
    # mean reversion: long-run average near the base
    assert np.mean(path) == pytest.approx(100.0, rel=0.1)
    # floored away from zero
    assert path.min() >= 10.0
    with pytest.raises(ValueError):
        ou_path(100.0, -1.0, 1.0, 1.0, 0.5, rng)


def test_ou_path_zero_sigma_is_constant():
    rng = np.random.default_rng(1)
    path = ou_path(50.0, 10.0, 1.0, sigma=0.0, theta=0.5, rng=rng)
    assert np.allclose(path, 50.0)


def test_trace_events_structure():
    cl = Cluster([Node(0, 100, 100), Node(1, 80, 120)])
    events = NetworkTrace.ou(5.0, step_s=1.0, seed=2).events_for(cl)
    assert len(events) == 2 * 5
    assert all(e.time > 0 for e in events)
    times = [e.time for e in events]
    assert times == sorted(times)
    assert all(e.uplink > 0 and e.downlink > 0 for e in events)


def test_trace_restricted_to_nodes():
    cl = Cluster([Node(i, 100, 100) for i in range(4)])
    events = NetworkTrace.ou(3.0, nodes=[1, 2], seed=3).events_for(cl)
    assert {e.node for e in events} == {1, 2}


def test_bandwidth_trace_events_shim_warns_and_matches_facade():
    """The legacy helper warns and lowers to the exact same event list."""
    from repro.cluster.timeseries import bandwidth_trace_events

    cl = Cluster([Node(0, 100, 100), Node(1, 80, 120)])
    with pytest.warns(DeprecationWarning, match="bandwidth_trace_events"):
        legacy = bandwidth_trace_events(cl, duration_s=5.0, step_s=1.0, rng=2)
    facade = NetworkTrace.ou(5.0, step_s=1.0, seed=2).events_for(cl)
    assert legacy == facade


def test_simulation_under_churn_completes():
    """A repair-shaped transfer under OU churn still conserves bytes."""
    cl = Cluster([Node(i, 100, 100) for i in range(6)])
    events = NetworkTrace.ou(60.0, step_s=0.5, rel_sigma=0.3, seed=4).events_for(cl)
    flows = [Flow(f"f{i}", i, (i + 1) % 6, 48.0) for i in range(6)]
    res = FluidSimulator(cl).run(flows, events=events)
    assert res.makespan > 0
    assert sum(res.bytes_sent.values()) == pytest.approx(6 * 48.0)


def test_churn_changes_makespan_vs_static():
    cl = Cluster([Node(i, 100, 100) for i in range(4)])
    flows = [Flow("f", 0, 1, 200.0)]
    static = FluidSimulator(cl).run(flows).makespan
    events = NetworkTrace.ou(60.0, step_s=0.5, rel_sigma=0.4, seed=5).events_for(cl)
    churned = FluidSimulator(cl).run(flows, events=events).makespan
    assert churned != pytest.approx(static)
