"""OU bandwidth-trace tests."""

import numpy as np
import pytest

from repro.cluster.node import Node
from repro.cluster.timeseries import bandwidth_trace_events, ou_path
from repro.cluster.topology import Cluster
from repro.simnet.flows import Flow
from repro.simnet.fluid import FluidSimulator


def test_ou_path_statistics():
    rng = np.random.default_rng(0)
    path = ou_path(100.0, duration_s=500.0, step_s=1.0, sigma=10.0, theta=0.5, rng=rng)
    assert path[0] == 100.0
    # mean reversion: long-run average near the base
    assert np.mean(path) == pytest.approx(100.0, rel=0.1)
    # floored away from zero
    assert path.min() >= 10.0
    with pytest.raises(ValueError):
        ou_path(100.0, -1.0, 1.0, 1.0, 0.5, rng)


def test_ou_path_zero_sigma_is_constant():
    rng = np.random.default_rng(1)
    path = ou_path(50.0, 10.0, 1.0, sigma=0.0, theta=0.5, rng=rng)
    assert np.allclose(path, 50.0)


def test_trace_events_structure():
    cl = Cluster([Node(0, 100, 100), Node(1, 80, 120)])
    events = bandwidth_trace_events(cl, duration_s=5.0, step_s=1.0, rng=2)
    assert len(events) == 2 * 5
    assert all(e.time > 0 for e in events)
    times = [e.time for e in events]
    assert times == sorted(times)
    assert all(e.uplink > 0 and e.downlink > 0 for e in events)


def test_trace_restricted_to_nodes():
    cl = Cluster([Node(i, 100, 100) for i in range(4)])
    events = bandwidth_trace_events(cl, 3.0, nodes=[1, 2], rng=3)
    assert {e.node for e in events} == {1, 2}


def test_simulation_under_churn_completes():
    """A repair-shaped transfer under OU churn still conserves bytes."""
    cl = Cluster([Node(i, 100, 100) for i in range(6)])
    events = bandwidth_trace_events(cl, duration_s=60.0, step_s=0.5, rel_sigma=0.3, rng=4)
    flows = [Flow(f"f{i}", i, (i + 1) % 6, 48.0) for i in range(6)]
    res = FluidSimulator(cl).run(flows, events=events)
    assert res.makespan > 0
    assert sum(res.bytes_sent.values()) == pytest.approx(6 * 48.0)


def test_churn_changes_makespan_vs_static():
    cl = Cluster([Node(i, 100, 100) for i in range(4)])
    flows = [Flow("f", 0, 1, 200.0)]
    static = FluidSimulator(cl).run(flows).makespan
    events = bandwidth_trace_events(cl, 60.0, step_s=0.5, rel_sigma=0.4, rng=5)
    churned = FluidSimulator(cl).run(flows, events=events).makespan
    assert churned != pytest.approx(static)
