"""The CI docs gates must pass on the tree as committed.

Runs the two ``tools/`` checkers exactly as the CI docs job does, so a
broken doc link or a docstring-coverage regression fails locally before it
fails in CI — and exercises their failure modes against synthetic trees.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# must match the ratchet floor in .github/workflows/ci.yml (ratchet-only:
# raise both together when coverage improves, never lower them)
COVERAGE_FLOOR = 71.7


def _run(*argv):
    return subprocess.run(
        [sys.executable, *argv], cwd=REPO, capture_output=True, text=True
    )


def test_no_dead_links_in_docs():
    res = _run("tools/check_links.py")
    assert res.returncode == 0, res.stdout + res.stderr


def test_docstring_coverage_meets_floor():
    res = _run("tools/docstring_coverage.py", "--min", str(COVERAGE_FLOOR))
    assert res.returncode == 0, res.stdout + res.stderr


def test_link_checker_catches_missing_target(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "[ok](docs/real.md)\n[broken](docs/nope.md)\n[ext](https://example.com)\n"
    )
    (tmp_path / "docs" / "real.md").write_text("# Real\n")
    res = _run("tools/check_links.py", str(tmp_path))
    assert res.returncode == 1
    assert "docs/nope.md" in res.stdout
    assert "example.com" not in res.stdout


def test_link_checker_checks_anchors(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "# My Title\n[good](#my-title)\n[bad](#no-such-heading)\n"
    )
    res = _run("tools/check_links.py", str(tmp_path))
    assert res.returncode == 1
    assert "no-such-heading" in res.stdout
    assert "#my-title" not in res.stdout


def test_coverage_gate_fails_below_floor(tmp_path):
    (tmp_path / "undocumented.py").write_text("def public():\n    pass\n")
    res = _run("tools/docstring_coverage.py", "--min", "50", str(tmp_path))
    assert res.returncode == 1
    assert "FAIL" in res.stdout
    assert "public" in res.stdout


def test_coverage_gate_ignores_private_and_init(tmp_path):
    (tmp_path / "mod.py").write_text(
        '"""Module doc."""\n'
        "class C:\n"
        '    """Class doc."""\n'
        "    def __init__(self):\n"
        "        pass\n"
        "    def _private(self):\n"
        "        pass\n"
    )
    res = _run("tools/docstring_coverage.py", "--min", "100", str(tmp_path))
    assert res.returncode == 0, res.stdout + res.stderr
