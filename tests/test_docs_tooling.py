"""The CI docs gates must pass on the tree as committed.

Runs the two ``tools/`` checkers exactly as the CI docs job does, so a
broken doc link or a docstring-coverage regression fails locally before it
fails in CI — and exercises their failure modes against synthetic trees.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# must match the ratchet floor in .github/workflows/ci.yml (ratchet-only:
# raise both together when coverage improves, never lower them)
COVERAGE_FLOOR = 78.0


def _run(*argv):
    return subprocess.run(
        [sys.executable, *argv], cwd=REPO, capture_output=True, text=True
    )


def test_no_dead_links_in_docs():
    res = _run("tools/check_links.py")
    assert res.returncode == 0, res.stdout + res.stderr


def test_docstring_coverage_meets_floor():
    res = _run("tools/docstring_coverage.py", "--min", str(COVERAGE_FLOOR))
    assert res.returncode == 0, res.stdout + res.stderr


def test_link_checker_catches_missing_target(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "[ok](docs/real.md)\n[broken](docs/nope.md)\n[ext](https://example.com)\n"
    )
    (tmp_path / "docs" / "real.md").write_text("# Real\n")
    res = _run("tools/check_links.py", str(tmp_path))
    assert res.returncode == 1
    assert "docs/nope.md" in res.stdout
    assert "example.com" not in res.stdout


def test_link_checker_checks_anchors(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "# My Title\n[good](#my-title)\n[bad](#no-such-heading)\n"
    )
    res = _run("tools/check_links.py", str(tmp_path))
    assert res.returncode == 1
    assert "no-such-heading" in res.stdout
    assert "#my-title" not in res.stdout


def test_coverage_gate_fails_below_floor(tmp_path):
    (tmp_path / "undocumented.py").write_text("def public():\n    pass\n")
    res = _run("tools/docstring_coverage.py", "--min", "50", str(tmp_path))
    assert res.returncode == 1
    assert "FAIL" in res.stdout
    assert "public" in res.stdout


def _serving_doc(sweep_metrics):
    """A minimal schema-valid serving artifact with one chunk-sweep point."""
    return {
        "schema_version": 1,
        "suite": "online-serving-plane",
        "env": {"python": "3"},
        "points": [
            {
                "bench": "serving.chunk_sweep",
                "params": {"k": 4},
                "metrics": {"speedup_x": 1.2, **sweep_metrics},
            }
        ],
    }


def test_bench_schema_requires_monotone_chunk_sweep(tmp_path):
    """The serving artifact must carry a falling-toward-1 p99 ratio sweep."""
    import json

    good = tmp_path / "good.json"
    good.write_text(
        json.dumps(_serving_doc({"p99_ratio_c1": 1.2, "p99_ratio_c4": 1.05}))
    )
    res = _run("tools/check_bench_schema.py", str(good))
    assert res.returncode == 0, res.stdout + res.stderr

    cases = {
        # more chunks must strictly help
        "rising.json": {"p99_ratio_c1": 1.05, "p99_ratio_c4": 1.2},
        # degraded reads can never beat healthy reads
        "below_one.json": {"p99_ratio_c1": 1.2, "p99_ratio_c4": 0.9},
        # a single ratio is not a sweep
        "lonely.json": {"p99_ratio_c1": 1.2},
    }
    for name, metrics in cases.items():
        bad = tmp_path / name
        bad.write_text(json.dumps(_serving_doc(metrics)))
        res = _run("tools/check_bench_schema.py", str(bad))
        assert res.returncode == 1, f"{name} must fail the schema gate"
        assert "serving.chunk_sweep" in res.stderr


def _reliability_doc(metrics, env=None):
    """A minimal schema-valid reliability artifact with one nines point."""
    return {
        "schema_version": 1,
        "suite": "reliability-simulator",
        "env": {"python": "3", "fastpath_speedup_x": 100.0, **(env or {})},
        "points": [
            {
                "bench": "reliability.nines",
                "params": {"k": 8},
                "metrics": {"speedup_x": 2.0, **metrics},
            }
        ],
    }


def test_bench_schema_enforces_reliability_nines_ordering(tmp_path):
    """The reliability artifact must pin nines_hmbr strictly above nines_cr
    and report the fast path's speedup in env."""
    import json

    good = tmp_path / "good.json"
    good.write_text(
        json.dumps(_reliability_doc({"nines_hmbr": 2.1, "nines_cr": 1.6}))
    )
    res = _run("tools/check_bench_schema.py", str(good))
    assert res.returncode == 0, res.stdout + res.stderr

    cases = {
        # HMBR must strictly beat CR
        "tied.json": _reliability_doc({"nines_hmbr": 1.6, "nines_cr": 1.6}),
        "inverted.json": _reliability_doc({"nines_hmbr": 1.2, "nines_cr": 1.6}),
        # both nines must be present
        "missing.json": _reliability_doc({"nines_hmbr": 2.1}),
        # env must carry a positive fastpath speedup
        "no_speedup.json": _reliability_doc(
            {"nines_hmbr": 2.1, "nines_cr": 1.6}, env={"fastpath_speedup_x": -1.0}
        ),
    }
    for name, doc in cases.items():
        bad = tmp_path / name
        bad.write_text(json.dumps(doc))
        res = _run("tools/check_bench_schema.py", str(bad))
        assert res.returncode == 1, f"{name} must fail the schema gate"
        assert "reliability" in res.stderr

    # a document lacking the nines point entirely must also fail
    no_point = _reliability_doc({"nines_hmbr": 2.1, "nines_cr": 1.6})
    no_point["points"][0]["bench"] = "reliability.other"
    lonely = tmp_path / "no_point.json"
    lonely.write_text(json.dumps(no_point))
    res = _run("tools/check_bench_schema.py", str(lonely))
    assert res.returncode == 1
    assert "reliability.nines" in res.stderr


def test_committed_reliability_artifact_is_schema_valid():
    """The committed BENCH_reliability.json passes the extended gate."""
    res = _run("tools/check_bench_schema.py", str(REPO / "BENCH_reliability.json"))
    assert res.returncode == 0, res.stdout + res.stderr


def _batch_doc(env=None, native_metrics=None):
    """A minimal schema-valid batch artifact, optionally with a native point."""
    points = [
        {
            "bench": "ec_codec.backend_numpy.gf8",
            "params": {"k": 8, "backend": "numpy"},
            "metrics": {"speedup_x": 3.5, "decode_mbps": 250.0, "vs_numpy_x": 1.0},
        }
    ]
    if native_metrics is not None:
        points.append(
            {
                "bench": "ec_codec.backend_native.gf8",
                "params": {"k": 8, "backend": "native"},
                "metrics": {"decode_mbps": 2000.0, **native_metrics},
            }
        )
    return {
        "schema_version": 1,
        "suite": "batched-multi-stripe-repair",
        "env": {"python": "3", "smoke": False, "backend": "native", **(env or {})},
        "points": points,
    }


def test_bench_schema_enforces_batch_backend_rules(tmp_path):
    """The batch artifact must name its kernel tier, carry a decode_mbps
    point, and hold the native tier to the 5x floor at full fidelity."""
    import json

    good = tmp_path / "good.json"
    good.write_text(json.dumps(_batch_doc(native_metrics={"vs_numpy_x": 9.0})))
    res = _run("tools/check_bench_schema.py", str(good))
    assert res.returncode == 0, res.stdout + res.stderr

    # a smoke-mode artifact is exempt from the native floor
    smoky = tmp_path / "smoke.json"
    smoky.write_text(
        json.dumps(_batch_doc(env={"smoke": True}, native_metrics={"vs_numpy_x": 1.1}))
    )
    res = _run("tools/check_bench_schema.py", str(smoky))
    assert res.returncode == 0, res.stdout + res.stderr

    cases = {
        # the selected kernel tier must be recorded
        "no_backend.json": _batch_doc(env={"backend": ""}),
        # a full-fidelity native point below the floor must fail
        "slow_native.json": _batch_doc(native_metrics={"vs_numpy_x": 4.9}),
        "untracked_native.json": _batch_doc(native_metrics={}),
    }
    for name, doc in cases.items():
        bad = tmp_path / name
        bad.write_text(json.dumps(doc))
        res = _run("tools/check_bench_schema.py", str(bad))
        assert res.returncode == 1, f"{name} must fail the schema gate"

    # dropping every decode_mbps metric must also fail
    no_mbps = _batch_doc()
    for p in no_mbps["points"]:
        p["metrics"].pop("decode_mbps", None)
    lonely = tmp_path / "no_mbps.json"
    lonely.write_text(json.dumps(no_mbps))
    res = _run("tools/check_bench_schema.py", str(lonely))
    assert res.returncode == 1
    assert "decode_mbps" in res.stderr


def test_committed_batch_artifact_is_schema_valid():
    """The committed BENCH_batch.json passes the extended backend gate."""
    res = _run("tools/check_bench_schema.py", str(REPO / "BENCH_batch.json"))
    assert res.returncode == 0, res.stdout + res.stderr


def test_coverage_gate_ignores_private_and_init(tmp_path):
    (tmp_path / "mod.py").write_text(
        '"""Module doc."""\n'
        "class C:\n"
        '    """Class doc."""\n'
        "    def __init__(self):\n"
        "        pass\n"
        "    def _private(self):\n"
        "        pass\n"
    )
    res = _run("tools/docstring_coverage.py", "--min", "100", str(tmp_path))
    assert res.returncode == 0, res.stdout + res.stderr


def _adaptive_doc(metrics, env=None):
    """A minimal schema-valid adaptive artifact with one replan point."""
    return {
        "schema_version": 1,
        "suite": "adaptive-replan",
        "env": {"python": "3", "adaptive_speedup_x": 1.5, **(env or {})},
        "points": [
            {
                "bench": "adaptive.replan.k16m8f4",
                "params": {"k": 16},
                "metrics": {"speedup_x": 1.5, **metrics},
            }
        ],
    }


def test_bench_schema_enforces_adaptive_speedup(tmp_path):
    """The adaptive artifact must show re-planning strictly beating the
    static plan, point-wise and in the aggregate env ratio."""
    import json

    good = tmp_path / "good.json"
    good.write_text(
        json.dumps(_adaptive_doc({"t_static_s": 9.0, "t_adaptive_s": 6.0}))
    )
    res = _run("tools/check_bench_schema.py", str(good))
    assert res.returncode == 0, res.stdout + res.stderr

    cases = {
        # adaptive must strictly beat static per point
        "tied.json": _adaptive_doc({"t_static_s": 6.0, "t_adaptive_s": 6.0}),
        "inverted.json": _adaptive_doc({"t_static_s": 6.0, "t_adaptive_s": 9.0}),
        # both makespans must be present
        "missing.json": _adaptive_doc({"t_static_s": 9.0}),
        # the aggregate ratio must be strictly above 1
        "no_win.json": _adaptive_doc(
            {"t_static_s": 9.0, "t_adaptive_s": 6.0},
            env={"adaptive_speedup_x": 1.0},
        ),
        "no_ratio.json": _adaptive_doc(
            {"t_static_s": 9.0, "t_adaptive_s": 6.0},
            env={"adaptive_speedup_x": "fast"},
        ),
    }
    for name, doc in cases.items():
        bad = tmp_path / name
        bad.write_text(json.dumps(doc))
        res = _run("tools/check_bench_schema.py", str(bad))
        assert res.returncode == 1, f"{name} must fail the schema gate"
        assert "adaptive" in res.stderr

    # a document lacking any replan point entirely must also fail
    no_point = _adaptive_doc({"t_static_s": 9.0, "t_adaptive_s": 6.0})
    no_point["points"][0]["bench"] = "adaptive.quiet_overhead"
    lonely = tmp_path / "no_point.json"
    lonely.write_text(json.dumps(no_point))
    res = _run("tools/check_bench_schema.py", str(lonely))
    assert res.returncode == 1
    assert "adaptive.replan" in res.stderr


def test_committed_adaptive_artifact_is_schema_valid():
    """The committed BENCH_adaptive.json passes the extended gate."""
    res = _run("tools/check_bench_schema.py", str(REPO / "BENCH_adaptive.json"))
    assert res.returncode == 0, res.stdout + res.stderr
