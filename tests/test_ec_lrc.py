"""Locally-repairable-code tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.lrc import LRCCode
from repro.ec.rs import RSCode


def make_stripe(code, length=128, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(code.k, length), dtype=np.uint8)
    return data, code.encode_stripe(data)


def test_layout_and_groups():
    code = LRCCode(12, 2, 2)
    assert code.n == 16
    assert code.group_size == 6
    assert code.group_of(0) == 0 and code.group_of(7) == 1
    assert code.group_of(12) == 0 and code.group_of(13) == 1  # local parities
    assert code.group_of(14) is None  # global parity
    assert code.group_members(1) == [6, 7, 8, 9, 10, 11]
    assert code.local_parity_of(0) == 12
    with pytest.raises(ValueError):
        code.group_of(99)
    with pytest.raises(ValueError):
        code.group_members(5)


def test_parameter_validation():
    with pytest.raises(ValueError):
        LRCCode(10, 3, 2)  # k not divisible by l
    with pytest.raises(ValueError):
        LRCCode(0, 1, 1)
    with pytest.raises(ValueError):
        LRCCode(250, 5, 10)


def test_local_parity_is_group_xor():
    code = LRCCode(8, 2, 2)
    data, stripe = make_stripe(code)
    assert np.array_equal(stripe[8], data[0] ^ data[1] ^ data[2] ^ data[3])
    assert np.array_equal(stripe[9], data[4] ^ data[5] ^ data[6] ^ data[7])


def test_local_repair_reads_only_group():
    code = LRCCode(12, 3, 2)
    _, stripe = make_stripe(code, seed=1)
    available = {i: stripe[i] for i in range(code.n) if i != 5}
    out = code.repair_locally(5, available)
    assert np.array_equal(out, stripe[5])
    assert code.repair_cost_blocks(5, available) == 4  # group of 4, not k=12
    assert code.repair_cost_blocks(code.k + code.l) == 12  # global parity


def test_local_repair_of_local_parity():
    code = LRCCode(8, 2, 1)
    _, stripe = make_stripe(code, seed=2)
    available = {i: stripe[i] for i in range(code.n) if i != 8}
    out = code.repair_locally(8, available)
    assert np.array_equal(out, stripe[8])


def test_local_repair_falls_back_when_group_damaged():
    code = LRCCode(8, 2, 2)
    _, stripe = make_stripe(code, seed=3)
    # two failures in the same group: local repair impossible
    available = {i: stripe[i] for i in range(code.n) if i not in (0, 1)}
    assert code.repair_locally(0, available) is None
    out = code.repair(0, available)  # global fallback
    assert np.array_equal(out, stripe[0])


def test_global_decode_multi_failures():
    code = LRCCode(8, 2, 3)
    _, stripe = make_stripe(code, seed=4)
    dead = [0, 4, 9, 11]  # data, data, local parity, global parity
    available = {i: stripe[i] for i in range(code.n) if i not in dead}
    out = code.decode(available, dead)
    for d in dead:
        assert np.array_equal(out[d], stripe[d])


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_any_g_plus_1_failures_recoverable(seed):
    """This LRC family tolerates any g+1 erasures."""
    code = LRCCode(8, 2, 2)
    rng = np.random.default_rng(seed)
    _, stripe = make_stripe(code, seed=seed % 1000)
    dead = sorted(rng.choice(code.n, size=code.g + 1, replace=False).tolist())
    available = {i: stripe[i] for i in range(code.n) if i not in dead}
    out = code.decode(available, dead)
    for d in dead:
        assert np.array_equal(out[d], stripe[d])


def test_unrecoverable_pattern_raises():
    code = LRCCode(8, 2, 1)
    _, stripe = make_stripe(code, seed=5)
    # kill a whole group + its local parity + the global parity: 6 losses
    dead = [0, 1, 2, 3, 8, 10]
    available = {i: stripe[i] for i in range(code.n) if i not in dead}
    with pytest.raises(ValueError):
        code.decode(available, dead)


def test_g_plus_1_tolerance_exhaustive_small_code():
    """Every possible g+1 erasure pattern of the (6,2,1) code is recoverable."""
    import itertools

    from repro.gf.matrix import gf_rank

    code = LRCCode(6, 2, 1)
    for dead in itertools.combinations(range(code.n), code.g + 1):
        rows = [i for i in range(code.n) if i not in dead]
        assert gf_rank(code.generator[rows], code.field) == code.k, dead


def test_overhead_vs_wide_stripe():
    """The paper's trade: LRC repairs locally but stores more."""
    lrc = LRCCode(12, 3, 2)  # overhead 17/12
    rs = RSCode(12, 2)  # overhead 14/12
    assert lrc.storage_overhead > (rs.k + rs.m) / rs.k
    # but single-block repair reads 4 blocks instead of 12
    assert lrc.repair_cost_blocks(0) < rs.k
