"""MDS property tests for the generator-matrix constructions."""

import itertools

import numpy as np
import pytest

from repro.ec.matrices import (
    cauchy_parity_matrix,
    systematic_cauchy_generator,
    systematic_vandermonde_generator,
    vandermonde_matrix,
)
from repro.gf.field import GF, gf8
from repro.gf.matrix import gf_identity, gf_rank


def test_vandermonde_shape_and_first_column():
    v = vandermonde_matrix(9, 6)
    assert v.shape == (9, 6)
    assert (v[:, 0] == 1).all()
    # row i is powers of i
    assert v[2, 1] == 2 and v[2, 2] == 4
    assert v[0, 1] == 0  # 0^1 = 0


def test_vandermonde_any_k_rows_invertible():
    k = 4
    v = vandermonde_matrix(8, k)
    for rows in itertools.combinations(range(8), k):
        assert gf_rank(v[list(rows)], gf8) == k


def test_cauchy_all_entries_nonzero():
    c = cauchy_parity_matrix(6, 3)
    assert (c != 0).all()
    assert c.shape == (3, 6)


@pytest.mark.parametrize("maker", [systematic_cauchy_generator, systematic_vandermonde_generator])
@pytest.mark.parametrize("k,m", [(3, 2), (4, 3), (6, 3)])
def test_generator_is_systematic_and_mds_exhaustive(maker, k, m):
    """Every k-row submatrix of the generator must be invertible."""
    g = maker(k, m)
    assert np.array_equal(g[:k], gf_identity(k, gf8))
    for rows in itertools.combinations(range(k + m), k):
        assert gf_rank(g[list(rows)], gf8) == k, rows


@pytest.mark.parametrize("maker", [systematic_cauchy_generator, systematic_vandermonde_generator])
def test_generator_mds_random_subsets_wide(maker):
    """Spot-check MDS for a wide stripe (exhaustive is combinatorial)."""
    k, m = 64, 16
    g = maker(k, m)
    rng = np.random.default_rng(0)
    for _ in range(25):
        rows = rng.choice(k + m, size=k, replace=False)
        assert gf_rank(g[rows], gf8) == k


def test_vast_wide_stripe_fits_gf8():
    g = systematic_cauchy_generator(150, 4)
    assert g.shape == (154, 150)


def test_field_size_limits():
    with pytest.raises(ValueError):
        systematic_cauchy_generator(250, 10)
    with pytest.raises(ValueError):
        systematic_vandermonde_generator(250, 10)
    with pytest.raises(ValueError):
        vandermonde_matrix(300, 4)
    # but fine in GF(2^16)
    g = systematic_cauchy_generator(250, 10, GF(16))
    assert g.shape == (260, 250)
