"""Reed-Solomon codec tests (encode / decode / repair matrices)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.rs import RSCode, get_code
from repro.gf.field import GF
from repro.gf.matrix import gf_matmul


def make_stripe(code, length=256, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, code.field.size, size=(code.k, length)).astype(code.field.dtype)
    return data, code.encode_stripe(data)


def test_encode_shapes():
    code = RSCode(6, 3)
    data, stripe = make_stripe(code)
    assert stripe.shape == (9, 256)
    assert np.array_equal(stripe[:6], data)


def test_parity_is_linear_combination_of_data():
    code = RSCode(4, 2)
    data, stripe = make_stripe(code)
    expect = gf_matmul(code.generator[4:], data, code.field)
    assert np.array_equal(stripe[4:], expect)


@pytest.mark.parametrize("construction", ["cauchy", "vandermonde"])
@pytest.mark.parametrize("k,m", [(3, 2), (6, 3), (10, 4)])
def test_decode_every_m_erasure_pattern_samples(construction, k, m):
    code = RSCode(k, m, construction=construction)
    data, stripe = make_stripe(code, seed=k * 31 + m)
    rng = np.random.default_rng(1)
    for _ in range(10):
        dead = sorted(rng.choice(k + m, size=m, replace=False).tolist())
        avail = {i: stripe[i] for i in range(k + m) if i not in dead}
        repaired = code.decode(avail, dead)
        for d in dead:
            assert np.array_equal(repaired[d], stripe[d])


def test_decode_stripe_reconstructs_everything():
    code = RSCode(5, 3)
    _, stripe = make_stripe(code)
    avail = {i: stripe[i] for i in (1, 2, 4, 6, 7)}
    full = code.decode_stripe(avail)
    assert np.array_equal(full, stripe)


def test_decode_needs_k_blocks():
    code = RSCode(4, 2)
    _, stripe = make_stripe(code)
    with pytest.raises(ValueError):
        code.decode({0: stripe[0], 1: stripe[1], 2: stripe[2]}, [5])


def test_repair_matrix_identity_rows_for_survivor_data():
    """Repairing a parity block from the k data blocks = re-encoding."""
    code = RSCode(4, 2)
    r = code.repair_matrix([0, 1, 2, 3], [4])
    assert np.array_equal(r, code.generator[4:5])


def test_repair_matrix_applied_manually():
    code = RSCode(6, 3)
    _, stripe = make_stripe(code)
    survivors = [0, 2, 3, 5, 6, 8]
    failed = [1, 4, 7]
    r = code.repair_matrix(survivors, failed)
    assert r.shape == (3, 6)
    out = gf_matmul(np.asarray(r), stripe[survivors], code.field)
    assert np.array_equal(out, stripe[failed])


def test_repair_matrix_validation():
    code = RSCode(4, 2)
    with pytest.raises(ValueError):
        code.repair_matrix([0, 1, 2], [5])  # too few survivors
    with pytest.raises(ValueError):
        code.repair_matrix([0, 1, 2, 5], [5])  # overlap
    with pytest.raises(ValueError):
        code.repair_matrix([0, 1, 2, 9], [5])  # out of range


def test_repair_matrix_cached():
    code = RSCode(4, 2)
    a = code.repair_matrix([0, 1, 2, 3], [4, 5])
    b = code.repair_matrix([0, 1, 2, 3], [4, 5])
    assert a is b
    assert not a.flags.writeable


def test_code_parameter_validation():
    with pytest.raises(ValueError):
        RSCode(0, 2)
    with pytest.raises(ValueError):
        RSCode(4, 0)
    with pytest.raises(ValueError):
        RSCode(250, 10)
    with pytest.raises(ValueError):
        RSCode(4, 2, construction="nonsense")


def test_get_code_cache():
    assert get_code(6, 3) is get_code(6, 3)
    assert get_code(6, 3) is not get_code(6, 4)


def test_gf16_codec_roundtrip():
    code = RSCode(8, 4, GF(16))
    data, stripe = make_stripe(code, length=64)
    avail = {i: stripe[i] for i in range(4, 12)}
    repaired = code.decode(avail, [0, 1, 2, 3])
    for i in range(4):
        assert np.array_equal(repaired[i], stripe[i])


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_any_k_of_n_decode_property(k, m, seed):
    """MDS property end-to-end: any k blocks reconstruct the stripe."""
    code = get_code(k, m)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, 64), dtype=np.uint8)
    stripe = code.encode_stripe(data)
    keep = sorted(rng.choice(k + m, size=k, replace=False).tolist())
    avail = {i: stripe[i] for i in keep}
    full = code.decode_stripe(avail)
    assert np.array_equal(full, stripe)


def test_zero_length_blocks():
    code = RSCode(3, 2)
    data = np.zeros((3, 0), dtype=np.uint8)
    stripe = code.encode_stripe(data)
    assert stripe.shape == (5, 0)
