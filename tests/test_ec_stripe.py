"""Stripe metadata tests."""

import pytest

from repro.ec.stripe import Stripe, StripeLayout, block_name


def test_block_name_format():
    assert block_name(17, 3) == "s0017/b03"


def test_stripe_basic_lookups():
    s = Stripe(0, 3, 2, [10, 11, 12, 13, 14])
    assert s.n == 5 and s.width == 5
    assert s.node_of(2) == 12
    assert s.block_on(13) == 3
    assert s.block_on(99) is None


def test_stripe_placement_validation():
    with pytest.raises(ValueError):
        Stripe(0, 3, 2, [1, 2, 3, 4])  # wrong length
    with pytest.raises(ValueError):
        Stripe(0, 3, 2, [1, 2, 3, 4, 4])  # duplicate node


def test_failed_and_surviving_blocks():
    s = Stripe(0, 3, 2, [10, 11, 12, 13, 14])
    assert s.failed_blocks({11, 14}) == [1, 4]
    assert s.surviving_blocks({11, 14}) == [0, 2, 3]
    assert s.failed_blocks(set()) == []


def test_layout_queries():
    layout = StripeLayout()
    layout.add(Stripe(0, 2, 1, [1, 2, 3]))
    layout.add(Stripe(1, 2, 1, [2, 3, 4]))
    assert len(layout) == 2
    failures = layout.stripes_with_failures({2})
    assert failures == {0: [1], 1: [0]}
    counts = layout.blocks_per_node()
    assert counts == {1: 1, 2: 2, 3: 2, 4: 1}


def test_layout_no_failures():
    layout = StripeLayout([ ])
    layout.add(Stripe(0, 2, 1, [1, 2, 3]))
    assert layout.stripes_with_failures({9}) == {}
